//! Meshes and domain partitioning for the `parfem` solver stack.
//!
//! - [`structured`] — structured 2-D quadrilateral meshes (the cantilever
//!   meshes Mesh1–Mesh10 of the paper's Table 2),
//! - [`hex`] — structured 3-D hexahedral meshes (the box cantilever of the
//!   3-D elasticity workload),
//! - [`numbering`] — DOF numbering (physics-dependent DOFs per node:
//!   1 scalar, 2 for 2-D elasticity, 3 for 3-D) and Dirichlet constraint
//!   sets,
//! - [`partition`] — element-based partitions (the paper's EDD, Section 3)
//!   and node-based partitions (the RDD baseline, Section 4), including the
//!   subdomain interface graphs that drive nearest-neighbour communication,
//! - [`graph`] — mesh adjacency graphs and a greedy BFS partitioner for
//!   unstructured input,
//! - [`gpart`] — a seeded multilevel-style graph partitioner (recursive
//!   bisection + KL/FM boundary refinement) and the [`PartitionerSpec`]
//!   selector wired through the CLI's `--partitioner` flag.

#![deny(missing_docs)]
#![warn(clippy::all)]
// Indexed `for r in 0..n` loops are the idiomatic form for the sparse/FEM
// kernels in this workspace (the index feeds several arrays and the CSR
// row spans at once); the iterator forms clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]

pub mod cells;
pub mod generic;
pub mod gpart;
pub mod graph;
pub mod hex;
pub mod numbering;
pub mod partition;
pub mod quad8;
pub mod structured;
pub mod tri;

pub use cells::Cells;
pub use generic::GenericQuadMesh;
pub use gpart::{graph_partition, PartitionerSpec};
pub use hex::{Face, HexMesh};
pub use numbering::{DofMap, Edge};
pub use partition::{ElementPartition, NodePartition, Subdomain};
pub use quad8::Quad8Mesh;
pub use structured::QuadMesh;
pub use tri::TriMesh;
