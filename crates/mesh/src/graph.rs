//! Mesh adjacency graphs and a greedy BFS partitioner.
//!
//! The paper relies on "specific graph methods" (its reference \[21\]) to
//! partition unstructured meshes. Our structured cantilever meshes use the
//! strip/block partitions of [`crate::partition`]; this module provides the
//! graph machinery for general input: node and element adjacency, and a
//! greedy breadth-first partitioner that grows balanced connected element
//! regions — the classical substitute for a multilevel partitioner.

use crate::cells::Cells;
use crate::partition::ElementPartition;
use crate::structured::QuadMesh;

/// Undirected adjacency lists over `n` vertices.
#[derive(Debug, Clone)]
pub struct Adjacency {
    adj: Vec<Vec<usize>>,
}

impl Adjacency {
    /// Node adjacency of a mesh: two nodes are adjacent when they share an
    /// element. This is the graph `G(K)` of the assembled stiffness matrix
    /// (paper Section 5): `K_ij != 0` iff nodes `i, j` share an element.
    pub fn node_graph(mesh: &QuadMesh) -> Self {
        Self::node_graph_from_cells(
            mesh.n_nodes(),
            (0..mesh.n_elems()).map(|e| mesh.elem_nodes(e).to_vec()),
        )
    }

    /// Generic node graph from arbitrary cell connectivity — used for the
    /// triangle and 8-node quadrilateral discretizations of the Section-5
    /// planarity study.
    pub fn node_graph_from_cells<I>(n_nodes: usize, cells: I) -> Self
    where
        I: IntoIterator<Item = Vec<usize>>,
    {
        let mut adj = vec![Vec::new(); n_nodes];
        for cell in cells {
            for &a in &cell {
                for &b in &cell {
                    if a != b && !adj[a].contains(&b) {
                        adj[a].push(b);
                    }
                }
            }
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        Adjacency { adj }
    }

    /// Element adjacency: two elements are adjacent when they share at least
    /// `min_shared` nodes (2 = edge neighbours, 1 = vertex neighbours).
    pub fn element_graph(mesh: &QuadMesh, min_shared: usize) -> Self {
        Self::element_graph_of(mesh, min_shared)
    }

    /// Element adjacency for any [`Cells`] mesh.
    pub fn element_graph_of<M: Cells>(mesh: &M, min_shared: usize) -> Self {
        // Invert connectivity: node -> elements.
        let mut node_elems = vec![Vec::new(); mesh.n_cell_nodes()];
        for e in 0..mesh.n_cells() {
            for &n in &mesh.cell_nodes(e) {
                node_elems[n].push(e);
            }
        }
        let mut adj = vec![Vec::new(); mesh.n_cells()];
        for e in 0..mesh.n_cells() {
            let nodes = mesh.cell_nodes(e);
            let mut counts: Vec<(usize, usize)> = Vec::new();
            for &n in &nodes {
                for &f in &node_elems[n] {
                    if f == e {
                        continue;
                    }
                    match counts.iter_mut().find(|(g, _)| *g == f) {
                        Some((_, c)) => *c += 1,
                        None => counts.push((f, 1)),
                    }
                }
            }
            for (f, c) in counts {
                if c >= min_shared {
                    adj[e].push(f);
                }
            }
            adj[e].sort_unstable();
        }
        Adjacency { adj }
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Neighbours of vertex `v`.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Number of undirected edges.
    pub fn n_edges(&self) -> usize {
        self.adj.iter().map(|l| l.len()).sum::<usize>() / 2
    }

    /// Whether the graph satisfies the planar edge bound `|E| ≤ 3|V| − 6`.
    ///
    /// This is Euler's *necessary* condition for planarity — sufficient to
    /// certify non-planarity, which is exactly how the paper's Section 5
    /// argues that 4- and 8-noded quadrilaterals break the planar-SpMV
    /// scalability result (`G(K)` is planar for 3-noded triangles only).
    pub fn satisfies_planar_edge_bound(&self) -> bool {
        let v = self.adj.len();
        if v < 3 {
            return true;
        }
        self.n_edges() <= 3 * v - 6
    }

    /// Average vertex degree — the mean off-diagonal entries per matrix row.
    pub fn average_degree(&self) -> f64 {
        if self.adj.is_empty() {
            return 0.0;
        }
        2.0 * self.n_edges() as f64 / self.adj.len() as f64
    }

    /// Whether the graph is connected (empty graphs count as connected).
    pub fn is_connected(&self) -> bool {
        let n = self.adj.len();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &w in &self.adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }
}

/// Greedy BFS element partitioner: grows `p` connected regions of balanced
/// size over the element edge-adjacency graph.
///
/// Deterministic: seeds are chosen as the lowest-numbered unassigned element
/// each round, and BFS frontiers expand in element order.
///
/// # Panics
/// Panics if `p` is zero or exceeds the element count.
pub fn greedy_bfs_partition(mesh: &QuadMesh, p: usize) -> ElementPartition {
    greedy_bfs_partition_cells(mesh, p)
}

/// [`greedy_bfs_partition`] over any [`Cells`] mesh — the entry point for
/// imported unstructured meshes.
///
/// # Panics
/// Panics if `p` is zero or exceeds the cell count.
pub fn greedy_bfs_partition_cells<M: Cells>(mesh: &M, p: usize) -> ElementPartition {
    let ne = mesh.n_cells();
    assert!(p > 0 && p <= ne, "part count must be in 1..=n_elems");
    let graph = Adjacency::element_graph_of(mesh, 2);
    let mut owner = vec![usize::MAX; ne];
    let mut assigned = 0usize;
    for part in 0..p {
        // Remaining elements spread over remaining parts.
        let target = (ne - assigned).div_ceil(p - part);
        // Seed: lowest unassigned element.
        let seed = (0..ne)
            .find(|&e| owner[e] == usize::MAX)
            .expect("unassigned element must exist");
        let mut queue = std::collections::VecDeque::from([seed]);
        owner[seed] = part;
        assigned += 1;
        let mut size = 1;
        while size < target {
            let Some(v) = queue.pop_front() else {
                // Region ran out of connected frontier; grab the next free
                // element (keeps the partition total even if disconnected).
                let Some(next) = (0..ne).find(|&e| owner[e] == usize::MAX) else {
                    break;
                };
                owner[next] = part;
                assigned += 1;
                size += 1;
                queue.push_back(next);
                continue;
            };
            for &w in graph.neighbors(v) {
                if owner[w] == usize::MAX && size < target {
                    owner[w] = part;
                    assigned += 1;
                    size += 1;
                    queue.push_back(w);
                }
            }
            if size < target && queue.is_empty() {
                // Re-seed within this part from any frontier leftovers.
                if let Some(next) = (0..ne).find(|&e| owner[e] == usize::MAX) {
                    owner[next] = part;
                    assigned += 1;
                    size += 1;
                    queue.push_back(next);
                } else {
                    break;
                }
            }
        }
    }
    // Any stragglers go to the last part.
    for o in &mut owner {
        if *o == usize::MAX {
            *o = p - 1;
        }
    }
    ElementPartition::from_owner(p, owner).with_edge_cut(mesh)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_graph_degrees_on_small_mesh() {
        let mesh = QuadMesh::rectangle(2, 2, 2.0, 2.0);
        let g = Adjacency::node_graph(&mesh);
        assert_eq!(g.n_vertices(), 9);
        // Corner node 0 is in one element: adjacent to 3 nodes.
        assert_eq!(g.degree(0), 3);
        // Centre node 4 is in all four elements: adjacent to all 8 others.
        assert_eq!(g.degree(4), 8);
        assert!(g.is_connected());
    }

    #[test]
    fn triangle_graph_is_planar_quad_graph_is_not() {
        // Section 5: G(K) planar for 3-noded triangles, non-planar for
        // 4-noded quadrilaterals (each cell's diagonals create K4s).
        let q = QuadMesh::rectangle(6, 6, 6.0, 6.0);
        let quad_graph = Adjacency::node_graph(&q);
        assert!(
            !quad_graph.satisfies_planar_edge_bound(),
            "quad node graph must violate |E| <= 3|V| - 6"
        );
        let t = crate::tri::TriMesh::from_quad_mesh(&q);
        let tri_graph = Adjacency::node_graph_from_cells(
            t.n_nodes(),
            (0..t.n_elems()).map(|e| t.elem_nodes(e).to_vec()),
        );
        assert!(
            tri_graph.satisfies_planar_edge_bound(),
            "triangle node graph must satisfy the planar bound"
        );
        // And the quad graph is strictly denser.
        assert!(quad_graph.average_degree() > tri_graph.average_degree());
    }

    #[test]
    fn quad8_graph_is_densest() {
        let q8 = crate::quad8::Quad8Mesh::rectangle(4, 4, 4.0, 4.0);
        let g8 = Adjacency::node_graph_from_cells(
            q8.n_nodes(),
            (0..q8.n_elems()).map(|e| q8.elem_nodes(e).to_vec()),
        );
        assert!(!g8.satisfies_planar_edge_bound());
        let q4 = QuadMesh::rectangle(4, 4, 4.0, 4.0);
        let g4 = Adjacency::node_graph(&q4);
        assert!(
            g8.average_degree() > g4.average_degree(),
            "8-node coupling must be denser: {} vs {}",
            g8.average_degree(),
            g4.average_degree()
        );
    }

    #[test]
    fn edge_count_and_degree_helpers() {
        // A single quad cell: K4 -> 6 edges, degree 3.
        let q = QuadMesh::rectangle(1, 1, 1.0, 1.0);
        let g = Adjacency::node_graph(&q);
        assert_eq!(g.n_edges(), 6);
        assert_eq!(g.average_degree(), 3.0);
        // K4 satisfies |E| <= 3*4-6 = 6 (planar, as K4 indeed is).
        assert!(g.satisfies_planar_edge_bound());
    }

    #[test]
    fn element_graph_edge_neighbors() {
        let mesh = QuadMesh::rectangle(3, 1, 3.0, 1.0);
        let g = Adjacency::element_graph(&mesh, 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1]);
    }

    #[test]
    fn element_graph_vertex_neighbors_include_diagonals() {
        let mesh = QuadMesh::rectangle(2, 2, 2.0, 2.0);
        let edge = Adjacency::element_graph(&mesh, 2);
        let vertex = Adjacency::element_graph(&mesh, 1);
        // Element 0 and element 3 share only the centre node.
        assert!(!edge.neighbors(0).contains(&3));
        assert!(vertex.neighbors(0).contains(&3));
    }

    #[test]
    fn bfs_partition_is_balanced_and_total() {
        let mesh = QuadMesh::rectangle(10, 6, 10.0, 6.0);
        let part = greedy_bfs_partition(&mesh, 4);
        let mut counts = vec![0usize; 4];
        for e in 0..mesh.n_elems() {
            counts[part.owner(e)] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 60);
        for &c in &counts {
            assert!((12..=18).contains(&c), "unbalanced part of size {c}");
        }
    }

    #[test]
    fn bfs_partition_single_part() {
        let mesh = QuadMesh::rectangle(3, 3, 3.0, 3.0);
        let part = greedy_bfs_partition(&mesh, 1);
        assert!(part.owners().iter().all(|&o| o == 0));
    }

    #[test]
    fn bfs_partition_as_many_parts_as_elements() {
        let mesh = QuadMesh::rectangle(2, 2, 2.0, 2.0);
        let part = greedy_bfs_partition(&mesh, 4);
        let mut owners: Vec<usize> = part.owners().to_vec();
        owners.sort_unstable();
        assert_eq!(owners, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bfs_partition_subdomains_are_valid() {
        // The produced partition must produce consistent subdomain interface
        // data (pairing checked inside partition tests; here just smoke).
        let mesh = QuadMesh::rectangle(8, 8, 8.0, 8.0);
        let part = greedy_bfs_partition(&mesh, 5);
        let subs = part.subdomains(&mesh);
        assert_eq!(subs.len(), 5);
        let union: usize = subs.iter().map(|s| s.elements.len()).sum();
        assert_eq!(union, 64);
    }
}
