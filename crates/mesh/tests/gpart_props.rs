//! Property-based tests for the seeded graph partitioner: total ownership,
//! part counts, per-part connectivity on structured meshes, determinism,
//! and the no-regression guarantee against the strip layout on the paper's
//! Table-2 cantilever meshes.

use parfem_mesh::gpart::{graph_partition, partition_adjacency, PartitionerSpec};
use parfem_mesh::graph::Adjacency;
use parfem_mesh::{ElementPartition, QuadMesh};
use proptest::prelude::*;

/// Strategy: a structured mesh plus a valid part count and seed. The raw
/// part draw is folded into `1..=min(n_elems, 9)` so every sample is valid.
fn mesh_and_parts() -> impl Strategy<Value = (usize, usize, usize, u64)> {
    (2usize..14, 1usize..8, 0usize..64, 0u64..64).prop_map(|(nx, ny, p_raw, seed)| {
        let p = 1 + p_raw % (nx * ny).min(9);
        (nx, ny, p, seed)
    })
}

/// Whether every part induces a connected subgraph of `graph`.
fn parts_connected(graph: &Adjacency, owner: &[usize], p: usize) -> bool {
    for part in 0..p {
        let members: Vec<usize> = (0..owner.len()).filter(|&v| owner[v] == part).collect();
        if members.is_empty() {
            return false;
        }
        let mut seen = vec![false; owner.len()];
        let mut stack = vec![members[0]];
        seen[members[0]] = true;
        let mut count = 1usize;
        while let Some(v) = stack.pop() {
            for &w in graph.neighbors(v) {
                if owner[w] == part && !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        if count != members.len() {
            return false;
        }
    }
    true
}

proptest! {
    #[test]
    fn every_element_is_owned_exactly_once((nx, ny, p, seed) in mesh_and_parts()) {
        let mesh = QuadMesh::cantilever(nx, ny);
        let part = graph_partition(&mesh, p, seed);
        prop_assert_eq!(part.n_parts(), p);
        prop_assert_eq!(part.owners().len(), nx * ny);
        let mut sizes = vec![0usize; p];
        for e in 0..nx * ny {
            let o = part.owner(e);
            prop_assert!(o < p, "owner {} out of range", o);
            sizes[o] += 1;
        }
        // Ownership is a partition: sizes sum to the element count and no
        // part is empty.
        prop_assert_eq!(sizes.iter().sum::<usize>(), nx * ny);
        prop_assert!(sizes.iter().all(|&s| s > 0), "empty part in {:?}", sizes);
    }

    #[test]
    fn parts_are_connected_on_structured_meshes((nx, ny, p, seed) in mesh_and_parts()) {
        let mesh = QuadMesh::cantilever(nx, ny);
        let part = graph_partition(&mesh, p, seed);
        // Connectivity in the node-sharing element graph — the graph the
        // partitioner optimizes and whose cut the partition reports.
        let graph = Adjacency::element_graph_of(&mesh, 1);
        prop_assert!(
            parts_connected(&graph, part.owners(), p),
            "disconnected part: {:?}",
            part
        );
    }

    #[test]
    fn fixed_seed_is_deterministic((nx, ny, p, seed) in mesh_and_parts()) {
        let mesh = QuadMesh::cantilever(nx, ny);
        let a = graph_partition(&mesh, p, seed);
        let b = graph_partition(&mesh, p, seed);
        prop_assert_eq!(a.owners(), b.owners());
        prop_assert_eq!(a.edge_cut(), b.edge_cut());
        // The spec round-trips to the same partition.
        let via_spec = PartitionerSpec::Graph { seed }.element_partition(&mesh, p);
        prop_assert_eq!(a.owners(), via_spec.owners());
    }

    #[test]
    fn adjacency_partition_matches_mesh_contract((nx, ny, p, seed) in mesh_and_parts()) {
        let mesh = QuadMesh::cantilever(nx, ny);
        let graph = Adjacency::element_graph_of(&mesh, 1);
        let owner = partition_adjacency(&graph, p, seed);
        prop_assert_eq!(owner.len(), nx * ny);
        let mut seen = vec![false; p];
        for &o in &owner {
            prop_assert!(o < p);
            seen[o] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}

/// Table-2 cantilever meshes (the sizes the solver benchmarks run on):
/// the graph partitioner must never cut more node-adjacent element pairs
/// than the vertical strip layout it replaces.
#[test]
fn graph_cut_never_worse_than_strips_on_paper_meshes() {
    // (nx, ny) for Mesh1, Mesh2, Mesh3, Mesh4 — the larger Table-2 entries
    // scale the same construction and are exercised by the scaling bench.
    let paper = [(7usize, 1usize), (40, 8), (40, 20), (50, 50)];
    for &(nx, ny) in &paper {
        let mesh = QuadMesh::cantilever(nx, ny);
        for p in [2usize, 4, 8] {
            if p > nx {
                continue;
            }
            let strips = ElementPartition::strips_x(&mesh, p);
            let graph = graph_partition(&mesh, p, 0);
            let (gc, sc) = (graph.edge_cut().unwrap(), strips.edge_cut().unwrap());
            assert!(
                gc <= sc,
                "{nx}x{ny} P={p}: graph cut {gc} exceeds strips cut {sc}"
            );
            assert!(graph.imbalance() <= strips.imbalance().max(1.25));
        }
    }
}
