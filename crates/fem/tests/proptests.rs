//! Property-based tests for the finite-element substrate.

use parfem_fem::{hex8, physics, quad4, tri3, Material};
use parfem_mesh::{DofMap, Edge, Face, HexMesh, QuadMesh};
use parfem_sparse::direct::SparseDirect;
use parfem_sparse::skyline::DEFAULT_PIVOT_TOL;
use proptest::prelude::*;

/// Strategy: a convex, non-degenerate quadrilateral built by perturbing the
/// unit square (perturbations < 0.3 keep it convex and CCW).
fn quad_coords() -> impl Strategy<Value = [[f64; 2]; 4]> {
    prop::collection::vec(-0.25..0.25f64, 8).prop_map(|d| {
        [
            [0.0 + d[0], 0.0 + d[1]],
            [1.0 + d[2], 0.0 + d[3]],
            [1.0 + d[4], 1.0 + d[5]],
            [0.0 + d[6], 1.0 + d[7]],
        ]
    })
}

/// Strategy: a CCW triangle with area bounded away from zero.
fn tri_coords() -> impl Strategy<Value = [[f64; 2]; 3]> {
    prop::collection::vec(-0.2..0.2f64, 6).prop_map(|d| {
        [
            [0.0 + d[0], 0.0 + d[1]],
            [1.0 + d[2], 0.0 + d[3]],
            [0.3 + d[4], 1.0 + d[5]],
        ]
    })
}

/// Strategy: a mildly distorted unit cube (perturbations < 0.15 keep the
/// hexahedron convex with a positive Jacobian everywhere).
fn hex_coords() -> impl Strategy<Value = [[f64; 3]; 8]> {
    prop::collection::vec(-0.12..0.12f64, 24).prop_map(|d| {
        let base = [
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [1.0, 1.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            [1.0, 0.0, 1.0],
            [1.0, 1.0, 1.0],
            [0.0, 1.0, 1.0],
        ];
        let mut c = base;
        for (i, node) in c.iter_mut().enumerate() {
            for (a, axis) in node.iter_mut().enumerate() {
                *axis += d[3 * i + a];
            }
        }
        c
    })
}

fn matvec(n: usize, m: &[f64], x: &[f64]) -> Vec<f64> {
    (0..n)
        .map(|r| (0..n).map(|c| m[r * n + c] * x[c]).sum())
        .collect()
}

/// A deterministic non-zero probe vector of length `n`.
fn probe(n: usize) -> Vec<f64> {
    (0..n).map(|i| (1.7 * i as f64).sin() + 1.1).collect()
}

/// Asserts `a` (CSR) is symmetric and positive definite: symmetry by dense
/// transpose comparison, definiteness by a pivot-complete LDLᵀ factorization
/// plus a strictly positive probe energy.
fn assert_spd(a: &parfem_sparse::CsrMatrix) {
    let n = a.n_rows();
    let dense = a.to_dense();
    for r in 0..n {
        for c in 0..n {
            assert!(
                (dense[r * n + c] - dense[c * n + r]).abs() < 1e-10,
                "asymmetry at ({r},{c})"
            );
        }
    }
    let factor = SparseDirect::factorize(a, DEFAULT_PIVOT_TOL);
    assert_eq!(
        factor.n_skipped(),
        0,
        "Dirichlet-eliminated operator is singular"
    );
    let x = probe(n);
    let ax = matvec(n, &dense, &x);
    let energy: f64 = x.iter().zip(&ax).map(|(a, b)| a * b).sum();
    assert!(energy > 0.0, "non-positive probe energy {energy}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quad_stiffness_symmetric_psd_with_rigid_null_space(coords in quad_coords(),
                                                          nu in 0.0..0.45f64) {
        let mut mat = Material::unit();
        mat.poissons_ratio = nu;
        let ke = quad4::stiffness(&coords, &mat);
        // Symmetry.
        for r in 0..8 {
            for c in 0..8 {
                prop_assert!((ke[r * 8 + c] - ke[c * 8 + r]).abs() < 1e-10);
            }
        }
        // Rigid modes in the null space.
        let mut tx = [0.0; 8];
        let mut ty = [0.0; 8];
        let mut rot = [0.0; 8];
        for i in 0..4 {
            tx[2 * i] = 1.0;
            ty[2 * i + 1] = 1.0;
            rot[2 * i] = -coords[i][1];
            rot[2 * i + 1] = coords[i][0];
        }
        for mode in [tx, ty, rot] {
            for v in matvec(8, &ke, &mode) {
                prop_assert!(v.abs() < 1e-8, "rigid force {}", v);
            }
        }
    }

    #[test]
    fn quad_energy_nonnegative_for_random_displacements(coords in quad_coords(),
                                                        u in prop::collection::vec(-2.0..2.0f64, 8)) {
        let ke = quad4::stiffness(&coords, &Material::unit());
        let ku = matvec(8, &ke, &u);
        let e: f64 = u.iter().zip(&ku).map(|(a, b)| a * b).sum();
        prop_assert!(e >= -1e-9, "negative energy {}", e);
    }

    #[test]
    fn quad_mass_total_equals_density_area(coords in quad_coords()) {
        let mat = Material::unit();
        let me = quad4::consistent_mass(&coords, &mat);
        // Shoelace area of the quadrilateral.
        let mut area = 0.0;
        for i in 0..4 {
            let j = (i + 1) % 4;
            area += coords[i][0] * coords[j][1] - coords[j][0] * coords[i][1];
        }
        area *= 0.5;
        let mut tx = [0.0; 8];
        for i in 0..4 {
            tx[2 * i] = 1.0;
        }
        let mx = matvec(8, &me, &tx);
        let total: f64 = tx.iter().zip(&mx).map(|(a, b)| a * b).sum();
        prop_assert!((total - area).abs() < 1e-9 * area.max(1.0),
            "mass {} vs area {}", total, area);
    }

    #[test]
    fn lumped_mass_equals_consistent_row_sums(coords in quad_coords()) {
        let mat = Material::unit();
        let lm = quad4::lumped_mass(&coords, &mat);
        let cm = quad4::consistent_mass(&coords, &mat);
        for r in 0..8 {
            let row_sum: f64 = (0..8).map(|c| cm[r * 8 + c]).sum();
            prop_assert!((lm[r * 8 + r] - row_sum).abs() < 1e-12);
        }
    }

    #[test]
    fn tri_stiffness_invariants(coords in tri_coords()) {
        let ke = tri3::stiffness(&coords, &Material::unit());
        for r in 0..6 {
            for c in 0..6 {
                prop_assert!((ke[r * 6 + c] - ke[c * 6 + r]).abs() < 1e-10);
            }
        }
        let mut rot = [0.0; 6];
        for i in 0..3 {
            rot[2 * i] = -coords[i][1];
            rot[2 * i + 1] = coords[i][0];
        }
        for v in matvec(6, &ke, &rot) {
            prop_assert!(v.abs() < 1e-9, "rigid rotation force {}", v);
        }
    }

    #[test]
    fn tri_translation_invariance(coords in tri_coords(),
                                  shift in prop::collection::vec(-5.0..5.0f64, 2)) {
        // Stiffness depends only on shape, not position.
        let mat = Material::unit();
        let k1 = tri3::stiffness(&coords, &mat);
        let shifted = [
            [coords[0][0] + shift[0], coords[0][1] + shift[1]],
            [coords[1][0] + shift[0], coords[1][1] + shift[1]],
            [coords[2][0] + shift[0], coords[2][1] + shift[1]],
        ];
        let k2 = tri3::stiffness(&shifted, &mat);
        for i in 0..36 {
            prop_assert!((k1[i] - k2[i]).abs() < 1e-9 * (1.0 + k1[i].abs()));
        }
    }

    #[test]
    fn heat_quad_stiffness_symmetric_with_constant_null_space(coords in quad_coords(),
                                                              k in 0.1..10.0f64) {
        let mut mat = Material::unit();
        // Conductivity aliases Young's modulus in the scalar physics.
        mat.youngs_modulus = k;
        let ke = physics::heat_stiffness_quad4(&coords, &mat);
        for r in 0..4 {
            for c in 0..4 {
                prop_assert!((ke[r * 4 + c] - ke[c * 4 + r]).abs() < 1e-10);
            }
        }
        // The scalar physics has exactly one rigid mode: the constant field.
        for v in matvec(4, &ke, &[1.0; 4]) {
            prop_assert!(v.abs() < 1e-9, "constant-field flux {}", v);
        }
    }

    #[test]
    fn heat_quad_energy_nonnegative(coords in quad_coords(),
                                    u in prop::collection::vec(-2.0..2.0f64, 4)) {
        let ke = physics::heat_stiffness_quad4(&coords, &Material::unit());
        let ku = matvec(4, &ke, &u);
        let e: f64 = u.iter().zip(&ku).map(|(a, b)| a * b).sum();
        prop_assert!(e >= -1e-10, "negative heat energy {}", e);
    }

    #[test]
    fn heat_tri_stiffness_symmetric_with_constant_null_space(coords in tri_coords()) {
        let ke = physics::heat_stiffness_tri3(&coords, &Material::unit());
        for r in 0..3 {
            for c in 0..3 {
                prop_assert!((ke[r * 3 + c] - ke[c * 3 + r]).abs() < 1e-12);
            }
        }
        for v in matvec(3, &ke, &[1.0; 3]) {
            prop_assert!(v.abs() < 1e-10, "constant-field flux {}", v);
        }
    }

    #[test]
    fn hex_stiffness_symmetric_with_six_rigid_modes(coords in hex_coords(),
                                                    nu in 0.0..0.45f64) {
        let mut mat = Material::unit();
        mat.poissons_ratio = nu;
        let ke = hex8::stiffness(&coords, &mat);
        for r in 0..24 {
            for c in 0..24 {
                prop_assert!((ke[r * 24 + c] - ke[c * 24 + r]).abs() < 1e-8);
            }
        }
        // Three translations and three rotations annihilated (Physics::
        // Elasticity3d::n_rigid_modes() == 6).
        let mut modes = [[0.0; 24]; 6];
        for i in 0..8 {
            let [x, y, z] = coords[i];
            for t in 0..3 {
                modes[t][3 * i + t] = 1.0;
            }
            // rx = (0, -z, y), ry = (z, 0, -x), rz = (-y, x, 0).
            modes[3][3 * i + 1] = -z;
            modes[3][3 * i + 2] = y;
            modes[4][3 * i] = z;
            modes[4][3 * i + 2] = -x;
            modes[5][3 * i] = -y;
            modes[5][3 * i + 1] = x;
        }
        for mode in &modes {
            for v in matvec(24, &ke, mode) {
                prop_assert!(v.abs() < 1e-7, "rigid force {}", v);
            }
        }
    }

    #[test]
    fn hex_energy_nonnegative(coords in hex_coords(),
                              u in prop::collection::vec(-2.0..2.0f64, 24)) {
        let ke = hex8::stiffness(&coords, &Material::unit());
        let ku = matvec(24, &ke, &u);
        let e: f64 = u.iter().zip(&ku).map(|(a, b)| a * b).sum();
        prop_assert!(e >= -1e-7, "negative energy {}", e);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn assembled_heat_operator_spd_after_dirichlet(nx in 2..6usize, ny in 2..5usize) {
        let mesh = QuadMesh::cantilever(nx, ny);
        let mut dm = DofMap::with_dofs(mesh.n_nodes(), 1);
        dm.clamp_edge(&mesh, Edge::Left);
        let loads = vec![0.0; dm.n_dofs()];
        let sys = parfem_fem::assembly::build_static_heat(&mesh, &dm, &Material::unit(), &loads);
        assert_spd(&sys.stiffness);
    }

    #[test]
    fn assembled_hex_operator_spd_after_dirichlet(nx in 2..5usize,
                                                  ny in 1..3usize,
                                                  nz in 1..3usize) {
        let mesh = HexMesh::cantilever(nx, ny, nz);
        let mut dm = DofMap::with_dofs(mesh.n_nodes(), 3);
        for node in mesh.face_nodes(Face::XMin) {
            dm.clamp_node(node);
        }
        let loads = vec![0.0; dm.n_dofs()];
        let sys = parfem_fem::assembly::build_static_hex(&mesh, &dm, &Material::unit(), &loads);
        assert_spd(&sys.stiffness);
    }
}
