//! Property-based tests for the finite-element substrate.

use parfem_fem::{quad4, tri3, Material};
use proptest::prelude::*;

/// Strategy: a convex, non-degenerate quadrilateral built by perturbing the
/// unit square (perturbations < 0.3 keep it convex and CCW).
fn quad_coords() -> impl Strategy<Value = [[f64; 2]; 4]> {
    prop::collection::vec(-0.25..0.25f64, 8).prop_map(|d| {
        [
            [0.0 + d[0], 0.0 + d[1]],
            [1.0 + d[2], 0.0 + d[3]],
            [1.0 + d[4], 1.0 + d[5]],
            [0.0 + d[6], 1.0 + d[7]],
        ]
    })
}

/// Strategy: a CCW triangle with area bounded away from zero.
fn tri_coords() -> impl Strategy<Value = [[f64; 2]; 3]> {
    prop::collection::vec(-0.2..0.2f64, 6).prop_map(|d| {
        [
            [0.0 + d[0], 0.0 + d[1]],
            [1.0 + d[2], 0.0 + d[3]],
            [0.3 + d[4], 1.0 + d[5]],
        ]
    })
}

fn matvec(n: usize, m: &[f64], x: &[f64]) -> Vec<f64> {
    (0..n)
        .map(|r| (0..n).map(|c| m[r * n + c] * x[c]).sum())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quad_stiffness_symmetric_psd_with_rigid_null_space(coords in quad_coords(),
                                                          nu in 0.0..0.45f64) {
        let mut mat = Material::unit();
        mat.poissons_ratio = nu;
        let ke = quad4::stiffness(&coords, &mat);
        // Symmetry.
        for r in 0..8 {
            for c in 0..8 {
                prop_assert!((ke[r * 8 + c] - ke[c * 8 + r]).abs() < 1e-10);
            }
        }
        // Rigid modes in the null space.
        let mut tx = [0.0; 8];
        let mut ty = [0.0; 8];
        let mut rot = [0.0; 8];
        for i in 0..4 {
            tx[2 * i] = 1.0;
            ty[2 * i + 1] = 1.0;
            rot[2 * i] = -coords[i][1];
            rot[2 * i + 1] = coords[i][0];
        }
        for mode in [tx, ty, rot] {
            for v in matvec(8, &ke, &mode) {
                prop_assert!(v.abs() < 1e-8, "rigid force {}", v);
            }
        }
    }

    #[test]
    fn quad_energy_nonnegative_for_random_displacements(coords in quad_coords(),
                                                        u in prop::collection::vec(-2.0..2.0f64, 8)) {
        let ke = quad4::stiffness(&coords, &Material::unit());
        let ku = matvec(8, &ke, &u);
        let e: f64 = u.iter().zip(&ku).map(|(a, b)| a * b).sum();
        prop_assert!(e >= -1e-9, "negative energy {}", e);
    }

    #[test]
    fn quad_mass_total_equals_density_area(coords in quad_coords()) {
        let mat = Material::unit();
        let me = quad4::consistent_mass(&coords, &mat);
        // Shoelace area of the quadrilateral.
        let mut area = 0.0;
        for i in 0..4 {
            let j = (i + 1) % 4;
            area += coords[i][0] * coords[j][1] - coords[j][0] * coords[i][1];
        }
        area *= 0.5;
        let mut tx = [0.0; 8];
        for i in 0..4 {
            tx[2 * i] = 1.0;
        }
        let mx = matvec(8, &me, &tx);
        let total: f64 = tx.iter().zip(&mx).map(|(a, b)| a * b).sum();
        prop_assert!((total - area).abs() < 1e-9 * area.max(1.0),
            "mass {} vs area {}", total, area);
    }

    #[test]
    fn lumped_mass_equals_consistent_row_sums(coords in quad_coords()) {
        let mat = Material::unit();
        let lm = quad4::lumped_mass(&coords, &mat);
        let cm = quad4::consistent_mass(&coords, &mat);
        for r in 0..8 {
            let row_sum: f64 = (0..8).map(|c| cm[r * 8 + c]).sum();
            prop_assert!((lm[r * 8 + r] - row_sum).abs() < 1e-12);
        }
    }

    #[test]
    fn tri_stiffness_invariants(coords in tri_coords()) {
        let ke = tri3::stiffness(&coords, &Material::unit());
        for r in 0..6 {
            for c in 0..6 {
                prop_assert!((ke[r * 6 + c] - ke[c * 6 + r]).abs() < 1e-10);
            }
        }
        let mut rot = [0.0; 6];
        for i in 0..3 {
            rot[2 * i] = -coords[i][1];
            rot[2 * i + 1] = coords[i][0];
        }
        for v in matvec(6, &ke, &rot) {
            prop_assert!(v.abs() < 1e-9, "rigid rotation force {}", v);
        }
    }

    #[test]
    fn tri_translation_invariance(coords in tri_coords(),
                                  shift in prop::collection::vec(-5.0..5.0f64, 2)) {
        // Stiffness depends only on shape, not position.
        let mat = Material::unit();
        let k1 = tri3::stiffness(&coords, &mat);
        let shifted = [
            [coords[0][0] + shift[0], coords[0][1] + shift[1]],
            [coords[1][0] + shift[0], coords[1][1] + shift[1]],
            [coords[2][0] + shift[0], coords[2][1] + shift[1]],
        ];
        let k2 = tri3::stiffness(&shifted, &mat);
        for i in 0..36 {
            prop_assert!((k1[i] - k2[i]).abs() < 1e-9 * (1.0 + k1[i].abs()));
        }
    }
}
