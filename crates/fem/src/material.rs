//! Isotropic linear-elastic material models.

/// The 2-D stress assumption of the constitutive law.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaneModel {
    /// Plane stress (thin plates — the paper's cantilever plate).
    Stress,
    /// Plane strain (long prismatic bodies).
    Strain,
}

/// An isotropic linear-elastic material.
#[derive(Debug, Clone, Copy)]
pub struct Material {
    /// Young's modulus `E`.
    pub youngs_modulus: f64,
    /// Poisson's ratio `ν`.
    pub poissons_ratio: f64,
    /// Mass density `ρ` (per unit volume).
    pub density: f64,
    /// Out-of-plane thickness `t`.
    pub thickness: f64,
    /// Plane stress or plane strain.
    pub model: PlaneModel,
}

impl Material {
    /// A steel-like plane-stress material with unit thickness — the default
    /// for the cantilever experiments.
    pub fn steel() -> Self {
        Material {
            youngs_modulus: 200e9,
            poissons_ratio: 0.3,
            density: 7850.0,
            thickness: 1.0,
            model: PlaneModel::Stress,
        }
    }

    /// A dimensionless unit material (`E = 1`, `ν = 0.3`, `ρ = 1`, `t = 1`)
    /// used in tests where only the matrix structure matters.
    pub fn unit() -> Self {
        Material {
            youngs_modulus: 1.0,
            poissons_ratio: 0.3,
            density: 1.0,
            thickness: 1.0,
            model: PlaneModel::Stress,
        }
    }

    /// The 3×3 constitutive matrix `D` mapping engineering strains
    /// `(εxx, εyy, γxy)` to stresses `(σxx, σyy, τxy)`, row-major.
    ///
    /// # Panics
    /// Panics for physically inadmissible Poisson ratios (`ν ≥ 0.5` in plane
    /// strain, `|ν| ≥ 1` in plane stress).
    pub fn d_matrix(&self) -> [f64; 9] {
        let e = self.youngs_modulus;
        let nu = self.poissons_ratio;
        match self.model {
            PlaneModel::Stress => {
                assert!(nu.abs() < 1.0, "plane stress requires |nu| < 1");
                let c = e / (1.0 - nu * nu);
                [
                    c,
                    c * nu,
                    0.0,
                    c * nu,
                    c,
                    0.0,
                    0.0,
                    0.0,
                    c * (1.0 - nu) / 2.0,
                ]
            }
            PlaneModel::Strain => {
                assert!(nu < 0.5, "plane strain requires nu < 1/2");
                let c = e / ((1.0 + nu) * (1.0 - 2.0 * nu));
                [
                    c * (1.0 - nu),
                    c * nu,
                    0.0,
                    c * nu,
                    c * (1.0 - nu),
                    0.0,
                    0.0,
                    0.0,
                    c * (1.0 - 2.0 * nu) / 2.0,
                ]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_stress_d_matrix_is_symmetric_positive() {
        let d = Material::unit().d_matrix();
        assert_eq!(d[1], d[3]);
        assert!(d[0] > 0.0 && d[4] > 0.0 && d[8] > 0.0);
        // Uniaxial stress recovers E: sigma_xx under eps_xx = 1, with
        // eps_yy = -nu chosen so sigma_yy = 0.
        let nu = 0.3;
        let sigma_xx = d[0] * 1.0 + d[1] * (-nu);
        assert!((sigma_xx - 1.0).abs() < 1e-12, "sigma_xx {sigma_xx}");
        let sigma_yy = d[3] * 1.0 + d[4] * (-nu);
        assert!(sigma_yy.abs() < 1e-12);
    }

    #[test]
    fn plane_strain_is_stiffer_than_plane_stress() {
        let mut m = Material::unit();
        let ds = m.d_matrix();
        m.model = PlaneModel::Strain;
        let dn = m.d_matrix();
        assert!(dn[0] > ds[0]);
    }

    #[test]
    fn shear_modulus_matches_both_models() {
        // D[2][2] must equal G = E / (2 (1 + nu)) in both models.
        let g = 1.0 / (2.0 * 1.3);
        let mut m = Material::unit();
        assert!((m.d_matrix()[8] - g).abs() < 1e-12);
        m.model = PlaneModel::Strain;
        assert!((m.d_matrix()[8] - g).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "nu < 1/2")]
    fn incompressible_plane_strain_rejected() {
        let mut m = Material::unit();
        m.poissons_ratio = 0.5;
        m.model = PlaneModel::Strain;
        m.d_matrix();
    }
}
