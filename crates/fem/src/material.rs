//! Isotropic linear-elastic material models.

/// The 2-D stress assumption of the constitutive law.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaneModel {
    /// Plane stress (thin plates — the paper's cantilever plate).
    Stress,
    /// Plane strain (long prismatic bodies).
    Strain,
}

/// An isotropic linear-elastic material.
#[derive(Debug, Clone, Copy)]
pub struct Material {
    /// Young's modulus `E`.
    pub youngs_modulus: f64,
    /// Poisson's ratio `ν`.
    pub poissons_ratio: f64,
    /// Mass density `ρ` (per unit volume).
    pub density: f64,
    /// Out-of-plane thickness `t`.
    pub thickness: f64,
    /// Plane stress or plane strain.
    pub model: PlaneModel,
}

impl Material {
    /// A steel-like plane-stress material with unit thickness — the default
    /// for the cantilever experiments.
    pub fn steel() -> Self {
        Material {
            youngs_modulus: 200e9,
            poissons_ratio: 0.3,
            density: 7850.0,
            thickness: 1.0,
            model: PlaneModel::Stress,
        }
    }

    /// A dimensionless unit material (`E = 1`, `ν = 0.3`, `ρ = 1`, `t = 1`)
    /// used in tests where only the matrix structure matters.
    pub fn unit() -> Self {
        Material {
            youngs_modulus: 1.0,
            poissons_ratio: 0.3,
            density: 1.0,
            thickness: 1.0,
            model: PlaneModel::Stress,
        }
    }

    /// The 3×3 constitutive matrix `D` mapping engineering strains
    /// `(εxx, εyy, γxy)` to stresses `(σxx, σyy, τxy)`, row-major.
    ///
    /// # Panics
    /// Panics for physically inadmissible Poisson ratios (`ν ≥ 0.5` in plane
    /// strain, `|ν| ≥ 1` in plane stress).
    pub fn d_matrix(&self) -> [f64; 9] {
        let e = self.youngs_modulus;
        let nu = self.poissons_ratio;
        match self.model {
            PlaneModel::Stress => {
                assert!(nu.abs() < 1.0, "plane stress requires |nu| < 1");
                let c = e / (1.0 - nu * nu);
                [
                    c,
                    c * nu,
                    0.0,
                    c * nu,
                    c,
                    0.0,
                    0.0,
                    0.0,
                    c * (1.0 - nu) / 2.0,
                ]
            }
            PlaneModel::Strain => {
                assert!(nu < 0.5, "plane strain requires nu < 1/2");
                let c = e / ((1.0 + nu) * (1.0 - 2.0 * nu));
                [
                    c * (1.0 - nu),
                    c * nu,
                    0.0,
                    c * nu,
                    c * (1.0 - nu),
                    0.0,
                    0.0,
                    0.0,
                    c * (1.0 - 2.0 * nu) / 2.0,
                ]
            }
        }
    }

    /// The 6×6 constitutive matrix of isotropic 3-D elasticity (row-major),
    /// mapping engineering strains `(εxx, εyy, εzz, γxy, γyz, γzx)` to
    /// stresses. Built from the Lamé parameters
    /// `λ = Eν / ((1+ν)(1−2ν))`, `μ = E / (2(1+ν))`.
    ///
    /// # Panics
    /// Panics for physically inadmissible Poisson ratios (`ν ≥ 0.5`).
    pub fn d_matrix_3d(&self) -> [f64; 36] {
        let e = self.youngs_modulus;
        let nu = self.poissons_ratio;
        assert!(nu < 0.5, "3-D elasticity requires nu < 1/2");
        let lambda = e * nu / ((1.0 + nu) * (1.0 - 2.0 * nu));
        let mu = e / (2.0 * (1.0 + nu));
        let mut d = [0.0f64; 36];
        for r in 0..3 {
            for c in 0..3 {
                d[r * 6 + c] = lambda;
            }
            d[r * 6 + r] = lambda + 2.0 * mu;
            d[(3 + r) * 6 + 3 + r] = mu;
        }
        d
    }

    /// The scalar diffusion coefficient of the Poisson/heat physics.
    ///
    /// The scalar workloads reuse `youngs_modulus` as the isotropic
    /// conductivity `k` (and `thickness` as the 2-D slab thickness), so one
    /// `Material` value parameterizes every physics.
    #[inline]
    pub fn conductivity(&self) -> f64 {
        self.youngs_modulus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_stress_d_matrix_is_symmetric_positive() {
        let d = Material::unit().d_matrix();
        assert_eq!(d[1], d[3]);
        assert!(d[0] > 0.0 && d[4] > 0.0 && d[8] > 0.0);
        // Uniaxial stress recovers E: sigma_xx under eps_xx = 1, with
        // eps_yy = -nu chosen so sigma_yy = 0.
        let nu = 0.3;
        let sigma_xx = d[0] * 1.0 + d[1] * (-nu);
        assert!((sigma_xx - 1.0).abs() < 1e-12, "sigma_xx {sigma_xx}");
        let sigma_yy = d[3] * 1.0 + d[4] * (-nu);
        assert!(sigma_yy.abs() < 1e-12);
    }

    #[test]
    fn plane_strain_is_stiffer_than_plane_stress() {
        let mut m = Material::unit();
        let ds = m.d_matrix();
        m.model = PlaneModel::Strain;
        let dn = m.d_matrix();
        assert!(dn[0] > ds[0]);
    }

    #[test]
    fn shear_modulus_matches_both_models() {
        // D[2][2] must equal G = E / (2 (1 + nu)) in both models.
        let g = 1.0 / (2.0 * 1.3);
        let mut m = Material::unit();
        assert!((m.d_matrix()[8] - g).abs() < 1e-12);
        m.model = PlaneModel::Strain;
        assert!((m.d_matrix()[8] - g).abs() < 1e-12);
    }

    #[test]
    fn three_d_d_matrix_recovers_youngs_modulus() {
        // Uniaxial stress: eps = (1, -nu, -nu, 0, 0, 0) must give
        // sigma_xx = E and sigma_yy = sigma_zz = 0.
        let m = Material::unit();
        let d = m.d_matrix_3d();
        let nu = m.poissons_ratio;
        let eps = [1.0, -nu, -nu, 0.0, 0.0, 0.0];
        let mut sigma = [0.0; 6];
        for r in 0..6 {
            for c in 0..6 {
                sigma[r] += d[r * 6 + c] * eps[c];
            }
        }
        assert!((sigma[0] - 1.0).abs() < 1e-12, "sigma_xx {}", sigma[0]);
        assert!(sigma[1].abs() < 1e-12 && sigma[2].abs() < 1e-12);
        // Shear blocks carry G = E / (2 (1 + nu)).
        let g = 1.0 / (2.0 * (1.0 + nu));
        assert!((d[3 * 6 + 3] - g).abs() < 1e-12);
        // Symmetry.
        for r in 0..6 {
            for c in 0..6 {
                assert_eq!(d[r * 6 + c], d[c * 6 + r]);
            }
        }
    }

    #[test]
    fn conductivity_aliases_youngs_modulus() {
        let mut m = Material::unit();
        m.youngs_modulus = 2.5;
        assert_eq!(m.conductivity(), 2.5);
    }

    #[test]
    #[should_panic(expected = "nu < 1/2")]
    fn incompressible_three_d_rejected() {
        let mut m = Material::unit();
        m.poissons_ratio = 0.5;
        m.d_matrix_3d();
    }

    #[test]
    #[should_panic(expected = "nu < 1/2")]
    fn incompressible_plane_strain_rejected() {
        let mut m = Material::unit();
        m.poissons_ratio = 0.5;
        m.model = PlaneModel::Strain;
        m.d_matrix();
    }
}
