//! Finite-element substrate for the `parfem` solver stack.
//!
//! Implements everything the paper's evaluation needs from a FEM code:
//!
//! - [`material`] — isotropic linear elasticity (plane stress / plane
//!   strain / 3-D) constitutive matrices and the scalar conductivity,
//! - [`physics`] — the [`physics::Physics`] axis (2-D elasticity, scalar
//!   Poisson/heat, 3-D elasticity): DOFs per node, rigid-mode counts, and
//!   the scalar conduction element kernels,
//! - [`quad4`] — the 4-node bilinear quadrilateral of the paper's cantilever
//!   experiments: stiffness and (consistent or lumped) mass matrices by 2×2
//!   Gauss quadrature,
//! - [`hex8`] — the 8-node trilinear hexahedron of the 3-D elasticity
//!   workload,
//! - [`truss`] — the 1-D two-node truss of the paper's Fig. 5, used to
//!   explain local vs. global distributed formats,
//! - [`assembly`] — global CSR assembly with Dirichlet boundary conditions
//!   handled as identity rows (no renumbering), plus load vectors,
//! - [`subdomain`] — per-subdomain *unassembled* local systems for the
//!   element-based domain decomposition: `K = Σ Bₛᵀ K̂⁽ˢ⁾ Bₛ` holds exactly,
//! - [`dynamics`] — Newmark time integration of `M ü + K u = f` producing
//!   the effective systems `[αM + βK] u = f̂` of the paper's Eq. 52.

#![deny(missing_docs)]
#![warn(clippy::all)]
// Indexed `for r in 0..n` loops are the idiomatic form for the sparse/FEM
// kernels in this workspace (the index feeds several arrays and the CSR
// row spans at once); the iterator forms clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]

pub mod assembly;
pub mod dynamics;
pub mod hex8;
pub mod material;
pub mod physics;
pub mod quad4;
pub mod quad8s;
pub mod stress;
pub mod subdomain;
pub mod tri3;
pub mod truss;

pub use assembly::{assemble_mass, assemble_stiffness, StaticSystem};
pub use dynamics::{NewmarkIntegrator, NewmarkParams};
pub use material::Material;
pub use physics::Physics;
pub use subdomain::SubdomainSystem;
