//! The 4-node bilinear quadrilateral (Q4) element.
//!
//! Shape functions on the reference square `(ξ, η) ∈ [-1, 1]²`:
//! `N_i = ¼ (1 + ξ ξ_i)(1 + η η_i)` with corners ordered counter-clockwise.
//! Stiffness `kₑ = ∫ Bᵀ D B t dΩ` and consistent mass `mₑ = ∫ ρ t Nᵀ N dΩ`
//! are integrated with 2×2 Gauss quadrature, which is exact for the
//! bilinear element on a parallelogram.

use crate::material::Material;

/// Reference corner coordinates, counter-clockwise.
const XI: [f64; 4] = [-1.0, 1.0, 1.0, -1.0];
const ETA: [f64; 4] = [-1.0, -1.0, 1.0, 1.0];

/// 2×2 Gauss point abscissa.
const GP: f64 = 0.577_350_269_189_625_8; // 1/sqrt(3)

/// Shape function values at `(xi, eta)`.
pub fn shape_functions(xi: f64, eta: f64) -> [f64; 4] {
    let mut n = [0.0; 4];
    for i in 0..4 {
        n[i] = 0.25 * (1.0 + xi * XI[i]) * (1.0 + eta * ETA[i]);
    }
    n
}

/// Shape function derivatives `(dN/dξ, dN/dη)` at `(xi, eta)`.
pub fn shape_derivatives(xi: f64, eta: f64) -> ([f64; 4], [f64; 4]) {
    let mut dxi = [0.0; 4];
    let mut deta = [0.0; 4];
    for i in 0..4 {
        dxi[i] = 0.25 * XI[i] * (1.0 + eta * ETA[i]);
        deta[i] = 0.25 * ETA[i] * (1.0 + xi * XI[i]);
    }
    (dxi, deta)
}

/// The Jacobian determinant and the physical shape-function gradients
/// `(dN/dx, dN/dy)` at a reference point, for an element with corner
/// coordinates `coords`.
///
/// # Panics
/// Panics if the element is degenerate (non-positive Jacobian), which for
/// the structured meshes in this workspace indicates corrupted input.
pub fn physical_gradients(coords: &[[f64; 2]; 4], xi: f64, eta: f64) -> (f64, [f64; 4], [f64; 4]) {
    let (dxi, deta) = shape_derivatives(xi, eta);
    // Jacobian J = [dx/dxi dy/dxi; dx/deta dy/deta].
    let mut j = [0.0f64; 4];
    for i in 0..4 {
        j[0] += dxi[i] * coords[i][0];
        j[1] += dxi[i] * coords[i][1];
        j[2] += deta[i] * coords[i][0];
        j[3] += deta[i] * coords[i][1];
    }
    let det = j[0] * j[3] - j[1] * j[2];
    assert!(det > 0.0, "degenerate element: Jacobian determinant {det}");
    let inv = [j[3] / det, -j[1] / det, -j[2] / det, j[0] / det];
    let mut dx = [0.0; 4];
    let mut dy = [0.0; 4];
    for i in 0..4 {
        dx[i] = inv[0] * dxi[i] + inv[1] * deta[i];
        dy[i] = inv[2] * dxi[i] + inv[3] * deta[i];
    }
    (det, dx, dy)
}

/// The 8×8 element stiffness matrix (row-major) of a Q4 element.
///
/// DOF ordering is `[u0x, u0y, u1x, u1y, u2x, u2y, u3x, u3y]`, matching
/// [`parfem_mesh::DofMap::elem_dofs`].
pub fn stiffness(coords: &[[f64; 2]; 4], material: &Material) -> [f64; 64] {
    let d = material.d_matrix();
    let t = material.thickness;
    let mut ke = [0.0f64; 64];
    for &gx in &[-GP, GP] {
        for &gy in &[-GP, GP] {
            let (det, dx, dy) = physical_gradients(coords, gx, gy);
            // B is 3x8: strain = B * u_e.
            let mut b = [0.0f64; 24];
            for i in 0..4 {
                b[2 * i] = dx[i]; // row 0: eps_xx from u_ix
                b[8 + 2 * i + 1] = dy[i]; // row 1: eps_yy from u_iy
                b[16 + 2 * i] = dy[i]; // row 2: gamma_xy
                b[16 + 2 * i + 1] = dx[i];
            }
            // ke += B^T D B * det * t (unit Gauss weights for 2x2 rule).
            let w = det * t;
            // db = D * B (3x8)
            let mut db = [0.0f64; 24];
            for r in 0..3 {
                for c in 0..8 {
                    let mut acc = 0.0;
                    for k in 0..3 {
                        acc += d[r * 3 + k] * b[k * 8 + c];
                    }
                    db[r * 8 + c] = acc;
                }
            }
            for r in 0..8 {
                for c in 0..8 {
                    let mut acc = 0.0;
                    for k in 0..3 {
                        acc += b[k * 8 + r] * db[k * 8 + c];
                    }
                    ke[r * 8 + c] += acc * w;
                }
            }
        }
    }
    ke
}

/// The 8×8 consistent mass matrix (row-major) of a Q4 element.
pub fn consistent_mass(coords: &[[f64; 2]; 4], material: &Material) -> [f64; 64] {
    let rho_t = material.density * material.thickness;
    let mut me = [0.0f64; 64];
    for &gx in &[-GP, GP] {
        for &gy in &[-GP, GP] {
            let n = shape_functions(gx, gy);
            let (det, _, _) = physical_gradients(coords, gx, gy);
            let w = rho_t * det;
            for i in 0..4 {
                for j in 0..4 {
                    let v = n[i] * n[j] * w;
                    me[(2 * i) * 8 + 2 * j] += v;
                    me[(2 * i + 1) * 8 + 2 * j + 1] += v;
                }
            }
        }
    }
    me
}

/// The 8×8 (diagonal) lumped mass matrix, by row-sum lumping of the
/// consistent mass. Row-sum lumping preserves total element mass.
pub fn lumped_mass(coords: &[[f64; 2]; 4], material: &Material) -> [f64; 64] {
    let me = consistent_mass(coords, material);
    let mut out = [0.0f64; 64];
    for r in 0..8 {
        let sum: f64 = (0..8).map(|c| me[r * 8 + c]).sum();
        out[r * 8 + r] = sum;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> [[f64; 2]; 4] {
        [[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]]
    }

    fn matvec8(m: &[f64; 64], x: &[f64; 8]) -> [f64; 8] {
        let mut y = [0.0; 8];
        for r in 0..8 {
            for c in 0..8 {
                y[r] += m[r * 8 + c] * x[c];
            }
        }
        y
    }

    #[test]
    fn shape_functions_partition_unity() {
        for &(xi, eta) in &[(0.0, 0.0), (0.3, -0.7), (-1.0, 1.0), (0.9, 0.9)] {
            let n = shape_functions(xi, eta);
            let s: f64 = n.iter().sum();
            assert!((s - 1.0).abs() < 1e-14, "sum {s} at ({xi}, {eta})");
        }
    }

    #[test]
    fn shape_functions_interpolate_corners() {
        for i in 0..4 {
            let n = shape_functions(XI[i], ETA[i]);
            for j in 0..4 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((n[j] - want).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn derivative_sums_vanish() {
        // Since sum N_i = 1 identically, sum of derivatives is zero.
        let (dxi, deta) = shape_derivatives(0.4, -0.2);
        assert!(dxi.iter().sum::<f64>().abs() < 1e-14);
        assert!(deta.iter().sum::<f64>().abs() < 1e-14);
    }

    #[test]
    fn jacobian_of_unit_square() {
        let (det, dx, dy) = physical_gradients(&unit_square(), 0.0, 0.0);
        assert!((det - 0.25).abs() < 1e-14, "det {det}");
        // dN1/dx at centre = -1/2 for the unit square.
        assert!((dx[0] + 0.5).abs() < 1e-14);
        assert!((dy[0] + 0.5).abs() < 1e-14);
    }

    #[test]
    fn stiffness_is_symmetric() {
        let ke = stiffness(&unit_square(), &Material::unit());
        for r in 0..8 {
            for c in 0..8 {
                assert!(
                    (ke[r * 8 + c] - ke[c * 8 + r]).abs() < 1e-12,
                    "asymmetry at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn rigid_body_modes_are_in_null_space() {
        let coords = [[0.2, 0.1], [1.3, 0.0], [1.5, 1.2], [0.1, 1.0]];
        let ke = stiffness(&coords, &Material::unit());
        // Translation in x, translation in y, and infinitesimal rotation.
        let tx = [1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        let ty = [0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0];
        let mut rot = [0.0; 8];
        for i in 0..4 {
            rot[2 * i] = -coords[i][1];
            rot[2 * i + 1] = coords[i][0];
        }
        for mode in [tx, ty, rot] {
            let f = matvec8(&ke, &mode);
            for v in f {
                assert!(v.abs() < 1e-10, "rigid-body force {v}");
            }
        }
    }

    #[test]
    fn stiffness_is_positive_semidefinite() {
        // Random-ish test vectors must have non-negative energy.
        let ke = stiffness(&unit_square(), &Material::unit());
        let vecs = [
            [1.0, -2.0, 0.5, 0.0, -1.0, 1.0, 2.0, -0.5],
            [0.0, 1.0, 1.0, 0.0, 0.0, -1.0, -1.0, 0.0],
            [3.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        ];
        for x in vecs {
            let kx = matvec8(&ke, &x);
            let e: f64 = x.iter().zip(&kx).map(|(a, b)| a * b).sum();
            assert!(e >= -1e-12, "negative energy {e}");
        }
    }

    #[test]
    fn uniaxial_stretch_energy_matches_continuum() {
        // u_x = x on the unit square (eps_xx = 1): energy = 1/2 int sigma:eps
        // = 1/2 * D[0][0] for unit thickness and area.
        let m = Material::unit();
        let ke = stiffness(&unit_square(), &m);
        let coords = unit_square();
        let mut u = [0.0; 8];
        for i in 0..4 {
            u[2 * i] = coords[i][0];
        }
        let ku = matvec8(&ke, &u);
        let e: f64 = u.iter().zip(&ku).map(|(a, b)| a * b).sum::<f64>() / 2.0;
        let d = m.d_matrix();
        assert!(
            (e - d[0] / 2.0).abs() < 1e-12,
            "energy {e} vs {}",
            d[0] / 2.0
        );
    }

    #[test]
    fn consistent_mass_preserves_total_mass() {
        let m = Material::unit();
        let me = consistent_mass(&unit_square(), &m);
        // Total mass in x-translation: t(x)^T M t(x) = rho * area * t.
        let tx = [1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        let mx = matvec8(&me, &tx);
        let total: f64 = tx.iter().zip(&mx).map(|(a, b)| a * b).sum();
        assert!((total - 1.0).abs() < 1e-12, "total mass {total}");
    }

    #[test]
    fn lumped_mass_is_diagonal_and_mass_preserving() {
        let m = Material::unit();
        let lm = lumped_mass(&unit_square(), &m);
        for r in 0..8 {
            for c in 0..8 {
                if r != c {
                    assert_eq!(lm[r * 8 + c], 0.0);
                }
            }
        }
        let diag_sum: f64 = (0..8).map(|r| lm[r * 8 + r]).sum();
        // Two translational directions each carry the full mass.
        assert!((diag_sum - 2.0).abs() < 1e-12);
        // All lumped masses positive for a convex element.
        for r in 0..8 {
            assert!(lm[r * 8 + r] > 0.0);
        }
    }

    #[test]
    fn stiffness_scales_linearly_with_youngs_modulus() {
        let mut m = Material::unit();
        let k1 = stiffness(&unit_square(), &m);
        m.youngs_modulus = 7.0;
        let k7 = stiffness(&unit_square(), &m);
        for i in 0..64 {
            assert!((k7[i] - 7.0 * k1[i]).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "degenerate element")]
    fn degenerate_element_is_rejected() {
        // Clockwise (inverted) element.
        let coords = [[0.0, 0.0], [0.0, 1.0], [1.0, 1.0], [1.0, 0.0]];
        stiffness(&coords, &Material::unit());
    }
}
