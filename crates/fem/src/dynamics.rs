//! Newmark time integration for elastodynamics (paper Eqs. 51–52).
//!
//! The semi-discrete system `M ü + K u = f(t)` is advanced by the Newmark-β
//! family. Each step solves one linear system with the **effective
//! stiffness**
//!
//! ```text
//! K̄ = ᾱ M + K,    ᾱ = 1 / (β Δt²)
//! ```
//!
//! which is exactly the paper's `[αM + βK] u_{n+1} = f̂_{n+1}` (Eq. 52) with
//! `β = 1`. The linear solve is delegated to a caller-provided closure so the
//! same integrator drives the dense reference solver in tests and the
//! parallel FGMRES in the experiments.

use parfem_sparse::CsrMatrix;

/// Newmark parameters.
#[derive(Debug, Clone, Copy)]
pub struct NewmarkParams {
    /// Newmark `β` (displacement weighting).
    pub beta: f64,
    /// Newmark `γ` (velocity weighting).
    pub gamma: f64,
    /// Time step `Δt`.
    pub dt: f64,
}

impl NewmarkParams {
    /// The unconditionally stable, second-order average-acceleration rule
    /// (`β = 1/4`, `γ = 1/2`, the trapezoidal member of the paper's
    /// "generalized integration operators").
    pub fn average_acceleration(dt: f64) -> Self {
        assert!(dt > 0.0, "time step must be positive");
        NewmarkParams {
            beta: 0.25,
            gamma: 0.5,
            dt,
        }
    }

    /// The linear-acceleration rule (`β = 1/6`, `γ = 1/2`, conditionally
    /// stable).
    pub fn linear_acceleration(dt: f64) -> Self {
        assert!(dt > 0.0, "time step must be positive");
        NewmarkParams {
            beta: 1.0 / 6.0,
            gamma: 0.5,
            dt,
        }
    }

    /// The paper's effective-matrix coefficients `(ᾱ, β)` such that
    /// `K̄ = ᾱ M + β K` (here always `β = 1`).
    pub fn effective_coefficients(&self) -> (f64, f64) {
        (1.0 / (self.beta * self.dt * self.dt), 1.0)
    }
}

/// A Newmark integrator holding the current state `(u, v, a)`.
#[derive(Debug, Clone)]
pub struct NewmarkIntegrator {
    k: CsrMatrix,
    m: CsrMatrix,
    /// Optional (Rayleigh) damping matrix `C`.
    c: Option<CsrMatrix>,
    k_eff: CsrMatrix,
    params: NewmarkParams,
    /// Constrained DOFs `(index, prescribed value)`; enforced each step.
    fixed: Vec<(usize, f64)>,
    u: Vec<f64>,
    v: Vec<f64>,
    a: Vec<f64>,
    t: f64,
}

impl NewmarkIntegrator {
    /// Creates an integrator.
    ///
    /// `k` must carry identity rows at constrained DOFs and `m` zero
    /// rows/columns there (see [`crate::assembly::apply_dirichlet`] /
    /// [`crate::assembly::apply_dirichlet_mass`]); `fixed` lists those DOFs
    /// with their prescribed values.
    ///
    /// The initial acceleration solves `M a₀ = f₀ − K u₀` through the
    /// provided linear solver (with `M` regularized to identity on the
    /// constrained rows so the system is well posed; `a₀ = 0` there).
    ///
    /// # Panics
    /// Panics on dimension mismatches.
    #[allow(clippy::too_many_arguments)] // mirrors the physics: K, M, scheme, BCs, ICs, load
    pub fn new<F>(
        k: CsrMatrix,
        m: CsrMatrix,
        params: NewmarkParams,
        fixed: Vec<(usize, f64)>,
        u0: Vec<f64>,
        v0: Vec<f64>,
        f0: &[f64],
        solve: F,
    ) -> Self
    where
        F: FnMut(&CsrMatrix, &[f64]) -> Vec<f64>,
    {
        Self::with_damping(k, m, None, params, fixed, u0, v0, f0, solve)
    }

    /// Creates an integrator with a damping matrix `C` (e.g. Rayleigh
    /// damping from [`rayleigh_damping`]): `M ü + C u̇ + K u = f`.
    ///
    /// The effective stiffness becomes
    /// `K̄ = K + (γ/(βΔt)) C + (1/(βΔt²)) M`, and the initial acceleration
    /// solves `M a₀ = f₀ − K u₀ − C v₀`.
    ///
    /// # Panics
    /// Panics on dimension mismatches.
    #[allow(clippy::too_many_arguments)]
    pub fn with_damping<F>(
        k: CsrMatrix,
        m: CsrMatrix,
        c: Option<CsrMatrix>,
        params: NewmarkParams,
        fixed: Vec<(usize, f64)>,
        u0: Vec<f64>,
        v0: Vec<f64>,
        f0: &[f64],
        mut solve: F,
    ) -> Self
    where
        F: FnMut(&CsrMatrix, &[f64]) -> Vec<f64>,
    {
        let n = k.n_rows();
        assert_eq!(m.n_rows(), n, "mass/stiffness dimension mismatch");
        assert_eq!(u0.len(), n, "u0 length mismatch");
        assert_eq!(v0.len(), n, "v0 length mismatch");
        assert_eq!(f0.len(), n, "f0 length mismatch");
        let (alpha, _) = params.effective_coefficients();
        let mut k_eff = k.clone();
        k_eff = k_eff
            .add_scaled(alpha, &m)
            .expect("mass and stiffness share the shape");
        if let Some(cm) = &c {
            assert_eq!(cm.n_rows(), n, "damping dimension mismatch");
            let gamma_over_beta_dt = params.gamma / (params.beta * params.dt);
            k_eff = k_eff
                .add_scaled(gamma_over_beta_dt, cm)
                .expect("damping shares the shape");
        }

        // M a0 = f0 - K u0 - C v0 with identity rows at constrained DOFs.
        let ku = k.spmv(&u0);
        let mut rhs: Vec<f64> = f0.iter().zip(&ku).map(|(f, k)| f - k).collect();
        if let Some(cm) = &c {
            let cv = cm.spmv(&v0);
            for (ri, cvi) in rhs.iter_mut().zip(&cv) {
                *ri -= cvi;
            }
        }
        let mut m_reg = m.clone();
        let ident_fix: Vec<f64> = {
            let mut d = vec![0.0; n];
            for &(i, _) in &fixed {
                d[i] = 1.0;
                rhs[i] = 0.0;
            }
            d
        };
        m_reg = m_reg
            .add_scaled(1.0, &CsrMatrix::from_diagonal(&ident_fix))
            .expect("same shape");
        let a0 = solve(&m_reg, &rhs);

        NewmarkIntegrator {
            k,
            m,
            c,
            k_eff,
            params,
            fixed,
            u: u0,
            v: v0,
            a: a0,
            t: 0.0,
        }
    }

    /// The effective stiffness `K̄ = ᾱM + K` (plus `(γ/βΔt)C` when
    /// damped) solved at every step.
    pub fn effective_stiffness(&self) -> &CsrMatrix {
        &self.k_eff
    }

    /// Builds the effective right-hand side `f̂_{n+1}` for the next step
    /// without advancing the state (used by the convergence experiments,
    /// which study the *first* dynamic solve in isolation).
    pub fn effective_rhs(&self, f_next: &[f64]) -> Vec<f64> {
        let p = &self.params;
        let dt = p.dt;
        let alpha = 1.0 / (p.beta * dt * dt);
        let n = self.u.len();
        assert_eq!(f_next.len(), n, "f length mismatch");
        // Displacement predictor u* and rhs = f + alpha * M u*.
        let mut u_star = vec![0.0; n];
        for i in 0..n {
            u_star[i] = self.u[i] + dt * self.v[i] + dt * dt * (0.5 - p.beta) * self.a[i];
        }
        let mu = self.m.spmv(&u_star);
        let mut rhs: Vec<f64> = f_next.iter().zip(&mu).map(|(f, m)| f + alpha * m).collect();
        if let Some(cm) = &self.c {
            // + C (gamma/(beta dt) u* - v*), v* = v + dt (1-gamma) a.
            let gobd = p.gamma / (p.beta * dt);
            let mut w = vec![0.0; n];
            for i in 0..n {
                let v_star = self.v[i] + dt * (1.0 - p.gamma) * self.a[i];
                w[i] = gobd * u_star[i] - v_star;
            }
            let cw = cm.spmv(&w);
            for (ri, cwi) in rhs.iter_mut().zip(&cw) {
                *ri += cwi;
            }
        }
        for &(i, val) in &self.fixed {
            rhs[i] = val; // K̄ has a unit row there (K identity, M zero)
        }
        rhs
    }

    /// Advances one step to `t + Δt` under the load `f_next`, solving the
    /// effective system with `solve`. Returns the new displacement.
    pub fn step<F>(&mut self, f_next: &[f64], mut solve: F) -> &[f64]
    where
        F: FnMut(&CsrMatrix, &[f64]) -> Vec<f64>,
    {
        let p = self.params;
        let dt = p.dt;
        let alpha = 1.0 / (p.beta * dt * dt);
        let rhs = self.effective_rhs(f_next);
        let mut u_new = solve(&self.k_eff, &rhs);
        for &(i, val) in &self.fixed {
            u_new[i] = val;
        }
        // Correctors.
        let n = self.u.len();
        let mut a_new = vec![0.0; n];
        for i in 0..n {
            let u_star = self.u[i] + dt * self.v[i] + dt * dt * (0.5 - p.beta) * self.a[i];
            a_new[i] = alpha * (u_new[i] - u_star);
        }
        for i in 0..n {
            self.v[i] += dt * ((1.0 - p.gamma) * self.a[i] + p.gamma * a_new[i]);
        }
        for &(i, _) in &self.fixed {
            self.v[i] = 0.0;
            a_new[i] = 0.0;
        }
        self.u = u_new;
        self.a = a_new;
        self.t += dt;
        &self.u
    }

    /// Current time.
    pub fn time(&self) -> f64 {
        self.t
    }

    /// Current displacement.
    pub fn displacement(&self) -> &[f64] {
        &self.u
    }

    /// Current velocity.
    pub fn velocity(&self) -> &[f64] {
        &self.v
    }

    /// Current acceleration.
    pub fn acceleration(&self) -> &[f64] {
        &self.a
    }

    /// Whether the integrator carries a damping matrix.
    pub fn is_damped(&self) -> bool {
        self.c.is_some()
    }

    /// Total mechanical energy `½ vᵀMv + ½ uᵀKu` of the current state.
    pub fn energy(&self) -> f64 {
        let mv = self.m.spmv(&self.v);
        let ku = self.k.spmv(&self.u);
        0.5 * parfem_sparse::dense::dot(&self.v, &mv)
            + 0.5 * parfem_sparse::dense::dot(&self.u, &ku)
    }
}

/// The Rayleigh damping matrix `C = a_m M + a_k K`.
///
/// # Panics
/// Panics when the matrices have different shapes.
pub fn rayleigh_damping(m: &CsrMatrix, k: &CsrMatrix, a_m: f64, a_k: f64) -> CsrMatrix {
    let mut c = m.clone();
    for v in c.values_mut() {
        *v *= a_m;
    }
    c.add_scaled(a_k, k)
        .expect("mass and stiffness share the shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfem_sparse::dense::solve_dense;

    fn dense_solver(a: &CsrMatrix, b: &[f64]) -> Vec<f64> {
        let mut m = a.to_dense();
        solve_dense(a.n_rows(), &mut m, b)
    }

    /// Single-DOF oscillator: m ü + k u = 0, u(0) = 1 -> u(t) = cos(w t).
    #[test]
    fn sdof_oscillator_matches_analytic_solution() {
        let k = CsrMatrix::from_diagonal(&[4.0]); // w = 2
        let m = CsrMatrix::from_diagonal(&[1.0]);
        let dt = 0.01;
        let mut integ = NewmarkIntegrator::new(
            k,
            m,
            NewmarkParams::average_acceleration(dt),
            vec![],
            vec![1.0],
            vec![0.0],
            &[0.0],
            dense_solver,
        );
        let f = [0.0];
        let steps = 300; // three seconds
        for _ in 0..steps {
            integ.step(&f, dense_solver);
        }
        let t = integ.time();
        let exact = (2.0 * t).cos();
        let got = integ.displacement()[0];
        // Average acceleration has period elongation O(dt^2).
        assert!((got - exact).abs() < 5e-3, "{got} vs {exact} at t={t}");
    }

    #[test]
    fn initial_acceleration_satisfies_equation_of_motion() {
        let k = CsrMatrix::from_dense(2, 2, &[2.0, -1.0, -1.0, 2.0]);
        let m = CsrMatrix::from_diagonal(&[1.0, 2.0]);
        let u0 = vec![0.5, -0.25];
        let f0 = [1.0, 0.0];
        let integ = NewmarkIntegrator::new(
            k.clone(),
            m.clone(),
            NewmarkParams::average_acceleration(0.1),
            vec![],
            u0.clone(),
            vec![0.0; 2],
            &f0,
            dense_solver,
        );
        // M a0 must equal f0 - K u0.
        let ma = m.spmv(integ.acceleration());
        let ku = k.spmv(&u0);
        for i in 0..2 {
            assert!((ma[i] - (f0[i] - ku[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn energy_is_conserved_by_average_acceleration() {
        // Undamped free vibration: the trapezoidal rule conserves the
        // discrete energy exactly for linear systems.
        let k = CsrMatrix::from_dense(2, 2, &[3.0, -1.0, -1.0, 3.0]);
        let m = CsrMatrix::from_diagonal(&[1.0, 1.0]);
        let mut integ = NewmarkIntegrator::new(
            k,
            m,
            NewmarkParams::average_acceleration(0.05),
            vec![],
            vec![1.0, 0.0],
            vec![0.0, 0.5],
            &[0.0, 0.0],
            dense_solver,
        );
        let e0 = integ.energy();
        for _ in 0..500 {
            integ.step(&[0.0, 0.0], dense_solver);
        }
        let e1 = integ.energy();
        assert!((e1 - e0).abs() < 1e-9 * e0, "energy drift: {e0} -> {e1}");
    }

    #[test]
    fn fixed_dofs_stay_fixed() {
        // DOF 0 constrained to 0: K row identity, M row zero.
        let k = CsrMatrix::from_dense(2, 2, &[1.0, 0.0, -1.0, 2.0]);
        let m = CsrMatrix::from_dense(2, 2, &[0.0, 0.0, 0.0, 1.0]);
        let mut integ = NewmarkIntegrator::new(
            k,
            m,
            NewmarkParams::average_acceleration(0.02),
            vec![(0, 0.0)],
            vec![0.0, 1.0],
            vec![0.0, 0.0],
            &[0.0, 0.0],
            dense_solver,
        );
        for _ in 0..100 {
            integ.step(&[0.0, 0.0], dense_solver);
        }
        assert_eq!(integ.displacement()[0], 0.0);
        assert_eq!(integ.velocity()[0], 0.0);
        // The free DOF oscillates.
        assert!(integ.displacement()[1].abs() <= 1.0 + 1e-9);
    }

    #[test]
    fn effective_coefficients_match_paper_form() {
        let p = NewmarkParams::average_acceleration(0.1);
        let (alpha, beta) = p.effective_coefficients();
        assert_eq!(beta, 1.0);
        assert!((alpha - 1.0 / (0.25 * 0.01)).abs() < 1e-12);
    }

    #[test]
    fn effective_rhs_matches_manual_computation() {
        let k = CsrMatrix::from_diagonal(&[2.0]);
        let m = CsrMatrix::from_diagonal(&[3.0]);
        let dt = 0.1;
        let p = NewmarkParams::average_acceleration(dt);
        let integ =
            NewmarkIntegrator::new(k, m, p, vec![], vec![1.0], vec![2.0], &[0.0], dense_solver);
        let alpha = 1.0 / (p.beta * dt * dt);
        let a0 = integ.acceleration()[0];
        let u_star = 1.0 + dt * 2.0 + dt * dt * (0.5 - p.beta) * a0;
        let rhs = integ.effective_rhs(&[7.0]);
        assert!((rhs[0] - (7.0 + alpha * 3.0 * u_star)).abs() < 1e-10);
    }

    #[test]
    fn forced_response_reaches_static_limit() {
        // Constant load with damping-free dynamics oscillates around the
        // static solution u_s = K^{-1} f; its time average approaches u_s.
        let k = CsrMatrix::from_diagonal(&[4.0]);
        let m = CsrMatrix::from_diagonal(&[1.0]);
        let mut integ = NewmarkIntegrator::new(
            k,
            m,
            NewmarkParams::average_acceleration(0.02),
            vec![],
            vec![0.0],
            vec![0.0],
            &[2.0],
            dense_solver,
        );
        let mut mean = 0.0;
        let n = 2000;
        for _ in 0..n {
            integ.step(&[2.0], dense_solver);
            mean += integ.displacement()[0];
        }
        mean /= n as f64;
        assert!((mean - 0.5).abs() < 0.02, "time-average {mean} vs 0.5");
    }

    #[test]
    #[should_panic(expected = "time step must be positive")]
    fn zero_dt_rejected() {
        NewmarkParams::average_acceleration(0.0);
    }

    /// Damped SDOF oscillator: m=1, k=4, c=0.4 => zeta = c/(2 sqrt(km)) = 0.1.
    /// The displacement envelope decays as exp(-zeta w t).
    #[test]
    fn damped_oscillator_decays_at_analytic_rate() {
        let k = CsrMatrix::from_diagonal(&[4.0]);
        let m = CsrMatrix::from_diagonal(&[1.0]);
        let c = CsrMatrix::from_diagonal(&[0.4]);
        let dt = 0.01;
        let mut integ = NewmarkIntegrator::with_damping(
            k,
            m,
            Some(c),
            NewmarkParams::average_acceleration(dt),
            vec![],
            vec![1.0],
            vec![0.0],
            &[0.0],
            dense_solver,
        );
        assert!(integ.is_damped());
        // Integrate ~3 periods (T = 2 pi / (w sqrt(1-zeta^2)) ~ 3.16 s).
        let steps = 950;
        let mut peak_after_two_periods = 0.0_f64;
        for s in 0..steps {
            integ.step(&[0.0], dense_solver);
            if s > 600 {
                peak_after_two_periods = peak_after_two_periods.max(integ.displacement()[0].abs());
            }
        }
        let t_check: f64 = 6.0;
        let envelope = (-0.1_f64 * 2.0 * t_check).exp(); // zeta * w = 0.2
        assert!(
            peak_after_two_periods < 1.3 * envelope && peak_after_two_periods > 0.4 * envelope,
            "peak {peak_after_two_periods} vs envelope {envelope}"
        );
    }

    #[test]
    fn damping_strictly_dissipates_energy() {
        let k = CsrMatrix::from_dense(2, 2, &[3.0, -1.0, -1.0, 3.0]);
        let m = CsrMatrix::from_diagonal(&[1.0, 1.0]);
        let c = rayleigh_damping(&m, &k, 0.05, 0.01);
        let mut integ = NewmarkIntegrator::with_damping(
            k,
            m,
            Some(c),
            NewmarkParams::average_acceleration(0.05),
            vec![],
            vec![1.0, 0.0],
            vec![0.0, 0.5],
            &[0.0, 0.0],
            dense_solver,
        );
        let e0 = integ.energy();
        let mut prev = e0;
        for _ in 0..200 {
            integ.step(&[0.0, 0.0], dense_solver);
            let e = integ.energy();
            assert!(
                e <= prev + 1e-10 * e0,
                "energy must not grow: {prev} -> {e}"
            );
            prev = e;
        }
        assert!(prev < 0.7 * e0, "expected visible decay: {e0} -> {prev}");
    }

    #[test]
    fn zero_damping_matches_undamped_integrator() {
        let k = CsrMatrix::from_diagonal(&[2.0]);
        let m = CsrMatrix::from_diagonal(&[1.0]);
        let zero_c = CsrMatrix::from_diagonal(&[0.0]);
        let p = NewmarkParams::average_acceleration(0.02);
        let mut a = NewmarkIntegrator::new(
            k.clone(),
            m.clone(),
            p,
            vec![],
            vec![1.0],
            vec![0.0],
            &[0.0],
            dense_solver,
        );
        let mut b = NewmarkIntegrator::with_damping(
            k,
            m,
            Some(zero_c),
            p,
            vec![],
            vec![1.0],
            vec![0.0],
            &[0.0],
            dense_solver,
        );
        for _ in 0..100 {
            a.step(&[0.0], dense_solver);
            b.step(&[0.0], dense_solver);
        }
        assert!((a.displacement()[0] - b.displacement()[0]).abs() < 1e-12);
    }

    #[test]
    fn rayleigh_matrix_combines_mass_and_stiffness() {
        let m = CsrMatrix::from_diagonal(&[2.0, 2.0]);
        let k = CsrMatrix::from_dense(2, 2, &[4.0, -1.0, -1.0, 4.0]);
        let c = rayleigh_damping(&m, &k, 0.5, 0.25);
        assert!((c.get(0, 0) - (0.5 * 2.0 + 0.25 * 4.0)).abs() < 1e-14);
        assert!((c.get(0, 1) - -0.25).abs() < 1e-14);
    }
}
