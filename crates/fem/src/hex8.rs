//! The 8-node trilinear hexahedron (hex8) element for 3-D elasticity.
//!
//! Shape functions on the reference cube `(ξ, η, ζ) ∈ [-1, 1]³`:
//! `N_i = ⅛ (1 + ξ ξ_i)(1 + η η_i)(1 + ζ ζ_i)` with corners ordered as in
//! [`parfem_mesh::HexMesh`] connectivity (bottom face counter-clockwise
//! seen from `+z`, then the top face). Stiffness `kₑ = ∫ Bᵀ D B dΩ` is
//! integrated with 2×2×2 Gauss quadrature, exact for the trilinear element
//! on a parallelepiped.

use crate::material::Material;

/// Reference corner coordinates, matching `HexMesh` connectivity order.
const XI: [f64; 8] = [-1.0, 1.0, 1.0, -1.0, -1.0, 1.0, 1.0, -1.0];
const ETA: [f64; 8] = [-1.0, -1.0, 1.0, 1.0, -1.0, -1.0, 1.0, 1.0];
const ZETA: [f64; 8] = [-1.0, -1.0, -1.0, -1.0, 1.0, 1.0, 1.0, 1.0];

/// 2×2×2 Gauss point abscissa.
const GP: f64 = 0.577_350_269_189_625_8; // 1/sqrt(3)

/// Shape function values at `(xi, eta, zeta)`.
pub fn shape_functions(xi: f64, eta: f64, zeta: f64) -> [f64; 8] {
    let mut n = [0.0; 8];
    for i in 0..8 {
        n[i] = 0.125 * (1.0 + xi * XI[i]) * (1.0 + eta * ETA[i]) * (1.0 + zeta * ZETA[i]);
    }
    n
}

/// Shape function derivatives `(dN/dξ, dN/dη, dN/dζ)` at `(xi, eta, zeta)`.
pub fn shape_derivatives(xi: f64, eta: f64, zeta: f64) -> ([f64; 8], [f64; 8], [f64; 8]) {
    let mut dxi = [0.0; 8];
    let mut deta = [0.0; 8];
    let mut dzeta = [0.0; 8];
    for i in 0..8 {
        dxi[i] = 0.125 * XI[i] * (1.0 + eta * ETA[i]) * (1.0 + zeta * ZETA[i]);
        deta[i] = 0.125 * ETA[i] * (1.0 + xi * XI[i]) * (1.0 + zeta * ZETA[i]);
        dzeta[i] = 0.125 * ZETA[i] * (1.0 + xi * XI[i]) * (1.0 + eta * ETA[i]);
    }
    (dxi, deta, dzeta)
}

/// The Jacobian determinant and the physical shape-function gradients
/// `(dN/dx, dN/dy, dN/dz)` at a reference point.
///
/// # Panics
/// Panics if the element is degenerate (non-positive Jacobian).
pub fn physical_gradients(
    coords: &[[f64; 3]; 8],
    xi: f64,
    eta: f64,
    zeta: f64,
) -> (f64, [f64; 8], [f64; 8], [f64; 8]) {
    let (dxi, deta, dzeta) = shape_derivatives(xi, eta, zeta);
    // Jacobian J, row-major: row r is d(x,y,z)/d(ref coordinate r).
    let mut j = [0.0f64; 9];
    for i in 0..8 {
        for (a, c) in coords[i].iter().enumerate() {
            j[a] += dxi[i] * c;
            j[3 + a] += deta[i] * c;
            j[6 + a] += dzeta[i] * c;
        }
    }
    let det = j[0] * (j[4] * j[8] - j[5] * j[7]) - j[1] * (j[3] * j[8] - j[5] * j[6])
        + j[2] * (j[3] * j[7] - j[4] * j[6]);
    assert!(det > 0.0, "degenerate element: Jacobian determinant {det}");
    // inv = adj(J)^T / det; inv[r][c] maps reference derivative c to
    // physical derivative r.
    let inv = [
        (j[4] * j[8] - j[5] * j[7]) / det,
        (j[2] * j[7] - j[1] * j[8]) / det,
        (j[1] * j[5] - j[2] * j[4]) / det,
        (j[5] * j[6] - j[3] * j[8]) / det,
        (j[0] * j[8] - j[2] * j[6]) / det,
        (j[2] * j[3] - j[0] * j[5]) / det,
        (j[3] * j[7] - j[4] * j[6]) / det,
        (j[1] * j[6] - j[0] * j[7]) / det,
        (j[0] * j[4] - j[1] * j[3]) / det,
    ];
    let mut dx = [0.0; 8];
    let mut dy = [0.0; 8];
    let mut dz = [0.0; 8];
    for i in 0..8 {
        dx[i] = inv[0] * dxi[i] + inv[1] * deta[i] + inv[2] * dzeta[i];
        dy[i] = inv[3] * dxi[i] + inv[4] * deta[i] + inv[5] * dzeta[i];
        dz[i] = inv[6] * dxi[i] + inv[7] * deta[i] + inv[8] * dzeta[i];
    }
    (det, dx, dy, dz)
}

/// The 24×24 element stiffness matrix (row-major) of a hex8 element.
///
/// DOF ordering is `[u0x, u0y, u0z, u1x, …]`, matching a three-DOF
/// [`parfem_mesh::DofMap`] over the element's connectivity order.
pub fn stiffness(coords: &[[f64; 3]; 8], material: &Material) -> [f64; 576] {
    let d = material.d_matrix_3d();
    let mut ke = [0.0f64; 576];
    for &gx in &[-GP, GP] {
        for &gy in &[-GP, GP] {
            for &gz in &[-GP, GP] {
                let (det, dx, dy, dz) = physical_gradients(coords, gx, gy, gz);
                // B is 6x24: strain (exx, eyy, ezz, gxy, gyz, gzx) = B u_e.
                let mut b = [0.0f64; 6 * 24];
                for i in 0..8 {
                    b[3 * i] = dx[i];
                    b[24 + 3 * i + 1] = dy[i];
                    b[2 * 24 + 3 * i + 2] = dz[i];
                    b[3 * 24 + 3 * i] = dy[i];
                    b[3 * 24 + 3 * i + 1] = dx[i];
                    b[4 * 24 + 3 * i + 1] = dz[i];
                    b[4 * 24 + 3 * i + 2] = dy[i];
                    b[5 * 24 + 3 * i] = dz[i];
                    b[5 * 24 + 3 * i + 2] = dx[i];
                }
                // ke += B^T D B * det (unit Gauss weights for the 2-point rule).
                let mut db = [0.0f64; 6 * 24];
                for r in 0..6 {
                    for c in 0..24 {
                        let mut acc = 0.0;
                        for k in 0..6 {
                            acc += d[r * 6 + k] * b[k * 24 + c];
                        }
                        db[r * 24 + c] = acc;
                    }
                }
                for r in 0..24 {
                    for c in 0..24 {
                        let mut acc = 0.0;
                        for k in 0..6 {
                            acc += b[k * 24 + r] * db[k * 24 + c];
                        }
                        ke[r * 24 + c] += acc * det;
                    }
                }
            }
        }
    }
    ke
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_cube() -> [[f64; 3]; 8] {
        [
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [1.0, 1.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            [1.0, 0.0, 1.0],
            [1.0, 1.0, 1.0],
            [0.0, 1.0, 1.0],
        ]
    }

    fn matvec24(m: &[f64; 576], x: &[f64; 24]) -> [f64; 24] {
        let mut y = [0.0; 24];
        for r in 0..24 {
            for c in 0..24 {
                y[r] += m[r * 24 + c] * x[c];
            }
        }
        y
    }

    #[test]
    fn shape_functions_partition_unity_and_interpolate() {
        for &(xi, eta, zeta) in &[(0.0, 0.0, 0.0), (0.3, -0.7, 0.5), (-1.0, 1.0, -1.0)] {
            let n = shape_functions(xi, eta, zeta);
            let s: f64 = n.iter().sum();
            assert!((s - 1.0).abs() < 1e-14, "sum {s}");
        }
        for i in 0..8 {
            let n = shape_functions(XI[i], ETA[i], ZETA[i]);
            for j in 0..8 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((n[j] - want).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn jacobian_of_unit_cube() {
        let (det, dx, _, dz) = physical_gradients(&unit_cube(), 0.0, 0.0, 0.0);
        assert!((det - 0.125).abs() < 1e-14, "det {det}");
        assert!((dx[0] + 0.25).abs() < 1e-14);
        assert!((dz[0] + 0.25).abs() < 1e-14);
    }

    #[test]
    fn stiffness_is_symmetric() {
        let ke = stiffness(&unit_cube(), &Material::unit());
        for r in 0..24 {
            for c in 0..24 {
                assert!(
                    (ke[r * 24 + c] - ke[c * 24 + r]).abs() < 1e-12,
                    "asymmetry at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn six_rigid_body_modes_are_in_null_space() {
        // A distorted (but valid) hex: translations and infinitesimal
        // rotations about all three axes must produce zero force.
        let mut coords = unit_cube();
        coords[6] = [1.2, 1.1, 0.9];
        coords[0] = [-0.1, 0.05, 0.0];
        let ke = stiffness(&coords, &Material::unit());
        let mut modes: Vec<[f64; 24]> = Vec::new();
        for c in 0..3 {
            let mut t = [0.0; 24];
            for i in 0..8 {
                t[3 * i + c] = 1.0;
            }
            modes.push(t);
        }
        // Rotations: ω × x for ω = e_z, e_x, e_y.
        let mut rz = [0.0; 24];
        let mut rx = [0.0; 24];
        let mut ry = [0.0; 24];
        for i in 0..8 {
            let [x, y, z] = coords[i];
            rz[3 * i] = -y;
            rz[3 * i + 1] = x;
            rx[3 * i + 1] = -z;
            rx[3 * i + 2] = y;
            ry[3 * i] = z;
            ry[3 * i + 2] = -x;
        }
        modes.extend([rz, rx, ry]);
        for (m, mode) in modes.iter().enumerate() {
            for v in matvec24(&ke, mode) {
                assert!(v.abs() < 1e-10, "rigid mode {m} force {v}");
            }
        }
    }

    #[test]
    fn uniaxial_stretch_energy_matches_continuum() {
        // u_x = x on the unit cube (eps_xx = 1): energy = D[0][0]/2 for unit
        // volume.
        let m = Material::unit();
        let ke = stiffness(&unit_cube(), &m);
        let coords = unit_cube();
        let mut u = [0.0; 24];
        for i in 0..8 {
            u[3 * i] = coords[i][0];
        }
        let ku = matvec24(&ke, &u);
        let e: f64 = u.iter().zip(&ku).map(|(a, b)| a * b).sum::<f64>() / 2.0;
        let d = m.d_matrix_3d();
        assert!(
            (e - d[0] / 2.0).abs() < 1e-12,
            "energy {e} vs {}",
            d[0] / 2.0
        );
    }

    #[test]
    #[should_panic(expected = "degenerate element")]
    fn inverted_element_is_rejected() {
        let mut coords = unit_cube();
        // Swap bottom and top faces: negative Jacobian.
        coords.swap(0, 4);
        coords.swap(1, 5);
        coords.swap(2, 6);
        coords.swap(3, 7);
        stiffness(&coords, &Material::unit());
    }
}
