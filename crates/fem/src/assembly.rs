//! Global finite-element assembly and Dirichlet boundary conditions.
//!
//! Constrained DOFs keep their global numbers: the constrained equation is
//! replaced by the identity row `u_i = ū_i` and the coupling entries are
//! moved to the right-hand side. No renumbering ever happens — the property
//! the element-based decomposition exploits (paper claim ii).

use crate::material::Material;
use crate::quad4;
use parfem_mesh::{DofMap, Edge, QuadMesh};
use parfem_sparse::{CooMatrix, CsrMatrix};

/// A fully assembled, boundary-condition-applied static system `K u = f`.
#[derive(Debug, Clone)]
pub struct StaticSystem {
    /// The stiffness matrix with identity rows at constrained DOFs.
    pub stiffness: CsrMatrix,
    /// The right-hand side, constraint contributions included.
    pub rhs: Vec<f64>,
}

/// Assembles the raw global stiffness matrix (no boundary conditions).
pub fn assemble_stiffness(mesh: &QuadMesh, dm: &DofMap, material: &Material) -> CsrMatrix {
    let n = dm.n_dofs();
    // Each Q4 element contributes a dense 8x8 block.
    let mut coo = CooMatrix::with_capacity(n, n, mesh.n_elems() * 64);
    for e in 0..mesh.n_elems() {
        let ke = quad4::stiffness(&mesh.elem_coords(e), material);
        let dofs = dm.elem_dofs(mesh.elem_nodes(e));
        coo.push_block(&dofs, &ke).expect("element dofs in bounds");
    }
    coo.to_csr()
}

/// Assembles the raw global stiffness of an unstructured quadrilateral
/// mesh (no boundary conditions).
pub fn assemble_stiffness_generic(
    mesh: &parfem_mesh::GenericQuadMesh,
    dm: &DofMap,
    material: &Material,
) -> CsrMatrix {
    let n = dm.n_dofs();
    let mut coo = CooMatrix::with_capacity(n, n, mesh.n_elems() * 64);
    for e in 0..mesh.n_elems() {
        let ke = quad4::stiffness(&mesh.elem_coords(e), material);
        let dofs = dm.elem_dofs(mesh.elem_nodes(e));
        coo.push_block(&dofs, &ke).expect("element dofs in bounds");
    }
    coo.to_csr()
}

/// Assembles the raw global mass matrix (no boundary conditions).
///
/// With `lumped = true` the row-sum lumped (diagonal) element mass is used;
/// otherwise the consistent mass.
pub fn assemble_mass(mesh: &QuadMesh, dm: &DofMap, material: &Material, lumped: bool) -> CsrMatrix {
    let n = dm.n_dofs();
    let mut coo = CooMatrix::with_capacity(n, n, mesh.n_elems() * 64);
    for e in 0..mesh.n_elems() {
        let dofs = dm.elem_dofs(mesh.elem_nodes(e));
        if lumped {
            // Scatter only the diagonal so the global matrix stays diagonal.
            let me = quad4::lumped_mass(&mesh.elem_coords(e), material);
            for (i, &d) in dofs.iter().enumerate() {
                coo.push(d, d, me[i * 8 + i])
                    .expect("element dofs in bounds");
            }
        } else {
            let me = quad4::consistent_mass(&mesh.elem_coords(e), material);
            coo.push_block(&dofs, &me).expect("element dofs in bounds");
        }
    }
    coo.to_csr()
}

/// Applies Dirichlet conditions to an assembled matrix and right-hand side.
///
/// Returns the constrained matrix; `rhs` is modified in place:
/// - constrained row `i`: replaced by `u_i = ū_i` (unit diagonal, `rhs_i = ū_i`);
/// - free row `i`: coupling to constrained columns `j` moves to the RHS as
///   `rhs_i -= K_ij ū_j`.
pub fn apply_dirichlet(k: &CsrMatrix, dm: &DofMap, rhs: &mut [f64]) -> CsrMatrix {
    let n = k.n_rows();
    assert_eq!(n, dm.n_dofs(), "matrix does not match DOF map");
    assert_eq!(rhs.len(), n, "rhs does not match DOF map");
    let mut coo = CooMatrix::with_capacity(n, n, k.nnz());
    for r in 0..n {
        if dm.is_fixed(r) {
            coo.push(r, r, 1.0).expect("in bounds");
            rhs[r] = dm.fixed_value(r);
            continue;
        }
        let (cols, vals) = k.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            if dm.is_fixed(c) {
                rhs[r] -= v * dm.fixed_value(c);
            } else {
                coo.push(r, c, v).expect("in bounds");
            }
        }
    }
    coo.to_csr()
}

/// Applies Dirichlet conditions to a *mass* matrix: constrained rows and
/// columns are zeroed (no unit diagonal), so that `αM + βK` keeps the clean
/// constraint rows of `K` scaled by `β`.
pub fn apply_dirichlet_mass(m: &CsrMatrix, dm: &DofMap) -> CsrMatrix {
    let n = m.n_rows();
    assert_eq!(n, dm.n_dofs(), "matrix does not match DOF map");
    let mut coo = CooMatrix::with_capacity(n, n, m.nnz());
    for r in 0..n {
        if dm.is_fixed(r) {
            continue;
        }
        let (cols, vals) = m.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            if !dm.is_fixed(c) {
                coo.push(r, c, v).expect("in bounds");
            }
        }
    }
    coo.to_csr()
}

/// Adds a point load `(fx, fy)` at `node` to the load vector.
pub fn point_load(dm: &DofMap, node: usize, fx: f64, fy: f64, rhs: &mut [f64]) {
    rhs[dm.dof(node, 0)] += fx;
    rhs[dm.dof(node, 1)] += fy;
}

/// Adds a uniformly distributed edge traction with total force `(fx, fy)`,
/// consistently partitioned over the edge nodes (half weights at the two end
/// nodes — the trapezoidal rule for linear shape functions on a uniform
/// edge).
pub fn edge_load(mesh: &QuadMesh, dm: &DofMap, edge: Edge, fx: f64, fy: f64, rhs: &mut [f64]) {
    let nodes = mesh.edge_nodes(edge);
    let n_seg = (nodes.len() - 1) as f64;
    for (k, &node) in nodes.iter().enumerate() {
        let w = if k == 0 || k == nodes.len() - 1 {
            0.5 / n_seg
        } else {
            1.0 / n_seg
        };
        rhs[dm.dof(node, 0)] += w * fx;
        rhs[dm.dof(node, 1)] += w * fy;
    }
}

/// Assembles the complete constrained static system for a mesh with loads
/// already accumulated in `loads` (length `dm.n_dofs()`).
pub fn build_static(
    mesh: &QuadMesh,
    dm: &DofMap,
    material: &Material,
    loads: &[f64],
) -> StaticSystem {
    let k = assemble_stiffness(mesh, dm, material);
    let mut rhs = loads.to_vec();
    let k_bc = apply_dirichlet(&k, dm, &mut rhs);
    StaticSystem {
        stiffness: k_bc,
        rhs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfem_sparse::dense;

    fn cantilever_fixture(nx: usize, ny: usize) -> (QuadMesh, DofMap, Material) {
        let mesh = QuadMesh::cantilever(nx, ny);
        let mut dm = DofMap::new(mesh.n_nodes());
        dm.clamp_edge(&mesh, Edge::Left);
        (mesh, dm, Material::unit())
    }

    /// Dense reference solve through `parfem_sparse::dense::solve_dense`.
    fn dense_solve(a: &CsrMatrix, b: &[f64]) -> Vec<f64> {
        let mut m = a.to_dense();
        dense::solve_dense(a.n_rows(), &mut m, b)
    }

    #[test]
    fn raw_stiffness_is_symmetric_and_singular() {
        let (mesh, dm, mat) = cantilever_fixture(3, 2);
        let k = assemble_stiffness(&mesh, &dm, &mat);
        assert_eq!(k.n_rows(), dm.n_dofs());
        assert!(k.is_symmetric(1e-12));
        // Rigid x-translation is in the null space before BCs.
        let mut tx = vec![0.0; dm.n_dofs()];
        for node in 0..mesh.n_nodes() {
            tx[dm.dof(node, 0)] = 1.0;
        }
        for v in k.spmv(&tx) {
            assert!(v.abs() < 1e-9, "rigid-mode residual {v}");
        }
    }

    #[test]
    fn constrained_system_is_nonsingular_and_consistent() {
        let (mesh, dm, mat) = cantilever_fixture(4, 2);
        let mut loads = vec![0.0; dm.n_dofs()];
        point_load(&dm, mesh.node_at(4, 2), 0.0, -1.0, &mut loads);
        let sys = build_static(&mesh, &dm, &mat, &loads);
        let u = dense_solve(&sys.stiffness, &sys.rhs);
        // Constrained DOFs stay at zero.
        for (d, v) in dm.fixed_dofs() {
            assert!((u[d] - v).abs() < 1e-12);
        }
        // The tip deflects downward.
        let tip = dm.dof(mesh.node_at(4, 2), 1);
        assert!(u[tip] < 0.0, "tip deflection {}", u[tip]);
        // Residual of the solve itself.
        let r = sys.stiffness.spmv(&u);
        for (ri, fi) in r.iter().zip(&sys.rhs) {
            assert!((ri - fi).abs() < 1e-9);
        }
    }

    #[test]
    fn patch_test_constant_strain_is_reproduced() {
        // Prescribe the linear field u_x = 0.01 x on the whole boundary of a
        // distorted-numbering mesh; the interior must follow the same field
        // (completeness/patch test for Q4).
        let mesh = QuadMesh::rectangle(3, 3, 3.0, 3.0);
        let mut dm = DofMap::new(mesh.n_nodes());
        let eps = 0.01;
        for node in 0..mesh.n_nodes() {
            let [x, y] = mesh.node_coords(node);
            let boundary = x == 0.0 || y == 0.0 || x == 3.0 || y == 3.0;
            if boundary {
                dm.fix_dof(dm.dof(node, 0), eps * x);
                dm.fix_dof(dm.dof(node, 1), -0.3 * eps * y); // nu * eps contraction
            }
        }
        let mat = Material::unit();
        let loads = vec![0.0; dm.n_dofs()];
        let sys = build_static(&mesh, &dm, &mat, &loads);
        let u = dense_solve(&sys.stiffness, &sys.rhs);
        for node in 0..mesh.n_nodes() {
            let [x, y] = mesh.node_coords(node);
            assert!(
                (u[dm.dof(node, 0)] - eps * x).abs() < 1e-10,
                "patch test u_x at node {node}"
            );
            assert!(
                (u[dm.dof(node, 1)] + 0.3 * eps * y).abs() < 1e-10,
                "patch test u_y at node {node}"
            );
        }
    }

    #[test]
    fn cantilever_deflection_matches_beam_theory_within_tolerance() {
        // Slender cantilever with a tip transverse load: Euler-Bernoulli
        // predicts delta = P L^3 / (3 E I). Q4 meshes are stiff (shear
        // locking), so allow a generous band; one refinement must move the
        // answer toward the beam value.
        let p_total = -1e-3;
        let predict = |nx: usize, ny: usize| -> f64 {
            let mesh = QuadMesh::rectangle(nx, ny, 16.0, 1.0);
            let mut dm = DofMap::new(mesh.n_nodes());
            dm.clamp_edge(&mesh, Edge::Left);
            let mut loads = vec![0.0; dm.n_dofs()];
            edge_load(&mesh, &dm, Edge::Right, 0.0, p_total, &mut loads);
            let mat = Material::unit();
            let sys = build_static(&mesh, &dm, &mat, &loads);
            let u = dense_solve(&sys.stiffness, &sys.rhs);
            u[dm.dof(mesh.node_at(nx, ny / 2), 1)]
        };
        let coarse = predict(16, 2);
        let fine = predict(32, 4);
        let l: f64 = 16.0;
        let i = 1.0 / 12.0; // unit-depth rectangular section
        let beam = p_total * l.powi(3) / (3.0 * 1.0 * i);
        assert!(coarse < 0.0 && fine < 0.0);
        // Within 40% of beam theory and converging toward it.
        assert!(
            (fine - beam).abs() / beam.abs() < 0.4,
            "fine {fine} vs beam {beam}"
        );
        assert!(
            (fine - beam).abs() <= (coarse - beam).abs() + 1e-12,
            "refinement must not diverge: coarse {coarse}, fine {fine}, beam {beam}"
        );
    }

    #[test]
    fn mass_matrix_total_mass_is_density_times_area() {
        let (mesh, dm, mat) = cantilever_fixture(5, 3);
        for lumped in [false, true] {
            let m = assemble_mass(&mesh, &dm, &mat, lumped);
            let mut tx = vec![0.0; dm.n_dofs()];
            for node in 0..mesh.n_nodes() {
                tx[dm.dof(node, 0)] = 1.0;
            }
            let mx = m.spmv(&tx);
            let total = dense::dot(&tx, &mx);
            // rho * area * thickness = 1 * 15 * 1.
            assert!(
                (total - 15.0).abs() < 1e-9,
                "total mass {total} lumped={lumped}"
            );
        }
    }

    #[test]
    fn lumped_mass_is_diagonal_globally() {
        let (mesh, dm, mat) = cantilever_fixture(4, 4);
        let m = assemble_mass(&mesh, &dm, &mat, true);
        for r in 0..m.n_rows() {
            let (cols, _) = m.row(r);
            assert_eq!(cols, &[r], "row {r} has off-diagonal mass");
        }
    }

    #[test]
    fn apply_dirichlet_mass_zeroes_constrained_rows() {
        let (mesh, dm, mat) = cantilever_fixture(3, 1);
        let m = assemble_mass(&mesh, &dm, &mat, false);
        let mbc = apply_dirichlet_mass(&m, &dm);
        for (d, _) in dm.fixed_dofs() {
            let (cols, _) = mbc.row(d);
            assert!(cols.is_empty(), "constrained mass row {d} not empty");
            // Columns too.
            for r in 0..mbc.n_rows() {
                assert_eq!(mbc.get(r, d), 0.0);
            }
        }
        assert!(mbc.is_symmetric(1e-12));
    }

    #[test]
    fn edge_load_total_force_is_preserved() {
        let (mesh, dm, _) = cantilever_fixture(6, 3);
        let mut rhs = vec![0.0; dm.n_dofs()];
        edge_load(&mesh, &dm, Edge::Right, 2.0, -5.0, &mut rhs);
        let fx: f64 = (0..mesh.n_nodes()).map(|n| rhs[dm.dof(n, 0)]).sum();
        let fy: f64 = (0..mesh.n_nodes()).map(|n| rhs[dm.dof(n, 1)]).sum();
        assert!((fx - 2.0).abs() < 1e-12);
        assert!((fy + 5.0).abs() < 1e-12);
    }

    #[test]
    fn nonzero_prescribed_displacement_moves_rhs() {
        // One element, clamp left edge, pull right edge to a prescribed u_x.
        let mesh = QuadMesh::rectangle(1, 1, 1.0, 1.0);
        let mut dm = DofMap::new(mesh.n_nodes());
        dm.clamp_edge(&mesh, Edge::Left);
        for node in mesh.edge_nodes(Edge::Right) {
            dm.fix_dof(dm.dof(node, 0), 0.1);
        }
        let mat = Material::unit();
        let loads = vec![0.0; dm.n_dofs()];
        let sys = build_static(&mesh, &dm, &mat, &loads);
        let u = dense_solve(&sys.stiffness, &sys.rhs);
        for node in mesh.edge_nodes(Edge::Right) {
            assert!((u[dm.dof(node, 0)] - 0.1).abs() < 1e-12);
        }
        // The free u_y DOFs must have moved (Poisson contraction).
        let uy = u[dm.dof(mesh.node_at(1, 1), 1)];
        assert!(uy.abs() > 1e-6, "expected contraction, got {uy}");
    }
}
