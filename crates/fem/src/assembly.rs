//! Global finite-element assembly and Dirichlet boundary conditions.
//!
//! Constrained DOFs keep their global numbers: the constrained equation is
//! replaced by the identity row `u_i = ū_i` and the coupling entries are
//! moved to the right-hand side. No renumbering ever happens — the property
//! the element-based decomposition exploits (paper claim ii).

use crate::material::Material;
use crate::{hex8, physics, quad4};
use parfem_mesh::{DofMap, Edge, Face, HexMesh, QuadMesh, TriMesh};
use parfem_sparse::{CooMatrix, CsrMatrix};

/// A fully assembled, boundary-condition-applied static system `K u = f`.
#[derive(Debug, Clone)]
pub struct StaticSystem {
    /// The stiffness matrix with identity rows at constrained DOFs.
    pub stiffness: CsrMatrix,
    /// The right-hand side, constraint contributions included.
    pub rhs: Vec<f64>,
}

/// Assembles the raw global stiffness matrix (no boundary conditions).
pub fn assemble_stiffness(mesh: &QuadMesh, dm: &DofMap, material: &Material) -> CsrMatrix {
    let n = dm.n_dofs();
    // Each Q4 element contributes a dense 8x8 block.
    let mut coo = CooMatrix::with_capacity(n, n, mesh.n_elems() * 64);
    for e in 0..mesh.n_elems() {
        let ke = quad4::stiffness(&mesh.elem_coords(e), material);
        let dofs = dm.elem_dofs(mesh.elem_nodes(e));
        coo.push_block(&dofs, &ke).expect("element dofs in bounds");
    }
    coo.to_csr()
}

/// Assembles the raw global stiffness of an unstructured quadrilateral
/// mesh (no boundary conditions).
pub fn assemble_stiffness_generic(
    mesh: &parfem_mesh::GenericQuadMesh,
    dm: &DofMap,
    material: &Material,
) -> CsrMatrix {
    let n = dm.n_dofs();
    let mut coo = CooMatrix::with_capacity(n, n, mesh.n_elems() * 64);
    for e in 0..mesh.n_elems() {
        let ke = quad4::stiffness(&mesh.elem_coords(e), material);
        let dofs = dm.elem_dofs(mesh.elem_nodes(e));
        coo.push_block(&dofs, &ke).expect("element dofs in bounds");
    }
    coo.to_csr()
}

/// Assembles the raw scalar conduction stiffness of a quad mesh (no
/// boundary conditions). The map must carry one DOF per node.
pub fn assemble_stiffness_heat(mesh: &QuadMesh, dm: &DofMap, material: &Material) -> CsrMatrix {
    assert_eq!(
        dm.dofs_per_node(),
        1,
        "heat assembly needs a scalar DOF map"
    );
    let n = dm.n_dofs();
    let mut coo = CooMatrix::with_capacity(n, n, mesh.n_elems() * 16);
    for e in 0..mesh.n_elems() {
        let ke = physics::heat_stiffness_quad4(&mesh.elem_coords(e), material);
        let nodes = mesh.elem_nodes(e);
        let mut dofs = [0usize; 4];
        for (k, &nd) in nodes.iter().enumerate() {
            dofs[k] = dm.dof(nd, 0);
        }
        coo.push_block(&dofs, &ke).expect("element dofs in bounds");
    }
    coo.to_csr()
}

/// Assembles the raw scalar conduction stiffness of a triangle mesh (no
/// boundary conditions). The map must carry one DOF per node.
pub fn assemble_stiffness_heat_tri(mesh: &TriMesh, dm: &DofMap, material: &Material) -> CsrMatrix {
    assert_eq!(
        dm.dofs_per_node(),
        1,
        "heat assembly needs a scalar DOF map"
    );
    let n = dm.n_dofs();
    let mut coo = CooMatrix::with_capacity(n, n, mesh.n_elems() * 9);
    for e in 0..mesh.n_elems() {
        let ke = physics::heat_stiffness_tri3(&mesh.elem_coords(e), material);
        let nodes = mesh.elem_nodes(e);
        let mut dofs = [0usize; 3];
        for (k, &nd) in nodes.iter().enumerate() {
            dofs[k] = dm.dof(nd, 0);
        }
        coo.push_block(&dofs, &ke).expect("element dofs in bounds");
    }
    coo.to_csr()
}

/// Assembles the raw 3-D elasticity stiffness of a hex mesh (no boundary
/// conditions). The map must carry three DOFs per node.
pub fn assemble_stiffness_hex(mesh: &HexMesh, dm: &DofMap, material: &Material) -> CsrMatrix {
    assert_eq!(
        dm.dofs_per_node(),
        3,
        "hex8 assembly needs a 3-DOF-per-node map"
    );
    let n = dm.n_dofs();
    let mut coo = CooMatrix::with_capacity(n, n, mesh.n_elems() * 576);
    for e in 0..mesh.n_elems() {
        let ke = hex8::stiffness(&mesh.elem_coords(e), material);
        let nodes = mesh.elem_nodes(e);
        let mut dofs = [0usize; 24];
        for (k, &nd) in nodes.iter().enumerate() {
            for c in 0..3 {
                dofs[3 * k + c] = dm.dof(nd, c);
            }
        }
        coo.push_block(&dofs, &ke).expect("element dofs in bounds");
    }
    coo.to_csr()
}

/// Assembles the raw global mass matrix (no boundary conditions).
///
/// With `lumped = true` the row-sum lumped (diagonal) element mass is used;
/// otherwise the consistent mass.
pub fn assemble_mass(mesh: &QuadMesh, dm: &DofMap, material: &Material, lumped: bool) -> CsrMatrix {
    let n = dm.n_dofs();
    let mut coo = CooMatrix::with_capacity(n, n, mesh.n_elems() * 64);
    for e in 0..mesh.n_elems() {
        let dofs = dm.elem_dofs(mesh.elem_nodes(e));
        if lumped {
            // Scatter only the diagonal so the global matrix stays diagonal.
            let me = quad4::lumped_mass(&mesh.elem_coords(e), material);
            for (i, &d) in dofs.iter().enumerate() {
                coo.push(d, d, me[i * 8 + i])
                    .expect("element dofs in bounds");
            }
        } else {
            let me = quad4::consistent_mass(&mesh.elem_coords(e), material);
            coo.push_block(&dofs, &me).expect("element dofs in bounds");
        }
    }
    coo.to_csr()
}

/// Applies Dirichlet conditions to an assembled matrix and right-hand side.
///
/// Returns the constrained matrix; `rhs` is modified in place:
/// - constrained row `i`: replaced by `u_i = ū_i` (unit diagonal, `rhs_i = ū_i`);
/// - free row `i`: coupling to constrained columns `j` moves to the RHS as
///   `rhs_i -= K_ij ū_j`.
pub fn apply_dirichlet(k: &CsrMatrix, dm: &DofMap, rhs: &mut [f64]) -> CsrMatrix {
    let n = k.n_rows();
    assert_eq!(n, dm.n_dofs(), "matrix does not match DOF map");
    assert_eq!(rhs.len(), n, "rhs does not match DOF map");
    let mut coo = CooMatrix::with_capacity(n, n, k.nnz());
    for r in 0..n {
        if dm.is_fixed(r) {
            coo.push(r, r, 1.0).expect("in bounds");
            rhs[r] = dm.fixed_value(r);
            continue;
        }
        let (cols, vals) = k.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            if dm.is_fixed(c) {
                rhs[r] -= v * dm.fixed_value(c);
            } else {
                coo.push(r, c, v).expect("in bounds");
            }
        }
    }
    coo.to_csr()
}

/// Applies Dirichlet conditions to a *mass* matrix: constrained rows and
/// columns are zeroed (no unit diagonal), so that `αM + βK` keeps the clean
/// constraint rows of `K` scaled by `β`.
pub fn apply_dirichlet_mass(m: &CsrMatrix, dm: &DofMap) -> CsrMatrix {
    let n = m.n_rows();
    assert_eq!(n, dm.n_dofs(), "matrix does not match DOF map");
    let mut coo = CooMatrix::with_capacity(n, n, m.nnz());
    for r in 0..n {
        if dm.is_fixed(r) {
            continue;
        }
        let (cols, vals) = m.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            if !dm.is_fixed(c) {
                coo.push(r, c, v).expect("in bounds");
            }
        }
    }
    coo.to_csr()
}

/// Adds a point load `(fx, fy)` at `node` to the load vector.
pub fn point_load(dm: &DofMap, node: usize, fx: f64, fy: f64, rhs: &mut [f64]) {
    rhs[dm.dof(node, 0)] += fx;
    rhs[dm.dof(node, 1)] += fy;
}

/// Adds a uniformly distributed edge traction with total force `(fx, fy)`,
/// consistently partitioned over the edge nodes (half weights at the two end
/// nodes — the trapezoidal rule for linear shape functions on a uniform
/// edge).
pub fn edge_load(mesh: &QuadMesh, dm: &DofMap, edge: Edge, fx: f64, fy: f64, rhs: &mut [f64]) {
    let nodes = mesh.edge_nodes(edge);
    let n_seg = (nodes.len() - 1) as f64;
    for (k, &node) in nodes.iter().enumerate() {
        let w = if k == 0 || k == nodes.len() - 1 {
            0.5 / n_seg
        } else {
            1.0 / n_seg
        };
        rhs[dm.dof(node, 0)] += w * fx;
        rhs[dm.dof(node, 1)] += w * fy;
    }
}

/// Adds a uniformly distributed scalar source with total strength `q` over
/// a boundary edge of a scalar (heat) problem, trapezoidally partitioned
/// like [`edge_load`].
pub fn edge_source(mesh: &QuadMesh, dm: &DofMap, edge: Edge, q: f64, rhs: &mut [f64]) {
    assert_eq!(dm.dofs_per_node(), 1, "edge_source needs a scalar DOF map");
    let nodes = mesh.edge_nodes(edge);
    let n_seg = (nodes.len() - 1) as f64;
    for (k, &node) in nodes.iter().enumerate() {
        let w = if k == 0 || k == nodes.len() - 1 {
            0.5 / n_seg
        } else {
            1.0 / n_seg
        };
        rhs[dm.dof(node, 0)] += w * q;
    }
}

/// Adds a uniformly distributed traction with total force `(fx, fy, fz)`
/// over a boundary face of a hex mesh, consistently partitioned with
/// tensor-product trapezoidal weights (the bilinear consistent load on a
/// uniform face grid).
pub fn face_load(mesh: &HexMesh, dm: &DofMap, face: Face, f: [f64; 3], rhs: &mut [f64]) {
    assert_eq!(
        dm.dofs_per_node(),
        3,
        "face_load needs a 3-DOF-per-node map"
    );
    // The two in-face grid directions and the fixed coordinate.
    let (na, nb) = match face {
        Face::XMin | Face::XMax => (mesh.ny(), mesh.nz()),
        Face::YMin | Face::YMax => (mesh.nx(), mesh.nz()),
        Face::ZMin | Face::ZMax => (mesh.nx(), mesh.ny()),
    };
    let w1 = |idx: usize, n: usize| -> f64 {
        if idx == 0 || idx == n {
            0.5 / n as f64
        } else {
            1.0 / n as f64
        }
    };
    for b in 0..=nb {
        for a in 0..=na {
            let node = match face {
                Face::XMin => mesh.node_at(0, a, b),
                Face::XMax => mesh.node_at(mesh.nx(), a, b),
                Face::YMin => mesh.node_at(a, 0, b),
                Face::YMax => mesh.node_at(a, mesh.ny(), b),
                Face::ZMin => mesh.node_at(a, b, 0),
                Face::ZMax => mesh.node_at(a, b, mesh.nz()),
            };
            let w = w1(a, na) * w1(b, nb);
            for c in 0..3 {
                rhs[dm.dof(node, c)] += w * f[c];
            }
        }
    }
}

/// Assembles the complete constrained static system for a mesh with loads
/// already accumulated in `loads` (length `dm.n_dofs()`).
pub fn build_static(
    mesh: &QuadMesh,
    dm: &DofMap,
    material: &Material,
    loads: &[f64],
) -> StaticSystem {
    let k = assemble_stiffness(mesh, dm, material);
    let mut rhs = loads.to_vec();
    let k_bc = apply_dirichlet(&k, dm, &mut rhs);
    StaticSystem {
        stiffness: k_bc,
        rhs,
    }
}

/// Assembles the complete constrained scalar conduction system for a quad
/// mesh (one DOF per node).
pub fn build_static_heat(
    mesh: &QuadMesh,
    dm: &DofMap,
    material: &Material,
    loads: &[f64],
) -> StaticSystem {
    let k = assemble_stiffness_heat(mesh, dm, material);
    let mut rhs = loads.to_vec();
    let k_bc = apply_dirichlet(&k, dm, &mut rhs);
    StaticSystem {
        stiffness: k_bc,
        rhs,
    }
}

/// Assembles the complete constrained 3-D elasticity system for a hex mesh
/// (three DOFs per node).
pub fn build_static_hex(
    mesh: &HexMesh,
    dm: &DofMap,
    material: &Material,
    loads: &[f64],
) -> StaticSystem {
    let k = assemble_stiffness_hex(mesh, dm, material);
    let mut rhs = loads.to_vec();
    let k_bc = apply_dirichlet(&k, dm, &mut rhs);
    StaticSystem {
        stiffness: k_bc,
        rhs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfem_sparse::dense;

    fn cantilever_fixture(nx: usize, ny: usize) -> (QuadMesh, DofMap, Material) {
        let mesh = QuadMesh::cantilever(nx, ny);
        let mut dm = DofMap::new(mesh.n_nodes());
        dm.clamp_edge(&mesh, Edge::Left);
        (mesh, dm, Material::unit())
    }

    /// Dense reference solve through `parfem_sparse::dense::solve_dense`.
    fn dense_solve(a: &CsrMatrix, b: &[f64]) -> Vec<f64> {
        let mut m = a.to_dense();
        dense::solve_dense(a.n_rows(), &mut m, b)
    }

    #[test]
    fn raw_stiffness_is_symmetric_and_singular() {
        let (mesh, dm, mat) = cantilever_fixture(3, 2);
        let k = assemble_stiffness(&mesh, &dm, &mat);
        assert_eq!(k.n_rows(), dm.n_dofs());
        assert!(k.is_symmetric(1e-12));
        // Rigid x-translation is in the null space before BCs.
        let mut tx = vec![0.0; dm.n_dofs()];
        for node in 0..mesh.n_nodes() {
            tx[dm.dof(node, 0)] = 1.0;
        }
        for v in k.spmv(&tx) {
            assert!(v.abs() < 1e-9, "rigid-mode residual {v}");
        }
    }

    #[test]
    fn constrained_system_is_nonsingular_and_consistent() {
        let (mesh, dm, mat) = cantilever_fixture(4, 2);
        let mut loads = vec![0.0; dm.n_dofs()];
        point_load(&dm, mesh.node_at(4, 2), 0.0, -1.0, &mut loads);
        let sys = build_static(&mesh, &dm, &mat, &loads);
        let u = dense_solve(&sys.stiffness, &sys.rhs);
        // Constrained DOFs stay at zero.
        for (d, v) in dm.fixed_dofs() {
            assert!((u[d] - v).abs() < 1e-12);
        }
        // The tip deflects downward.
        let tip = dm.dof(mesh.node_at(4, 2), 1);
        assert!(u[tip] < 0.0, "tip deflection {}", u[tip]);
        // Residual of the solve itself.
        let r = sys.stiffness.spmv(&u);
        for (ri, fi) in r.iter().zip(&sys.rhs) {
            assert!((ri - fi).abs() < 1e-9);
        }
    }

    #[test]
    fn patch_test_constant_strain_is_reproduced() {
        // Prescribe the linear field u_x = 0.01 x on the whole boundary of a
        // distorted-numbering mesh; the interior must follow the same field
        // (completeness/patch test for Q4).
        let mesh = QuadMesh::rectangle(3, 3, 3.0, 3.0);
        let mut dm = DofMap::new(mesh.n_nodes());
        let eps = 0.01;
        for node in 0..mesh.n_nodes() {
            let [x, y] = mesh.node_coords(node);
            let boundary = x == 0.0 || y == 0.0 || x == 3.0 || y == 3.0;
            if boundary {
                dm.fix_dof(dm.dof(node, 0), eps * x);
                dm.fix_dof(dm.dof(node, 1), -0.3 * eps * y); // nu * eps contraction
            }
        }
        let mat = Material::unit();
        let loads = vec![0.0; dm.n_dofs()];
        let sys = build_static(&mesh, &dm, &mat, &loads);
        let u = dense_solve(&sys.stiffness, &sys.rhs);
        for node in 0..mesh.n_nodes() {
            let [x, y] = mesh.node_coords(node);
            assert!(
                (u[dm.dof(node, 0)] - eps * x).abs() < 1e-10,
                "patch test u_x at node {node}"
            );
            assert!(
                (u[dm.dof(node, 1)] + 0.3 * eps * y).abs() < 1e-10,
                "patch test u_y at node {node}"
            );
        }
    }

    #[test]
    fn cantilever_deflection_matches_beam_theory_within_tolerance() {
        // Slender cantilever with a tip transverse load: Euler-Bernoulli
        // predicts delta = P L^3 / (3 E I). Q4 meshes are stiff (shear
        // locking), so allow a generous band; one refinement must move the
        // answer toward the beam value.
        let p_total = -1e-3;
        let predict = |nx: usize, ny: usize| -> f64 {
            let mesh = QuadMesh::rectangle(nx, ny, 16.0, 1.0);
            let mut dm = DofMap::new(mesh.n_nodes());
            dm.clamp_edge(&mesh, Edge::Left);
            let mut loads = vec![0.0; dm.n_dofs()];
            edge_load(&mesh, &dm, Edge::Right, 0.0, p_total, &mut loads);
            let mat = Material::unit();
            let sys = build_static(&mesh, &dm, &mat, &loads);
            let u = dense_solve(&sys.stiffness, &sys.rhs);
            u[dm.dof(mesh.node_at(nx, ny / 2), 1)]
        };
        let coarse = predict(16, 2);
        let fine = predict(32, 4);
        let l: f64 = 16.0;
        let i = 1.0 / 12.0; // unit-depth rectangular section
        let beam = p_total * l.powi(3) / (3.0 * 1.0 * i);
        assert!(coarse < 0.0 && fine < 0.0);
        // Within 40% of beam theory and converging toward it.
        assert!(
            (fine - beam).abs() / beam.abs() < 0.4,
            "fine {fine} vs beam {beam}"
        );
        assert!(
            (fine - beam).abs() <= (coarse - beam).abs() + 1e-12,
            "refinement must not diverge: coarse {coarse}, fine {fine}, beam {beam}"
        );
    }

    #[test]
    fn mass_matrix_total_mass_is_density_times_area() {
        let (mesh, dm, mat) = cantilever_fixture(5, 3);
        for lumped in [false, true] {
            let m = assemble_mass(&mesh, &dm, &mat, lumped);
            let mut tx = vec![0.0; dm.n_dofs()];
            for node in 0..mesh.n_nodes() {
                tx[dm.dof(node, 0)] = 1.0;
            }
            let mx = m.spmv(&tx);
            let total = dense::dot(&tx, &mx);
            // rho * area * thickness = 1 * 15 * 1.
            assert!(
                (total - 15.0).abs() < 1e-9,
                "total mass {total} lumped={lumped}"
            );
        }
    }

    #[test]
    fn lumped_mass_is_diagonal_globally() {
        let (mesh, dm, mat) = cantilever_fixture(4, 4);
        let m = assemble_mass(&mesh, &dm, &mat, true);
        for r in 0..m.n_rows() {
            let (cols, _) = m.row(r);
            assert_eq!(cols, &[r], "row {r} has off-diagonal mass");
        }
    }

    #[test]
    fn apply_dirichlet_mass_zeroes_constrained_rows() {
        let (mesh, dm, mat) = cantilever_fixture(3, 1);
        let m = assemble_mass(&mesh, &dm, &mat, false);
        let mbc = apply_dirichlet_mass(&m, &dm);
        for (d, _) in dm.fixed_dofs() {
            let (cols, _) = mbc.row(d);
            assert!(cols.is_empty(), "constrained mass row {d} not empty");
            // Columns too.
            for r in 0..mbc.n_rows() {
                assert_eq!(mbc.get(r, d), 0.0);
            }
        }
        assert!(mbc.is_symmetric(1e-12));
    }

    #[test]
    fn edge_load_total_force_is_preserved() {
        let (mesh, dm, _) = cantilever_fixture(6, 3);
        let mut rhs = vec![0.0; dm.n_dofs()];
        edge_load(&mesh, &dm, Edge::Right, 2.0, -5.0, &mut rhs);
        let fx: f64 = (0..mesh.n_nodes()).map(|n| rhs[dm.dof(n, 0)]).sum();
        let fy: f64 = (0..mesh.n_nodes()).map(|n| rhs[dm.dof(n, 1)]).sum();
        assert!((fx - 2.0).abs() < 1e-12);
        assert!((fy + 5.0).abs() < 1e-12);
    }

    #[test]
    fn heat_system_reproduces_one_d_conduction() {
        // Left edge held at T = 0, unit total flux in through the right
        // edge, k = t = 1: T(x) = q x / (k ly t) is linear and must be
        // reproduced exactly by bilinear elements.
        let mesh = QuadMesh::rectangle(4, 2, 4.0, 2.0);
        let mut dm = DofMap::with_dofs(mesh.n_nodes(), 1);
        dm.clamp_edge(&mesh, Edge::Left);
        let mut loads = vec![0.0; dm.n_dofs()];
        edge_source(&mesh, &dm, Edge::Right, 1.0, &mut loads);
        let sys = build_static_heat(&mesh, &dm, &Material::unit(), &loads);
        assert!(sys.stiffness.is_symmetric(1e-12));
        let u = dense_solve(&sys.stiffness, &sys.rhs);
        for node in 0..mesh.n_nodes() {
            let [x, _] = mesh.node_coords(node);
            assert!(
                (u[dm.dof(node, 0)] - x / 2.0).abs() < 1e-10,
                "T at node {node}: {} vs {}",
                u[dm.dof(node, 0)],
                x / 2.0
            );
        }
    }

    #[test]
    fn heat_tri_assembly_matches_quad_on_linear_field() {
        // The same 1-D conduction problem on the split-triangle mesh gives
        // the same exact linear solution.
        let tmesh = TriMesh::cantilever(4, 2);
        let mut dm = DofMap::with_dofs(tmesh.n_nodes(), 1);
        for node in tmesh.edge_nodes(Edge::Left) {
            dm.clamp_node(node);
        }
        let k = assemble_stiffness_heat_tri(&tmesh, &dm, &Material::unit());
        assert!(k.is_symmetric(1e-12));
        let mut rhs = vec![0.0; dm.n_dofs()];
        for (i, &node) in tmesh.edge_nodes(Edge::Right).iter().enumerate() {
            // ny = 2 -> 3 edge nodes, trapezoidal weights over 2 segments.
            let w = if i == 0 || i == 2 { 0.25 } else { 0.5 };
            rhs[dm.dof(node, 0)] += w;
        }
        let kbc = apply_dirichlet(&k, &dm, &mut rhs);
        let u = dense_solve(&kbc, &rhs);
        for node in 0..tmesh.n_nodes() {
            let [x, _] = tmesh.node_coords(node);
            assert!((u[dm.dof(node, 0)] - x / 2.0).abs() < 1e-10);
        }
    }

    #[test]
    fn hex_cantilever_deflects_under_transverse_face_load() {
        let mesh = HexMesh::cantilever(3, 2, 2);
        let mut dm = DofMap::with_dofs(mesh.n_nodes(), 3);
        for node in mesh.face_nodes(Face::XMin) {
            dm.clamp_node(node);
        }
        let mut loads = vec![0.0; dm.n_dofs()];
        face_load(&mesh, &dm, Face::XMax, [0.0, 0.0, -1.0], &mut loads);
        let sys = build_static_hex(&mesh, &dm, &Material::unit(), &loads);
        assert!(sys.stiffness.is_symmetric(1e-12));
        let u = dense_solve(&sys.stiffness, &sys.rhs);
        // Clamped DOFs stay put; the tip deflects in -z.
        for (d, v) in dm.fixed_dofs() {
            assert!((u[d] - v).abs() < 1e-12);
        }
        let tip = dm.dof(mesh.node_at(3, 1, 2), 2);
        assert!(u[tip] < 0.0, "tip deflection {}", u[tip]);
        let r = sys.stiffness.spmv(&u);
        for (ri, fi) in r.iter().zip(&sys.rhs) {
            assert!((ri - fi).abs() < 1e-9);
        }
    }

    #[test]
    fn hex_raw_stiffness_has_translation_null_modes() {
        let mesh = HexMesh::cantilever(2, 2, 2);
        let dm = DofMap::with_dofs(mesh.n_nodes(), 3);
        let k = assemble_stiffness_hex(&mesh, &dm, &Material::unit());
        for c in 0..3 {
            let mut t = vec![0.0; dm.n_dofs()];
            for node in 0..mesh.n_nodes() {
                t[dm.dof(node, c)] = 1.0;
            }
            for v in k.spmv(&t) {
                assert!(v.abs() < 1e-9, "translation {c} residual {v}");
            }
        }
    }

    #[test]
    fn face_and_edge_source_totals_are_preserved() {
        let mesh = HexMesh::cantilever(3, 2, 4);
        let dm = DofMap::with_dofs(mesh.n_nodes(), 3);
        let mut rhs = vec![0.0; dm.n_dofs()];
        face_load(&mesh, &dm, Face::YMax, [2.0, -5.0, 1.5], &mut rhs);
        for c in 0..3 {
            let total: f64 = (0..mesh.n_nodes()).map(|n| rhs[dm.dof(n, c)]).sum();
            let want = [2.0, -5.0, 1.5][c];
            assert!((total - want).abs() < 1e-12, "component {c}: {total}");
        }
        let qmesh = QuadMesh::cantilever(5, 3);
        let sdm = DofMap::with_dofs(qmesh.n_nodes(), 1);
        let mut srhs = vec![0.0; sdm.n_dofs()];
        edge_source(&qmesh, &sdm, Edge::Right, 3.0, &mut srhs);
        let total: f64 = srhs.iter().sum();
        assert!((total - 3.0).abs() < 1e-12);
    }

    #[test]
    fn nonzero_prescribed_displacement_moves_rhs() {
        // One element, clamp left edge, pull right edge to a prescribed u_x.
        let mesh = QuadMesh::rectangle(1, 1, 1.0, 1.0);
        let mut dm = DofMap::new(mesh.n_nodes());
        dm.clamp_edge(&mesh, Edge::Left);
        for node in mesh.edge_nodes(Edge::Right) {
            dm.fix_dof(dm.dof(node, 0), 0.1);
        }
        let mat = Material::unit();
        let loads = vec![0.0; dm.n_dofs()];
        let sys = build_static(&mesh, &dm, &mat, &loads);
        let u = dense_solve(&sys.stiffness, &sys.rhs);
        for node in mesh.edge_nodes(Edge::Right) {
            assert!((u[dm.dof(node, 0)] - 0.1).abs() < 1e-12);
        }
        // The free u_y DOFs must have moved (Poisson contraction).
        let uy = u[dm.dof(mesh.node_at(1, 1), 1)];
        assert!(uy.abs() > 1e-6, "expected contraction, got {uy}");
    }
}
