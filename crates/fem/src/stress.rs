//! Stress recovery and von Mises post-processing.
//!
//! After the solver produces nodal displacements, engineering output needs
//! element stresses `σ = D B uₑ`. Centroid evaluation (`ξ = η = 0`) is the
//! superconvergent point of the bilinear quadrilateral.

use crate::material::Material;
use crate::quad4;
use parfem_mesh::{DofMap, QuadMesh};

/// Stress state of one element (evaluated at the centroid).
#[derive(Debug, Clone, Copy)]
pub struct ElementStress {
    /// In-plane stresses `(σxx, σyy, τxy)`.
    pub sigma: [f64; 3],
    /// The von Mises equivalent stress.
    pub von_mises: f64,
}

/// The 2-D (plane stress) von Mises stress
/// `√(σxx² − σxx σyy + σyy² + 3 τxy²)`.
pub fn von_mises_2d(sigma: &[f64; 3]) -> f64 {
    let [sx, sy, txy] = *sigma;
    (sx * sx - sx * sy + sy * sy + 3.0 * txy * txy).sqrt()
}

/// Stress `σ = D B uₑ` of a Q4 element at reference point `(xi, eta)`.
pub fn q4_stress_at(
    coords: &[[f64; 2]; 4],
    material: &Material,
    u_elem: &[f64; 8],
    xi: f64,
    eta: f64,
) -> [f64; 3] {
    let (_, dx, dy) = quad4::physical_gradients(coords, xi, eta);
    // Strains from B * u.
    let mut eps = [0.0f64; 3];
    for i in 0..4 {
        eps[0] += dx[i] * u_elem[2 * i];
        eps[1] += dy[i] * u_elem[2 * i + 1];
        eps[2] += dy[i] * u_elem[2 * i] + dx[i] * u_elem[2 * i + 1];
    }
    let d = material.d_matrix();
    [
        d[0] * eps[0] + d[1] * eps[1] + d[2] * eps[2],
        d[3] * eps[0] + d[4] * eps[1] + d[5] * eps[2],
        d[6] * eps[0] + d[7] * eps[1] + d[8] * eps[2],
    ]
}

/// Recovers centroid stresses for every element of a Q4 mesh from the
/// global displacement vector.
///
/// # Panics
/// Panics if `u` does not match the DOF map.
pub fn centroid_stresses(
    mesh: &QuadMesh,
    dm: &DofMap,
    material: &Material,
    u: &[f64],
) -> Vec<ElementStress> {
    assert_eq!(u.len(), dm.n_dofs(), "displacement vector length mismatch");
    (0..mesh.n_elems())
        .map(|e| {
            let coords = mesh.elem_coords(e);
            let dofs = dm.elem_dofs(mesh.elem_nodes(e));
            let mut ue = [0.0f64; 8];
            for (k, &d) in dofs.iter().enumerate() {
                ue[k] = u[d];
            }
            let sigma = q4_stress_at(&coords, material, &ue, 0.0, 0.0);
            ElementStress {
                sigma,
                von_mises: von_mises_2d(&sigma),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly;
    use parfem_mesh::Edge;
    use parfem_sparse::dense;

    #[test]
    fn von_mises_special_cases() {
        // Uniaxial: sigma_vm = |sigma_xx|.
        assert!((von_mises_2d(&[5.0, 0.0, 0.0]) - 5.0).abs() < 1e-12);
        // Pure shear: sigma_vm = sqrt(3) * tau.
        assert!((von_mises_2d(&[0.0, 0.0, 2.0]) - 2.0 * 3.0_f64.sqrt()).abs() < 1e-12);
        // Equibiaxial: sigma_vm = |sigma|.
        assert!((von_mises_2d(&[3.0, 3.0, 0.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_tension_recovers_uniform_stress() {
        // Bar in tension: sigma_xx = F / A everywhere, sigma_yy = txy = 0.
        let mesh = QuadMesh::rectangle(8, 2, 8.0, 2.0);
        let mut dm = DofMap::new(mesh.n_nodes());
        // Roller boundary: left edge fixed in x, one corner also in y.
        for n in mesh.edge_nodes(Edge::Left) {
            dm.fix_dof(dm.dof(n, 0), 0.0);
        }
        dm.fix_dof(dm.dof(mesh.node_at(0, 0), 1), 0.0);
        let mat = Material::unit();
        let f_total = 2.0;
        let mut loads = vec![0.0; dm.n_dofs()];
        assembly::edge_load(&mesh, &dm, Edge::Right, f_total, 0.0, &mut loads);
        let sys = assembly::build_static(&mesh, &dm, &mat, &loads);
        let mut d = sys.stiffness.to_dense();
        let u = dense::solve_dense(sys.stiffness.n_rows(), &mut d, &sys.rhs);
        let stresses = centroid_stresses(&mesh, &dm, &mat, &u);
        let expected = f_total / 2.0; // area = ly * t = 2
        for (e, s) in stresses.iter().enumerate() {
            assert!(
                (s.sigma[0] - expected).abs() < 1e-8,
                "element {e}: sigma_xx {}",
                s.sigma[0]
            );
            assert!(
                s.sigma[1].abs() < 1e-8,
                "element {e}: sigma_yy {}",
                s.sigma[1]
            );
            assert!(s.sigma[2].abs() < 1e-8, "element {e}: tau {}", s.sigma[2]);
            assert!((s.von_mises - expected).abs() < 1e-8);
        }
    }

    #[test]
    fn bending_stress_changes_sign_through_thickness() {
        // Tip-loaded cantilever: sigma_xx tensile on one face, compressive
        // on the other near the root.
        let mesh = QuadMesh::rectangle(12, 4, 12.0, 4.0);
        let mut dm = DofMap::new(mesh.n_nodes());
        dm.clamp_edge(&mesh, Edge::Left);
        let mat = Material::unit();
        let mut loads = vec![0.0; dm.n_dofs()];
        assembly::edge_load(&mesh, &dm, Edge::Right, 0.0, -1e-3, &mut loads);
        let sys = assembly::build_static(&mesh, &dm, &mat, &loads);
        let mut d = sys.stiffness.to_dense();
        let u = dense::solve_dense(sys.stiffness.n_rows(), &mut d, &sys.rhs);
        let stresses = centroid_stresses(&mesh, &dm, &mat, &u);
        // Root column of elements: bottom element (j=0) vs top (j=3).
        let bottom = stresses[mesh.elem_at(1, 0)].sigma[0];
        let top = stresses[mesh.elem_at(1, 3)].sigma[0];
        assert!(
            bottom * top < 0.0,
            "bending stress must change sign: bottom {bottom} top {top}"
        );
    }
}
