//! The 1-D two-node truss element of the paper's Fig. 5.
//!
//! The paper introduces its local/global distributed formats on a two-element
//! truss: global stiffness `K = (AE/l) [[1,-1,0],[-1,2,-1],[0,-1,1]]`
//! (Eq. 29), local distributed subdomain matrices `K̂⁽ˢ⁾ = (AE/l)
//! [[1,-1],[-1,1]]` (Eq. 30), and global distributed matrices that include
//! the assembled interface (Eq. 31). This module reproduces those matrices
//! and serves as the minimal fixture for the distributed-format tests in
//! `parfem-dd`.

use parfem_sparse::{CooMatrix, CsrMatrix};

/// A 1-D bar with axial stiffness only.
#[derive(Debug, Clone, Copy)]
pub struct TrussElement {
    /// Cross-sectional area `A`.
    pub area: f64,
    /// Young's modulus `E`.
    pub youngs_modulus: f64,
    /// Element length `l`.
    pub length: f64,
}

impl TrussElement {
    /// The axial stiffness coefficient `AE/l`.
    pub fn coefficient(&self) -> f64 {
        self.area * self.youngs_modulus / self.length
    }

    /// The 2×2 element stiffness `(AE/l) [[1,-1],[-1,1]]` (row-major).
    pub fn stiffness(&self) -> [f64; 4] {
        let k = self.coefficient();
        [k, -k, -k, k]
    }
}

/// Assembles a chain of `n_elems` identical truss elements into the global
/// `(n_elems+1) x (n_elems+1)` stiffness matrix.
pub fn assemble_chain(elem: TrussElement, n_elems: usize) -> CsrMatrix {
    let n = n_elems + 1;
    let mut coo = CooMatrix::new(n, n);
    let ke = elem.stiffness();
    for e in 0..n_elems {
        coo.push_block(&[e, e + 1], &ke)
            .expect("chain dofs are in bounds");
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_elem() -> TrussElement {
        TrussElement {
            area: 1.0,
            youngs_modulus: 1.0,
            length: 1.0,
        }
    }

    #[test]
    fn element_stiffness_matches_eq_30() {
        let e = TrussElement {
            area: 2.0,
            youngs_modulus: 3.0,
            length: 1.5,
        };
        let k = e.stiffness();
        let c = 4.0;
        assert_eq!(k, [c, -c, -c, c]);
    }

    #[test]
    fn two_element_chain_matches_eq_29() {
        // K = (AE/l) [[1,-1,0],[-1,2,-1],[0,-1,1]]
        let k = assemble_chain(unit_elem(), 2);
        assert_eq!(
            k.to_dense(),
            vec![1.0, -1.0, 0.0, -1.0, 2.0, -1.0, 0.0, -1.0, 1.0]
        );
    }

    #[test]
    fn chain_stiffness_is_singular_without_bc() {
        // Rigid translation is in the null space (the "floating" case).
        let k = assemble_chain(unit_elem(), 3);
        let ones = vec![1.0; 4];
        for v in k.spmv(&ones) {
            assert!(v.abs() < 1e-14);
        }
    }

    #[test]
    fn fixed_end_chain_solves_like_springs_in_series() {
        // Fix node 0, pull with unit force at the free end of a 2-element
        // chain: u = [0, 1, 2] for unit element stiffness.
        let k = assemble_chain(unit_elem(), 2);
        // Apply the BC by hand: reduce to nodes {1, 2}.
        // [2 -1; -1 1] u = [0, 1] => u = [1, 2].
        let k11 = k.get(1, 1);
        let k12 = k.get(1, 2);
        let k22 = k.get(2, 2);
        let det = k11 * k22 - k12 * k12;
        let u1 = (k22 * 0.0 - k12 * 1.0) / det;
        let u2 = (k11 * 1.0 - k12 * 0.0) / det;
        assert!((u1 - 1.0).abs() < 1e-12);
        assert!((u2 - 2.0).abs() < 1e-12);
    }
}
