//! The physics axis of the element substrate.
//!
//! [`Physics`] names the PDE being discretized and answers the structural
//! questions every downstream layer needs — DOFs per node, spatial
//! dimension, and the size of the operator's rigid-body (near-null) space,
//! which drives the `rbm` coarse-mode construction in the two-level
//! preconditioner. The element kernels themselves live next to their 2-D
//! elasticity counterparts: scalar conduction forms for quad4 and tri3 are
//! here, the hex8 elasticity form in [`crate::hex8`].

use crate::material::Material;
use crate::quad4;

/// The PDE / element family a problem assembles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Physics {
    /// 2-D plane-stress/plane-strain elasticity (quad4/tri3/quad8), the
    /// paper's workload. Two displacement DOFs per node.
    Elasticity2d,
    /// Scalar Poisson/steady heat conduction in 2-D (quad4/tri3). One
    /// temperature DOF per node.
    Heat2d,
    /// 3-D isotropic elasticity on hex8 meshes. Three displacement DOFs
    /// per node.
    Elasticity3d,
}

impl Physics {
    /// Every supported physics, in CLI presentation order.
    pub const ALL: [Physics; 3] = [
        Physics::Elasticity2d,
        Physics::Heat2d,
        Physics::Elasticity3d,
    ];

    /// Number of DOFs each mesh node carries.
    #[inline]
    pub fn dofs_per_node(self) -> usize {
        match self {
            Physics::Elasticity2d => 2,
            Physics::Heat2d => 1,
            Physics::Elasticity3d => 3,
        }
    }

    /// Spatial dimension of the mesh this physics lives on.
    #[inline]
    pub fn dim(self) -> usize {
        match self {
            Physics::Elasticity2d | Physics::Heat2d => 2,
            Physics::Elasticity3d => 3,
        }
    }

    /// Dimension of the operator's near-null space before Dirichlet
    /// conditions: the constant mode for scalar diffusion, translations
    /// plus rotations for elasticity (`d(d+1)/2` in `d` dimensions).
    #[inline]
    pub fn n_rigid_modes(self) -> usize {
        match self {
            Physics::Elasticity2d => 3,
            Physics::Heat2d => 1,
            Physics::Elasticity3d => 6,
        }
    }

    /// The CLI / registry token of this physics.
    pub fn name(self) -> &'static str {
        match self {
            Physics::Elasticity2d => "elasticity2d",
            Physics::Heat2d => "heat2d",
            Physics::Elasticity3d => "elasticity3d",
        }
    }

    /// Parses a CLI token (`elasticity2d`, `heat2d`, `elasticity3d`).
    pub fn parse(token: &str) -> Option<Physics> {
        Physics::ALL.iter().copied().find(|p| p.name() == token)
    }
}

impl std::fmt::Display for Physics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// 2×2 Gauss point abscissa (matches the quad4 elasticity rule).
const GP: f64 = 0.577_350_269_189_625_8;

/// The 4×4 conduction stiffness of a quad4 element (row-major):
/// `kₑ = ∫ k ∇Nᵢ·∇Nⱼ t dΩ` with conductivity `k` and slab thickness `t`
/// taken from the material, at 2×2 Gauss quadrature.
pub fn heat_stiffness_quad4(coords: &[[f64; 2]; 4], material: &Material) -> [f64; 16] {
    let kt = material.conductivity() * material.thickness;
    let mut ke = [0.0f64; 16];
    for &gx in &[-GP, GP] {
        for &gy in &[-GP, GP] {
            let (det, dx, dy) = quad4::physical_gradients(coords, gx, gy);
            for i in 0..4 {
                for j in 0..4 {
                    ke[i * 4 + j] += kt * (dx[i] * dx[j] + dy[i] * dy[j]) * det;
                }
            }
        }
    }
    ke
}

/// The 3×3 conduction stiffness of a linear triangle (row-major). The
/// constant-gradient element integrates exactly:
/// `kₑ[i][j] = k t (bᵢbⱼ + cᵢcⱼ) / (4A)` with `bᵢ = yⱼ − yₖ`,
/// `cᵢ = xₖ − xⱼ`.
///
/// # Panics
/// Panics on degenerate (zero/negative-area) triangles.
pub fn heat_stiffness_tri3(coords: &[[f64; 2]; 3], material: &Material) -> [f64; 9] {
    let a = crate::tri3::area(coords);
    assert!(a > 0.0, "degenerate element: triangle area {a}");
    let kt = material.conductivity() * material.thickness;
    let [p0, p1, p2] = *coords;
    let b = [p1[1] - p2[1], p2[1] - p0[1], p0[1] - p1[1]];
    let c = [p2[0] - p1[0], p0[0] - p2[0], p1[0] - p0[0]];
    let mut ke = [0.0f64; 9];
    for i in 0..3 {
        for j in 0..3 {
            ke[i * 3 + j] = kt * (b[i] * b[j] + c[i] * c[j]) / (4.0 * a);
        }
    }
    ke
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physics_tokens_round_trip() {
        for p in Physics::ALL {
            assert_eq!(Physics::parse(p.name()), Some(p));
            assert_eq!(format!("{p}"), p.name());
        }
        assert_eq!(Physics::parse("maxwell"), None);
    }

    #[test]
    fn structural_constants_are_consistent() {
        for p in Physics::ALL {
            let d = p.dim();
            match p {
                Physics::Heat2d => {
                    assert_eq!(p.dofs_per_node(), 1);
                    assert_eq!(p.n_rigid_modes(), 1);
                }
                _ => {
                    assert_eq!(p.dofs_per_node(), d);
                    assert_eq!(p.n_rigid_modes(), d * (d + 1) / 2);
                }
            }
        }
    }

    #[test]
    fn quad_conduction_constant_mode_and_patch_value() {
        // Unit square, unit conductivity: the classic 4x4 Laplacian element
        // has diagonal 2/3 and rows summing to zero (constant null mode).
        let coords = [[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]];
        let ke = heat_stiffness_quad4(&coords, &Material::unit());
        for i in 0..4 {
            let row: f64 = (0..4).map(|j| ke[i * 4 + j]).sum();
            assert!(row.abs() < 1e-14, "row sum {row}");
            assert!((ke[i * 4 + i] - 2.0 / 3.0).abs() < 1e-14);
        }
        // Symmetry.
        for i in 0..4 {
            for j in 0..4 {
                assert!((ke[i * 4 + j] - ke[j * 4 + i]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn quad_conduction_scales_with_conductivity_and_thickness() {
        let coords = [[0.0, 0.0], [2.0, 0.1], [1.9, 1.2], [-0.1, 1.0]];
        let mut m = Material::unit();
        let base = heat_stiffness_quad4(&coords, &m);
        m.youngs_modulus = 3.0;
        m.thickness = 0.5;
        let scaled = heat_stiffness_quad4(&coords, &m);
        for (a, b) in base.iter().zip(&scaled) {
            assert!((1.5 * a - b).abs() < 1e-13);
        }
    }

    #[test]
    fn tri_conduction_matches_hand_computed_unit_triangle() {
        // Right isoceles triangle (0,0)-(1,0)-(0,1), k = 1, t = 1:
        // ke = 1/2 * [[2, -1, -1], [-1, 1, 0], [-1, 0, 1]].
        let coords = [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]];
        let ke = heat_stiffness_tri3(&coords, &Material::unit());
        let want = [1.0, -0.5, -0.5, -0.5, 0.5, 0.0, -0.5, 0.0, 0.5];
        for (a, b) in ke.iter().zip(&want) {
            assert!((a - b).abs() < 1e-14, "{a} vs {b}");
        }
    }

    #[test]
    fn tri_and_quad_agree_on_a_square_patch() {
        // Two triangles tile the unit square; the assembled 4x4 operator
        // must have the same row sums (zero) and total energy for the
        // linear field T = x as the quad element.
        let quad = [[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]];
        let m = Material::unit();
        let kq = heat_stiffness_quad4(&quad, &m);
        let t1 = heat_stiffness_tri3(&[quad[0], quad[1], quad[2]], &m);
        let t2 = heat_stiffness_tri3(&[quad[0], quad[2], quad[3]], &m);
        // Assemble triangles onto quad node numbering.
        let maps: [[usize; 3]; 2] = [[0, 1, 2], [0, 2, 3]];
        let mut kt = [0.0f64; 16];
        for (ke, map) in [(t1, maps[0]), (t2, maps[1])] {
            for i in 0..3 {
                for j in 0..3 {
                    kt[map[i] * 4 + map[j]] += ke[i * 3 + j];
                }
            }
        }
        let x = [0.0, 1.0, 1.0, 0.0];
        let energy = |k: &[f64; 16]| -> f64 {
            let mut e = 0.0;
            for i in 0..4 {
                for j in 0..4 {
                    e += x[i] * k[i * 4 + j] * x[j];
                }
            }
            e
        };
        // Energy of grad T = (1, 0) over the unit square is 1 for both.
        assert!((energy(&kq) - 1.0).abs() < 1e-14);
        assert!((energy(&kt) - 1.0).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "degenerate element")]
    fn degenerate_triangle_rejected() {
        let coords = [[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]];
        heat_stiffness_tri3(&coords, &Material::unit());
    }
}
