//! The 3-node constant-strain triangle (CST / T3).
//!
//! The element whose assembled matrix graph is *planar* (paper Section 5) —
//! the reference case where row-partitioned SpMV provably scales. The
//! strain-displacement matrix is constant over the element, so a single
//! integration point is exact:
//!
//! ```text
//! B = (1/2A) [ b1  0  b2  0  b3  0 ]      b_i = y_j − y_k
//!            [  0 c1   0 c2   0 c3 ]      c_i = x_k − x_j
//!            [ c1 b1  c2 b2  c3 b3 ]      (i, j, k cyclic)
//! kₑ = A · t · Bᵀ D B
//! ```

use crate::material::Material;
use parfem_mesh::{DofMap, TriMesh};
use parfem_sparse::{CooMatrix, CsrMatrix};

/// Signed area of the triangle with counter-clockwise coordinates.
pub fn area(coords: &[[f64; 2]; 3]) -> f64 {
    0.5 * ((coords[1][0] - coords[0][0]) * (coords[2][1] - coords[0][1])
        - (coords[2][0] - coords[0][0]) * (coords[1][1] - coords[0][1]))
}

/// The 6×6 element stiffness matrix (row-major), DOF order
/// `[u0x, u0y, u1x, u1y, u2x, u2y]`.
///
/// # Panics
/// Panics on degenerate (zero/negative-area) triangles.
pub fn stiffness(coords: &[[f64; 2]; 3], material: &Material) -> [f64; 36] {
    let a = area(coords);
    assert!(a > 0.0, "degenerate triangle: area {a}");
    let d = material.d_matrix();
    let t = material.thickness;
    // b_i = y_j - y_k, c_i = x_k - x_j with (i, j, k) cyclic.
    let mut b_geo = [0.0f64; 3];
    let mut c_geo = [0.0f64; 3];
    for i in 0..3 {
        let j = (i + 1) % 3;
        let k = (i + 2) % 3;
        b_geo[i] = coords[j][1] - coords[k][1];
        c_geo[i] = coords[k][0] - coords[j][0];
    }
    let inv2a = 1.0 / (2.0 * a);
    // B is 3x6.
    let mut b = [0.0f64; 18];
    for i in 0..3 {
        b[2 * i] = b_geo[i] * inv2a;
        b[6 + 2 * i + 1] = c_geo[i] * inv2a;
        b[12 + 2 * i] = c_geo[i] * inv2a;
        b[12 + 2 * i + 1] = b_geo[i] * inv2a;
    }
    // ke = A t B^T D B.
    let mut db = [0.0f64; 18];
    for r in 0..3 {
        for c in 0..6 {
            let mut acc = 0.0;
            for k in 0..3 {
                acc += d[r * 3 + k] * b[k * 6 + c];
            }
            db[r * 6 + c] = acc;
        }
    }
    let w = a * t;
    let mut ke = [0.0f64; 36];
    for r in 0..6 {
        for c in 0..6 {
            let mut acc = 0.0;
            for k in 0..3 {
                acc += b[k * 6 + r] * db[k * 6 + c];
            }
            ke[r * 6 + c] = acc * w;
        }
    }
    ke
}

/// The 6×6 consistent mass matrix: `ρtA/12 · (1 + δᵢⱼ)` per component pair.
pub fn consistent_mass(coords: &[[f64; 2]; 3], material: &Material) -> [f64; 36] {
    let a = area(coords);
    assert!(a > 0.0, "degenerate triangle: area {a}");
    let m0 = material.density * material.thickness * a / 12.0;
    let mut me = [0.0f64; 36];
    for i in 0..3 {
        for j in 0..3 {
            let v = m0 * if i == j { 2.0 } else { 1.0 };
            me[(2 * i) * 6 + 2 * j] = v;
            me[(2 * i + 1) * 6 + 2 * j + 1] = v;
        }
    }
    me
}

/// Assembles the global stiffness matrix of a triangle mesh (no BCs).
pub fn assemble_stiffness(mesh: &TriMesh, dm: &DofMap, material: &Material) -> CsrMatrix {
    let n = dm.n_dofs();
    let mut coo = CooMatrix::with_capacity(n, n, mesh.n_elems() * 36);
    for e in 0..mesh.n_elems() {
        let ke = stiffness(&mesh.elem_coords(e), material);
        let nodes = mesh.elem_nodes(e);
        let mut dofs = [0usize; 6];
        for (k, &nd) in nodes.iter().enumerate() {
            dofs[2 * k] = dm.dof(nd, 0);
            dofs[2 * k + 1] = dm.dof(nd, 1);
        }
        coo.push_block(&dofs, &ke).expect("dofs in bounds");
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly;
    use parfem_mesh::{Edge, QuadMesh};
    use parfem_sparse::dense;

    fn reference_tri() -> [[f64; 2]; 3] {
        [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]]
    }

    fn matvec6(m: &[f64; 36], x: &[f64; 6]) -> [f64; 6] {
        let mut y = [0.0; 6];
        for r in 0..6 {
            for c in 0..6 {
                y[r] += m[r * 6 + c] * x[c];
            }
        }
        y
    }

    #[test]
    fn stiffness_is_symmetric_with_rigid_null_space() {
        let coords = [[0.1, 0.2], [1.3, 0.1], [0.4, 1.2]];
        let ke = stiffness(&coords, &Material::unit());
        for r in 0..6 {
            for c in 0..6 {
                assert!((ke[r * 6 + c] - ke[c * 6 + r]).abs() < 1e-12);
            }
        }
        // Rigid translations and rotation.
        let tx = [1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        let ty = [0.0, 1.0, 0.0, 1.0, 0.0, 1.0];
        let mut rot = [0.0; 6];
        for i in 0..3 {
            rot[2 * i] = -coords[i][1];
            rot[2 * i + 1] = coords[i][0];
        }
        for mode in [tx, ty, rot] {
            for v in matvec6(&ke, &mode) {
                assert!(v.abs() < 1e-12, "rigid-mode force {v}");
            }
        }
    }

    #[test]
    fn uniaxial_stretch_energy_is_exact() {
        // u_x = x: eps_xx = 1 over the element; energy = A/2 * D[0][0].
        let m = Material::unit();
        let coords = reference_tri();
        let ke = stiffness(&coords, &m);
        let mut u = [0.0; 6];
        for i in 0..3 {
            u[2 * i] = coords[i][0];
        }
        let ku = matvec6(&ke, &u);
        let e: f64 = u.iter().zip(&ku).map(|(a, b)| a * b).sum::<f64>() / 2.0;
        let want = 0.5 * 0.5 * m.d_matrix()[0]; // area 1/2
        assert!((e - want).abs() < 1e-12, "{e} vs {want}");
    }

    #[test]
    fn mass_preserves_total_mass() {
        let me = consistent_mass(&reference_tri(), &Material::unit());
        let tx = [1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        let mx = matvec6(&me, &tx);
        let total: f64 = tx.iter().zip(&mx).map(|(a, b)| a * b).sum();
        assert!((total - 0.5).abs() < 1e-12, "mass {total} vs area 0.5");
    }

    #[test]
    fn triangulated_patch_test() {
        // Prescribe u_x = eps*x on the boundary of a triangulated square;
        // interior follows exactly (CST is complete for linear fields).
        let q = QuadMesh::rectangle(3, 3, 3.0, 3.0);
        let t = parfem_mesh::TriMesh::from_quad_mesh(&q);
        let mut dm = DofMap::new(t.n_nodes());
        let eps = 0.01;
        for n in 0..t.n_nodes() {
            let [x, y] = t.node_coords(n);
            if x == 0.0 || y == 0.0 || x == 3.0 || y == 3.0 {
                dm.fix_dof(dm.dof(n, 0), eps * x);
                dm.fix_dof(dm.dof(n, 1), -0.3 * eps * y);
            }
        }
        let mat = Material::unit();
        let k = assemble_stiffness(&t, &dm, &mat);
        let mut rhs = vec![0.0; dm.n_dofs()];
        let kbc = assembly::apply_dirichlet(&k, &dm, &mut rhs);
        let mut dense_mat = kbc.to_dense();
        let u = dense::solve_dense(kbc.n_rows(), &mut dense_mat, &rhs);
        for n in 0..t.n_nodes() {
            let [x, y] = t.node_coords(n);
            assert!((u[dm.dof(n, 0)] - eps * x).abs() < 1e-10, "u_x at node {n}");
            assert!(
                (u[dm.dof(n, 1)] + 0.3 * eps * y).abs() < 1e-10,
                "u_y at node {n}"
            );
        }
    }

    #[test]
    fn assembled_triangles_are_stiffer_than_quads() {
        // The CST locks more than the bilinear quad: for the same mesh and
        // bending load, triangle deflection magnitude <= quad deflection.
        let q = QuadMesh::rectangle(12, 2, 12.0, 2.0);
        let t = parfem_mesh::TriMesh::from_quad_mesh(&q);
        let mat = Material::unit();

        let deflect_quad = {
            let mut dm = DofMap::new(q.n_nodes());
            dm.clamp_edge(&q, Edge::Left);
            let mut loads = vec![0.0; dm.n_dofs()];
            assembly::edge_load(&q, &dm, Edge::Right, 0.0, -1e-3, &mut loads);
            let sys = assembly::build_static(&q, &dm, &mat, &loads);
            let mut d = sys.stiffness.to_dense();
            let u = dense::solve_dense(sys.stiffness.n_rows(), &mut d, &sys.rhs);
            u[dm.dof(q.node_at(12, 1), 1)]
        };
        let deflect_tri = {
            let mut dm = DofMap::new(t.n_nodes());
            for n in t.edge_nodes(Edge::Left) {
                dm.clamp_node(n);
            }
            let k = assemble_stiffness(&t, &dm, &mat);
            let mut loads = vec![0.0; dm.n_dofs()];
            // Same consistent tip load as the quad case.
            let qdm = {
                let mut d2 = DofMap::new(q.n_nodes());
                d2.clamp_edge(&q, Edge::Left);
                d2
            };
            assembly::edge_load(&q, &qdm, Edge::Right, 0.0, -1e-3, &mut loads);
            let kbc = assembly::apply_dirichlet(&k, &dm, &mut loads);
            let mut d = kbc.to_dense();
            let u = dense::solve_dense(kbc.n_rows(), &mut d, &loads);
            u[dm.dof(t.node_at(12, 1), 1)]
        };
        assert!(deflect_quad < 0.0 && deflect_tri < 0.0);
        assert!(
            deflect_tri.abs() <= deflect_quad.abs() + 1e-12,
            "CST must not be softer: tri {deflect_tri} vs quad {deflect_quad}"
        );
    }

    #[test]
    #[should_panic(expected = "degenerate triangle")]
    fn clockwise_triangle_rejected() {
        let coords = [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0]];
        stiffness(&coords, &Material::unit());
    }
}
