//! Per-subdomain local systems for element-based domain decomposition.
//!
//! Each subdomain assembles **only its own elements** into a matrix over its
//! *local* DOF numbering — the "local distributed format" of the paper's
//! Definition 1. Nothing is ever assembled across the interface, so
//!
//! ```text
//! K = Σₛ Bₛᵀ K̂⁽ˢ⁾ Bₛ          (paper Eq. 32)
//! f = Σₛ Bₛᵀ f̂⁽ˢ⁾
//! ```
//!
//! hold exactly, where `Bₛ` is the boolean gather of the subdomain's DOFs.
//! Dirichlet rows become `1/mult` diagonal contributions so the assembled
//! operator keeps clean unit identity rows, and shared load entries are
//! divided by their node multiplicity so the assembled RHS is unchanged.

use crate::material::Material;
use crate::{hex8, physics, quad4};
use parfem_mesh::{DofMap, HexMesh, QuadMesh, Subdomain};
use parfem_sparse::{CooMatrix, CsrMatrix};

/// Interface DOFs shared with one neighbouring subdomain.
///
/// `shared_local_dofs` lists local DOF indices in the canonical order
/// induced by the subdomain's shared-node lists, so position `k` matches
/// position `k` on the neighbour's corresponding link.
#[derive(Debug, Clone)]
pub struct NeighborDofs {
    /// Neighbour rank.
    pub rank: usize,
    /// Local DOF indices shared with that neighbour, canonical order.
    pub shared_local_dofs: Vec<usize>,
}

/// The local distributed system of one subdomain.
#[derive(Debug, Clone)]
pub struct SubdomainSystem {
    /// Subdomain rank.
    pub rank: usize,
    /// Global node ids of the local nodes, ascending.
    pub nodes: Vec<usize>,
    /// Local stiffness `K̂⁽ˢ⁾` over local DOFs, boundary conditions applied.
    pub k_local: CsrMatrix,
    /// Local mass `M̂⁽ˢ⁾` (zero rows/columns at constrained DOFs).
    pub m_local: Option<CsrMatrix>,
    /// Local distributed right-hand side `f̂⁽ˢ⁾`.
    pub f_local: Vec<f64>,
    /// Multiplicity of each local DOF (how many subdomains share it).
    pub multiplicity: Vec<f64>,
    /// Interface links, sorted by neighbour rank.
    pub neighbors: Vec<NeighborDofs>,
    /// Global DOF of each local DOF.
    pub global_dofs: Vec<usize>,
}

impl SubdomainSystem {
    /// Assembles the subdomain system for a Q4 mesh.
    ///
    /// `loads` is the *global* load vector (`dm.n_dofs()` long); its entries
    /// are split across sharing subdomains by multiplicity. Set
    /// `with_mass` to also assemble the local (lumped or consistent) mass.
    pub fn build(
        mesh: &QuadMesh,
        dm: &DofMap,
        material: &Material,
        sub: &Subdomain,
        loads: &[f64],
        with_mass: Option<bool>,
    ) -> Self {
        Self::build_from_elements(dm, sub, loads, with_mass.is_some(), |e| {
            let ke = quad4::stiffness(&mesh.elem_coords(e), material).to_vec();
            let me = with_mass.map(|lumped| {
                if lumped {
                    quad4::lumped_mass(&mesh.elem_coords(e), material).to_vec()
                } else {
                    quad4::consistent_mass(&mesh.elem_coords(e), material).to_vec()
                }
            });
            (mesh.elem_nodes(e).to_vec(), ke, me)
        })
    }

    /// Assembles the subdomain system for a 3-node triangle mesh (partition
    /// from [`parfem_mesh::ElementPartition::strips_x_tri`] or any
    /// cells-generic partition).
    pub fn build_tri(
        mesh: &parfem_mesh::TriMesh,
        dm: &DofMap,
        material: &Material,
        sub: &Subdomain,
        loads: &[f64],
        with_mass: Option<bool>,
    ) -> Self {
        Self::build_from_elements(dm, sub, loads, with_mass.is_some(), |e| {
            let ke = crate::tri3::stiffness(&mesh.elem_coords(e), material).to_vec();
            let me = with_mass.map(|_| {
                // T3 mass: consistent only (lumping is rho*A/3 diag — use
                // consistent here, the dynamic driver lumps by row sums).
                crate::tri3::consistent_mass(&mesh.elem_coords(e), material).to_vec()
            });
            (mesh.elem_nodes(e).to_vec(), ke, me)
        })
    }

    /// Assembles the subdomain system for an unstructured quadrilateral
    /// mesh (imported via [`parfem_mesh::GenericQuadMesh`]).
    pub fn build_generic(
        mesh: &parfem_mesh::GenericQuadMesh,
        dm: &DofMap,
        material: &Material,
        sub: &Subdomain,
        loads: &[f64],
        with_mass: Option<bool>,
    ) -> Self {
        Self::build_from_elements(dm, sub, loads, with_mass.is_some(), |e| {
            let ke = quad4::stiffness(&mesh.elem_coords(e), material).to_vec();
            let me = with_mass.map(|lumped| {
                if lumped {
                    quad4::lumped_mass(&mesh.elem_coords(e), material).to_vec()
                } else {
                    quad4::consistent_mass(&mesh.elem_coords(e), material).to_vec()
                }
            });
            (mesh.elem_nodes(e).to_vec(), ke, me)
        })
    }

    /// Assembles the subdomain system for an 8-node serendipity mesh.
    pub fn build_quad8(
        mesh: &parfem_mesh::Quad8Mesh,
        dm: &DofMap,
        material: &Material,
        sub: &Subdomain,
        loads: &[f64],
        with_mass: Option<bool>,
    ) -> Self {
        Self::build_from_elements(dm, sub, loads, with_mass.is_some(), |e| {
            let ke = crate::quad8s::stiffness(&mesh.elem_coords(e), material).to_vec();
            let me = with_mass
                .map(|_| crate::quad8s::consistent_mass(&mesh.elem_coords(e), material).to_vec());
            (mesh.elem_nodes(e).to_vec(), ke, me)
        })
    }

    /// Assembles the subdomain system of a scalar conduction (heat) problem
    /// on a quad mesh. The map must carry one DOF per node; mass is not
    /// supported for the scalar physics.
    pub fn build_heat(
        mesh: &QuadMesh,
        dm: &DofMap,
        material: &Material,
        sub: &Subdomain,
        loads: &[f64],
    ) -> Self {
        assert_eq!(
            dm.dofs_per_node(),
            1,
            "heat assembly needs a scalar DOF map"
        );
        Self::build_from_elements(dm, sub, loads, false, |e| {
            let ke = physics::heat_stiffness_quad4(&mesh.elem_coords(e), material).to_vec();
            (mesh.elem_nodes(e).to_vec(), ke, None)
        })
    }

    /// Assembles the subdomain system of a 3-D elasticity problem on a hex
    /// mesh (three DOFs per node).
    pub fn build_hex(
        mesh: &HexMesh,
        dm: &DofMap,
        material: &Material,
        sub: &Subdomain,
        loads: &[f64],
    ) -> Self {
        assert_eq!(
            dm.dofs_per_node(),
            3,
            "hex8 assembly needs a 3-DOF-per-node map"
        );
        Self::build_from_elements(dm, sub, loads, false, |e| {
            let ke = hex8::stiffness(&mesh.elem_coords(e), material).to_vec();
            (mesh.elem_nodes(e).to_vec(), ke, None)
        })
    }

    /// Element-generic assembly core: `element_of(e)` returns the global
    /// node list plus dense stiffness (and optional mass) of element `e`,
    /// row-major over `dofs_per_node × n_nodes` interleaved DOFs, where the
    /// DOFs-per-node count comes from the `DofMap`.
    pub fn build_from_elements(
        dm: &DofMap,
        sub: &Subdomain,
        loads: &[f64],
        with_mass: bool,
        mut element_of: impl FnMut(usize) -> (Vec<usize>, Vec<f64>, Option<Vec<f64>>),
    ) -> Self {
        assert_eq!(loads.len(), dm.n_dofs(), "loads do not match DOF map");
        let dpn = dm.dofs_per_node();
        let n_local_nodes = sub.n_local_nodes();
        let n_local = n_local_nodes * dpn;

        // Local DOF bookkeeping.
        let mut global_dofs = Vec::with_capacity(n_local);
        let mut multiplicity = Vec::with_capacity(n_local);
        for (l, &g_node) in sub.nodes.iter().enumerate() {
            let m = sub.multiplicity[l] as f64;
            for c in 0..dpn {
                global_dofs.push(dm.dof(g_node, c));
                multiplicity.push(m);
            }
        }

        // Local distributed RHS: global loads split by multiplicity.
        let mut f_local: Vec<f64> = global_dofs
            .iter()
            .zip(&multiplicity)
            .map(|(&g, &m)| loads[g] / m)
            .collect();

        // Element assembly with Dirichlet handling identical (per element)
        // to the global `apply_dirichlet`.
        let mut k_coo = CooMatrix::with_capacity(n_local, n_local, sub.elements.len() * 64);
        let mut m_coo =
            with_mass.then(|| CooMatrix::with_capacity(n_local, n_local, sub.elements.len() * 64));
        for &e in &sub.elements {
            let (g_nodes, ke, me) = element_of(e);
            let nd = g_nodes.len() * dpn;
            assert_eq!(ke.len(), nd * nd, "element stiffness shape mismatch");
            // Local dof of each element dof.
            let mut ldofs = vec![0usize; nd];
            let mut gdofs = vec![0usize; nd];
            for (k, &gn) in g_nodes.iter().enumerate() {
                let ln = sub
                    .local_node(gn)
                    .expect("owned element references a local node");
                for c in 0..dpn {
                    ldofs[dpn * k + c] = ln * dpn + c;
                    gdofs[dpn * k + c] = dm.dof(gn, c);
                }
            }
            for i in 0..nd {
                if dm.is_fixed(gdofs[i]) {
                    continue; // constrained rows are identity, added below
                }
                for j in 0..nd {
                    let v = ke[i * nd + j];
                    if dm.is_fixed(gdofs[j]) {
                        f_local[ldofs[i]] -= v * dm.fixed_value(gdofs[j]);
                    } else {
                        k_coo.push(ldofs[i], ldofs[j], v).expect("in bounds");
                    }
                }
            }
            if let (Some(coo), Some(me)) = (m_coo.as_mut(), me) {
                assert_eq!(me.len(), nd * nd, "element mass shape mismatch");
                for i in 0..nd {
                    if dm.is_fixed(gdofs[i]) {
                        continue;
                    }
                    for j in 0..nd {
                        if !dm.is_fixed(gdofs[j]) {
                            coo.push(ldofs[i], ldofs[j], me[i * nd + j])
                                .expect("in bounds");
                        }
                    }
                }
            }
        }
        // Constraint rows: diag 1/mult so the assembled diagonal is 1, and
        // the RHS carries ū/mult so the assembled RHS is ū.
        for (l, &g) in global_dofs.iter().enumerate() {
            if dm.is_fixed(g) {
                k_coo.push(l, l, 1.0 / multiplicity[l]).expect("in bounds");
                f_local[l] = dm.fixed_value(g) / multiplicity[l];
            }
        }

        // Neighbour DOF links from the node links.
        let neighbors = sub
            .neighbors
            .iter()
            .map(|link| NeighborDofs {
                rank: link.rank,
                shared_local_dofs: link
                    .shared_local_nodes
                    .iter()
                    .flat_map(|&ln| (0..dpn).map(move |c| ln * dpn + c))
                    .collect(),
            })
            .collect();

        SubdomainSystem {
            rank: sub.rank,
            nodes: sub.nodes.clone(),
            k_local: k_coo.to_csr(),
            m_local: m_coo.map(|c| c.to_csr()),
            f_local,
            multiplicity,
            neighbors,
            global_dofs,
        }
    }

    /// Number of local DOFs.
    pub fn n_local_dofs(&self) -> usize {
        self.global_dofs.len()
    }

    /// Restriction `Bₛ u`: gathers local values from a global vector
    /// ("global distributed format" of a subdomain).
    pub fn restrict(&self, global: &[f64]) -> Vec<f64> {
        self.global_dofs.iter().map(|&g| global[g]).collect()
    }

    /// Scatter-add `global += Bₛᵀ local`.
    pub fn scatter_add(&self, local: &[f64], global: &mut [f64]) {
        assert_eq!(local.len(), self.n_local_dofs(), "local length mismatch");
        for (&g, &v) in self.global_dofs.iter().zip(local) {
            global[g] += v;
        }
    }

    /// The effective local matrix `α M̂ + β K̂` of the paper's Eq. 52.
    ///
    /// # Panics
    /// Panics if the mass was not assembled.
    pub fn effective_local(&self, alpha: f64, beta: f64) -> CsrMatrix {
        let m = self
            .m_local
            .as_ref()
            .expect("effective_local requires an assembled mass");
        // beta*K + alpha*M, keeping K's sparsity union.
        let mut k_scaled = self.k_local.clone();
        for v in k_scaled.values_mut() {
            *v *= beta;
        }
        k_scaled
            .add_scaled(alpha, m)
            .expect("local matrices share the shape")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly;
    use parfem_mesh::{Edge, ElementPartition};

    fn fixture(
        nx: usize,
        ny: usize,
        p: usize,
    ) -> (QuadMesh, DofMap, Material, Vec<SubdomainSystem>, Vec<f64>) {
        let mesh = QuadMesh::cantilever(nx, ny);
        let mut dm = DofMap::new(mesh.n_nodes());
        dm.clamp_edge(&mesh, Edge::Left);
        let mat = Material::unit();
        let mut loads = vec![0.0; dm.n_dofs()];
        assembly::edge_load(&mesh, &dm, Edge::Right, 0.0, -1.0, &mut loads);
        let part = ElementPartition::strips_x(&mesh, p);
        let subs = part.subdomains(&mesh);
        let systems = subs
            .iter()
            .map(|s| SubdomainSystem::build(&mesh, &dm, &mat, s, &loads, None))
            .collect();
        (mesh, dm, mat, systems, loads)
    }

    #[test]
    fn assembled_sum_equals_global_matrix() {
        // Sum_s B^T K_local B must equal the globally assembled, BC-applied
        // stiffness, entry for entry.
        let (mesh, dm, mat, systems, loads) = fixture(6, 3, 3);
        let sys = assembly::build_static(&mesh, &dm, &mat, &loads);
        let n = dm.n_dofs();
        let mut dense_sum = vec![0.0; n * n];
        for s in &systems {
            let kd = s.k_local.to_dense();
            let nl = s.n_local_dofs();
            for i in 0..nl {
                for j in 0..nl {
                    dense_sum[s.global_dofs[i] * n + s.global_dofs[j]] += kd[i * nl + j];
                }
            }
        }
        let global = sys.stiffness.to_dense();
        for (idx, (a, b)) in dense_sum.iter().zip(&global).enumerate() {
            assert!(
                (a - b).abs() < 1e-10,
                "entry ({}, {}): {a} vs {b}",
                idx / n,
                idx % n
            );
        }
    }

    #[test]
    fn assembled_rhs_equals_global_rhs() {
        let (mesh, dm, mat, systems, loads) = fixture(6, 3, 3);
        let sys = assembly::build_static(&mesh, &dm, &mat, &loads);
        let mut f_sum = vec![0.0; dm.n_dofs()];
        for s in &systems {
            s.scatter_add(&s.f_local, &mut f_sum);
        }
        for (a, b) in f_sum.iter().zip(&sys.rhs) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        let _ = mesh;
    }

    #[test]
    fn local_spmv_plus_interface_sum_equals_global_spmv() {
        // The EDD matvec identity (Eq. 36-37): for x global,
        // y = K x == Sum_s B^T (K_local (B x)).
        let (_, dm, _, systems, loads) = fixture(8, 2, 4);
        let (mesh2, dm2, mat2, _, _) = fixture(8, 2, 4);
        let sys = assembly::build_static(&mesh2, &dm2, &mat2, &loads);
        let x: Vec<f64> = (0..dm.n_dofs()).map(|i| ((i % 7) as f64) - 3.0).collect();
        let y_global = sys.stiffness.spmv(&x);
        let mut y_sum = vec![0.0; dm.n_dofs()];
        for s in &systems {
            let xl = s.restrict(&x);
            let yl = s.k_local.spmv(&xl);
            s.scatter_add(&yl, &mut y_sum);
        }
        for (a, b) in y_sum.iter().zip(&y_global) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn neighbor_dof_lists_pair_up() {
        let (_, _, _, systems, _) = fixture(6, 2, 3);
        for s in &systems {
            for link in &s.neighbors {
                let t = &systems[link.rank];
                let back = t
                    .neighbors
                    .iter()
                    .find(|l| l.rank == s.rank)
                    .expect("symmetric link");
                assert_eq!(link.shared_local_dofs.len(), back.shared_local_dofs.len());
                for (la, lb) in link.shared_local_dofs.iter().zip(&back.shared_local_dofs) {
                    assert_eq!(s.global_dofs[*la], t.global_dofs[*lb]);
                }
            }
        }
    }

    #[test]
    fn multiplicities_match_dof_sharing() {
        let (_, dm, _, systems, _) = fixture(4, 2, 2);
        let mut counts = vec![0usize; dm.n_dofs()];
        for s in &systems {
            for &g in &s.global_dofs {
                counts[g] += 1;
            }
        }
        for s in &systems {
            for (l, &g) in s.global_dofs.iter().enumerate() {
                assert_eq!(s.multiplicity[l] as usize, counts[g]);
            }
        }
    }

    #[test]
    fn floating_subdomain_stiffness_is_singular() {
        // Strips away from the clamped edge have no Dirichlet support; their
        // local stiffness has the rigid-body null space — the paper's ILU
        // failure case. Verify singularity via the rigid x-translation.
        let (_, _, _, systems, _) = fixture(8, 2, 4);
        let s_last = &systems[3]; // far from the clamped left edge
        let nl = s_last.n_local_dofs();
        let mut tx = vec![0.0; nl];
        for l in 0..nl {
            if l % 2 == 0 {
                tx[l] = 1.0;
            }
        }
        let r = s_last.k_local.spmv(&tx);
        let norm: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(norm < 1e-9, "floating subdomain should be singular: {norm}");
    }

    #[test]
    fn ilu0_fails_with_zero_pivot_on_single_floating_element() {
        // On a one-element subdomain the pattern is dense, so ILU(0) is the
        // exact LU of the rank-deficient element stiffness and must hit a
        // zero pivot — the paper's Section 3.2.3 failure mode in its purest
        // form. (On multi-element floating subdomains the *incomplete*
        // factorization can survive numerically while the matrix is still
        // singular; the preconditioner is then garbage without erroring.)
        let mesh = QuadMesh::cantilever(2, 1);
        let mut dm = DofMap::new(mesh.n_nodes());
        dm.clamp_edge(&mesh, Edge::Left);
        let mat = Material::unit();
        let loads = vec![0.0; dm.n_dofs()];
        let part = ElementPartition::strips_x(&mesh, 2);
        let subs = part.subdomains(&mesh);
        let right = SubdomainSystem::build(&mesh, &dm, &mat, &subs[1], &loads, None);
        assert!(matches!(
            parfem_sparse::Ilu0::factorize(&right.k_local),
            Err(parfem_sparse::SparseError::ZeroPivot { .. })
        ));
        // The clamped-side subdomain factorizes fine.
        let left = SubdomainSystem::build(&mesh, &dm, &mat, &subs[0], &loads, None);
        assert!(parfem_sparse::Ilu0::factorize(&left.k_local).is_ok());
    }

    #[test]
    fn mass_assembly_sums_to_global_mass() {
        let mesh = QuadMesh::cantilever(4, 2);
        let mut dm = DofMap::new(mesh.n_nodes());
        dm.clamp_edge(&mesh, Edge::Left);
        let mat = Material::unit();
        let loads = vec![0.0; dm.n_dofs()];
        let part = ElementPartition::strips_x(&mesh, 2);
        let systems: Vec<SubdomainSystem> = part
            .subdomains(&mesh)
            .iter()
            .map(|s| SubdomainSystem::build(&mesh, &dm, &mat, s, &loads, Some(false)))
            .collect();
        let m_raw = assembly::assemble_mass(&mesh, &dm, &mat, false);
        let m_bc = assembly::apply_dirichlet_mass(&m_raw, &dm);
        let n = dm.n_dofs();
        let mut dense_sum = vec![0.0; n * n];
        for s in &systems {
            let md = s.m_local.as_ref().unwrap().to_dense();
            let nl = s.n_local_dofs();
            for i in 0..nl {
                for j in 0..nl {
                    dense_sum[s.global_dofs[i] * n + s.global_dofs[j]] += md[i * nl + j];
                }
            }
        }
        for (a, b) in dense_sum.iter().zip(&m_bc.to_dense()) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn effective_local_combines_mass_and_stiffness() {
        let mesh = QuadMesh::cantilever(3, 1);
        let mut dm = DofMap::new(mesh.n_nodes());
        dm.clamp_edge(&mesh, Edge::Left);
        let mat = Material::unit();
        let loads = vec![0.0; dm.n_dofs()];
        let part = ElementPartition::strips_x(&mesh, 1);
        let sub = &part.subdomains(&mesh)[0];
        let s = SubdomainSystem::build(&mesh, &dm, &mat, sub, &loads, Some(true));
        let eff = s.effective_local(2.0, 3.0);
        let k = &s.k_local;
        let m = s.m_local.as_ref().unwrap();
        for r in 0..eff.n_rows() {
            let (cols, vals) = eff.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let want = 3.0 * k.get(r, c) + 2.0 * m.get(r, c);
                assert!((v - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "requires an assembled mass")]
    fn effective_local_without_mass_panics() {
        let (_, _, _, systems, _) = fixture(4, 1, 2);
        systems[0].effective_local(1.0, 1.0);
    }

    #[test]
    fn tri_subdomains_sum_to_the_assembled_triangle_matrix() {
        let tmesh = parfem_mesh::TriMesh::cantilever(6, 3);
        let mut dm = DofMap::new(tmesh.n_nodes());
        for n in tmesh.edge_nodes(Edge::Left) {
            dm.clamp_node(n);
        }
        let mat = Material::unit();
        let mut loads = vec![0.0; dm.n_dofs()];
        // Nodal load on the top-right node.
        loads[dm.dof(tmesh.node_at(6, 3), 1)] = -1.0;
        let part = ElementPartition::strips_x_tri(&tmesh, 3);
        let systems: Vec<SubdomainSystem> = part
            .subdomains_of(&tmesh)
            .iter()
            .map(|s| SubdomainSystem::build_tri(&tmesh, &dm, &mat, s, &loads, None))
            .collect();
        // Global reference with the same BC handling.
        let k_raw = crate::tri3::assemble_stiffness(&tmesh, &dm, &mat);
        let mut rhs = loads.clone();
        let k_bc = crate::assembly::apply_dirichlet(&k_raw, &dm, &mut rhs);
        let n = dm.n_dofs();
        let mut dense_sum = vec![0.0; n * n];
        let mut f_sum = vec![0.0; n];
        for s in &systems {
            let kd = s.k_local.to_dense();
            let nl = s.n_local_dofs();
            for i in 0..nl {
                for j in 0..nl {
                    dense_sum[s.global_dofs[i] * n + s.global_dofs[j]] += kd[i * nl + j];
                }
            }
            s.scatter_add(&s.f_local, &mut f_sum);
        }
        for (a, b) in dense_sum.iter().zip(&k_bc.to_dense()) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
        for (a, b) in f_sum.iter().zip(&rhs) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn heat_subdomains_sum_to_the_assembled_scalar_matrix() {
        // The EDD identity holds verbatim for the scalar physics (one DOF
        // per node) — the regression for the old hardcoded 2-DOF layout.
        let mesh = QuadMesh::cantilever(6, 3);
        let mut dm = DofMap::with_dofs(mesh.n_nodes(), 1);
        dm.clamp_edge(&mesh, Edge::Left);
        let mat = Material::unit();
        let mut loads = vec![0.0; dm.n_dofs()];
        crate::assembly::edge_source(&mesh, &dm, Edge::Right, 1.0, &mut loads);
        let part = ElementPartition::strips_x(&mesh, 3);
        let systems: Vec<SubdomainSystem> = part
            .subdomains(&mesh)
            .iter()
            .map(|s| SubdomainSystem::build_heat(&mesh, &dm, &mat, s, &loads))
            .collect();
        let sys = crate::assembly::build_static_heat(&mesh, &dm, &mat, &loads);
        let n = dm.n_dofs();
        let mut dense_sum = vec![0.0; n * n];
        let mut f_sum = vec![0.0; n];
        for s in &systems {
            assert_eq!(s.n_local_dofs(), s.nodes.len());
            let kd = s.k_local.to_dense();
            let nl = s.n_local_dofs();
            for i in 0..nl {
                for j in 0..nl {
                    dense_sum[s.global_dofs[i] * n + s.global_dofs[j]] += kd[i * nl + j];
                }
            }
            s.scatter_add(&s.f_local, &mut f_sum);
        }
        for (a, b) in dense_sum.iter().zip(&sys.stiffness.to_dense()) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
        for (a, b) in f_sum.iter().zip(&sys.rhs) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn hex_subdomains_sum_to_the_assembled_3d_matrix() {
        use parfem_mesh::{Face, HexMesh};
        let mesh = HexMesh::cantilever(4, 2, 2);
        let mut dm = DofMap::with_dofs(mesh.n_nodes(), 3);
        for node in mesh.face_nodes(Face::XMin) {
            dm.clamp_node(node);
        }
        let mat = Material::unit();
        let mut loads = vec![0.0; dm.n_dofs()];
        crate::assembly::face_load(&mesh, &dm, Face::XMax, [0.0, 0.0, -1.0], &mut loads);
        let part = ElementPartition::blocks_of(&mesh, 2, 1);
        let systems: Vec<SubdomainSystem> = part
            .subdomains_of(&mesh)
            .iter()
            .map(|s| SubdomainSystem::build_hex(&mesh, &dm, &mat, s, &loads))
            .collect();
        let sys = crate::assembly::build_static_hex(&mesh, &dm, &mat, &loads);
        let n = dm.n_dofs();
        let mut dense_sum = vec![0.0; n * n];
        let mut f_sum = vec![0.0; n];
        for s in &systems {
            assert_eq!(s.n_local_dofs(), 3 * s.nodes.len());
            let kd = s.k_local.to_dense();
            let nl = s.n_local_dofs();
            for i in 0..nl {
                for j in 0..nl {
                    dense_sum[s.global_dofs[i] * n + s.global_dofs[j]] += kd[i * nl + j];
                }
            }
            s.scatter_add(&s.f_local, &mut f_sum);
        }
        for (a, b) in dense_sum.iter().zip(&sys.stiffness.to_dense()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        for (a, b) in f_sum.iter().zip(&sys.rhs) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn floating_hex_subdomain_defeats_ilu0_but_is_singular() {
        // 3-D analogue of the Eq. 45 failure setup: the strip away from the
        // clamped face carries the full 6-mode rigid null space.
        use parfem_mesh::{Face, HexMesh};
        let mesh = HexMesh::cantilever(2, 1, 1);
        let mut dm = DofMap::with_dofs(mesh.n_nodes(), 3);
        for node in mesh.face_nodes(Face::XMin) {
            dm.clamp_node(node);
        }
        let mat = Material::unit();
        let loads = vec![0.0; dm.n_dofs()];
        let part = ElementPartition::blocks_of(&mesh, 2, 1);
        let subs = part.subdomains_of(&mesh);
        let right = SubdomainSystem::build_hex(&mesh, &dm, &mat, &subs[1], &loads);
        // Rigid z-translation of the floating strip is in the null space.
        let nl = right.n_local_dofs();
        let mut tz = vec![0.0; nl];
        for l in (2..nl).step_by(3) {
            tz[l] = 1.0;
        }
        let r = right.k_local.spmv(&tz);
        let norm: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(norm < 1e-9, "floating hex subdomain singular: {norm}");
        assert!(matches!(
            parfem_sparse::Ilu0::factorize(&right.k_local),
            Err(parfem_sparse::SparseError::ZeroPivot { .. })
        ));
    }

    #[test]
    fn quad8_subdomains_sum_to_the_assembled_q8_matrix() {
        let emesh = parfem_mesh::Quad8Mesh::cantilever(4, 2);
        let mut dm = DofMap::new(emesh.n_nodes());
        for n in emesh.edge_nodes(Edge::Left) {
            dm.clamp_node(n);
        }
        let mat = Material::unit();
        let loads = vec![0.0; dm.n_dofs()];
        let part = ElementPartition::strips_x_quad8(&emesh, 2);
        let systems: Vec<SubdomainSystem> = part
            .subdomains_of(&emesh)
            .iter()
            .map(|s| SubdomainSystem::build_quad8(&emesh, &dm, &mat, s, &loads, None))
            .collect();
        let k_raw = crate::quad8s::assemble_stiffness(&emesh, &dm, &mat);
        let mut rhs = loads.clone();
        let k_bc = crate::assembly::apply_dirichlet(&k_raw, &dm, &mut rhs);
        let n = dm.n_dofs();
        let mut dense_sum = vec![0.0; n * n];
        for s in &systems {
            let kd = s.k_local.to_dense();
            let nl = s.n_local_dofs();
            for i in 0..nl {
                for j in 0..nl {
                    dense_sum[s.global_dofs[i] * n + s.global_dofs[j]] += kd[i * nl + j];
                }
            }
        }
        for (a, b) in dense_sum.iter().zip(&k_bc.to_dense()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        // Q8 strip interfaces carry three nodes per cell edge: corners +
        // the vertical mid-edge node.
        let link = &systems[0].neighbors[0];
        assert_eq!(link.shared_local_dofs.len(), 2 * (2 * 2 + 1));
    }
}
