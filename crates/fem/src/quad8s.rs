//! The 8-node serendipity quadrilateral (Q8).
//!
//! The higher-order element the paper's Section 5 singles out: its node
//! graph couples each mid-edge node to seven others, making `G(K)`
//! decisively non-planar and the row-partitioned matvec harder to scale.
//! Stiffness and mass are integrated with a 3×3 Gauss rule.
//!
//! Shape functions on `(ξ, η) ∈ [−1, 1]²` (corners `i = 0..4`, mid-edges in
//! bottom/right/top/left order):
//!
//! ```text
//! corner:        N = ¼ (1+ξξᵢ)(1+ηηᵢ)(ξξᵢ + ηηᵢ − 1)
//! mid, ξᵢ = 0:   N = ½ (1−ξ²)(1+ηηᵢ)
//! mid, ηᵢ = 0:   N = ½ (1+ξξᵢ)(1−η²)
//! ```

use crate::material::Material;
use parfem_mesh::{DofMap, Quad8Mesh};
use parfem_sparse::{CooMatrix, CsrMatrix};

/// Reference coordinates of the 8 nodes (corners CCW, then mid-edges
/// bottom/right/top/left).
const XI: [f64; 8] = [-1.0, 1.0, 1.0, -1.0, 0.0, 1.0, 0.0, -1.0];
const ETA: [f64; 8] = [-1.0, -1.0, 1.0, 1.0, -1.0, 0.0, 1.0, 0.0];

/// 3-point Gauss abscissas and weights.
const G3: [(f64, f64); 3] = [
    (-0.774_596_669_241_483_4, 5.0 / 9.0),
    (0.0, 8.0 / 9.0),
    (0.774_596_669_241_483_4, 5.0 / 9.0),
];

/// Shape function values at `(xi, eta)`.
pub fn shape_functions(xi: f64, eta: f64) -> [f64; 8] {
    let mut n = [0.0; 8];
    for i in 0..4 {
        n[i] = 0.25 * (1.0 + xi * XI[i]) * (1.0 + eta * ETA[i]) * (xi * XI[i] + eta * ETA[i] - 1.0);
    }
    for i in 4..8 {
        n[i] = if XI[i] == 0.0 {
            0.5 * (1.0 - xi * xi) * (1.0 + eta * ETA[i])
        } else {
            0.5 * (1.0 + xi * XI[i]) * (1.0 - eta * eta)
        };
    }
    n
}

/// Shape function derivatives `(dN/dξ, dN/dη)` at `(xi, eta)`.
pub fn shape_derivatives(xi: f64, eta: f64) -> ([f64; 8], [f64; 8]) {
    let mut dxi = [0.0; 8];
    let mut deta = [0.0; 8];
    for i in 0..4 {
        let (xs, es) = (XI[i], ETA[i]);
        dxi[i] = 0.25 * xs * (1.0 + eta * es) * (2.0 * xi * xs + eta * es);
        deta[i] = 0.25 * es * (1.0 + xi * xs) * (xi * xs + 2.0 * eta * es);
    }
    for i in 4..8 {
        if XI[i] == 0.0 {
            dxi[i] = -xi * (1.0 + eta * ETA[i]);
            deta[i] = 0.5 * ETA[i] * (1.0 - xi * xi);
        } else {
            dxi[i] = 0.5 * XI[i] * (1.0 - eta * eta);
            deta[i] = -eta * (1.0 + xi * XI[i]);
        }
    }
    (dxi, deta)
}

/// Jacobian determinant and physical gradients at a reference point.
///
/// # Panics
/// Panics on degenerate geometry.
pub fn physical_gradients(coords: &[[f64; 2]; 8], xi: f64, eta: f64) -> (f64, [f64; 8], [f64; 8]) {
    let (dxi, deta) = shape_derivatives(xi, eta);
    let mut j = [0.0f64; 4];
    for i in 0..8 {
        j[0] += dxi[i] * coords[i][0];
        j[1] += dxi[i] * coords[i][1];
        j[2] += deta[i] * coords[i][0];
        j[3] += deta[i] * coords[i][1];
    }
    let det = j[0] * j[3] - j[1] * j[2];
    assert!(det > 0.0, "degenerate element: Jacobian determinant {det}");
    let inv = [j[3] / det, -j[1] / det, -j[2] / det, j[0] / det];
    let mut dx = [0.0; 8];
    let mut dy = [0.0; 8];
    for i in 0..8 {
        dx[i] = inv[0] * dxi[i] + inv[1] * deta[i];
        dy[i] = inv[2] * dxi[i] + inv[3] * deta[i];
    }
    (det, dx, dy)
}

/// The 16×16 element stiffness (row-major), DOF order
/// `[u0x, u0y, …, u7x, u7y]` matching the mesh connectivity order.
pub fn stiffness(coords: &[[f64; 2]; 8], material: &Material) -> [f64; 256] {
    let d = material.d_matrix();
    let t = material.thickness;
    let mut ke = [0.0f64; 256];
    for &(gx, wx) in &G3 {
        for &(gy, wy) in &G3 {
            let (det, dx, dy) = physical_gradients(coords, gx, gy);
            let w = det * t * wx * wy;
            // B is 3x16.
            let mut b = [0.0f64; 48];
            for i in 0..8 {
                b[2 * i] = dx[i];
                b[16 + 2 * i + 1] = dy[i];
                b[32 + 2 * i] = dy[i];
                b[32 + 2 * i + 1] = dx[i];
            }
            let mut db = [0.0f64; 48];
            for r in 0..3 {
                for c in 0..16 {
                    let mut acc = 0.0;
                    for k in 0..3 {
                        acc += d[r * 3 + k] * b[k * 16 + c];
                    }
                    db[r * 16 + c] = acc;
                }
            }
            for r in 0..16 {
                for c in 0..16 {
                    let mut acc = 0.0;
                    for k in 0..3 {
                        acc += b[k * 16 + r] * db[k * 16 + c];
                    }
                    ke[r * 16 + c] += acc * w;
                }
            }
        }
    }
    ke
}

/// The 16×16 consistent mass matrix (row-major).
pub fn consistent_mass(coords: &[[f64; 2]; 8], material: &Material) -> [f64; 256] {
    let rho_t = material.density * material.thickness;
    let mut me = [0.0f64; 256];
    for &(gx, wx) in &G3 {
        for &(gy, wy) in &G3 {
            let n = shape_functions(gx, gy);
            let (det, _, _) = physical_gradients(coords, gx, gy);
            let w = rho_t * det * wx * wy;
            for i in 0..8 {
                for j in 0..8 {
                    let v = n[i] * n[j] * w;
                    me[(2 * i) * 16 + 2 * j] += v;
                    me[(2 * i + 1) * 16 + 2 * j + 1] += v;
                }
            }
        }
    }
    me
}

/// Assembles the global Q8 stiffness matrix (no BCs). The DOF map must be
/// built over `mesh.n_nodes()` nodes.
pub fn assemble_stiffness(mesh: &Quad8Mesh, dm: &DofMap, material: &Material) -> CsrMatrix {
    let n = dm.n_dofs();
    let mut coo = CooMatrix::with_capacity(n, n, mesh.n_elems() * 256);
    for e in 0..mesh.n_elems() {
        let ke = stiffness(&mesh.elem_coords(e), material);
        let nodes = mesh.elem_nodes(e);
        let mut dofs = [0usize; 16];
        for (k, &nd) in nodes.iter().enumerate() {
            dofs[2 * k] = dm.dof(nd, 0);
            dofs[2 * k + 1] = dm.dof(nd, 1);
        }
        coo.push_block(&dofs, &ke).expect("dofs in bounds");
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly;
    use parfem_mesh::Edge;
    use parfem_sparse::dense;

    fn unit_square() -> [[f64; 2]; 8] {
        [
            [0.0, 0.0],
            [1.0, 0.0],
            [1.0, 1.0],
            [0.0, 1.0],
            [0.5, 0.0],
            [1.0, 0.5],
            [0.5, 1.0],
            [0.0, 0.5],
        ]
    }

    fn matvec16(m: &[f64; 256], x: &[f64; 16]) -> [f64; 16] {
        let mut y = [0.0; 16];
        for r in 0..16 {
            for c in 0..16 {
                y[r] += m[r * 16 + c] * x[c];
            }
        }
        y
    }

    #[test]
    fn shape_functions_partition_unity_and_interpolate() {
        for &(xi, eta) in &[(0.0, 0.0), (0.3, -0.7), (-0.9, 0.2)] {
            let n = shape_functions(xi, eta);
            assert!((n.iter().sum::<f64>() - 1.0).abs() < 1e-13);
        }
        for i in 0..8 {
            let n = shape_functions(XI[i], ETA[i]);
            for j in 0..8 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((n[j] - want).abs() < 1e-13, "N_{j} at node {i}");
            }
        }
    }

    #[test]
    fn derivatives_reproduce_linear_fields() {
        // sum_i N_i * x_i == x for the reference square, so gradients of the
        // interpolated coordinate fields are (1, 0) and (0, 1).
        let coords = unit_square();
        for &(xi, eta) in &[(0.1, -0.3), (0.77, 0.51)] {
            let (_, dx, dy) = physical_gradients(&coords, xi, eta);
            let gx: f64 = (0..8).map(|i| dx[i] * coords[i][0]).sum();
            let gy: f64 = (0..8).map(|i| dy[i] * coords[i][1]).sum();
            let gxy: f64 = (0..8).map(|i| dx[i] * coords[i][1]).sum();
            assert!((gx - 1.0).abs() < 1e-12);
            assert!((gy - 1.0).abs() < 1e-12);
            assert!(gxy.abs() < 1e-12);
        }
    }

    #[test]
    fn stiffness_symmetric_with_rigid_null_space() {
        let coords = unit_square();
        let ke = stiffness(&coords, &Material::unit());
        for r in 0..16 {
            for c in 0..16 {
                assert!((ke[r * 16 + c] - ke[c * 16 + r]).abs() < 1e-11);
            }
        }
        let mut tx = [0.0; 16];
        let mut rot = [0.0; 16];
        for i in 0..8 {
            tx[2 * i] = 1.0;
            rot[2 * i] = -coords[i][1];
            rot[2 * i + 1] = coords[i][0];
        }
        for mode in [tx, rot] {
            for v in matvec16(&ke, &mode) {
                assert!(v.abs() < 1e-10, "rigid-mode force {v}");
            }
        }
    }

    #[test]
    fn quadratic_field_energy_is_exact() {
        // Q8 represents full quadratics: u_x = x^2 gives eps_xx = 2x,
        // energy = t/2 * D00 * int_0^1 int_0^1 (2x)^2 = D00 * 2/3.
        let m = Material::unit();
        let coords = unit_square();
        let ke = stiffness(&coords, &m);
        let mut u = [0.0; 16];
        for i in 0..8 {
            u[2 * i] = coords[i][0] * coords[i][0];
        }
        let ku = matvec16(&ke, &u);
        let e: f64 = u.iter().zip(&ku).map(|(a, b)| a * b).sum::<f64>() / 2.0;
        // Not exact: u_x = x^2 also induces Poisson-coupled terms; check the
        // pure-shear-free bound instead with nu = 0.
        let mut m0 = m;
        m0.poissons_ratio = 0.0;
        let ke0 = stiffness(&coords, &m0);
        let ku0 = matvec16(&ke0, &u);
        let e0: f64 = u.iter().zip(&ku0).map(|(a, b)| a * b).sum::<f64>() / 2.0;
        let want = m0.d_matrix()[0] * 2.0 / 3.0;
        assert!((e0 - want).abs() < 1e-10, "{e0} vs {want}");
        assert!(e > 0.0);
    }

    #[test]
    fn mass_preserves_total_mass() {
        let me = consistent_mass(&unit_square(), &Material::unit());
        let mut tx = [0.0; 16];
        for i in 0..8 {
            tx[2 * i] = 1.0;
        }
        let mx = matvec16(&me, &tx);
        let total: f64 = tx.iter().zip(&mx).map(|(a, b)| a * b).sum();
        assert!((total - 1.0).abs() < 1e-12, "total mass {total}");
    }

    #[test]
    fn q8_cantilever_beats_q4_accuracy_on_same_grid() {
        // Tip-loaded slender cantilever: the Q8 mesh must land closer to
        // Euler-Bernoulli than the Q4 mesh with the same element grid.
        let nx = 8;
        let ny = 1;
        let lx: f64 = 8.0;
        let ly = 1.0;
        let p_total = -1e-3;
        let analytic = p_total * lx.powi(3) / (3.0 * (1.0 / 12.0));
        let mat = Material::unit();

        let q4 = {
            let mesh = parfem_mesh::QuadMesh::rectangle(nx, ny, lx, ly);
            let mut dm = DofMap::new(mesh.n_nodes());
            dm.clamp_edge(&mesh, Edge::Left);
            let mut loads = vec![0.0; dm.n_dofs()];
            assembly::edge_load(&mesh, &dm, Edge::Right, 0.0, p_total, &mut loads);
            let sys = assembly::build_static(&mesh, &dm, &mat, &loads);
            let mut d = sys.stiffness.to_dense();
            let u = dense::solve_dense(sys.stiffness.n_rows(), &mut d, &sys.rhs);
            u[dm.dof(mesh.node_at(nx, ny), 1)]
        };
        let q8 = {
            let mesh = Quad8Mesh::rectangle(nx, ny, lx, ly);
            let mut dm = DofMap::new(mesh.n_nodes());
            for n in mesh.edge_nodes(Edge::Left) {
                dm.clamp_node(n);
            }
            let k = assemble_stiffness(&mesh, &dm, &mat);
            let mut loads = vec![0.0; dm.n_dofs()];
            // Distribute the tip load over the right-edge nodes (3 of them
            // for ny = 1): simple equal split is consistent enough here.
            let right = mesh.edge_nodes(Edge::Right);
            for &n in &right {
                loads[dm.dof(n, 1)] = p_total / right.len() as f64;
            }
            let kbc = assembly::apply_dirichlet(&k, &dm, &mut loads);
            let mut d = kbc.to_dense();
            let u = dense::solve_dense(kbc.n_rows(), &mut d, &loads);
            // Tip = top right corner.
            let tip = right
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    mesh.node_coords(a)[1]
                        .partial_cmp(&mesh.node_coords(b)[1])
                        .unwrap()
                })
                .unwrap();
            u[dm.dof(tip, 1)]
        };
        let err4 = (q4 - analytic).abs();
        let err8 = (q8 - analytic).abs();
        assert!(
            err8 < 0.5 * err4,
            "Q8 must be far more accurate: q4 {q4}, q8 {q8}, beam {analytic}"
        );
    }

    #[test]
    fn assembled_q8_rows_are_denser_than_q4() {
        // Paper Section 5: higher-order elements densify G(K).
        let m8 = Quad8Mesh::rectangle(4, 4, 4.0, 4.0);
        let dm8 = DofMap::new(m8.n_nodes());
        let k8 = assemble_stiffness(&m8, &dm8, &Material::unit());
        let m4 = parfem_mesh::QuadMesh::rectangle(4, 4, 4.0, 4.0);
        let dm4 = DofMap::new(m4.n_nodes());
        let k4 = assembly::assemble_stiffness(&m4, &dm4, &Material::unit());
        let avg8 = k8.nnz() as f64 / k8.n_rows() as f64;
        let avg4 = k4.nnz() as f64 / k4.n_rows() as f64;
        assert!(avg8 > avg4, "Q8 rows {avg8:.1} vs Q4 rows {avg4:.1}");
    }
}
