//! Golden iteration counts for two-level FGMRES: every (system, part
//! count, coarse space, smoother) cell is pinned, so a silent convergence
//! regression — in the coarse construction, the Galerkin assembly, the
//! skyline solve, or the composition — fails loudly.
//!
//! The systems are sequential analogues of the paper's meshes: 2-D 5-point
//! Laplacians cut into hand-built strip partitions (the krylov crate sits
//! below the mesh layer, so partitions are described directly as
//! [`CoarsePartGeometry`]). Alongside the pins, the structural claim the
//! tentpole makes is asserted cell by cell: adding the coarse level never
//! increases the iteration count of its one-level smoother.

use parfem_krylov::gmres::{fgmres_with, GmresConfig};
use parfem_krylov::KrylovWorkspace;
use parfem_precond::twolevel::build_coarse_basis;
use parfem_precond::{CoarsePartGeometry, PrecondSpec};
use parfem_sparse::skyline::DEFAULT_PIVOT_TOL;
use parfem_sparse::{dense, scaling, CooMatrix, CsrMatrix};

/// 2-D 5-point Laplacian on `nx × ny`, with a smooth non-constant load,
/// in scaled form.
fn scaled_laplacian_2d(nx: usize, ny: usize) -> (CsrMatrix, Vec<f64>, Vec<f64>) {
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..nx {
        for j in 0..ny {
            let r = idx(i, j);
            coo.push(r, r, 4.0).unwrap();
            if i + 1 < nx {
                coo.push(r, idx(i + 1, j), -1.0).unwrap();
                coo.push(idx(i + 1, j), r, -1.0).unwrap();
            }
            if j + 1 < ny {
                coo.push(r, idx(i, j + 1), -1.0).unwrap();
                coo.push(idx(i, j + 1), r, -1.0).unwrap();
            }
        }
    }
    let a = coo.to_csr();
    let f: Vec<f64> = (0..n).map(|k| 1.0 + (k as f64 * 0.37).sin()).collect();
    let (scaled, b, sc) = scaling::scale_system(&a, &f).unwrap();
    (scaled, b, sc.diagonal().to_vec())
}

/// Cuts the `nx × ny` grid into `p` contiguous column strips — a scalar
/// "subdomain" partition described directly in coarse-geometry terms.
fn strip_parts(nx: usize, ny: usize, p: usize) -> Vec<CoarsePartGeometry> {
    (0..p)
        .map(|q| {
            let lo = q * nx / p;
            let hi = (q + 1) * nx / p;
            let mut geo = CoarsePartGeometry::default();
            for i in lo..hi {
                for j in 0..ny {
                    geo.dofs.push(i * ny + j);
                    geo.pos.push([i as f64, j as f64, 0.0]);
                    geo.comp.push(0);
                    geo.constrained.push(false);
                }
            }
            geo
        })
        .collect()
}

/// Solves the scaled system through the registry path (spec string →
/// [`PrecondSpec`] → `instantiate_with_coarse`) and returns the converged
/// iteration count.
fn iterations(scaled: &CsrMatrix, b: &[f64], d: &[f64], p: usize, spec_str: &str) -> usize {
    let spec = PrecondSpec::parse(spec_str).expect("test spec parses");
    let coarse = spec.needs_coarse().then(|| {
        let coarse_spec = match &spec {
            PrecondSpec::TwoLevel { coarse, .. } => coarse.clone(),
            _ => unreachable!(),
        };
        let parts = strip_parts(scaled.n_rows() / GRID_NY, GRID_NY, p);
        let ones = vec![1.0; scaled.n_rows()];
        build_coarse_basis(&coarse_spec, &parts, &ones, d, scaled, DEFAULT_PIVOT_TOL).solver()
    });
    let pc = spec.instantiate_with_coarse(coarse, || scaled.diagonal());
    let cfg = GmresConfig {
        restart: 30,
        max_iters: 400,
        tol: 1e-10,
        ..Default::default()
    };
    let x0 = vec![0.0; b.len()];
    let res = fgmres_with(scaled, &pc, b, &x0, &cfg, &mut KrylovWorkspace::new());
    assert!(
        res.history.converged(),
        "{spec_str} (P={p}) did not converge: {:?}",
        res.history.stop
    );
    // The delivered solution must actually meet tolerance on the true
    // residual, not just the Arnoldi estimate.
    let mut r = scaled.spmv(&res.x);
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri -= bi;
    }
    assert!(
        dense::norm2(&r) / dense::norm2(b) <= 1e-9,
        "{spec_str} (P={p}): true residual too large"
    );
    res.history.iterations()
}

const GRID_NX: usize = 24;
const GRID_NY: usize = 16;

/// The golden table: `(P, two-level spec, its one-level smoother, pinned
/// two-level count)`. Counts were recorded from the implementation under
/// test and pin its convergence behaviour exactly.
const GOLDEN: &[(usize, &str, &str, usize)] = &[
    (4, "twolevel:const:gls-3", "gls:3", 22),
    (4, "twolevel:const:neumann-2", "neumann:2", 45),
    (4, "twolevel:lowrank-2:gls-3", "gls:3", 18),
    (8, "twolevel:const:gls-3", "gls:3", 21),
    (8, "twolevel:const:gls-3:add", "gls:3", 27),
    (8, "twolevel:lowrank-4:neumann-2", "neumann:2", 20),
    (12, "twolevel:const:gls-3", "gls:3", 21),
    (12, "twolevel:rbm:gls-3", "gls:3", 21),
    (8, "twolevel:const.s1:gls-3", "gls:3", 20),
    (12, "twolevel:rbm.s2:gls-3", "gls:3", 19),
];

#[test]
fn twolevel_iteration_counts_match_goldens_and_never_exceed_one_level() {
    let (scaled, b, d) = scaled_laplacian_2d(GRID_NX, GRID_NY);
    let mut failures = Vec::new();
    for &(p, two_spec, one_spec, golden) in GOLDEN {
        let two = iterations(&scaled, &b, &d, p, two_spec);
        let one = iterations(&scaled, &b, &d, p, one_spec);
        if two != golden {
            failures.push(format!("{two_spec} (P={p}): got {two}, golden {golden}"));
        }
        // The non-increase contract is for the default (multiplicative)
        // composition; additive trades one operator application per apply
        // for a weaker correction and may cost a few extra iterations.
        if !two_spec.ends_with(":add") && two > one {
            failures.push(format!(
                "{two_spec} (P={p}): {two} iterations exceeds one-level {one_spec} ({one})"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "golden drift:\n{}",
        failures.join("\n")
    );
}

/// The coarse level is what keeps counts flat as the partition refines:
/// one-level counts are P-independent here only because the operator is
/// fixed, but the two-level counts must not *grow* with P either — more
/// parts mean a richer coarse space.
#[test]
fn twolevel_counts_do_not_grow_with_part_count() {
    let (scaled, b, d) = scaled_laplacian_2d(GRID_NX, GRID_NY);
    let counts: Vec<usize> = [2, 4, 8, 12]
        .iter()
        .map(|&p| iterations(&scaled, &b, &d, p, "twolevel:const:gls-3"))
        .collect();
    for w in counts.windows(2) {
        assert!(w[1] <= w[0] + 1, "two-level counts grew with P: {counts:?}");
    }
}
