//! Property-based tests for the Krylov solvers.

use parfem_krylov::cg::{pcg, CgConfig};
use parfem_krylov::gmres::{fgmres, fgmres_with, GmresConfig, Orthogonalization};
use parfem_krylov::KrylovWorkspace;
use parfem_precond::{GlsPrecond, IdentityPrecond, JacobiPrecond};
use parfem_sparse::{CooMatrix, CsrMatrix};
use proptest::prelude::*;

/// Strategy: a random diagonally dominant SPD matrix.
fn spd_matrix(n: usize) -> impl Strategy<Value = CsrMatrix> {
    prop::collection::vec((0..n, 0..n, -1.0..1.0f64), 0..3 * n).prop_map(move |ts| {
        let mut coo = CooMatrix::new(n, n);
        for (r, c, v) in ts {
            coo.push(r, c, v).unwrap();
            coo.push(c, r, v).unwrap();
        }
        let b = coo.to_csr();
        let radius = b.row_abs_sums().into_iter().fold(1.0_f64, f64::max);
        CsrMatrix::from_diagonal(&vec![2.0 * radius; n])
            .add_scaled(1.0, &b)
            .unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gmres_solves_random_spd_systems(a in spd_matrix(14),
                                       xe in prop::collection::vec(-3.0..3.0f64, 14)) {
        let b = a.spmv(&xe);
        let cfg = GmresConfig { tol: 1e-10, ..Default::default() };
        let res = fgmres(&a, &IdentityPrecond, &b, &[0.0; 14], &cfg);
        prop_assert!(res.history.converged());
        let r = a.spmv(&res.x);
        let err: f64 = r.iter().zip(&b).map(|(p, q)| (p - q).powi(2)).sum::<f64>().sqrt();
        let scale: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!(err <= 1e-7 * scale.max(1.0), "residual {}", err);
    }

    #[test]
    fn cg_and_gmres_agree_on_spd_systems(a in spd_matrix(12),
                                         bvec in prop::collection::vec(-2.0..2.0f64, 12)) {
        let gcfg = GmresConfig { tol: 1e-11, ..Default::default() };
        let ccfg = CgConfig { tol: 1e-11, ..Default::default() };
        let g = fgmres(&a, &IdentityPrecond, &bvec, &[0.0; 12], &gcfg);
        let c = pcg(&a, &IdentityPrecond, &bvec, &[0.0; 12], &ccfg);
        prop_assert!(g.history.converged() && c.history.converged());
        for (x, y) in g.x.iter().zip(&c.x) {
            prop_assert!((x - y).abs() < 1e-6 * (1.0 + y.abs()), "{} vs {}", x, y);
        }
    }

    #[test]
    fn preconditioning_never_breaks_correctness(a in spd_matrix(10),
                                                bvec in prop::collection::vec(-2.0..2.0f64, 10)) {
        // Whatever the (SPD) preconditioner, the converged answer is the
        // same solution.
        let cfg = GmresConfig { tol: 1e-11, ..Default::default() };
        let plain = fgmres(&a, &IdentityPrecond, &bvec, &[0.0; 10], &cfg);
        let jac = fgmres(&a, &JacobiPrecond::from_matrix(&a), &bvec, &[0.0; 10], &cfg);
        prop_assert!(plain.history.converged() && jac.history.converged());
        for (x, y) in plain.x.iter().zip(&jac.x) {
            prop_assert!((x - y).abs() < 1e-6 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn orthogonalization_variants_agree(a in spd_matrix(12),
                                        bvec in prop::collection::vec(-2.0..2.0f64, 12)) {
        let cgs = GmresConfig { tol: 1e-10, ortho: Orthogonalization::Classical, ..Default::default() };
        let mgs = GmresConfig { tol: 1e-10, ortho: Orthogonalization::Modified, ..Default::default() };
        let rc = fgmres(&a, &IdentityPrecond, &bvec, &[0.0; 12], &cgs);
        let rm = fgmres(&a, &IdentityPrecond, &bvec, &[0.0; 12], &mgs);
        prop_assert!(rc.history.converged() && rm.history.converged());
        for (x, y) in rc.x.iter().zip(&rm.x) {
            prop_assert!((x - y).abs() < 1e-5 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn gls_preconditioned_gmres_solves_scaled_systems(a in spd_matrix(12),
                                                      xe in prop::collection::vec(-2.0..2.0f64, 12)) {
        // Scale to (0,1) then precondition with GLS(5).
        let f = a.spmv(&xe);
        let (scaled, b, sc) = parfem_sparse::scaling::scale_system(&a, &f).unwrap();
        let cfg = GmresConfig { tol: 1e-10, ..Default::default() };
        let gls = GlsPrecond::for_scaled_system(5);
        let res = fgmres(&scaled, &gls, &b, &[0.0; 12], &cfg);
        prop_assert!(res.history.converged());
        let u = sc.unscale_solution(&res.x);
        for (ui, ei) in u.iter().zip(&xe) {
            prop_assert!((ui - ei).abs() < 1e-5 * (1.0 + ei.abs()), "{} vs {}", ui, ei);
        }
    }

    #[test]
    fn history_is_internally_consistent(a in spd_matrix(10),
                                        bvec in prop::collection::vec(-1.0..1.0f64, 10)) {
        let cfg = GmresConfig { tol: 1e-8, ..Default::default() };
        let res = fgmres(&a, &IdentityPrecond, &bvec, &[0.0; 10], &cfg);
        let h = &res.history;
        prop_assert_eq!(h.relative_residuals[0], 1.0);
        if h.converged() && h.relative_residuals.len() > 1 {
            prop_assert!(h.final_residual() <= 1e-8 + 1e-15);
        }
        prop_assert_eq!(h.iterations() + 1, h.relative_residuals.len());
    }

    #[test]
    fn workspace_reuse_is_bit_identical(a1 in spd_matrix(12),
                                        a2 in spd_matrix(12),
                                        b1 in prop::collection::vec(-2.0..2.0f64, 12),
                                        b2 in prop::collection::vec(-2.0..2.0f64, 12)) {
        // A solve through a reused (dirty) workspace must match the
        // allocating entry point bit-for-bit — `fgmres` is just
        // `fgmres_with` on a throwaway workspace.
        let cfg = GmresConfig { tol: 1e-10, ..Default::default() };
        let mut ws = KrylovWorkspace::new();

        let w1 = fgmres_with(&a1, &IdentityPrecond, &b1, &[0.0; 12], &cfg, &mut ws);
        let f1 = fgmres(&a1, &IdentityPrecond, &b1, &[0.0; 12], &cfg);
        prop_assert_eq!(&w1.x, &f1.x);
        prop_assert_eq!(&w1.history.relative_residuals, &f1.history.relative_residuals);

        // Second solve reuses the now-warm workspace on a different system,
        // with a polynomial preconditioner so the scratch pool is exercised.
        let (scaled, bs, _) = parfem_sparse::scaling::scale_system(&a2, &b2).unwrap();
        let gls = GlsPrecond::for_scaled_system(5);
        let w2 = fgmres_with(&scaled, &gls, &bs, &[0.0; 12], &cfg, &mut ws);
        let f2 = fgmres(&scaled, &gls, &bs, &[0.0; 12], &cfg);
        prop_assert_eq!(&w2.x, &f2.x);
        prop_assert_eq!(&w2.history.relative_residuals, &f2.history.relative_residuals);
    }
}
