//! Mixed-precision accuracy harness: running the GLS / Neumann polynomial
//! recurrence in `f32` must not change what the outer `f64` FGMRES delivers.
//!
//! Flexible GMRES only needs the preconditioner to be some bounded operator,
//! so the single-precision mirrors are licensed as long as the polynomial's
//! own approximation error dominates the downcast rounding. This harness
//! pins that claim two ways:
//!
//! 1. **Golden iteration counts**: the `f32` path takes *exactly* as many
//!    iterations as the `f64` path on the reference systems, and both match
//!    hard-coded goldens so a silent convergence regression (in either
//!    precision) fails loudly.
//! 2. **Final residuals**: the delivered solution, measured as a true
//!    `f64` residual `‖b − A x‖ / ‖b‖` against the original operator,
//!    meets the solver tolerance on both paths.

use parfem_krylov::gmres::{fgmres_with, GmresConfig};
use parfem_krylov::KrylovWorkspace;
use parfem_precond::{
    GlsPrecond, GlsPrecondF32, NeumannPrecond, NeumannPrecondF32, Preconditioner,
};
use parfem_sparse::{dense, scaling, CooMatrix, CsrMatrix};

/// Deterministic SPD reference system: a 2-D 5-point Laplacian on an
/// `nx × ny` grid (the sequential analogue of the paper's subdomain
/// stiffness blocks), plus its scaled form and right-hand side.
fn scaled_laplacian_2d(nx: usize, ny: usize) -> (CsrMatrix, Vec<f64>, CsrMatrix, Vec<f64>) {
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..nx {
        for j in 0..ny {
            let r = idx(i, j);
            coo.push(r, r, 4.0).unwrap();
            if i + 1 < nx {
                coo.push(r, idx(i + 1, j), -1.0).unwrap();
                coo.push(idx(i + 1, j), r, -1.0).unwrap();
            }
            if j + 1 < ny {
                coo.push(r, idx(i, j + 1), -1.0).unwrap();
                coo.push(idx(i, j + 1), r, -1.0).unwrap();
            }
        }
    }
    let a = coo.to_csr();
    // A smooth, non-constant load so convergence exercises many modes.
    let f: Vec<f64> = (0..n).map(|k| 1.0 + (k as f64 * 0.37).sin()).collect();
    let (scaled, b, _) = scaling::scale_system(&a, &f).unwrap();
    (a, f, scaled, b)
}

/// Solves the scaled system with the given preconditioner and returns
/// `(iterations, true scaled-system relative residual)`.
fn solve_with<P: Preconditioner<CsrMatrix>>(
    scaled: &CsrMatrix,
    b: &[f64],
    precond: &P,
) -> (usize, f64) {
    let cfg = GmresConfig {
        restart: 30,
        max_iters: 400,
        tol: 1e-10,
        ..Default::default()
    };
    let x0 = vec![0.0; b.len()];
    let mut ws = KrylovWorkspace::new();
    let res = fgmres_with(scaled, precond, b, &x0, &cfg, &mut ws);
    assert!(
        res.history.converged(),
        "{} did not converge: {:?}",
        precond.name(),
        res.history.stop
    );
    let mut r = scaled.spmv(&res.x);
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri -= bi;
    }
    (res.history.iterations(), dense::norm2(&r) / dense::norm2(b))
}

#[test]
fn gls7_f32_matches_f64_iteration_for_iteration() {
    let (_, _, scaled, b) = scaled_laplacian_2d(24, 24);

    let f64_precond = GlsPrecond::for_scaled_system(7);
    let f32_precond = GlsPrecondF32::for_scaled_system(7).with_matrix(&scaled);
    let (iters_f64, res_f64) = solve_with(&scaled, &b, &f64_precond);
    let (iters_f32, res_f32) = solve_with(&scaled, &b, &f32_precond);

    // Golden counts: a change in either precision's convergence behaviour
    // must be a conscious decision, not drift.
    assert_eq!(iters_f64, 14, "f64 GLS(7) golden iteration count moved");
    assert_eq!(
        iters_f32, iters_f64,
        "f32 GLS(7) changed the iteration count"
    );
    assert!(res_f64 <= 1e-10, "f64 final residual {res_f64}");
    assert!(res_f32 <= 1e-10, "f32 final residual {res_f32}");
}

#[test]
fn gls7_f32_cast_through_path_matches_too() {
    // Without an attached matrix the recurrence stages through the f64
    // operator (the distributed solvers' path) — same pinned behaviour.
    let (_, _, scaled, b) = scaled_laplacian_2d(24, 24);

    let f64_precond = GlsPrecond::for_scaled_system(7);
    let f32_precond = GlsPrecondF32::for_scaled_system(7);
    let (iters_f64, _) = solve_with(&scaled, &b, &f64_precond);
    let (iters_f32, res_f32) = solve_with(&scaled, &b, &f32_precond);

    assert_eq!(
        iters_f32, iters_f64,
        "cast-through f32 GLS(7) diverged from f64"
    );
    assert!(res_f32 <= 1e-10, "cast-through final residual {res_f32}");
}

#[test]
fn neumann_f32_matches_f64_iteration_for_iteration() {
    let (_, _, scaled, b) = scaled_laplacian_2d(24, 24);

    let f64_precond = NeumannPrecond::for_scaled_system(7);
    let f32_precond = NeumannPrecondF32::for_scaled_system(7).with_matrix(&scaled);
    let (iters_f64, res_f64) = solve_with(&scaled, &b, &f64_precond);
    let (iters_f32, res_f32) = solve_with(&scaled, &b, &f32_precond);

    assert_eq!(iters_f64, 29, "f64 Neumann(7) golden iteration count moved");
    assert_eq!(
        iters_f32, iters_f64,
        "f32 Neumann(7) changed the iteration count"
    );
    assert!(res_f64 <= 1e-10, "f64 final residual {res_f64}");
    assert!(res_f32 <= 1e-10, "f32 final residual {res_f32}");
}

#[test]
fn mixed_precision_solutions_agree_to_solver_tolerance() {
    // The two solutions are distinct floating-point objects, but both must
    // solve the *original* (unscaled) system to the outer tolerance: the
    // f32 recurrence may perturb the path, never the destination.
    let (a, f, scaled, b) = scaled_laplacian_2d(24, 24);
    let s = scaling::DiagonalScaling::from_matrix(&a).unwrap();

    for (name, x_scaled) in [
        ("gls7-f64", {
            let p = GlsPrecond::for_scaled_system(7);
            let cfg = GmresConfig {
                restart: 30,
                max_iters: 400,
                tol: 1e-10,
                ..Default::default()
            };
            let x0 = vec![0.0; b.len()];
            let mut ws = KrylovWorkspace::new();
            fgmres_with(&scaled, &p, &b, &x0, &cfg, &mut ws).x
        }),
        ("gls7-f32", {
            let p = GlsPrecondF32::for_scaled_system(7).with_matrix(&scaled);
            let cfg = GmresConfig {
                restart: 30,
                max_iters: 400,
                tol: 1e-10,
                ..Default::default()
            };
            let x0 = vec![0.0; b.len()];
            let mut ws = KrylovWorkspace::new();
            fgmres_with(&scaled, &p, &b, &x0, &cfg, &mut ws).x
        }),
    ] {
        // Unscale: u = D x.
        let u: Vec<f64> = x_scaled
            .iter()
            .zip(s.diagonal())
            .map(|(xi, di)| xi * di)
            .collect();
        let mut r = a.spmv(&u);
        for (ri, fi) in r.iter_mut().zip(&f) {
            *ri -= fi;
        }
        let rel = dense::norm2(&r) / dense::norm2(&f);
        assert!(rel <= 1e-9, "{name}: unscaled residual {rel}");
    }
}
