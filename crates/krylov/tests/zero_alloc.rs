//! Counting-allocator regression test: after a workspace is warm, the
//! FGMRES restart/iteration loop performs zero heap allocation. The only
//! per-solve allocations left are the result vectors (`x` clone and the
//! residual history), whose count does not depend on how many iterations
//! run — which is exactly what this test pins down.

use parfem_krylov::gmres::{fgmres_with, GmresConfig};
use parfem_krylov::KrylovWorkspace;
use parfem_precond::{GlsPrecond, IdentityPrecond, Preconditioner};
use parfem_sparse::{scaling, variant, CooMatrix, CsrMatrix, KernelPolicy, LinearOperator};
use parfem_trace::alloc::{self, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A deterministic diagonally dominant SPD test matrix (1-D Laplacian plus
/// a strong diagonal shift).
fn laplacian(n: usize) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 4.0).unwrap();
        if i + 1 < n {
            coo.push(i, i + 1, -1.0).unwrap();
            coo.push(i + 1, i, -1.0).unwrap();
        }
    }
    coo.to_csr()
}

/// Runs one solve and returns the allocation-call delta it caused.
///
/// The counters are process-global, so unrelated allocations (libtest's
/// harness machinery, lazy std initialization) can land inside the measured
/// window. Noise only ever *adds* counts, so the minimum over a few repeats
/// recovers the deterministic per-solve cost — while a genuine
/// per-iteration allocation would inflate every repeat alike.
fn alloc_delta<Op, P>(
    op: &Op,
    precond: &P,
    b: &[f64],
    cfg: &GmresConfig,
    ws: &mut KrylovWorkspace,
) -> u64
where
    Op: LinearOperator + ?Sized,
    P: Preconditioner<Op> + ?Sized,
{
    let x0 = vec![0.0; b.len()];
    (0..3)
        .map(|_| {
            let start = alloc::stats();
            let res = fgmres_with(op, precond, b, &x0, cfg, ws);
            let delta = alloc::stats().since(start);
            assert!(res.x.iter().all(|v| v.is_finite()));
            delta.count
        })
        .min()
        .unwrap()
}

#[test]
fn warm_workspace_alloc_count_is_independent_of_iteration_count() {
    assert!(alloc::is_counting(), "counting allocator not installed");
    let n = 64;
    let a = laplacian(n);
    let b = vec![1.0; n];

    // tol = 0 forces the solver to run out the full iteration budget, so
    // the two runs below differ only in how many iterations execute.
    let short = GmresConfig {
        restart: 10,
        max_iters: 5,
        tol: 0.0,
        ..Default::default()
    };
    let long = GmresConfig {
        max_iters: 80,
        ..short
    };

    let mut ws = KrylovWorkspace::new();
    // Warm-up: sizes the basis, Hessenberg, and residual buffers.
    alloc_delta(&a, &IdentityPrecond, &b, &long, &mut ws);

    let d_short = alloc_delta(&a, &IdentityPrecond, &b, &short, &mut ws);
    let d_long = alloc_delta(&a, &IdentityPrecond, &b, &long, &mut ws);
    assert_eq!(
        d_short, d_long,
        "iteration loop allocated: 5 iters cost {d_short} calls, 80 iters cost {d_long}"
    );
}

#[test]
fn warm_workspace_alloc_count_is_iteration_free_with_polynomial_precond() {
    assert!(alloc::is_counting(), "counting allocator not installed");
    let n = 48;
    let a = laplacian(n);
    let f = vec![1.0; n];
    // GLS preconditioning assumes the system is scaled into (0, 1).
    let (scaled, b, _) = scaling::scale_system(&a, &f).unwrap();
    let gls = GlsPrecond::for_scaled_system(7);

    let short = GmresConfig {
        restart: 8,
        max_iters: 4,
        tol: 0.0,
        ..Default::default()
    };
    let long = GmresConfig {
        max_iters: 64,
        ..short
    };

    let mut ws = KrylovWorkspace::new();
    alloc_delta(&scaled, &gls, &b, &long, &mut ws);

    let d_short = alloc_delta(&scaled, &gls, &b, &short, &mut ws);
    let d_long = alloc_delta(&scaled, &gls, &b, &long, &mut ws);
    assert_eq!(
        d_short, d_long,
        "preconditioned loop allocated: 4 iters cost {d_short} calls, 64 iters cost {d_long}"
    );
}

#[test]
fn every_kernel_variant_is_iteration_free() {
    assert!(alloc::is_counting(), "counting allocator not installed");
    let n = 64; // even, so the 2x2 block format is admissible
    let a = laplacian(n);
    let b = vec![1.0; n];

    for policy in [
        KernelPolicy::Scalar,
        KernelPolicy::Simd,
        KernelPolicy::SellCSigma,
        KernelPolicy::Bcsr2x2,
        KernelPolicy::Auto,
    ] {
        // The selection itself may allocate (format conversion, probe
        // buffers); once selected, the iteration loop must not.
        let op = variant::select(&a, policy);
        let short = GmresConfig {
            restart: 10,
            max_iters: 5,
            tol: 0.0,
            kernels: policy,
            ..Default::default()
        };
        let long = GmresConfig {
            max_iters: 80,
            ..short
        };

        let mut ws = KrylovWorkspace::new();
        alloc_delta(&op, &IdentityPrecond, &b, &long, &mut ws);

        let d_short = alloc_delta(&op, &IdentityPrecond, &b, &short, &mut ws);
        let d_long = alloc_delta(&op, &IdentityPrecond, &b, &long, &mut ws);
        assert_eq!(
            d_short,
            d_long,
            "{policy:?} ({}) allocated in the loop: 5 iters cost {d_short} calls, \
             80 iters cost {d_long}",
            op.choice().label(),
        );
    }
}
