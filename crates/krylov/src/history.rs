//! Convergence histories.

/// Why a solve stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The relative residual dropped below the tolerance.
    Converged,
    /// The iteration budget was exhausted.
    MaxIterations,
    /// The Arnoldi process broke down with an (numerically) invariant
    /// subspace — for a consistent system this implies an exact solution.
    Breakdown,
}

/// Per-iteration record of a Krylov solve.
#[derive(Debug, Clone)]
pub struct ConvergenceHistory {
    /// Relative residual norms `‖r_i‖₂ / ‖r_0‖₂`, starting at 1.
    pub relative_residuals: Vec<f64>,
    /// Why the iteration stopped.
    pub stop: StopReason,
    /// Number of restart cycles performed (GMRES only; 0 otherwise).
    pub restarts: usize,
}

impl ConvergenceHistory {
    /// Total inner iterations performed.
    pub fn iterations(&self) -> usize {
        self.relative_residuals.len().saturating_sub(1)
    }

    /// Whether the solve converged.
    pub fn converged(&self) -> bool {
        self.stop == StopReason::Converged || self.stop == StopReason::Breakdown
    }

    /// The final relative residual.
    pub fn final_residual(&self) -> f64 {
        *self
            .relative_residuals
            .last()
            .expect("history always holds the initial residual")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_accessors() {
        let h = ConvergenceHistory {
            relative_residuals: vec![1.0, 0.1, 1e-7],
            stop: StopReason::Converged,
            restarts: 0,
        };
        assert_eq!(h.iterations(), 2);
        assert!(h.converged());
        assert_eq!(h.final_residual(), 1e-7);
    }

    #[test]
    fn non_convergence_is_reported() {
        let h = ConvergenceHistory {
            relative_residuals: vec![1.0, 0.9],
            stop: StopReason::MaxIterations,
            restarts: 3,
        };
        assert!(!h.converged());
        assert_eq!(h.restarts, 3);
    }
}
