//! Sequential Krylov solvers for the `parfem` stack.
//!
//! - [`gmres`] — restarted flexible GMRES (the paper's Algorithm 1): Arnoldi
//!   with classical Gram–Schmidt (the variant the paper parallelizes),
//!   Givens-rotation least squares, and flexible per-iteration
//!   preconditioning,
//! - [`cg`] — conjugate gradients, the textbook SPD baseline,
//! - [`history`] — convergence histories consumed by the experiment harness
//!   (the per-iteration relative residuals plotted in Figs. 10–14).

#![deny(missing_docs)]
#![warn(clippy::all)]
// Indexed `for r in 0..n` loops are the idiomatic form for the sparse/FEM
// kernels in this workspace (the index feeds several arrays and the CSR
// row spans at once); the iterator forms clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]

pub mod cg;
pub mod givens;
pub mod gmres;
pub mod history;
pub mod lanczos;
pub mod workspace;

pub use gmres::{
    fgmres, fgmres_traced, fgmres_traced_with, fgmres_with, GmresConfig, Orthogonalization,
};
pub use history::{ConvergenceHistory, StopReason};
pub use lanczos::estimate_spectrum;
pub use workspace::KrylovWorkspace;
