//! Givens plane rotations for the GMRES least-squares update.
//!
//! GMRES reduces the `(j+2)×(j+1)` Hessenberg least-squares problem
//! `min‖βe₁ − H̄y‖` to triangular form one column at a time with plane
//! rotations; the running `|g_{j+1}|` is exactly the current residual norm,
//! giving the per-iteration convergence monitor for free.

/// A plane rotation `(c, s)` with `c² + s² = 1`.
#[derive(Debug, Clone, Copy)]
pub struct Givens {
    /// Cosine component.
    pub c: f64,
    /// Sine component.
    pub s: f64,
}

impl Givens {
    /// Computes the rotation annihilating `b` against `a`:
    /// `[c s; -s c]ᵀ [a; b] = [r; 0]` with `r = √(a² + b²)`.
    pub fn compute(a: f64, b: f64) -> (Givens, f64) {
        if b == 0.0 {
            return (Givens { c: 1.0, s: 0.0 }, a);
        }
        let r = a.hypot(b);
        (Givens { c: a / r, s: b / r }, r)
    }

    /// Applies the rotation to the pair `(x, y)`.
    #[inline]
    pub fn apply(&self, x: f64, y: f64) -> (f64, f64) {
        (self.c * x + self.s * y, -self.s * x + self.c * y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_annihilates_second_component() {
        let (g, r) = Givens::compute(3.0, 4.0);
        assert!((r - 5.0).abs() < 1e-14);
        let (x, y) = g.apply(3.0, 4.0);
        assert!((x - 5.0).abs() < 1e-14);
        assert!(y.abs() < 1e-14);
    }

    #[test]
    fn zero_b_is_identity() {
        let (g, r) = Givens::compute(7.0, 0.0);
        assert_eq!(r, 7.0);
        let (x, y) = g.apply(2.0, 3.0);
        assert_eq!((x, y), (2.0, 3.0));
    }

    #[test]
    fn rotation_preserves_norms() {
        let (g, _) = Givens::compute(1.0, 2.0);
        let (x, y) = g.apply(-3.0, 0.5);
        let before = (-3.0f64).hypot(0.5);
        let after = x.hypot(y);
        assert!((before - after).abs() < 1e-14);
    }

    #[test]
    fn negative_components() {
        let (g, r) = Givens::compute(-3.0, -4.0);
        assert!((r.abs() - 5.0).abs() < 1e-14);
        let (_, y) = g.apply(-3.0, -4.0);
        assert!(y.abs() < 1e-14);
    }
}
