//! Lanczos spectrum estimation (Ritz values).
//!
//! The paper's Fig. 10 shows GLS convergence is governed by the quality of
//! the spectrum estimate `Θ`; after norm-1 scaling it settles for the safe
//! `Θ = (ε, 1)`. The practical instrument for a *sharper* estimate is a
//! short Lanczos run: for symmetric `A` the Krylov process produces a small
//! tridiagonal matrix whose eigenvalues (Ritz values) converge to `σ(A)`'s
//! extremes first. Thirty matvecs typically pin `λ_max` to several digits
//! and give a usable `λ_min` floor.

use parfem_sparse::{dense, LinearOperator};

/// Runs `steps` Lanczos iterations on the symmetric operator `op` with full
/// reorthogonalization (robust for estimation purposes), returning the
/// tridiagonal coefficients `(alpha, beta)` with `alpha.len() == k` and
/// `beta.len() == k-1` for the `k ≤ steps` completed steps.
///
/// # Panics
/// Panics for a zero-dimensional operator.
pub fn lanczos_tridiagonal<Op: LinearOperator + ?Sized>(
    op: &Op,
    steps: usize,
) -> (Vec<f64>, Vec<f64>) {
    let n = op.dim();
    assert!(n > 0, "lanczos: empty operator");
    let steps = steps.min(n);

    // Deterministic pseudo-random start.
    let mut state = 0x243f_6a88_85a3_08d3_u64;
    let mut v: Vec<f64> = (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect();
    let nv = dense::norm2(&v).max(1e-300);
    dense::scale(1.0 / nv, &mut v);

    let mut basis: Vec<Vec<f64>> = vec![v.clone()];
    let mut alpha = Vec::with_capacity(steps);
    let mut beta: Vec<f64> = Vec::with_capacity(steps.saturating_sub(1));
    let mut w = vec![0.0; n];

    for k in 0..steps {
        op.apply_into(&basis[k], &mut w);
        let a_k = dense::dot(&w, &basis[k]);
        alpha.push(a_k);
        // w -= alpha_k v_k + beta_{k-1} v_{k-1}; then full reorth.
        dense::axpy(-a_k, &basis[k], &mut w);
        if k > 0 {
            dense::axpy(-beta[k - 1], &basis[k - 1], &mut w);
        }
        for vb in &basis {
            let h = dense::dot(&w, vb);
            dense::axpy(-h, vb, &mut w);
        }
        let b_k = dense::norm2(&w);
        if k + 1 == steps {
            break;
        }
        if b_k < 1e-13 * alpha[0].abs().max(1.0) {
            break; // invariant subspace: Ritz values are exact
        }
        beta.push(b_k);
        let mut v_next = w.clone();
        dense::scale(1.0 / b_k, &mut v_next);
        basis.push(v_next);
    }
    (alpha, beta)
}

/// Eigenvalues of the symmetric tridiagonal matrix with diagonal `alpha`
/// and off-diagonal `beta`, by the implicit-shift QL algorithm, ascending.
///
/// # Panics
/// Panics on inconsistent lengths or failure to converge (more than 50
/// sweeps per eigenvalue — unreachable for well-formed input).
pub fn sym_tridiag_eigenvalues(alpha: &[f64], beta: &[f64]) -> Vec<f64> {
    let n = alpha.len();
    assert!(
        beta.len() + 1 == n || (n == 0 && beta.is_empty()),
        "tridiagonal shape mismatch"
    );
    if n == 0 {
        return Vec::new();
    }
    let mut d = alpha.to_vec();
    // e[0..n-1] sub-diagonal, e[n-1] scratch zero.
    let mut e = vec![0.0; n];
    e[..(n - 1)].copy_from_slice(beta);

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small off-diagonal to split at.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(iter <= 50, "QL failed to converge");
            // Implicit shift from the 2x2 at the bottom of the block.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0, 1.0);
            let mut p = 0.0;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                f = 0.0;
                let _ = f;
            }
            if r == 0.0 && m > l + 1 {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    d.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN eigenvalues"));
    d
}

/// Estimated spectrum `(λ_min, λ_max)` of a symmetric operator from `steps`
/// Lanczos iterations, with small safety margins (Ritz values bracket the
/// spectrum from inside: the max is inflated by 2%, the min deflated by
/// 50% because the smallest Ritz value converges slowest).
pub fn estimate_spectrum<Op: LinearOperator + ?Sized>(op: &Op, steps: usize) -> (f64, f64) {
    let (alpha, beta) = lanczos_tridiagonal(op, steps);
    let eigs = sym_tridiag_eigenvalues(&alpha, &beta);
    let lmin = *eigs.first().expect("at least one Ritz value");
    let lmax = *eigs.last().expect("at least one Ritz value");
    (lmin * 0.5, lmax * 1.02)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfem_sparse::{CooMatrix, CsrMatrix};

    fn laplacian(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
                coo.push(i + 1, i, -1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    fn laplacian_extremes(n: usize) -> (f64, f64) {
        let h = std::f64::consts::PI / (n as f64 + 1.0);
        (2.0 - 2.0 * h.cos(), 2.0 - 2.0 * ((n as f64) * h).cos())
    }

    #[test]
    fn tridiag_eigenvalues_of_known_matrices() {
        // Diagonal matrix: eigenvalues are the diagonal.
        let eigs = sym_tridiag_eigenvalues(&[3.0, 1.0, 2.0], &[0.0, 0.0]);
        assert_eq!(eigs.len(), 3);
        assert!((eigs[0] - 1.0).abs() < 1e-12);
        assert!((eigs[2] - 3.0).abs() < 1e-12);

        // 2x2 [[2, 1], [1, 2]]: eigenvalues 1, 3.
        let eigs = sym_tridiag_eigenvalues(&[2.0, 2.0], &[1.0]);
        assert!((eigs[0] - 1.0).abs() < 1e-12);
        assert!((eigs[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn tridiag_eigenvalues_match_laplacian_closed_form() {
        // The full tridiagonal Laplacian: all eigenvalues known.
        let n = 12;
        let alpha = vec![2.0; n];
        let beta = vec![-1.0; n - 1];
        let eigs = sym_tridiag_eigenvalues(&alpha, &beta);
        let h = std::f64::consts::PI / (n as f64 + 1.0);
        for (k, e) in eigs.iter().enumerate() {
            let exact = 2.0 - 2.0 * ((k as f64 + 1.0) * h).cos();
            assert!((e - exact).abs() < 1e-10, "eig {k}: {e} vs {exact}");
        }
    }

    #[test]
    fn lanczos_ritz_values_bracket_the_spectrum() {
        let a = laplacian(60);
        let (alpha, beta) = lanczos_tridiagonal(&a, 25);
        let eigs = sym_tridiag_eigenvalues(&alpha, &beta);
        let (lmin, lmax) = laplacian_extremes(60);
        // Ritz values are inside the spectrum...
        assert!(*eigs.first().unwrap() >= lmin - 1e-10);
        assert!(*eigs.last().unwrap() <= lmax + 1e-10);
        // ...and the top one converges fast (the Laplacian's top eigenvalues
        // cluster, so "fast" here means a few parts in a thousand).
        assert!(
            (eigs.last().unwrap() - lmax).abs() < 5e-3 * lmax,
            "top Ritz {} vs {}",
            eigs.last().unwrap(),
            lmax
        );
    }

    #[test]
    fn estimate_spectrum_brackets_with_margins() {
        let a = laplacian(40);
        let (lo, hi) = estimate_spectrum(&a, 30);
        let (lmin, lmax) = laplacian_extremes(40);
        assert!(lo <= lmin, "floor {lo} must not exceed lambda_min {lmin}");
        assert!(hi >= lmax, "cap {hi} must cover lambda_max {lmax}");
        assert!(hi < 1.2 * lmax, "cap {hi} not wildly loose");
    }

    #[test]
    fn lanczos_exact_on_small_operators() {
        // steps >= n: Ritz values equal the exact spectrum.
        let a = laplacian(6);
        let (alpha, beta) = lanczos_tridiagonal(&a, 6);
        let eigs = sym_tridiag_eigenvalues(&alpha, &beta);
        let h = std::f64::consts::PI / 7.0;
        for (k, e) in eigs.iter().enumerate() {
            let exact = 2.0 - 2.0 * ((k as f64 + 1.0) * h).cos();
            assert!((e - exact).abs() < 1e-8, "eig {k}: {e} vs {exact}");
        }
    }

    #[test]
    fn single_step_gives_rayleigh_quotient() {
        let a = CsrMatrix::from_diagonal(&[1.0, 2.0, 3.0]);
        let (alpha, beta) = lanczos_tridiagonal(&a, 1);
        assert_eq!(alpha.len(), 1);
        assert!(beta.is_empty());
        assert!(alpha[0] >= 1.0 && alpha[0] <= 3.0);
    }
}
