//! Restarted flexible GMRES (the paper's Algorithm 1).
//!
//! Flexible GMRES stores the preconditioned vectors `z_j = C v_j` and builds
//! the solution update from them (`x = x₀ + Z y`), which permits a different
//! preconditioner at every iteration — the property that lets the paper
//! swap polynomial preconditioners freely. With right-style application
//! (`w = A z_j`) the Givens residual estimate is the *true* residual norm,
//! so the convergence monitor `‖r_i‖/‖r₀‖ ≤ tol` of the paper's Section 6
//! comes for free.
//!
//! Orthogonalization is **classical Gram–Schmidt**, matching the parallel
//! Algorithms 5/6/8 (classical GS batches the inner products into one
//! global reduction, which is why the paper chooses it); the restart
//! dimension default is the paper's `m̃ = 25`.

use crate::givens::Givens;
use crate::history::{ConvergenceHistory, StopReason};
use crate::workspace::KrylovWorkspace;
use parfem_precond::Preconditioner;
use parfem_sparse::{dense, kernels, simd, KernelPolicy, LinearOperator};
use parfem_trace::{EventKind, RankTracer, Value};

/// Arnoldi orthogonalization scheme.
///
/// The paper's parallel algorithms use **classical** Gram–Schmidt because
/// it batches all inner products of an iteration into a single global
/// reduction; **modified** Gram–Schmidt is numerically sturdier but costs
/// one reduction per basis vector in a distributed setting. The sequential
/// solver offers both for the ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Orthogonalization {
    /// Classical Gram–Schmidt (one batched reduction; the paper's choice).
    #[default]
    Classical,
    /// Modified Gram–Schmidt (sequential projections).
    Modified,
}

/// Configuration for [`fgmres`].
#[derive(Debug, Clone, Copy)]
pub struct GmresConfig {
    /// Krylov subspace dimension between restarts (the paper's `m̃`).
    pub restart: usize,
    /// Maximum total inner iterations.
    pub max_iters: usize,
    /// Relative residual tolerance `‖r‖/‖r₀‖` (the paper uses `1e-6`).
    pub tol: f64,
    /// Gram–Schmidt variant.
    pub ortho: Orthogonalization,
    /// Vector-kernel policy for the iteration loop. [`KernelPolicy::Scalar`]
    /// (the default) keeps the bit-identical golden-reference kernels; any
    /// other policy switches the classical Gram–Schmidt reductions to the
    /// lane kernels of [`parfem_sparse::simd`] (results agree to ULP
    /// bounds, pinned by the kernel-equivalence tests). The *operator*
    /// variant is chosen by the caller — pass a
    /// [`parfem_sparse::SelectedKernel`] as `op` to pair both.
    pub kernels: KernelPolicy,
}

impl Default for GmresConfig {
    fn default() -> Self {
        GmresConfig {
            restart: 25,
            max_iters: 10_000,
            tol: 1e-6,
            ortho: Orthogonalization::Classical,
            kernels: KernelPolicy::Scalar,
        }
    }
}

/// Result of a GMRES solve.
#[derive(Debug, Clone)]
pub struct GmresResult {
    /// The computed solution.
    pub x: Vec<f64>,
    /// The convergence history.
    pub history: ConvergenceHistory,
}

/// Solves `A x = b` by restarted flexible GMRES.
///
/// ```
/// use parfem_krylov::{fgmres, GmresConfig};
/// use parfem_precond::IdentityPrecond;
/// use parfem_sparse::CsrMatrix;
///
/// let a = CsrMatrix::from_dense(2, 2, &[2.0, -1.0, -1.0, 2.0]);
/// let res = fgmres(&a, &IdentityPrecond, &[1.0, 0.0], &[0.0, 0.0],
///                  &GmresConfig::default());
/// assert!(res.history.converged());
/// assert!((res.x[0] - 2.0 / 3.0).abs() < 1e-6);
/// ```
///
/// # Panics
/// Panics on dimension mismatches or a zero restart dimension.
pub fn fgmres<Op, P>(op: &Op, precond: &P, b: &[f64], x0: &[f64], cfg: &GmresConfig) -> GmresResult
where
    Op: LinearOperator + ?Sized,
    P: Preconditioner<Op> + ?Sized,
{
    fgmres_traced(op, precond, b, x0, cfg, None)
}

/// [`fgmres`] with a caller-owned [`KrylovWorkspace`].
///
/// The workspace self-sizes on first use; once warm, restarts and
/// iterations perform **no heap allocation**, and the result is
/// bit-identical to [`fgmres`] (which is just this function with a
/// throwaway workspace). Reuse one workspace across the repeated solves of
/// a time-stepping or parameter-sweep loop to take per-solve allocation off
/// the hot path.
pub fn fgmres_with<Op, P>(
    op: &Op,
    precond: &P,
    b: &[f64],
    x0: &[f64],
    cfg: &GmresConfig,
    ws: &mut KrylovWorkspace,
) -> GmresResult
where
    Op: LinearOperator + ?Sized,
    P: Preconditioner<Op> + ?Sized,
{
    fgmres_traced_with(op, precond, b, x0, cfg, None, ws)
}

/// [`fgmres`] with optional tracing: brackets the solve in an `fgmres` span
/// and emits one [`EventKind::Iter`] event per inner iteration (relative
/// residual, restart index, cycle, active preconditioner degree). The
/// sequential solver has no virtual clock, so event times carry wall time
/// only (`tv = 0`).
pub fn fgmres_traced<Op, P>(
    op: &Op,
    precond: &P,
    b: &[f64],
    x0: &[f64],
    cfg: &GmresConfig,
    tracer: Option<&RankTracer>,
) -> GmresResult
where
    Op: LinearOperator + ?Sized,
    P: Preconditioner<Op> + ?Sized,
{
    let mut ws = KrylovWorkspace::new();
    fgmres_traced_with(op, precond, b, x0, cfg, tracer, &mut ws)
}

/// [`fgmres_traced`] with a caller-owned [`KrylovWorkspace`] — the most
/// general entry point; every other `fgmres*` function is a thin wrapper
/// around this one.
pub fn fgmres_traced_with<Op, P>(
    op: &Op,
    precond: &P,
    b: &[f64],
    x0: &[f64],
    cfg: &GmresConfig,
    tracer: Option<&RankTracer>,
    ws: &mut KrylovWorkspace,
) -> GmresResult
where
    Op: LinearOperator + ?Sized,
    P: Preconditioner<Op> + ?Sized,
{
    if let Some(t) = tracer {
        t.span_begin("fgmres", 0.0);
    }
    let res = fgmres_inner(op, precond, b, x0, cfg, tracer, ws);
    if let Some(t) = tracer {
        t.span_end("fgmres", 0.0);
    }
    res
}

/// Fused classical Gram–Schmidt step: projects `w` against the basis `vs`
/// (coefficients into `hcol[..vs.len()]`), subtracts the projections, and
/// returns `‖w‖₂` of the orthogonalized vector.
///
/// Dot products and AXPY updates run in blocks of four through
/// [`kernels::dot_block`] / [`kernels::axpy_block`], whose contracts make
/// this **bit-identical** to the unfused
/// `dot* / axpy* / norm2` sequence while passing over `w` four times fewer;
/// the trailing norm comes free from the last AXPY block.
fn cgs_orthogonalize(vs: &[Vec<f64>], w: &mut [f64], hcol: &mut [f64]) -> f64 {
    let cnt = vs.len();
    if cnt == 0 {
        return dense::norm2(w);
    }
    let mut i = 0;
    while i + 4 <= cnt {
        let d = kernels::dot_block(
            w,
            [
                vs[i].as_slice(),
                vs[i + 1].as_slice(),
                vs[i + 2].as_slice(),
                vs[i + 3].as_slice(),
            ],
        );
        hcol[i..i + 4].copy_from_slice(&d);
        i += 4;
    }
    match cnt - i {
        1 => hcol[i] = kernels::dot_block(w, [vs[i].as_slice()])[0],
        2 => {
            let d = kernels::dot_block(w, [vs[i].as_slice(), vs[i + 1].as_slice()]);
            hcol[i..i + 2].copy_from_slice(&d);
        }
        3 => {
            let d = kernels::dot_block(
                w,
                [vs[i].as_slice(), vs[i + 1].as_slice(), vs[i + 2].as_slice()],
            );
            hcol[i..i + 3].copy_from_slice(&d);
        }
        _ => {}
    }

    let mut sq = 0.0;
    let mut i = 0;
    while i + 4 <= cnt {
        sq = kernels::axpy_block(
            [-hcol[i], -hcol[i + 1], -hcol[i + 2], -hcol[i + 3]],
            [
                vs[i].as_slice(),
                vs[i + 1].as_slice(),
                vs[i + 2].as_slice(),
                vs[i + 3].as_slice(),
            ],
            w,
        );
        i += 4;
    }
    match cnt - i {
        1 => sq = kernels::axpy_block([-hcol[i]], [vs[i].as_slice()], w),
        2 => {
            sq = kernels::axpy_block(
                [-hcol[i], -hcol[i + 1]],
                [vs[i].as_slice(), vs[i + 1].as_slice()],
                w,
            );
        }
        3 => {
            sq = kernels::axpy_block(
                [-hcol[i], -hcol[i + 1], -hcol[i + 2]],
                [vs[i].as_slice(), vs[i + 1].as_slice(), vs[i + 2].as_slice()],
                w,
            );
        }
        _ => {}
    }
    sq.sqrt()
}

/// Lane-kernel classical Gram–Schmidt step (the [`KernelPolicy::Simd`]
/// counterpart of [`cgs_orthogonalize`]): batched lane-tree dot products,
/// then the fused projection-subtraction whose vector update is
/// bit-identical to the scalar kernels and whose returned norm uses the
/// lane tree (ULP-bounded; pinned by the kernel-equivalence tests).
fn cgs_orthogonalize_lanes(vs: &[Vec<f64>], w: &mut [f64], hcol: &mut [f64]) -> f64 {
    if vs.is_empty() {
        return simd::dot_lanes(w, w).sqrt();
    }
    simd::dot_many_lanes(w, vs, hcol);
    simd::axpy_sweep_neg_lanes(&hcol[..vs.len()], vs, w).sqrt()
}

fn fgmres_inner<Op, P>(
    op: &Op,
    precond: &P,
    b: &[f64],
    x0: &[f64],
    cfg: &GmresConfig,
    tracer: Option<&RankTracer>,
    ws: &mut KrylovWorkspace,
) -> GmresResult
where
    Op: LinearOperator + ?Sized,
    P: Preconditioner<Op> + ?Sized,
{
    let res = fgmres_core(op, precond, b, x0, cfg, tracer, ws);
    // Remember the history length so the next solve on this workspace can
    // reserve it exactly (see `KrylovWorkspace::history_hint`).
    ws.history_hint = ws.history_hint.max(res.history.relative_residuals.len());
    res
}

fn fgmres_core<Op, P>(
    op: &Op,
    precond: &P,
    b: &[f64],
    x0: &[f64],
    cfg: &GmresConfig,
    tracer: Option<&RankTracer>,
    ws: &mut KrylovWorkspace,
) -> GmresResult
where
    Op: LinearOperator + ?Sized,
    P: Preconditioner<Op> + ?Sized,
{
    let n = op.dim();
    assert_eq!(b.len(), n, "fgmres: b length mismatch");
    assert_eq!(x0.len(), n, "fgmres: x0 length mismatch");
    assert!(
        cfg.restart > 0,
        "fgmres: restart dimension must be positive"
    );
    let m = cfg.restart;
    ws.ensure(n, m, precond.scratch_vectors());

    let mut x = x0.to_vec();
    // Reserve the history to the workspace's high-water mark: after one
    // solve of representative length the capacity is exact, so the
    // iteration loop pushes without growing — allocation traffic per
    // iteration is zero, independent of `max_iters` (a `max_iters`-scaled
    // reservation would itself read as bytes-per-iteration to the alloc
    // gate). A cold workspace just grows amortized on the first solve.
    let mut residuals = Vec::with_capacity(ws.history_hint);
    let mut restarts = 0usize;
    let mut total_iters = 0usize;

    // Initial residual r = b - A x, with w as the matvec temporary.
    op.apply_into(&x, &mut ws.w);
    dense::sub_into(b, &ws.w, &mut ws.r);
    let r0_norm = dense::norm2(&ws.r);
    residuals.push(1.0);
    if r0_norm == 0.0 {
        return GmresResult {
            x,
            history: ConvergenceHistory {
                relative_residuals: residuals,
                stop: StopReason::Converged,
                restarts: 0,
            },
        };
    }

    // Breakdown threshold relative to the initial residual scale.
    let breakdown_tol = 1e-14 * r0_norm;

    // Any non-scalar policy engages the lane kernels for the vector work of
    // the loop (the operator variant is the caller's choice of `op`).
    let lanes = !matches!(cfg.kernels, KernelPolicy::Scalar);
    // With the exact identity preconditioner, z_j ≡ v_j bit-for-bit: skip
    // the `z = C v` copy entirely and alias the basis column wherever a
    // flexible vector is read (operator application and solution update).
    let identity = precond.is_identity();

    loop {
        let beta = dense::norm2(&ws.r);
        if beta / r0_norm <= cfg.tol {
            return GmresResult {
                x,
                history: ConvergenceHistory {
                    relative_residuals: residuals,
                    stop: StopReason::Converged,
                    restarts,
                },
            };
        }
        // Arnoldi basis V, flexible vectors Z, Hessenberg columns (upper
        // triangular after rotations), rotations, and the rhs g — all
        // preallocated columns of the workspace. `g` must be re-zeroed:
        // iteration j reads the still-virgin g[j + 1].
        ws.rotations.clear();
        ws.g.fill(0.0);
        ws.g[0] = beta;
        // Fused normalization: one pass instead of copy-then-scale, same
        // per-element product either way (`scale_into` is bit-identical).
        dense::scale_into(1.0 / beta, &ws.r, &mut ws.v[0]);

        let mut j_done = 0usize;
        let mut stop: Option<StopReason> = None;

        for j in 0..m {
            if total_iters >= cfg.max_iters {
                stop = Some(StopReason::MaxIterations);
                break;
            }
            total_iters += 1;
            let degree = precond.current_operator_applications();
            if let Some(t) = tracer {
                t.add_count("precond_applies", 1);
            }
            // Flexible preconditioning z_j = C v_j, into the preallocated
            // column (apply_scratch overwrites it completely). The exact
            // identity skips the copy and applies the operator to v_j
            // directly — the same bits z_j would hold.
            if identity {
                op.apply_into(&ws.v[j], &mut ws.w);
            } else {
                precond.apply_scratch(op, &ws.v[j], &mut ws.z[j], &mut ws.precond_scratch);
                op.apply_into(&ws.z[j], &mut ws.w);
            }

            let hcol = &mut ws.h[j];
            let h_next = match cfg.ortho {
                Orthogonalization::Classical => {
                    // All projections off the same w: fused blocked dots,
                    // AXPYs and trailing norm (bit-identical to the unfused
                    // form — see `cgs_orthogonalize`). The lane variant
                    // regroups the reductions (ULP-bounded).
                    if lanes {
                        cgs_orthogonalize_lanes(&ws.v[..j + 1], &mut ws.w, hcol)
                    } else {
                        cgs_orthogonalize(&ws.v[..j + 1], &mut ws.w, hcol)
                    }
                }
                Orthogonalization::Modified => {
                    // Sequential projections off the running w.
                    for (i, vi) in ws.v[..j + 1].iter().enumerate() {
                        let h = dense::dot(&ws.w, vi);
                        dense::axpy(-h, vi, &mut ws.w);
                        hcol[i] = h;
                    }
                    dense::norm2(&ws.w)
                }
            };
            hcol[j + 1] = h_next;

            // Apply accumulated rotations to the new column.
            for (i, rot) in ws.rotations.iter().enumerate() {
                let (a, b2) = rot.apply(hcol[i], hcol[i + 1]);
                hcol[i] = a;
                hcol[i + 1] = b2;
            }
            let (rot, rr) = Givens::compute(hcol[j], hcol[j + 1]);
            hcol[j] = rr;
            hcol[j + 1] = 0.0;
            let (g0, g1) = rot.apply(ws.g[j], ws.g[j + 1]);
            ws.g[j] = g0;
            ws.g[j + 1] = g1;
            ws.rotations.push(rot);
            j_done = j + 1;

            let rel = ws.g[j + 1].abs() / r0_norm;
            residuals.push(rel);
            if let Some(t) = tracer {
                t.emit(
                    EventKind::Iter,
                    "iter",
                    0.0,
                    vec![
                        ("iter".to_string(), Value::U64(total_iters as u64)),
                        ("rel_res".to_string(), Value::F64(rel)),
                        ("restart_index".to_string(), Value::U64((j + 1) as u64)),
                        ("cycle".to_string(), Value::U64(restarts as u64)),
                        ("degree".to_string(), Value::U64(degree as u64)),
                    ],
                );
            }

            if rel <= cfg.tol {
                stop = Some(StopReason::Converged);
                break;
            }
            if h_next <= breakdown_tol {
                // Invariant subspace: the least-squares solution is exact.
                stop = Some(StopReason::Breakdown);
                break;
            }
            // Fused normalization (see the v[0] note above).
            dense::scale_into(1.0 / h_next, &ws.w, &mut ws.v[j + 1]);
        }

        // Solve the triangular system R y = g for the iterations done.
        if j_done > 0 {
            for i in (0..j_done).rev() {
                let mut acc = ws.g[i];
                for k in (i + 1)..j_done {
                    acc -= ws.h[k][i] * ws.y[k];
                }
                ws.y[i] = acc / ws.h[i][i];
            }
            // Blocked solution update x += Σ y_k z_k: one pass over x per
            // four flexible vectors instead of one per vector —
            // bit-identical to the sequential AXPYs ([`kernels::axpy_block`]
            // preserves the per-element update order).
            let zs: &[Vec<f64>] = if identity { &ws.v } else { &ws.z };
            let mut k = 0;
            while k + 4 <= j_done {
                kernels::axpy_block(
                    [ws.y[k], ws.y[k + 1], ws.y[k + 2], ws.y[k + 3]],
                    [
                        zs[k].as_slice(),
                        zs[k + 1].as_slice(),
                        zs[k + 2].as_slice(),
                        zs[k + 3].as_slice(),
                    ],
                    &mut x,
                );
                k += 4;
            }
            match j_done - k {
                1 => {
                    kernels::axpy_block([ws.y[k]], [zs[k].as_slice()], &mut x);
                }
                2 => {
                    kernels::axpy_block(
                        [ws.y[k], ws.y[k + 1]],
                        [zs[k].as_slice(), zs[k + 1].as_slice()],
                        &mut x,
                    );
                }
                3 => {
                    kernels::axpy_block(
                        [ws.y[k], ws.y[k + 1], ws.y[k + 2]],
                        [zs[k].as_slice(), zs[k + 1].as_slice(), zs[k + 2].as_slice()],
                        &mut x,
                    );
                }
                _ => {}
            }
        }

        match stop {
            Some(reason @ (StopReason::Converged | StopReason::Breakdown)) => {
                return GmresResult {
                    x,
                    history: ConvergenceHistory {
                        relative_residuals: residuals,
                        stop: reason,
                        restarts,
                    },
                };
            }
            Some(StopReason::MaxIterations) => {
                return GmresResult {
                    x,
                    history: ConvergenceHistory {
                        relative_residuals: residuals,
                        stop: StopReason::MaxIterations,
                        restarts,
                    },
                };
            }
            None => {
                // Restart: recompute the true residual r = b - A x.
                restarts += 1;
                op.apply_into(&x, &mut ws.w);
                dense::sub_into(b, &ws.w, &mut ws.r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfem_precond::{GlsPrecond, IdentityPrecond, Ilu0Precond, JacobiPrecond};
    use parfem_sparse::{scaling, CooMatrix, CsrMatrix};

    fn laplacian(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
                coo.push(i + 1, i, -1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    fn residual_norm(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.spmv(x);
        ax.iter()
            .zip(b)
            .map(|(p, q)| (p - q).powi(2))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn identity_system_converges_immediately() {
        let a = CsrMatrix::identity(5);
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        let res = fgmres(&a, &IdentityPrecond, &b, &[0.0; 5], &GmresConfig::default());
        assert!(res.history.converged());
        assert!(res.history.iterations() <= 1);
        for (xi, bi) in res.x.iter().zip(&b) {
            assert!((xi - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn zero_rhs_returns_x0() {
        let a = laplacian(4);
        let res = fgmres(
            &a,
            &IdentityPrecond,
            &[0.0; 4],
            &[0.0; 4],
            &GmresConfig::default(),
        );
        assert!(res.history.converged());
        assert_eq!(res.x, vec![0.0; 4]);
    }

    #[test]
    fn diagonal_matrix_converges_in_distinct_eigenvalue_count() {
        // GMRES terminates in at most (#distinct eigenvalues) iterations.
        let a = CsrMatrix::from_diagonal(&[1.0, 1.0, 2.0, 2.0, 3.0]);
        let b = [1.0, 1.0, 1.0, 1.0, 1.0];
        let cfg = GmresConfig {
            tol: 1e-12,
            ..Default::default()
        };
        let res = fgmres(&a, &IdentityPrecond, &b, &[0.0; 5], &cfg);
        assert!(res.history.converged());
        assert!(
            res.history.iterations() <= 3,
            "took {} iterations",
            res.history.iterations()
        );
    }

    #[test]
    fn laplacian_solution_matches_reference() {
        let n = 24;
        let a = laplacian(n);
        let x_exact: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let b = a.spmv(&x_exact);
        let cfg = GmresConfig {
            tol: 1e-10,
            ..Default::default()
        };
        let res = fgmres(&a, &IdentityPrecond, &b, &vec![0.0; n], &cfg);
        assert!(res.history.converged());
        for (xi, ei) in res.x.iter().zip(&x_exact) {
            assert!((xi - ei).abs() < 1e-7, "{xi} vs {ei}");
        }
    }

    #[test]
    fn restart_still_converges() {
        let n = 30;
        let a = laplacian(n);
        let b = vec![1.0; n];
        let cfg = GmresConfig {
            restart: 5,
            max_iters: 5000,
            tol: 1e-8,
            ..Default::default()
        };
        let res = fgmres(&a, &IdentityPrecond, &b, &vec![0.0; n], &cfg);
        assert!(res.history.converged());
        assert!(res.history.restarts > 0, "restart must have happened");
        assert!(residual_norm(&a, &res.x, &b) < 1e-6);
    }

    #[test]
    fn residual_history_is_monotone_within_cycles() {
        // GMRES minimizes the residual over a growing subspace, so within a
        // restart cycle it never increases.
        let n = 20;
        let a = laplacian(n);
        let b = vec![1.0; n];
        let cfg = GmresConfig {
            restart: 25,
            max_iters: 200,
            tol: 1e-10,
            ..Default::default()
        };
        let res = fgmres(&a, &IdentityPrecond, &b, &vec![0.0; n], &cfg);
        let h = &res.history.relative_residuals;
        for w in h.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "{} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn gls_preconditioning_cuts_iterations() {
        // Diagonally scale the Laplacian so sigma in (0, 1), then compare
        // identity vs GLS(7) — the paper's headline comparison.
        let n = 60;
        let k = laplacian(n);
        let f = vec![1.0; n];
        let (a, b, _) = scaling::scale_system(&k, &f).unwrap();
        let cfg = GmresConfig {
            tol: 1e-8,
            ..Default::default()
        };
        let plain = fgmres(&a, &IdentityPrecond, &b, &vec![0.0; n], &cfg);
        let gls = GlsPrecond::for_scaled_system(7);
        let pre = fgmres(&a, &gls, &b, &vec![0.0; n], &cfg);
        assert!(plain.history.converged() && pre.history.converged());
        assert!(
            pre.history.iterations() * 2 < plain.history.iterations(),
            "gls {} vs plain {}",
            pre.history.iterations(),
            plain.history.iterations()
        );
    }

    #[test]
    fn ilu0_preconditioning_converges_fast_on_tridiagonal() {
        // ILU(0) on a tridiagonal matrix is the exact LU: 1 iteration.
        let n = 40;
        let a = laplacian(n);
        let b = vec![1.0; n];
        let p = Ilu0Precond::factorize(&a).unwrap();
        let res = fgmres(&a, &p, &b, &vec![0.0; n], &GmresConfig::default());
        assert!(res.history.converged());
        assert!(
            res.history.iterations() <= 2,
            "took {}",
            res.history.iterations()
        );
    }

    #[test]
    fn jacobi_preconditioning_matches_identity_for_constant_diagonal() {
        // With a constant diagonal, Jacobi is a scalar multiple of the
        // identity: GMRES iteration counts must match exactly.
        let n = 25;
        let a = laplacian(n);
        let b = vec![1.0; n];
        let cfg = GmresConfig {
            tol: 1e-8,
            ..Default::default()
        };
        let rj = fgmres(&a, &JacobiPrecond::from_matrix(&a), &b, &vec![0.0; n], &cfg);
        let ri = fgmres(&a, &IdentityPrecond, &b, &vec![0.0; n], &cfg);
        assert_eq!(rj.history.iterations(), ri.history.iterations());
    }

    #[test]
    fn max_iterations_is_honoured() {
        let n = 50;
        let a = laplacian(n);
        let b = vec![1.0; n];
        let cfg = GmresConfig {
            restart: 5,
            max_iters: 7,
            tol: 1e-14,
            ..Default::default()
        };
        let res = fgmres(&a, &IdentityPrecond, &b, &vec![0.0; n], &cfg);
        assert_eq!(res.history.stop, StopReason::MaxIterations);
        assert_eq!(res.history.iterations(), 7);
    }

    #[test]
    fn nonzero_initial_guess_is_used() {
        let n = 16;
        let a = laplacian(n);
        let x_exact: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let b = a.spmv(&x_exact);
        // Start from the exact solution: zero iterations.
        let res = fgmres(&a, &IdentityPrecond, &b, &x_exact, &GmresConfig::default());
        assert!(res.history.converged());
        assert_eq!(res.history.iterations(), 0);
    }

    #[test]
    fn flexible_gmres_supports_changing_preconditioners() {
        // The defining FGMRES capability (paper Sec. 2.3): the
        // preconditioner may differ at every iteration. An escalating-degree
        // GLS schedule must still converge to the right answer.
        use parfem_precond::EscalatingGls;
        let n = 50;
        let k = laplacian(n);
        let f = vec![1.0; n];
        let (a, b, sc) = parfem_sparse::scaling::scale_system(&k, &f).unwrap();
        let p = EscalatingGls::default_for_scaled_system(4);
        let cfg = GmresConfig {
            tol: 1e-9,
            ..Default::default()
        };
        let res = fgmres(&a, &p, &b, &vec![0.0; n], &cfg);
        assert!(res.history.converged());
        assert!(p.applications() == res.history.iterations());
        let u = sc.unscale_solution(&res.x);
        let r = k.spmv(&u);
        for (ri, fi) in r.iter().zip(&f) {
            assert!((ri - fi).abs() < 1e-5);
        }
    }

    #[test]
    fn modified_gram_schmidt_agrees_with_classical() {
        let n = 40;
        let a = laplacian(n);
        let b = vec![1.0; n];
        let cgs = GmresConfig {
            tol: 1e-10,
            ortho: Orthogonalization::Classical,
            ..Default::default()
        };
        let mgs = GmresConfig {
            tol: 1e-10,
            ortho: Orthogonalization::Modified,
            ..Default::default()
        };
        let rc = fgmres(&a, &IdentityPrecond, &b, &vec![0.0; n], &cgs);
        let rm = fgmres(&a, &IdentityPrecond, &b, &vec![0.0; n], &mgs);
        assert!(rc.history.converged() && rm.history.converged());
        // On a well-conditioned problem the iterate counts coincide.
        assert!(
            rc.history.iterations().abs_diff(rm.history.iterations()) <= 1,
            "cgs {} vs mgs {}",
            rc.history.iterations(),
            rm.history.iterations()
        );
        for (x, y) in rc.x.iter().zip(&rm.x) {
            assert!((x - y).abs() < 1e-6 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn simd_policy_agrees_with_scalar_reference() {
        let n = 80;
        let k = laplacian(n);
        let f = vec![1.0; n];
        let (a, b, _) = scaling::scale_system(&k, &f).unwrap();
        let scalar_cfg = GmresConfig {
            tol: 1e-9,
            ..Default::default()
        };
        let simd_cfg = GmresConfig {
            kernels: KernelPolicy::Simd,
            ..scalar_cfg
        };
        let gls = GlsPrecond::for_scaled_system(7);
        let rs = fgmres(&a, &gls, &b, &vec![0.0; n], &scalar_cfg);
        let rv = fgmres(&a, &gls, &b, &vec![0.0; n], &simd_cfg);
        assert!(rs.history.converged() && rv.history.converged());
        assert!(
            rs.history.iterations().abs_diff(rv.history.iterations()) <= 1,
            "scalar {} vs simd {}",
            rs.history.iterations(),
            rv.history.iterations()
        );
        for (x, y) in rs.x.iter().zip(&rv.x) {
            assert!((x - y).abs() <= 1e-7 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn warm_workspace_history_hint_reserves_exactly() {
        let n = 40;
        let a = laplacian(n);
        let b = vec![1.0; n];
        let cfg = GmresConfig {
            tol: 1e-8,
            ..Default::default()
        };
        let mut ws = KrylovWorkspace::new();
        let first = fgmres_with(&a, &IdentityPrecond, &b, &vec![0.0; n], &cfg, &mut ws);
        assert_eq!(ws.history_hint, first.history.relative_residuals.len());
        // A second identical solve must be bit-identical and keep the hint.
        let second = fgmres_with(&a, &IdentityPrecond, &b, &vec![0.0; n], &cfg, &mut ws);
        assert_eq!(
            first.history.relative_residuals,
            second.history.relative_residuals
        );
        assert_eq!(first.x, second.x);
        assert_eq!(ws.history_hint, first.history.relative_residuals.len());
    }

    #[test]
    fn breakdown_produces_exact_solution() {
        // A 2x2 system where the Krylov space closes after one step when
        // started in an eigvector direction: A = diag(2, 3), b = e1.
        let a = CsrMatrix::from_diagonal(&[2.0, 3.0]);
        let b = [4.0, 0.0];
        let cfg = GmresConfig {
            tol: 1e-30, // force the breakdown path rather than tol-stop
            max_iters: 10,
            restart: 5,
            ..Default::default()
        };
        let res = fgmres(&a, &IdentityPrecond, &b, &[0.0; 2], &cfg);
        assert!(res.history.converged());
        assert!((res.x[0] - 2.0).abs() < 1e-12);
        assert!(res.x[1].abs() < 1e-12);
    }
}
