//! Preconditioned conjugate gradients — the textbook SPD baseline.
//!
//! The paper's systems are symmetric positive definite after boundary
//! conditions, so CG is the natural yardstick for the GMRES-based solvers;
//! it also exercises the [`Preconditioner`] trait from a second consumer.

use crate::history::{ConvergenceHistory, StopReason};
use parfem_precond::Preconditioner;
use parfem_sparse::{dense, LinearOperator};

/// Configuration for [`pcg`].
#[derive(Debug, Clone, Copy)]
pub struct CgConfig {
    /// Maximum iterations.
    pub max_iters: usize,
    /// Relative residual tolerance `‖r‖/‖r₀‖`.
    pub tol: f64,
}

impl Default for CgConfig {
    fn default() -> Self {
        CgConfig {
            max_iters: 10_000,
            tol: 1e-6,
        }
    }
}

/// Result of a CG solve.
#[derive(Debug, Clone)]
pub struct CgResult {
    /// The computed solution.
    pub x: Vec<f64>,
    /// The convergence history.
    pub history: ConvergenceHistory,
}

/// Solves the SPD system `A x = b` by preconditioned conjugate gradients.
///
/// The preconditioner must be symmetric positive definite for the method's
/// theory to hold (polynomial preconditioners on an SPD operator are).
///
/// # Panics
/// Panics on dimension mismatches.
pub fn pcg<Op, P>(op: &Op, precond: &P, b: &[f64], x0: &[f64], cfg: &CgConfig) -> CgResult
where
    Op: LinearOperator + ?Sized,
    P: Preconditioner<Op> + ?Sized,
{
    let n = op.dim();
    assert_eq!(b.len(), n, "pcg: b length mismatch");
    assert_eq!(x0.len(), n, "pcg: x0 length mismatch");

    let mut x = x0.to_vec();
    let mut r = vec![0.0; n];
    op.apply_into(&x, &mut r);
    let ax = r.clone();
    dense::sub_into(b, &ax, &mut r);
    let r0_norm = dense::norm2(&r);
    let mut residuals = vec![1.0];
    if r0_norm == 0.0 {
        return CgResult {
            x,
            history: ConvergenceHistory {
                relative_residuals: residuals,
                stop: StopReason::Converged,
                restarts: 0,
            },
        };
    }

    let mut z = precond.apply(op, &r);
    let mut p = z.clone();
    let mut rz = dense::dot(&r, &z);
    let mut ap = vec![0.0; n];

    for _ in 0..cfg.max_iters {
        op.apply_into(&p, &mut ap);
        let pap = dense::dot(&p, &ap);
        if pap <= 0.0 {
            // Operator (or preconditioner) is not SPD on this subspace.
            return CgResult {
                x,
                history: ConvergenceHistory {
                    relative_residuals: residuals,
                    stop: StopReason::Breakdown,
                    restarts: 0,
                },
            };
        }
        let alpha = rz / pap;
        dense::axpy(alpha, &p, &mut x);
        dense::axpy(-alpha, &ap, &mut r);
        let rel = dense::norm2(&r) / r0_norm;
        residuals.push(rel);
        if rel <= cfg.tol {
            return CgResult {
                x,
                history: ConvergenceHistory {
                    relative_residuals: residuals,
                    stop: StopReason::Converged,
                    restarts: 0,
                },
            };
        }
        precond.apply_into(op, &r, &mut z);
        let rz_new = dense::dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }

    CgResult {
        x,
        history: ConvergenceHistory {
            relative_residuals: residuals,
            stop: StopReason::MaxIterations,
            restarts: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfem_precond::{GlsPrecond, IdentityPrecond, JacobiPrecond};
    use parfem_sparse::{scaling, CooMatrix, CsrMatrix};

    fn laplacian(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
                coo.push(i + 1, i, -1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn solves_laplacian() {
        let n = 32;
        let a = laplacian(n);
        let xe: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let b = a.spmv(&xe);
        let cfg = CgConfig {
            tol: 1e-10,
            ..Default::default()
        };
        let res = pcg(&a, &IdentityPrecond, &b, &vec![0.0; n], &cfg);
        assert!(res.history.converged());
        for (xi, ei) in res.x.iter().zip(&xe) {
            assert!((xi - ei).abs() < 1e-7);
        }
    }

    #[test]
    fn cg_terminates_in_n_iterations_exactly() {
        // Exact-arithmetic CG finishes in at most n steps.
        let n = 10;
        let a = laplacian(n);
        let b = vec![1.0; n];
        let cfg = CgConfig {
            tol: 1e-12,
            max_iters: n + 2,
        };
        let res = pcg(&a, &IdentityPrecond, &b, &vec![0.0; n], &cfg);
        assert!(res.history.converged());
        assert!(res.history.iterations() <= n);
    }

    #[test]
    fn gls_preconditioning_accelerates_cg() {
        let n = 80;
        let k = laplacian(n);
        let f = vec![1.0; n];
        let (a, b, _) = scaling::scale_system(&k, &f).unwrap();
        let cfg = CgConfig {
            tol: 1e-8,
            ..Default::default()
        };
        let plain = pcg(&a, &IdentityPrecond, &b, &vec![0.0; n], &cfg);
        let gls = GlsPrecond::for_scaled_system(7);
        let pre = pcg(&a, &gls, &b, &vec![0.0; n], &cfg);
        assert!(plain.history.converged() && pre.history.converged());
        assert!(
            pre.history.iterations() * 2 < plain.history.iterations(),
            "gls {} vs plain {}",
            pre.history.iterations(),
            plain.history.iterations()
        );
    }

    #[test]
    fn jacobi_cg_on_variable_diagonal() {
        let mut coo = CooMatrix::new(6, 6);
        for i in 0..6 {
            coo.push(i, i, (i + 1) as f64 * 2.0).unwrap();
            if i + 1 < 6 {
                coo.push(i, i + 1, -0.5).unwrap();
                coo.push(i + 1, i, -0.5).unwrap();
            }
        }
        let a = coo.to_csr();
        let b = vec![1.0; 6];
        let p = JacobiPrecond::from_matrix(&a);
        let res = pcg(&a, &p, &b, &[0.0; 6], &CgConfig::default());
        assert!(res.history.converged());
        let r = a.spmv(&res.x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-5);
        }
    }

    #[test]
    fn indefinite_matrix_reports_breakdown() {
        let a = CsrMatrix::from_diagonal(&[1.0, -1.0]);
        let b = [1.0, 1.0];
        let res = pcg(&a, &IdentityPrecond, &b, &[0.0; 2], &CgConfig::default());
        // Either it breaks down or fails to converge — never silently wrong.
        assert!(
            res.history.stop == StopReason::Breakdown
                || res.history.stop == StopReason::MaxIterations
                || {
                    // If it "converged", the residual must actually be small.
                    let r = a.spmv(&res.x);
                    r.iter().zip(&b).all(|(ri, bi)| (ri - bi).abs() < 1e-5)
                }
        );
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = laplacian(4);
        let res = pcg(
            &a,
            &IdentityPrecond,
            &[0.0; 4],
            &[0.0; 4],
            &CgConfig::default(),
        );
        assert!(res.history.converged());
        assert_eq!(res.history.iterations(), 0);
    }
}
