//! Reusable storage for the restarted FGMRES solvers.
//!
//! One [`KrylovWorkspace`] owns every buffer the solver's restart and
//! iteration loops touch: the Arnoldi basis `V`, the flexible vectors `Z`,
//! the Hessenberg columns, the Givens rotations, the least-squares
//! right-hand side, the residual and matvec temporaries, and the
//! preconditioner scratch (see
//! [`Preconditioner::apply_scratch`](parfem_precond::Preconditioner::apply_scratch)).
//! After [`KrylovWorkspace::ensure`] has sized the buffers once, a solve
//! performs **zero heap allocation** inside its restart and iteration
//! loops, and solves that reuse a workspace are bit-identical to solves on
//! a fresh one — the buffers carry no state between solves, only capacity.
//!
//! The same structure serves the sequential solver and the distributed
//! EDD/RDD mirrors (there `n` is the subdomain-local dimension and
//! [`reduce`](KrylovWorkspace::reduce) batches the Gram–Schmidt inner
//! products for the single per-iteration all-reduce of the paper's
//! Algorithms 5/6/8).

use crate::givens::Givens;

/// Preallocated buffers for restarted FGMRES (see the module docs).
///
/// Fields are public so the sequential and distributed solvers (separate
/// crates) can borrow disjoint buffers simultaneously; treat the contents
/// as scratch — nothing is preserved across solves.
#[derive(Debug, Clone, Default)]
pub struct KrylovWorkspace {
    /// Arnoldi basis vectors `v_0 … v_m` (`restart + 1` vectors of length `n`).
    pub v: Vec<Vec<f64>>,
    /// Flexible (preconditioned) vectors `z_0 … z_{m-1}`.
    pub z: Vec<Vec<f64>>,
    /// Hessenberg columns; column `j` uses entries `0 ..= j + 1`.
    pub h: Vec<Vec<f64>>,
    /// Accumulated Givens rotations of the current cycle.
    pub rotations: Vec<Givens>,
    /// Least-squares right-hand side `g` (length `restart + 1`).
    pub g: Vec<f64>,
    /// Residual vector (length `n`).
    pub r: Vec<f64>,
    /// Matvec / orthogonalization temporary `w` (length `n`).
    pub w: Vec<f64>,
    /// Back-substitution solution `y` (length `restart`).
    pub y: Vec<f64>,
    /// Scratch vectors for `Preconditioner::apply_scratch`.
    pub precond_scratch: Vec<Vec<f64>>,
    /// Packed buffer for batched reductions (distributed solvers put the
    /// classical-Gram–Schmidt dot products of one iteration here so the
    /// all-reduce is a single message).
    pub reduce: Vec<f64>,
    /// High-water mark of convergence-history lengths seen by solves using
    /// this workspace. Solvers pre-reserve their residual history to this
    /// hint, so once a workspace is warm (one solve of representative
    /// length), subsequent solves allocate a history of fixed capacity and
    /// push into it without growth — the last per-iteration allocation the
    /// zero-alloc gates track. Purely a capacity hint: it never affects
    /// results.
    pub history_hint: usize,
}

/// Grows `pool` to `count` buffers, each of exact length `len`.
fn ensure_pool(pool: &mut Vec<Vec<f64>>, count: usize, len: usize) {
    for buf in pool.iter_mut() {
        if buf.len() != len {
            buf.resize(len, 0.0);
        }
    }
    while pool.len() < count {
        pool.push(vec![0.0; len]);
    }
}

impl KrylovWorkspace {
    /// An empty workspace; buffers are sized lazily by
    /// [`KrylovWorkspace::ensure`] on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace pre-sized for problem dimension `n`, restart dimension
    /// `m`, and `scratch` preconditioner scratch vectors, so the first
    /// solve is already allocation-free.
    pub fn with_capacity(n: usize, m: usize, scratch: usize) -> Self {
        let mut ws = Self::new();
        ws.ensure(n, m, scratch);
        ws
    }

    /// Sizes every buffer for dimension `n`, restart `m`, and `scratch`
    /// preconditioner scratch vectors. Idempotent: when the workspace
    /// already fits, no allocation is performed — this is what the solvers
    /// call at entry, making reuse zero-cost and first use self-sizing.
    pub fn ensure(&mut self, n: usize, m: usize, scratch: usize) {
        ensure_pool(&mut self.v, m + 1, n);
        ensure_pool(&mut self.z, m, n);
        ensure_pool(&mut self.h, m, m + 1);
        ensure_pool(&mut self.precond_scratch, scratch, n);
        if self.g.len() != m + 1 {
            self.g.resize(m + 1, 0.0);
        }
        if self.r.len() != n {
            self.r.resize(n, 0.0);
        }
        if self.w.len() != n {
            self.w.resize(n, 0.0);
        }
        if self.y.len() != m {
            self.y.resize(m, 0.0);
        }
        // One batched reduction carries up to m + 1 dot products plus the
        // candidate norm contribution.
        if self.reduce.len() != m + 2 {
            self.reduce.resize(m + 2, 0.0);
        }
        self.rotations.clear();
        if self.rotations.capacity() < m {
            self.rotations.reserve(m - self.rotations.capacity());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_sizes_all_buffers() {
        let mut ws = KrylovWorkspace::new();
        ws.ensure(10, 4, 2);
        assert_eq!(ws.v.len(), 5);
        assert_eq!(ws.z.len(), 4);
        assert_eq!(ws.h.len(), 4);
        assert!(ws.v.iter().all(|b| b.len() == 10));
        assert!(ws.h.iter().all(|b| b.len() == 5));
        assert_eq!(ws.precond_scratch.len(), 2);
        assert_eq!(ws.g.len(), 5);
        assert_eq!(ws.r.len(), 10);
        assert_eq!(ws.w.len(), 10);
        assert_eq!(ws.y.len(), 4);
        assert_eq!(ws.reduce.len(), 6);
    }

    #[test]
    fn ensure_is_idempotent_and_adapts() {
        let mut ws = KrylovWorkspace::with_capacity(8, 3, 1);
        ws.ensure(8, 3, 1); // no-op
        assert_eq!(ws.v.len(), 4);
        // Growing the problem reshapes every buffer.
        ws.ensure(20, 5, 3);
        assert_eq!(ws.v.len(), 6);
        assert!(ws.v.iter().all(|b| b.len() == 20));
        assert_eq!(ws.precond_scratch.len(), 3);
        // Shrinking keeps the pools usable at the smaller size.
        ws.ensure(4, 2, 0);
        assert!(ws.v.iter().all(|b| b.len() == 4));
        assert_eq!(ws.y.len(), 2);
    }
}
