//! Physics scaling laboratory: iteration counts and modeled solve times
//! for the non-elasticity2d workloads at large P.
//!
//! The paper's workload is 2-D plane-stress elasticity; the physics axis
//! (`--problem heat2d|elasticity3d`) opens scalar Poisson/heat and 3-D
//! hex8 elasticity through the identical assembly → scaling → FGMRES
//! pipeline. This lab answers the obvious follow-up: does the production
//! two-level configuration (`twolevel:rbm.s5:gls-3`, whose rigid-body mode
//! count adapts to the physics — 1 constant mode for scalar heat, 6
//! translations+rotations for 3-D elasticity) keep iteration counts
//! near-flat on those workloads too, and what do the solves cost on a
//! modern modeled machine?
//!
//! For each problem a weak-scaling cantilever family grows with P (one
//! square/x-column aggregate per rank), real sequential FGMRES solves to
//! 1e-10 record the iteration counts, and the analytic [`MachineModel`]
//! prices each iteration with the physics' own interface payload
//! (`8 × dofs-per-node` bytes per shared node) and per-element flop count.
//! The summary feeds the `physics_modeled` section of `BENCH_PERF.json`;
//! the perf gate bounds each series' iteration growth and requires the
//! modeled times to be positive and finite.
//!
//! `PARFEM_QUICK=1` shrinks the sweep to CI smoke size.

use parfem::prelude::*;
use parfem_bench::harness::{banner, quick, Table};
use parfem_bench::modeling::{modeled_edd, rank_stats, IterCostModel};
use parfem_krylov::gmres::fgmres_with;
use parfem_krylov::{GmresConfig, KrylovWorkspace};
use parfem_mesh::Cells;
use parfem_precond::twolevel::build_coarse_basis;
use parfem_precond::{CoarsePartGeometry, PrecondSpec};
use parfem_sparse::scaling;
use parfem_sparse::skyline::DEFAULT_PIVOT_TOL;

/// The production two-level configuration the sweep measures. The s5
/// prolongator smoothing (vs the elasticity2d sweep's s3) is what keeps the
/// hex8 series near-flat at P=1024.
const SPEC: &str = "twolevel:rbm.s5:gls-3";
/// Iteration cap — every point must converge under it.
const ITER_CAP: usize = 2000;
/// Gate bound on iteration growth from `p_min` to `p_max`; must match
/// `GateConfig::default().max_physics_iter_growth`.
const MAX_ITER_GROWTH: f64 = 1.5;
/// Per-mode flops of the replicated coarse back-solve (as in `scaling`).
const COARSE_SOLVE_FLOPS_PER_MODE: f64 = 50.0;

/// One solved point of a physics series.
struct Point {
    p: usize,
    iters: usize,
    modeled_time: f64,
}

struct Series {
    name: &'static str,
    points: Vec<Point>,
    growth: f64,
}

/// Disjoint node aggregation of an element `owner` map (a node goes to the
/// lowest-indexed element touching it), with per-dof multiplicity — the
/// physics-generic version of the quad-only helper in the `scaling` bin.
fn coarse_parts<M: Cells>(
    mesh: &M,
    pos3: &dyn Fn(usize) -> [f64; 3],
    dm: &parfem_mesh::DofMap,
    owner: &[usize],
    p: usize,
) -> (Vec<CoarsePartGeometry>, Vec<f64>) {
    let dpn = dm.dofs_per_node();
    let n_nodes = mesh.n_cell_nodes();
    let mut node_owner = vec![usize::MAX; n_nodes];
    for (e, &own) in owner.iter().enumerate() {
        for n in mesh.cell_nodes(e) {
            if node_owner[n] == usize::MAX {
                node_owner[n] = own;
            }
        }
    }
    let mut nodes_of: Vec<Vec<usize>> = vec![Vec::new(); p];
    for (n, &own) in node_owner.iter().enumerate() {
        nodes_of[own].push(n);
    }
    let mut mult = vec![0.0f64; dm.n_dofs()];
    let parts = nodes_of
        .iter()
        .map(|nodes| {
            let mut geo = CoarsePartGeometry::default();
            for &n in nodes {
                for c in 0..dpn {
                    let g = n * dpn + c;
                    geo.dofs.push(g);
                    geo.pos.push(pos3(n));
                    geo.comp.push(c);
                    geo.constrained.push(dm.is_fixed(g));
                    mult[g] += 1.0;
                }
            }
            geo
        })
        .collect();
    (parts, mult)
}

/// Runs one physics series over the square rank grids in `ps`.
fn run_series(
    physics: Physics,
    name: &'static str,
    ps: &[usize],
    model: &MachineModel,
    table: &mut Table,
) -> Series {
    let mut points = Vec::new();
    for &p in ps {
        let side = (p as f64).sqrt().round() as usize;
        assert_eq!(side * side, p, "physics sweep wants square rank grids");
        // Weak families: a fixed per-rank aggregate, mesh growing with P.
        // Heat reuses the 3x3-element quad tile of the twolevel sweep; the
        // hex family keeps a thin z extent so the x-y tiling stays square.
        let (grid, tile): ((usize, usize, usize), (usize, usize)) = match physics {
            Physics::Heat2d => ((3 * side, 3 * side, 1), (3, 3)),
            Physics::Elasticity3d => ((2 * side, 2 * side, 2), (2, 2)),
            Physics::Elasticity2d => unreachable!("covered by the scaling bin"),
        };
        let prob =
            PhysicsProblem::cantilever(physics, grid, Material::unit(), LoadCase::PullX(1.0));
        let sys = prob.static_system();
        let (scaled, b, _sc) =
            scaling::scale_system(&sys.stiffness, &sys.rhs).expect("workload scales");
        let d: Vec<f64> = scaled.diagonal();

        // x-y checkerboard element owners (all z layers share a tile) and
        // the physics-generic coarse aggregates over them.
        let (parts, mult, stats, cost, n_elems) = match &prob.mesh {
            WorkloadMesh::Quad(m) => {
                let (tx, ty) = (m.nx() / side, m.ny() / side);
                assert_eq!((tx, ty), tile, "quad tile shape");
                let owners: Vec<usize> = (0..m.n_elems())
                    .map(|e| {
                        let (i, j) = (e % m.nx(), e / m.nx());
                        (j / ty) * side + i / tx
                    })
                    .collect();
                let coords = m.coords();
                let pos3 = |n: usize| [coords[n][0], coords[n][1], 0.0];
                let (parts, mult) = coarse_parts(m, &pos3, &prob.dof_map, &owners, p);
                // Q4 heat: 4x4 element matrix — a quarter of the 8x8
                // elasticity block's flops.
                let cost = IterCostModel::for_physics(1, 300.0);
                let stats = rank_stats(m, &owners, p, &cost);
                (parts, mult, stats, cost, m.n_elems())
            }
            WorkloadMesh::Hex(m) => {
                let (tx, ty) = (m.nx() / side, m.ny() / side);
                assert_eq!((tx, ty), tile, "hex tile shape");
                let owners: Vec<usize> = (0..m.n_elems())
                    .map(|e| {
                        let i = e % m.nx();
                        let j = (e / m.nx()) % m.ny();
                        (j / ty) * side + i / tx
                    })
                    .collect();
                let coords = m.coords();
                let pos3 = |n: usize| coords[n];
                let (parts, mult) = coarse_parts(m, &pos3, &prob.dof_map, &owners, p);
                // Hex8 elasticity: a 24x24 element block — 9x the flops of
                // the 8x8 Q4 elasticity block.
                let cost = IterCostModel::for_physics(3, 10800.0);
                let stats = rank_stats(m, &owners, p, &cost);
                (parts, mult, stats, cost, m.n_elems())
            }
        };

        let coarse_spec = match PrecondSpec::parse(SPEC).expect("bench spec parses") {
            PrecondSpec::TwoLevel { coarse, .. } => coarse,
            _ => unreachable!("SPEC is a twolevel spec"),
        };
        let basis = build_coarse_basis(&coarse_spec, &parts, &mult, &d, &scaled, DEFAULT_PIVOT_TOL);
        let n_modes = basis.n_modes();
        let cfg = GmresConfig {
            restart: 100,
            max_iters: ITER_CAP,
            tol: 1e-10,
            ..Default::default()
        };
        let x0 = vec![0.0; b.len()];
        let spec = PrecondSpec::parse(SPEC).expect("bench spec parses");
        let pc = spec.instantiate_with_coarse(Some(basis.solver()), || scaled.diagonal());
        let res = fgmres_with(&scaled, &pc, &b, &x0, &cfg, &mut KrylovWorkspace::new());
        assert!(
            res.history.converged(),
            "{name} P={p}: {SPEC} must converge within {ITER_CAP} iterations"
        );
        let iters = res.history.iterations();

        // Modeled per-iteration time: blocking EDD exchange plus the
        // coarse level's all-reduce, replicated back-solve, and the
        // multiplicative composition's extra operator pass.
        let (t_iter_base, _, _) = modeled_edd(model, p, &stats, &cost);
        let elems_max = *stats.elems.iter().max().unwrap() as f64;
        let t_iter = t_iter_base
            + model.allreduce_time(p, n_modes * 8)
            + model.compute_time((n_modes as f64 * COARSE_SOLVE_FLOPS_PER_MODE) as u64)
            + model.compute_time((elems_max * cost.flops_per_elem_iter / 4.0) as u64);
        let modeled_time = iters as f64 * t_iter;
        table.row([
            name.to_string(),
            format!("{p}"),
            format!("{}", prob.n_dofs()),
            format!("{n_elems}"),
            format!("{n_modes}"),
            format!("{iters}"),
            format!("{t_iter:.6e}"),
            format!("{modeled_time:.6e}"),
        ]);
        points.push(Point {
            p,
            iters,
            modeled_time,
        });
    }
    let growth = points.last().unwrap().iters as f64 / points.first().unwrap().iters as f64;
    assert!(
        growth <= MAX_ITER_GROWTH,
        "{name}: iteration growth {growth:.4} exceeds {MAX_ITER_GROWTH}"
    );
    Series {
        name,
        points,
        growth,
    }
}

fn emit_summary(series: &[Series]) {
    println!("\nBENCH_PERF.json `physics_modeled` section:");
    println!("  \"physics_modeled\": {{");
    for (i, s) in series.iter().enumerate() {
        println!("    \"{}\": {{", s.name);
        println!("      \"p_min\": {},", s.points.first().unwrap().p);
        println!("      \"p_max\": {},", s.points.last().unwrap().p);
        for pt in &s.points {
            println!("      \"iters_p{}\": {},", pt.p, pt.iters);
        }
        for pt in &s.points {
            println!("      \"modeled_time_p{}\": {:.6e},", pt.p, pt.modeled_time);
        }
        println!("      \"iter_growth\": {:.4}", s.growth);
        println!("    }}{}", if i + 1 < series.len() { "," } else { "" });
    }
    println!("  }}");
}

fn main() {
    banner("physics scaling (real solves, weak families, modeled times)");
    let ps: &[usize] = if quick() {
        &[64, 256]
    } else {
        &[64, 256, 1024]
    };
    let model = MachineModel::cluster();
    let mut table = Table::new(&[
        "problem",
        "p",
        "dofs",
        "elems",
        "modes",
        "iters",
        "t_iter_s",
        "t_solve_s",
    ]);
    let series = [
        run_series(Physics::Heat2d, "heat2d", ps, &model, &mut table),
        run_series(
            Physics::Elasticity3d,
            "elasticity3d",
            ps,
            &model,
            &mut table,
        ),
    ];
    table.emit("physics_scaling");
    emit_summary(&series);
    println!(
        "\niteration growth over P={}..{}: heat2d {:.4}, elasticity3d {:.4}",
        ps.first().unwrap(),
        ps.last().unwrap(),
        series[0].growth,
        series[1].growth
    );
}
