//! Ablation: element type (T3 / Q4 / Q8) versus matrix-graph density and
//! solver cost — quantifying the paper's Section 5 planarity argument.
//!
//! - T3 keeps `G(K)` planar (`|E| ≤ 3|V|−6`) — the case where row-based
//!   SpMV provably scales;
//! - Q4 adds cell diagonals and violates the bound;
//! - Q8 couples 7+ neighbours per node and is densest.

use parfem::fem::{assembly, quad8s, tri3, Material};
use parfem::mesh::graph::Adjacency;
use parfem::prelude::*;
use parfem_bench::harness::{banner, Table};

fn main() {
    banner("Ablation: element family vs G(K) density (paper Section 5)");
    let (nx, ny) = (16usize, 16usize);
    let mat = Material::unit();

    // T3.
    let tmesh = parfem::mesh::TriMesh::cantilever(nx, ny);
    let tdm = DofMap::new(tmesh.n_nodes());
    let kt = tri3::assemble_stiffness(&tmesh, &tdm, &mat);
    let gt = Adjacency::node_graph_from_cells(
        tmesh.n_nodes(),
        (0..tmesh.n_elems()).map(|e| tmesh.elem_nodes(e).to_vec()),
    );

    // Q4.
    let qmesh = QuadMesh::cantilever(nx, ny);
    let qdm = DofMap::new(qmesh.n_nodes());
    let kq = assembly::assemble_stiffness(&qmesh, &qdm, &mat);
    let gq = Adjacency::node_graph(&qmesh);

    // Q8.
    let emesh = parfem::mesh::Quad8Mesh::cantilever(nx, ny);
    let edm = DofMap::new(emesh.n_nodes());
    let ke = quad8s::assemble_stiffness(&emesh, &edm, &mat);
    let ge = Adjacency::node_graph_from_cells(
        emesh.n_nodes(),
        (0..emesh.n_elems()).map(|e| emesh.elem_nodes(e).to_vec()),
    );

    let mut table = Table::new(&[
        "element",
        "nodes",
        "avg_degree",
        "nnz_per_row",
        "planar",
        "nnz",
    ]);
    let mut degs = Vec::new();
    for (name, g, k) in [("T3", &gt, &kt), ("Q4", &gq, &kq), ("Q8", &ge, &ke)] {
        let planar = g.satisfies_planar_edge_bound();
        let nnz_row = k.nnz() as f64 / k.n_rows() as f64;
        table.row([
            name.to_string(),
            g.n_vertices().to_string(),
            format!("{:.3}", g.average_degree()),
            format!("{nnz_row:.3}"),
            planar.to_string(),
            k.nnz().to_string(),
        ]);
        degs.push(g.average_degree());
    }
    table.emit("ablation_elements");

    // Section-5 shape: T3 planar, Q4/Q8 not; density strictly increases.
    assert!(gt.satisfies_planar_edge_bound());
    assert!(!gq.satisfies_planar_edge_bound());
    assert!(!ge.satisfies_planar_edge_bound());
    assert!(degs[0] < degs[1] && degs[1] < degs[2]);

    // Solver-side consequence: iterations for the same physical problem.
    banner("GMRES-gls(7) iterations per element family (same cantilever)");
    let cfg = GmresConfig {
        tol: 1e-6,
        max_iters: 20_000,
        ..Default::default()
    };
    let mut iter_table = Table::new(&["element", "n_eqn", "iterations"]);
    for (name, mesh_kind) in [("T3", 0usize), ("Q4", 1), ("Q8", 2)] {
        let (k, rhs) = match mesh_kind {
            0 => {
                let mut dm = DofMap::new(tmesh.n_nodes());
                for n in tmesh.edge_nodes(Edge::Left) {
                    dm.clamp_node(n);
                }
                let kraw = tri3::assemble_stiffness(&tmesh, &dm, &mat);
                let mut loads = vec![0.0; dm.n_dofs()];
                for n in tmesh.edge_nodes(Edge::Right) {
                    loads[dm.dof(n, 0)] = 1.0;
                }
                let kbc = assembly::apply_dirichlet(&kraw, &dm, &mut loads);
                (kbc, loads)
            }
            1 => {
                let mut dm = DofMap::new(qmesh.n_nodes());
                dm.clamp_edge(&qmesh, Edge::Left);
                let mut loads = vec![0.0; dm.n_dofs()];
                assembly::edge_load(&qmesh, &dm, Edge::Right, 1.0, 0.0, &mut loads);
                let sys = assembly::build_static(&qmesh, &dm, &mat, &loads);
                (sys.stiffness, sys.rhs)
            }
            _ => {
                let mut dm = DofMap::new(emesh.n_nodes());
                for n in emesh.edge_nodes(Edge::Left) {
                    dm.clamp_node(n);
                }
                let kraw = quad8s::assemble_stiffness(&emesh, &edm, &mat);
                let mut loads = vec![0.0; dm.n_dofs()];
                for n in emesh.edge_nodes(Edge::Right) {
                    loads[dm.dof(n, 0)] = 1.0;
                }
                let kbc = assembly::apply_dirichlet(&kraw, &dm, &mut loads);
                (kbc, loads)
            }
        };
        let (_, h) = parfem::sequential::solve_system(
            &k,
            &rhs,
            &parfem::sequential::SeqPrecond::Gls(7),
            &cfg,
        )
        .unwrap();
        assert!(h.converged(), "{name} static solve must converge");
        iter_table.row([
            name.to_string(),
            k.n_rows().to_string(),
            h.iterations().to_string(),
        ]);
    }
    iter_table.emit("ablation_elements_iters");
    println!("\nshape checks passed: planarity and density behave exactly as Section 5 argues");
}
