//! Figure 1: Neumann-series residual polynomials `1 − λ P_{m−1}(λ)` on
//! `Θ = (0, 30)` for m = 5, 6, 7.
//!
//! The paper's Fig. 1 shows the residual dropping toward zero across the
//! interval as the degree grows, with `ω` chosen from the spectrum bound
//! (`ω = 1/30`).

use parfem_bench::harness::{banner, fmt, write_csv};
use parfem_precond::NeumannPrecond;

fn main() {
    banner("Figure 1: Neumann residual polynomials on (0, 30)");
    let upper = 30.0;
    let degrees = [5usize, 6, 7];
    let precs: Vec<NeumannPrecond> = degrees
        .iter()
        .map(|&m| NeumannPrecond::for_spectrum_upper_bound(m - 1, upper))
        .collect();

    let n_samples = 61;
    let mut rows = Vec::new();
    println!("{:>8} {:>14} {:>14} {:>14}", "lambda", "m=5", "m=6", "m=7");
    for k in 0..n_samples {
        let lambda = upper * k as f64 / (n_samples - 1) as f64;
        let vals: Vec<f64> = precs.iter().map(|p| p.residual(lambda)).collect();
        println!(
            "{:>8.2} {:>14} {:>14} {:>14}",
            lambda,
            fmt(vals[0]),
            fmt(vals[1]),
            fmt(vals[2])
        );
        rows.push(
            std::iter::once(format!("{lambda}"))
                .chain(vals.iter().map(|v| format!("{v}")))
                .collect(),
        );
    }
    write_csv(
        "fig01_neumann_residual",
        &["lambda", "m5", "m6", "m7"],
        &rows,
    );

    // Shape check mirroring the paper's visual claim: the max |residual|
    // over the interior shrinks as the degree grows.
    let max_res = |p: &NeumannPrecond| -> f64 {
        (1..n_samples - 1)
            .map(|k| p.residual(upper * k as f64 / (n_samples - 1) as f64).abs())
            .fold(0.0_f64, f64::max)
    };
    let maxima: Vec<f64> = precs.iter().map(max_res).collect();
    println!("\ninterior max |1 - lambda P(lambda)|: {maxima:?}");
    assert!(maxima[1] <= maxima[0] && maxima[2] <= maxima[1]);
    println!("shape check passed: residual shrinks with degree");
}
