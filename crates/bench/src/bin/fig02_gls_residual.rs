//! Figure 2: GLS residual polynomials `1 − λ P_m(λ)` for the paper's three
//! spectrum estimates:
//!   (a) Θ = (0.1, 2.5), m = 3, 7, 10;
//!   (b) Θ = (−4, −1) ∪ (7, 10);
//!   (c) Θ = (−6, −4.1) ∪ (−3.9, −0.1) ∪ (0.1, 5.9) ∪ (6.1, 8).

use parfem_bench::harness::{banner, write_csv};
use parfem_precond::{GlsPrecond, IntervalUnion};

fn sweep(name: &str, theta: IntervalUnion, degrees: &[usize]) {
    banner(&format!(
        "Figure 2{name}: GLS residual on {:?}",
        theta.intervals()
    ));
    let precs: Vec<GlsPrecond> = degrees
        .iter()
        .map(|&m| GlsPrecond::new(m, theta.clone()))
        .collect();
    let (lo, hi) = theta.hull();
    let span = hi - lo;
    let n = 81;
    let mut rows = Vec::new();
    for k in 0..n {
        let lambda = lo - 0.05 * span + (1.1 * span) * k as f64 / (n - 1) as f64;
        let mut row = vec![format!("{lambda}")];
        for p in &precs {
            row.push(format!("{}", p.residual(lambda)));
        }
        rows.push(row);
    }
    let header: Vec<String> = std::iter::once("lambda".to_string())
        .chain(degrees.iter().map(|m| format!("m{m}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    write_csv(&format!("fig02{name}_gls_residual"), &header_refs, &rows);

    // Shape check: the *weighted* residual norm (the quantity GLS
    // minimizes, Eq. 19) decreases monotonically with degree. The sup norm
    // over theta is reported for information only — least squares does not
    // control it pointwise, so endpoint spikes may wiggle.
    let mut prev = f64::INFINITY;
    for (p, &m) in precs.iter().zip(degrees) {
        let norm = p.weighted_residual_norm();
        let mut max_res = 0.0_f64;
        for &(a, b) in theta.intervals() {
            for k in 0..=200 {
                let l = a + (b - a) * k as f64 / 200.0;
                max_res = max_res.max(p.residual(l).abs());
            }
        }
        println!("degree {m:>2}: ||1 - lambda P||_w = {norm:.4}, sup over theta = {max_res:.4}");
        assert!(
            norm <= prev + 1e-9,
            "weighted residual norm must not grow with degree"
        );
        prev = norm;
    }
}

fn main() {
    sweep("a", IntervalUnion::single(0.1, 2.5), &[3, 7, 10]);
    sweep(
        "b",
        IntervalUnion::new(vec![(-4.0, -1.0), (7.0, 10.0)]),
        &[4, 8, 12],
    );
    sweep(
        "c",
        IntervalUnion::new(vec![(-6.0, -4.1), (-3.9, -0.1), (0.1, 5.9), (6.1, 8.0)]),
        &[6, 10, 14],
    );
    println!("\nall shape checks passed");
}
