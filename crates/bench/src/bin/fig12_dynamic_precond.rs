//! Figure 12: ILU(0) versus polynomial preconditioners for the *dynamic*
//! cantilever (first Newmark step effective system), Mesh1 and Mesh2.

use parfem::dynamic::first_step_solve;
use parfem::prelude::*;
use parfem::sequential::SeqPrecond;
use parfem_bench::harness::{banner, Table};

fn run_mesh(k: usize, dt: f64) {
    let p = CantileverProblem::paper_mesh(k);
    banner(&format!(
        "Figure 12, Mesh{k} ({} equations), dt = {dt}: dynamic first-step convergence",
        p.n_eqn()
    ));
    let cfg = GmresConfig {
        tol: 1e-6,
        max_iters: 20_000,
        ..Default::default()
    };
    let precs = [
        SeqPrecond::None,
        SeqPrecond::Ilu0,
        SeqPrecond::Neumann(20),
        SeqPrecond::Gls(7),
    ];
    let mut table = Table::new(&["preconditioner", "iterations", "converged"]);
    let mut iters = Vec::new();
    for pc in &precs {
        let (_, h) = first_step_solve(&p, dt, pc, &cfg).expect("solve");
        table.row([
            pc.name(),
            h.iterations().to_string(),
            h.converged().to_string(),
        ]);
        iters.push(h.iterations());
    }
    table.emit(&format!("fig12_dynamic_mesh{k}"));
    // Shape: gls(7) beats ilu(0) and the unpreconditioned run, as in the
    // static case (the paper's ordering carries over to the effective
    // dynamic systems).
    assert!(iters[3] < iters[1], "gls(7) must beat ilu(0): {iters:?}");
    assert!(
        iters[3] < iters[0],
        "gls(7) must beat the unpreconditioned run: {iters:?}"
    );
}

fn main() {
    // dt large enough that the stiffness still matters (tiny dt makes the
    // effective system mass-dominated and trivially conditioned).
    run_mesh(1, 5.0);
    run_mesh(2, 5.0);
    println!("\nshape checks passed: polynomial preconditioning competitive on dynamic systems");
}
