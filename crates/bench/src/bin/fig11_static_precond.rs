//! Figure 11: ILU(0) versus polynomial preconditioners for the *static*
//! cantilever with pulling load, Mesh1 and Mesh2 — full convergence curves.
//!
//! Paper claim (Eq. "GLS(7) ≻ ILU(0) ≻ Neum(20)"): on a single processor
//! the polynomial preconditioners are fully competitive with ILU(0).

use parfem::prelude::*;
use parfem::sequential::SeqPrecond;
use parfem_bench::harness::{banner, write_csv};

fn run_mesh(k: usize) {
    let p = CantileverProblem::paper_mesh(k);
    banner(&format!(
        "Figure 11, Mesh{k} ({} equations): relative residual per iteration",
        p.n_eqn()
    ));
    let cfg = GmresConfig {
        tol: 1e-6,
        max_iters: 20_000,
        ..Default::default()
    };
    let precs = [
        SeqPrecond::None,
        SeqPrecond::Ilu0,
        SeqPrecond::Neumann(20),
        SeqPrecond::Gls(7),
    ];
    let mut curves = Vec::new();
    let mut labels = Vec::new();
    for pc in &precs {
        let (_, h) = parfem::sequential::solve_static(&p, pc, &cfg).expect("solve");
        println!(
            "{:>12}: {:>5} iterations (converged = {})",
            pc.name(),
            h.iterations(),
            h.converged()
        );
        labels.push(pc.name());
        curves.push(h.relative_residuals);
    }
    // CSV: iteration, one column per preconditioner (padded with blanks).
    let max_len = curves.iter().map(|c| c.len()).max().unwrap();
    let mut rows = Vec::new();
    for i in 0..max_len {
        let mut row = vec![i.to_string()];
        for c in &curves {
            row.push(c.get(i).map(|v| format!("{v:e}")).unwrap_or_default());
        }
        rows.push(row);
    }
    let header: Vec<String> = std::iter::once("iteration".to_string())
        .chain(labels.iter().cloned())
        .collect();
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    write_csv(&format!("fig11_static_mesh{k}"), &header_refs, &rows);

    // Shape checks — the paper's headline invariants: gls(7) converges
    // faster than ilu(0) and faster than the unpreconditioned solver.
    // (The paper additionally reports ilu(0) ahead of neumann(20); on our
    // exactly-scaled systems neumann(20)'s 21 matvecs per application can
    // win on iteration count for tiny meshes — EXPERIMENTS.md discusses.)
    let iters: Vec<usize> = curves.iter().map(|c| c.len() - 1).collect();
    assert!(iters[3] < iters[1], "gls(7) must beat ilu(0): {iters:?}");
    assert!(
        iters[3] < iters[0],
        "gls(7) must beat the unpreconditioned run: {iters:?}"
    );
}

fn main() {
    run_mesh(1);
    run_mesh(2);
    println!("\nshape checks passed: gls(7) beats ilu(0) and unpreconditioned on both meshes");
}
