//! Ablation: element family vs *parallel* communication — the paper's
//! Section-5 argument tested end to end.
//!
//! Section 5 claims higher-order elements (Q8) densify `G(K)` beyond
//! planarity and "deteriorate the scalability" of row-partitioned SpMV,
//! while the element-based strategy only ever exchanges interface *nodes*.
//! Here the same physical domain is discretized with T3, Q4 and Q8, both
//! decompositions run at P = 4, and the per-iteration exchanged bytes and
//! modeled times are measured.

use parfem::fem::{assembly, quad8s, tri3, Material, SubdomainSystem};
use parfem::mesh::{Cells, ElementPartition, NodePartition, Quad8Mesh, TriMesh};
use parfem::prelude::*;
use parfem::sparse::scaling::scale_system;
use parfem_bench::harness::{banner, Table};
use parfem_dd::{rdd_fgmres, RddSystem};
use parfem_msg::{run_ranks, Communicator};

const P: usize = 4;

struct Row {
    name: &'static str,
    n_eqn: usize,
    edd_bytes_per_iter: f64,
    rdd_bytes_per_iter: f64,
    edd_iters: usize,
    rdd_iters: usize,
}

/// Node partition by x-coordinate strips — element-family-agnostic, same
/// interface orientation as the element strips.
fn node_strips(coords: &[[f64; 2]], lx: f64, p: usize) -> NodePartition {
    let owner: Vec<usize> = coords
        .iter()
        .map(|c| (((c[0] / lx) * p as f64) as usize).min(p - 1))
        .collect();
    NodePartition::from_owner(p, owner)
}

fn run_rdd(a: &parfem::sparse::CsrMatrix, b: &[f64], part: &NodePartition) -> (f64, usize) {
    let systems = RddSystem::build_all(a, b, part);
    let cfg = GmresConfig::default();
    let gls = parfem::precond::GlsPrecond::for_scaled_system(7);
    let out = run_ranks(P, MachineModel::ideal(), |comm| {
        let sys = &systems[comm.rank()];
        let res = rdd_fgmres(comm, sys, &gls, &vec![0.0; sys.n_local()], &cfg)
            .expect("fault-free solve must not error");
        assert!(res.history.converged());
        (comm.stats().bytes_sent, res.history.iterations())
    });
    let iters = out.results[0].1;
    let max_bytes = out
        .results
        .iter()
        .map(|(b, _)| *b as f64)
        .fold(0.0_f64, f64::max);
    (max_bytes / iters as f64, iters)
}

fn run_edd(systems: &[SubdomainSystem], n_dofs: usize) -> (f64, usize) {
    let out = SolveSession::from_systems(systems, n_dofs)
        .machine(MachineModel::ideal())
        .run()
        .expect("fault-free solve must not error");
    assert!(out.history.converged());
    let iters = out.history.iterations();
    let max_bytes = out
        .reports
        .iter()
        .map(|r| r.stats.bytes_sent as f64)
        .fold(0.0_f64, f64::max);
    (max_bytes / iters as f64, iters)
}

fn main() {
    banner("Ablation: T3 / Q4 / Q8 through the PARALLEL solvers (P = 4, gls(7))");
    let (nx, ny) = (24usize, 12usize);
    let mat = Material::unit();
    let mut rows: Vec<Row> = Vec::new();

    // --- Q4 ---
    {
        let mesh = QuadMesh::cantilever(nx, ny);
        let mut dm = DofMap::new(mesh.n_nodes());
        dm.clamp_edge(&mesh, Edge::Left);
        let mut loads = vec![0.0; dm.n_dofs()];
        assembly::edge_load(&mesh, &dm, Edge::Right, 1.0, 0.0, &mut loads);
        let systems: Vec<SubdomainSystem> = ElementPartition::strips_x(&mesh, P)
            .subdomains(&mesh)
            .iter()
            .map(|s| SubdomainSystem::build(&mesh, &dm, &mat, s, &loads, None))
            .collect();
        let (edd_b, edd_i) = run_edd(&systems, dm.n_dofs());
        let sys = assembly::build_static(&mesh, &dm, &mat, &loads);
        let (a, b, _) = scale_system(&sys.stiffness, &sys.rhs).unwrap();
        let np = node_strips(mesh.coords(), mesh.lx(), P);
        let (rdd_b, rdd_i) = run_rdd(&a, &b, &np);
        rows.push(Row {
            name: "Q4",
            n_eqn: dm.n_free(),
            edd_bytes_per_iter: edd_b,
            rdd_bytes_per_iter: rdd_b,
            edd_iters: edd_i,
            rdd_iters: rdd_i,
        });
    }

    // --- T3 (same domain, each quad split) ---
    {
        let mesh = TriMesh::cantilever(nx, ny);
        let mut dm = DofMap::new(mesh.n_nodes());
        for n in mesh.edge_nodes(Edge::Left) {
            dm.clamp_node(n);
        }
        let mut loads = vec![0.0; dm.n_dofs()];
        let qmesh = QuadMesh::cantilever(nx, ny);
        assembly::edge_load(&qmesh, &dm, Edge::Right, 1.0, 0.0, &mut loads);
        let systems: Vec<SubdomainSystem> = ElementPartition::strips_x_tri(&mesh, P)
            .subdomains_of(&mesh)
            .iter()
            .map(|s| SubdomainSystem::build_tri(&mesh, &dm, &mat, s, &loads, None))
            .collect();
        let (edd_b, edd_i) = run_edd(&systems, dm.n_dofs());
        let k_raw = tri3::assemble_stiffness(&mesh, &dm, &mat);
        let mut rhs = loads.clone();
        let k_bc = assembly::apply_dirichlet(&k_raw, &dm, &mut rhs);
        let (a, b, _) = scale_system(&k_bc, &rhs).unwrap();
        let np = node_strips(mesh.coords(), nx as f64, P);
        let (rdd_b, rdd_i) = run_rdd(&a, &b, &np);
        rows.push(Row {
            name: "T3",
            n_eqn: dm.n_free(),
            edd_bytes_per_iter: edd_b,
            rdd_bytes_per_iter: rdd_b,
            edd_iters: edd_i,
            rdd_iters: rdd_i,
        });
    }

    // --- Q8 ---
    {
        let mesh = Quad8Mesh::cantilever(nx, ny);
        let mut dm = DofMap::new(mesh.n_nodes());
        for n in mesh.edge_nodes(Edge::Left) {
            dm.clamp_node(n);
        }
        let mut loads = vec![0.0; dm.n_dofs()];
        let right = mesh.edge_nodes(Edge::Right);
        for &n in &right {
            loads[dm.dof(n, 0)] = 1.0 / right.len() as f64;
        }
        let part = ElementPartition::strips_x_quad8(&mesh, P);
        let systems: Vec<SubdomainSystem> = part
            .subdomains_of(&mesh)
            .iter()
            .map(|s| SubdomainSystem::build_quad8(&mesh, &dm, &mat, s, &loads, None))
            .collect();
        let (edd_b, edd_i) = run_edd(&systems, dm.n_dofs());
        let k_raw = quad8s::assemble_stiffness(&mesh, &dm, &mat);
        let mut rhs = loads.clone();
        let k_bc = assembly::apply_dirichlet(&k_raw, &dm, &mut rhs);
        let (a, b, _) = scale_system(&k_bc, &rhs).unwrap();
        let np = node_strips(mesh.coords(), nx as f64, P);
        let (rdd_b, rdd_i) = run_rdd(&a, &b, &np);
        rows.push(Row {
            name: "Q8",
            n_eqn: dm.n_free(),
            edd_bytes_per_iter: edd_b,
            rdd_bytes_per_iter: rdd_b,
            edd_iters: edd_i,
            rdd_iters: rdd_i,
        });
        let _ = Cells::n_cells(&mesh);
    }

    let mut table = Table::new(&[
        "element",
        "n_eqn",
        "edd_bytes_per_iter",
        "rdd_bytes_per_iter",
        "edd_iters",
        "rdd_iters",
        "rdd_over_edd",
    ]);
    for r in &rows {
        let ratio = r.rdd_bytes_per_iter / r.edd_bytes_per_iter;
        table.row([
            r.name.to_string(),
            r.n_eqn.to_string(),
            format!("{:.1}", r.edd_bytes_per_iter),
            format!("{:.1}", r.rdd_bytes_per_iter),
            r.edd_iters.to_string(),
            r.rdd_iters.to_string(),
            format!("{ratio:.3}"),
        ]);
    }
    table.emit("ablation_elements_parallel");

    // Section-5 shape: the RDD/EDD communication ratio must not improve as
    // the element order rises from T3 through Q4 to Q8 — denser G(K) means
    // relatively more halo data for the row-based strategy.
    let ratio = |n: &str| {
        let r = rows.iter().find(|r| r.name == n).expect("row exists");
        r.rdd_bytes_per_iter / r.edd_bytes_per_iter
    };
    let (rt3, rq4, rq8) = (ratio("T3"), ratio("Q4"), ratio("Q8"));
    println!("\nRDD/EDD byte ratios: T3 {rt3:.2}, Q4 {rq4:.2}, Q8 {rq8:.2}");
    assert!(
        rq8 >= rq4 * 0.95,
        "Q8 must not ease RDD's relative communication burden"
    );
    println!("shape check passed: higher-order elements never favour the row-based strategy");
}
