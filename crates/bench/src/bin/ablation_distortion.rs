//! Ablation: mesh distortion vs. preconditioner effectiveness.
//!
//! The paper's meshes are perfect rectangles. Real FEM meshes are not; this
//! study distorts the interior nodes (up to 0.45 cell widths) and tracks
//! how the GLS- and ILU-preconditioned iteration counts respond. The
//! norm-1 scaling guarantee `σ(DKD) ⊂ (0, 1)` is geometry-independent, so
//! the polynomial preconditioner keeps working — only the effective
//! condition number (and thus iteration count) drifts.

use parfem::fem::assembly;
use parfem::prelude::*;
use parfem::sequential::SeqPrecond;
use parfem_bench::harness::{banner, Table};

fn main() {
    banner("Ablation: interior-node distortion (24x8 cantilever, gls(7) / ilu(0))");
    let (nx, ny) = (24usize, 8usize);
    let cfg = GmresConfig {
        tol: 1e-6,
        max_iters: 40_000,
        ..Default::default()
    };
    let mut table = Table::new(&["amplitude", "gls7_iters", "ilu0_iters", "none_iters"]);
    let mut gls_iters = Vec::new();
    for amp in [0.0f64, 0.15, 0.3, 0.45] {
        let mesh = QuadMesh::distorted(nx, ny, nx as f64, ny as f64, amp, 12345);
        let mut dm = DofMap::new(mesh.n_nodes());
        dm.clamp_edge(&mesh, Edge::Left);
        let mut loads = vec![0.0; dm.n_dofs()];
        assembly::edge_load(&mesh, &dm, Edge::Right, 1.0, 0.0, &mut loads);
        let sys = assembly::build_static(&mesh, &dm, &Material::unit(), &loads);
        let mut cells = Vec::new();
        for pc in [SeqPrecond::Gls(7), SeqPrecond::Ilu0, SeqPrecond::None] {
            let (_, h) =
                parfem::sequential::solve_system(&sys.stiffness, &sys.rhs, &pc, &cfg).unwrap();
            assert!(h.converged(), "amp {amp} {}", pc.name());
            cells.push(h.iterations());
        }
        table.row([
            format!("{amp}"),
            cells[0].to_string(),
            cells[1].to_string(),
            cells[2].to_string(),
        ]);
        gls_iters.push(cells[0]);
    }
    table.emit("ablation_distortion");
    // GLS must keep converging on every distortion level; growth bounded.
    let worst = *gls_iters.iter().max().unwrap();
    let base = gls_iters[0];
    assert!(
        worst <= 4 * base,
        "distortion should not blow up gls(7): {gls_iters:?}"
    );
    println!(
        "\ngls(7) robust across distortion levels (paper's scaling guarantee is geometry-free)"
    );
}
