//! Table 3: iterations, CPU time and speedup of EDD-FGMRES-GLS(m) for the
//! static cantilever problem on the (virtual) SGI Origin — meshes 1–7,
//! P ∈ {1, 2, 4, 8}, degrees m ∈ {7, 8, 9, 10}.
//!
//! The paper's observations to reproduce:
//! 1. iteration counts are essentially independent of P;
//! 2. speedup improves with mesh size;
//! 3. GLS(10) often needs fewer iterations than GLS(7) but costs more time
//!    (three extra matvecs per iteration) — the convergence/CPU trade-off.
//!
//! Set `PARFEM_QUICK=1` to restrict to meshes 1–4 and degrees {7, 10}.

use parfem::prelude::*;
use parfem_bench::harness::{banner, quick, write_csv, Case, RANKS};

fn main() {
    let meshes: Vec<usize> = if quick() {
        vec![1, 2, 3, 4]
    } else {
        vec![1, 2, 3, 4, 5, 6, 7]
    };
    let degrees: Vec<usize> = if quick() {
        vec![7, 10]
    } else {
        vec![7, 8, 9, 10]
    };
    let ps = RANKS;

    banner("Table 3: EDD-FGMRES-GLS(m), static problem, virtual SGI-Origin");
    println!(
        "{:>6} {:>3} | {}",
        "Mesh",
        "P",
        degrees
            .iter()
            .map(|m| format!("{:>8} {:>10} {:>6}", format!("it(m={m})"), "time(s)", "S"))
            .collect::<Vec<_>>()
            .join(" | ")
    );

    let mut rows = Vec::new();
    // (mesh, degree) -> per-P iterations for the shape checks.
    let mut iter_table: Vec<Vec<usize>> = Vec::new();
    let mut speedup8_by_mesh: Vec<f64> = Vec::new();

    for &k in &meshes {
        let prob = CantileverProblem::paper_mesh(k);
        // Mesh1 has only 7 element columns: cap the strip count.
        let max_p = prob.mesh.nx();
        let mut t1: Vec<f64> = vec![0.0; degrees.len()];
        for &np in &ps {
            let np_eff = np.min(max_p);
            let mut cells = Vec::new();
            let mut row = vec![format!("Mesh{k}"), np.to_string()];
            for (di, &m) in degrees.iter().enumerate() {
                let out = Case::edd(&prob)
                    .precond(PrecondSpec::Gls {
                        degree: m,
                        theta: None,
                    })
                    .run(np_eff);
                if np == 1 {
                    t1[di] = out.modeled_time;
                }
                let s = t1[di] / out.modeled_time;
                cells.push(format!(
                    "{:>8} {:>10.4} {:>6.2}",
                    out.history.iterations(),
                    out.modeled_time,
                    s
                ));
                row.push(m.to_string());
                row.push(out.history.iterations().to_string());
                row.push(format!("{:.6}", out.modeled_time));
                row.push(format!("{s:.3}"));
                if di == 0 {
                    if np == 1 {
                        iter_table.push(Vec::new());
                    }
                    iter_table
                        .last_mut()
                        .unwrap()
                        .push(out.history.iterations());
                    if np == 8 {
                        speedup8_by_mesh.push(s);
                    }
                }
            }
            println!(
                "{:>6} {:>3} | {}",
                format!("Mesh{k}"),
                np,
                cells.join(" | ")
            );
            rows.push(row);
        }
        println!();
    }
    write_csv(
        "table3_performance",
        &[
            "mesh", "P", "m_a", "it_a", "t_a", "s_a", "m_b", "it_b", "t_b", "s_b", "m_c", "it_c",
            "t_c", "s_c", "m_d", "it_d", "t_d", "s_d",
        ],
        &rows,
    );

    // Shape check 1: iterations vary by at most 2 across P per mesh.
    for (k, iters) in meshes.iter().zip(&iter_table) {
        let min = *iters.iter().min().unwrap();
        let max = *iters.iter().max().unwrap();
        assert!(
            max - min <= 2,
            "Mesh{k}: iteration counts vary across P: {iters:?}"
        );
    }
    // Shape check 2: speedup at P=8 grows with mesh size (last vs Mesh2;
    // Mesh1 is degenerate at 7 columns).
    if speedup8_by_mesh.len() >= 3 {
        assert!(
            speedup8_by_mesh.last().unwrap() > &speedup8_by_mesh[1],
            "speedup must grow with size: {speedup8_by_mesh:?}"
        );
    }
    println!("shape checks passed: iterations P-independent; speedup grows with size");
}
