//! Figure 13: convergence versus increasing GLS polynomial degree for the
//! *static* cantilever, Mesh1 and Mesh2.
//!
//! Paper claim: `GLS(20) ≻ GLS(10) ≻ GLS(7) ≻ GLS(3) ≻ GLS(1)` in iteration
//! count on the small meshes (though not in total cost — see Table 3).

use parfem::prelude::*;
use parfem::sequential::SeqPrecond;
use parfem_bench::harness::{banner, Table};

const DEGREES: [usize; 5] = [1, 3, 7, 10, 20];

fn run_mesh(k: usize) -> Vec<usize> {
    let p = CantileverProblem::paper_mesh(k);
    banner(&format!(
        "Figure 13, Mesh{k} ({} equations): GLS degree sweep (static)",
        p.n_eqn()
    ));
    let cfg = GmresConfig {
        tol: 1e-6,
        max_iters: 40_000,
        ..Default::default()
    };
    let mut table = Table::new(&["degree", "iterations", "total_matvecs"]);
    let mut iters = Vec::new();
    for &m in &DEGREES {
        let (_, h) = parfem::sequential::solve_static(&p, &SeqPrecond::Gls(m), &cfg).unwrap();
        table.row([
            m.to_string(),
            h.iterations().to_string(),
            (h.iterations() * (m + 1)).to_string(),
        ]);
        iters.push(h.iterations());
    }
    table.emit(&format!("fig13_static_degree_mesh{k}"));
    iters
}

fn main() {
    let i1 = run_mesh(1);
    let i2 = run_mesh(2);
    // Shape check: monotone non-increasing iteration counts with degree.
    for (mesh, iters) in [(1, &i1), (2, &i2)] {
        for w in iters.windows(2) {
            assert!(
                w[1] <= w[0],
                "Mesh{mesh}: higher degree must not need more iterations: {iters:?}"
            );
        }
    }
    println!("\nshape checks passed: gls(20) > gls(10) > gls(7) > gls(3) > gls(1) (paper Fig. 13)");
}
