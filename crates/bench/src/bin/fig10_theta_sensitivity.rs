//! Figure 10: convergence of EDD-GMRES-gls(10) versus the spectrum
//! estimate Θ.
//!
//! The paper's point: Θ = (0, 1) is always *valid* after norm-1 scaling but
//! not necessarily *optimal* — estimates that track the true spectrum
//! better converge faster, and badly wrong estimates stall.

use parfem::prelude::*;
use parfem::sequential::SeqPrecond;
use parfem_bench::harness::{banner, Table};
use parfem_sparse::gershgorin;

fn main() {
    banner("Figure 10: EDD-GMRES-gls(10) convergence vs spectrum estimate");
    let p = CantileverProblem::paper_mesh(2);
    let cfg = GmresConfig {
        tol: 1e-6,
        max_iters: 5_000,
        ..Default::default()
    };

    // Measure the actual spectrum of the scaled operator for context.
    let sys = p.static_system();
    let (a, _, _) = parfem::sparse::scaling::scale_system(&sys.stiffness, &sys.rhs).unwrap();
    let lmax = gershgorin::power_iteration_lambda_max(&a, 50_000, 1e-12);
    let lmin = gershgorin::power_iteration_lambda_min(&a, 50_000, 1e-12).max(1e-12);
    println!("measured spectrum of the scaled operator: [{lmin:.3e}, {lmax:.6}]");

    let thetas: Vec<(String, IntervalUnion)> = vec![
        ("(eps,1) default".into(), IntervalUnion::unit()),
        (
            "measured [lmin,lmax]".into(),
            IntervalUnion::single(lmin, lmax),
        ),
        (
            "(eps,0.5) too low".into(),
            IntervalUnion::single(f64::EPSILON, 0.5),
        ),
        ("(0.1,1) floor cut".into(), IntervalUnion::single(0.1, 1.0)),
        ("(0.4,0.6) narrow".into(), IntervalUnion::single(0.4, 0.6)),
        ("(0.9,1.0) top only".into(), IntervalUnion::single(0.9, 1.0)),
    ];

    println!();
    let mut table = Table::new(&["theta", "iterations", "converged"]);
    let mut iters = Vec::new();
    // Ritz-estimated theta first (30-step Lanczos inside the harness).
    {
        let (_, h) = parfem::sequential::solve_static(&p, &SeqPrecond::GlsAuto(10), &cfg).unwrap();
        table.row([
            "ritz-measured".to_string(),
            h.iterations().to_string(),
            h.converged().to_string(),
        ]);
    }
    for (label, theta) in &thetas {
        let pc = SeqPrecond::GlsOnTheta(10, theta.clone());
        let (_, h) = parfem::sequential::solve_static(&p, &pc, &cfg).unwrap();
        table.row([
            label.clone(),
            h.iterations().to_string(),
            h.converged().to_string(),
        ]);
        iters.push(h.iterations());
    }
    table.emit("fig10_theta_sensitivity");

    // Shape checks: the measured-spectrum estimate is at least as good as
    // the default, and the narrow/top-only estimates are strictly worse.
    assert!(iters[1] <= iters[0], "measured theta should not be worse");
    assert!(iters[4] > iters[0], "narrow theta must be worse");
    assert!(iters[5] > iters[0], "top-only theta must be worse");
    println!("\nshape checks passed: theta quality governs convergence (paper Fig. 10)");
}
