//! Emits the machine-readable kernel/solver performance report.
//!
//! Two modes (run from the repository root, `--release` always):
//!
//! ```text
//! cargo run --release -p parfem-bench --bin perf_report -- --baseline
//!     # measure and (over)write BENCH_BASELINE.json
//! cargo run --release -p parfem-bench --bin perf_report
//!     # measure, read BENCH_BASELINE.json, write BENCH_PERF.json
//!     # (baseline + current + per-bench speedups)
//! ```
//!
//! The workloads are fixed so the numbers are comparable across runs on the
//! same machine: a 5-point 2-D Laplacian SpMV (MFLOP/s from `spmv_flops`),
//! a GLS(7) polynomial-preconditioner application, and restarted FGMRES
//! iteration throughput (iterations/s) with and without polynomial
//! preconditioning. The process installs [`parfem_trace::alloc::CountingAlloc`],
//! so the report also carries allocations-per-iteration for the FGMRES hot
//! loop — the quantity the reusable Krylov workspace drives to zero.

use parfem::prelude::{CantileverProblem, LoadCase, MachineModel, Material, PrecondSpec};
use parfem_bench::harness::Case;
use parfem_krylov::{fgmres_with, GmresConfig, KrylovWorkspace};
use parfem_precond::{GlsPrecond, GlsPrecondF32, IdentityPrecond, Preconditioner};
use parfem_sparse::{scaling, variant, BcsrMatrix, CooMatrix, CsrMatrix, KernelPolicy, SellMatrix};
use parfem_trace::alloc::{self, CountingAlloc};
use std::fmt::Write as _;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const BASELINE_PATH: &str = "BENCH_BASELINE.json";
const REPORT_PATH: &str = "BENCH_PERF.json";

/// 5-point finite-difference Laplacian on an `nx` × `nx` grid.
fn laplacian_2d(nx: usize) -> CsrMatrix {
    let n = nx * nx;
    let mut coo = CooMatrix::new(n, n);
    let idx = |i: usize, j: usize| i * nx + j;
    for i in 0..nx {
        for j in 0..nx {
            let r = idx(i, j);
            coo.push(r, r, 4.0).expect("diag");
            if i > 0 {
                coo.push(r, idx(i - 1, j), -1.0).expect("north");
            }
            if i + 1 < nx {
                coo.push(r, idx(i + 1, j), -1.0).expect("south");
            }
            if j > 0 {
                coo.push(r, idx(i, j - 1), -1.0).expect("west");
            }
            if j + 1 < nx {
                coo.push(r, idx(i, j + 1), -1.0).expect("east");
            }
        }
    }
    coo.to_csr()
}

/// Smallest wall time of `repeats` timed calls (after one warm-up call).
fn time_best<F: FnMut()>(repeats: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

struct BenchLine {
    name: &'static str,
    /// Problem size.
    n: usize,
    /// Wall seconds for the timed unit.
    secs: f64,
    /// Headline rate: MFLOP/s for kernels, iterations/s for solves.
    rate: f64,
    /// Unit of `rate` (documentation only).
    rate_unit: &'static str,
    /// Allocator calls per FGMRES iteration (solve benches only).
    allocs_per_iter: Option<f64>,
    /// Allocated bytes per FGMRES iteration (solve benches only).
    alloc_bytes_per_iter: Option<f64>,
}

fn bench_spmv() -> BenchLine {
    let nx = 256;
    let a = laplacian_2d(nx);
    let n = a.n_rows();
    let x: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
    let mut y = vec![0.0; n];
    // Batch enough SpMVs that one timed unit is well above timer noise.
    let reps = 50;
    let secs = time_best(20, || {
        for _ in 0..reps {
            a.spmv_into(&x, &mut y);
            std::hint::black_box(&y);
        }
    }) / reps as f64;
    BenchLine {
        name: "spmv",
        n,
        secs,
        rate: a.spmv_flops() as f64 / secs / 1e6,
        rate_unit: "mflops",
        allocs_per_iter: None,
        alloc_bytes_per_iter: None,
    }
}

/// SpMV throughput of the SELL-C-σ storage format (same Laplacian as
/// `bench_spmv`, so the MFLOP/s are directly comparable).
fn bench_spmv_sellcs() -> BenchLine {
    let nx = 256;
    let a = laplacian_2d(nx);
    let sell = SellMatrix::from_csr(&a, 8, 64);
    let n = a.n_rows();
    let x: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
    let mut y = vec![0.0; n];
    let reps = 50;
    let secs = time_best(20, || {
        for _ in 0..reps {
            sell.spmv_into(&x, &mut y);
            std::hint::black_box(&y);
        }
    }) / reps as f64;
    BenchLine {
        name: "spmv_sellcs",
        n,
        secs,
        rate: a.spmv_flops() as f64 / secs / 1e6,
        rate_unit: "mflops",
        allocs_per_iter: None,
        alloc_bytes_per_iter: None,
    }
}

/// SpMV throughput of the 2×2 block-CSR format on a 2-D elasticity
/// stiffness matrix (the DOF structure the format targets).
fn bench_spmv_bcsr() -> BenchLine {
    let p = CantileverProblem::new(160, 40, Material::unit(), LoadCase::PullX(1.0));
    let a = p.static_system().stiffness;
    let bcsr = BcsrMatrix::try_from_csr(&a).expect("elasticity stiffness has even dimensions");
    let n = a.n_rows();
    let x: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
    let mut y = vec![0.0; n];
    let reps = 50;
    let secs = time_best(20, || {
        for _ in 0..reps {
            bcsr.spmv_into(&x, &mut y);
            std::hint::black_box(&y);
        }
    }) / reps as f64;
    BenchLine {
        name: "spmv_bcsr",
        n,
        secs,
        rate: a.spmv_flops() as f64 / secs / 1e6,
        rate_unit: "mflops",
        allocs_per_iter: None,
        alloc_bytes_per_iter: None,
    }
}

fn bench_precond_apply() -> BenchLine {
    let nx = 256;
    let k = laplacian_2d(nx);
    let n = k.n_rows();
    let f = vec![1.0; n];
    let (a, _b, _sc) = scaling::scale_system(&k, &f).expect("scale");
    let p = GlsPrecond::for_scaled_system(7);
    let v: Vec<f64> = (0..n).map(|i| ((i % 11) as f64 - 5.0) / 5.0).collect();
    let mut z = vec![0.0; n];
    let ops = Preconditioner::<CsrMatrix>::operator_applications(&p) as f64;
    let reps = 10;
    let secs = time_best(20, || {
        for _ in 0..reps {
            p.apply_into(&a, &v, &mut z);
            std::hint::black_box(&z);
        }
    }) / reps as f64;
    BenchLine {
        name: "precond_apply_gls7",
        n,
        secs,
        rate: ops * a.spmv_flops() as f64 / secs / 1e6,
        rate_unit: "mflops",
        allocs_per_iter: None,
        alloc_bytes_per_iter: None,
    }
}

/// The mixed-precision mirror of `bench_precond_apply`: the same GLS(7)
/// polynomial evaluated in `f32` through the attached single-precision
/// matrix copy. The rate counts the same nominal flops as the `f64` bench,
/// so the ratio of the two is the raw mixed-precision speedup.
fn bench_precond_apply_f32() -> BenchLine {
    let nx = 256;
    let k = laplacian_2d(nx);
    let n = k.n_rows();
    let f = vec![1.0; n];
    let (a, _b, _sc) = scaling::scale_system(&k, &f).expect("scale");
    let p = GlsPrecondF32::for_scaled_system(7).with_matrix(&a);
    let v: Vec<f64> = (0..n).map(|i| ((i % 11) as f64 - 5.0) / 5.0).collect();
    let mut z = vec![0.0; n];
    let mut scratch = vec![vec![0.0; n]; Preconditioner::<CsrMatrix>::scratch_vectors(&p)];
    let ops = Preconditioner::<CsrMatrix>::operator_applications(&p) as f64;
    let reps = 10;
    let secs = time_best(20, || {
        for _ in 0..reps {
            p.apply_scratch(&a, &v, &mut z, &mut scratch);
            std::hint::black_box(&z);
        }
    }) / reps as f64;
    BenchLine {
        name: "precond_apply_gls7_f32",
        n,
        secs,
        rate: ops * a.spmv_flops() as f64 / secs / 1e6,
        rate_unit: "mflops",
        allocs_per_iter: None,
        alloc_bytes_per_iter: None,
    }
}

/// FGMRES iteration throughput: a fixed iteration budget on the scaled
/// Laplacian with `tol = 0` so every run performs exactly `iters` inner
/// iterations regardless of convergence. Runs through a caller-owned
/// [`KrylovWorkspace`] warmed by one untimed solve, so the timed/measured
/// solves are the production zero-allocation configuration.
fn bench_fgmres<P>(
    name: &'static str,
    precond: &P,
    iters: usize,
    kernels: KernelPolicy,
) -> BenchLine
where
    P: Preconditioner<CsrMatrix> + for<'s> Preconditioner<variant::SelectedKernel<'s>>,
{
    let nx = 200;
    let k = laplacian_2d(nx);
    let n = k.n_rows();
    let f = vec![1.0; n];
    let (a, b, _sc) = scaling::scale_system(&k, &f).expect("scale");
    // A non-scalar policy runs the solve through the per-matrix selector —
    // the operator the SolveSession would pick at build time.
    if !matches!(kernels, KernelPolicy::Scalar) {
        let sel = variant::select(&a, kernels);
        return bench_fgmres_op(name, &sel, n, &b, precond, iters, kernels);
    }
    bench_fgmres_op(name, &a, n, &b, precond, iters, kernels)
}

/// The measured FGMRES body of [`bench_fgmres`], generic over the operator
/// variant chosen by the policy.
fn bench_fgmres_op<Op, P>(
    name: &'static str,
    a: &Op,
    n: usize,
    b: &[f64],
    precond: &P,
    iters: usize,
    kernels: KernelPolicy,
) -> BenchLine
where
    Op: parfem_sparse::LinearOperator + ?Sized,
    P: Preconditioner<Op> + ?Sized,
{
    let x0 = vec![0.0; n];
    let cfg = |max_iters: usize| GmresConfig {
        restart: 25,
        max_iters,
        tol: 0.0,
        kernels,
        ..Default::default()
    };
    let mut ws = KrylovWorkspace::new();
    // Warm: size every buffer and record the history high-water mark.
    let _ = std::hint::black_box(fgmres_with(a, precond, b, &x0, &cfg(iters), &mut ws));
    let secs = time_best(5, || {
        let res = fgmres_with(a, precond, b, &x0, &cfg(iters), &mut ws);
        assert_eq!(res.history.iterations(), iters, "{name}: fixed-work solve");
        std::hint::black_box(&res.x);
    });

    // Allocation traffic per iteration: difference between a long and a
    // short solve divided by the iteration difference, so per-solve costs
    // (the returned history/solution vectors) cancel. With the warm
    // workspace this is exactly zero.
    let short = iters / 4;
    let s0 = alloc::stats();
    let _ = std::hint::black_box(fgmres_with(a, precond, b, &x0, &cfg(short), &mut ws));
    let s1 = alloc::stats();
    let _ = std::hint::black_box(fgmres_with(a, precond, b, &x0, &cfg(iters), &mut ws));
    let s2 = alloc::stats();
    let d_short = s1.since(s0);
    let d_long = s2.since(s1);
    let di = (iters - short) as f64;
    let allocs_per_iter = d_long.count.saturating_sub(d_short.count) as f64 / di;
    let bytes_per_iter = d_long.bytes.saturating_sub(d_short.bytes) as f64 / di;

    BenchLine {
        name,
        n,
        secs,
        rate: iters as f64 / secs,
        rate_unit: "iters_per_s",
        allocs_per_iter: Some(allocs_per_iter),
        alloc_bytes_per_iter: Some(bytes_per_iter),
    }
}

/// Blocking-vs-overlapped interface exchange under a machine model: the same
/// EDD solve run twice, once with the overlapped nonblocking exchange. The
/// iterates are bit-identical, so only the modeled (virtual) parallel time
/// differs — the win is the latency/bandwidth hidden behind the interior
/// matvec.
struct OverlapLine {
    machine: &'static str,
    blocking_secs: f64,
    overlapped_secs: f64,
    iterations: u64,
}

fn bench_overlap() -> Vec<OverlapLine> {
    let p = CantileverProblem::new(48, 12, Material::unit(), LoadCase::ShearY(1.0));
    let gmres = GmresConfig {
        tol: 1e-8,
        max_iters: 50_000,
        ..Default::default()
    };
    [
        ("ibm_sp2", MachineModel::ibm_sp2()),
        ("sgi_origin", MachineModel::sgi_origin()),
    ]
    .into_iter()
    .map(|(machine, model)| {
        let run = |overlap: bool| {
            Case::edd(&p)
                .precond(PrecondSpec::Gls {
                    degree: 5,
                    theta: None,
                })
                .gmres(gmres)
                .machine(model.clone())
                .overlap(overlap)
                .run(8)
        };
        let blocking = run(false);
        let overlapped = run(true);
        assert_eq!(
            blocking.u, overlapped.u,
            "overlapped exchange must be bit-identical ({machine})"
        );
        OverlapLine {
            machine,
            blocking_secs: blocking.modeled_time,
            overlapped_secs: overlapped.modeled_time,
            iterations: blocking.history.iterations() as u64,
        }
    })
    .collect()
}

fn render_overlap(lines: &[OverlapLine]) -> String {
    let mut out = String::new();
    for (i, l) in lines.iter().enumerate() {
        let comma = if i + 1 == lines.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    \"{}\": {{ \"blocking_secs\": {:.6e}, \"overlapped_secs\": {:.6e}, \
             \"speedup\": {:.4}, \"iterations\": {} }}{comma}",
            l.machine,
            l.blocking_secs,
            l.overlapped_secs,
            l.blocking_secs / l.overlapped_secs,
            l.iterations
        );
    }
    out
}

fn run_all() -> Vec<BenchLine> {
    vec![
        bench_spmv(),
        bench_spmv_sellcs(),
        bench_spmv_bcsr(),
        bench_precond_apply(),
        bench_precond_apply_f32(),
        bench_fgmres(
            "fgmres_iteration",
            &IdentityPrecond,
            400,
            KernelPolicy::Scalar,
        ),
        bench_fgmres(
            "fgmres_iteration_simd",
            &IdentityPrecond,
            400,
            KernelPolicy::Auto,
        ),
        bench_fgmres(
            "fgmres_iteration_gls7",
            &GlsPrecond::for_scaled_system(7),
            200,
            KernelPolicy::Scalar,
        ),
    ]
}

/// Renders the benches as a JSON object body (the same layout in the
/// baseline file and in the `baseline` / `current` sections of the report).
fn render_benches(lines: &[BenchLine], indent: &str) -> String {
    let mut out = String::new();
    for (i, l) in lines.iter().enumerate() {
        let comma = if i + 1 == lines.len() { "" } else { "," };
        let mut extra = String::new();
        if let Some(a) = l.allocs_per_iter {
            let _ = write!(extra, ", \"allocs_per_iter\": {a:.2}");
        }
        if let Some(b) = l.alloc_bytes_per_iter {
            let _ = write!(extra, ", \"alloc_bytes_per_iter\": {b:.1}");
        }
        let _ = writeln!(
            out,
            "{indent}\"{}\": {{ \"n\": {}, \"secs\": {:.6e}, \"{}\": {:.4}{extra} }}{comma}",
            l.name, l.n, l.secs, l.rate_unit, l.rate
        );
    }
    out
}

/// Pulls `key` out of the section `"bench": { ... }` of a JSON string this
/// binary wrote earlier. A full JSON parser is overkill for our own output.
fn extract_number(json: &str, bench: &str, key: &str) -> Option<f64> {
    let sect_start = json.find(&format!("\"{bench}\":"))?;
    let sect = &json[sect_start..];
    let sect_end = sect.find('}')?;
    let sect = &sect[..sect_end];
    let key_start = sect.find(&format!("\"{key}\":"))?;
    let after = sect[key_start..].split_once(':')?.1;
    let num: String = after
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    num.parse().ok()
}

fn main() {
    let baseline_mode = std::env::args().any(|a| a == "--baseline");
    eprintln!(
        "perf_report: measuring ({} mode) ...",
        if baseline_mode { "baseline" } else { "current" }
    );
    let lines = run_all();
    for l in &lines {
        eprintln!(
            "  {:<24} n={:<7} {:>12.6e} s  {:>12.2} {}{}",
            l.name,
            l.n,
            l.secs,
            l.rate,
            l.rate_unit,
            l.allocs_per_iter
                .map(|a| format!("  {a:.2} allocs/iter"))
                .unwrap_or_default()
        );
    }

    if baseline_mode {
        let mut out = String::from("{\n  \"schema\": \"parfem-bench-perf-v1\",\n");
        out.push_str(&render_benches(&lines, "  "));
        out.push_str("}\n");
        std::fs::write(BASELINE_PATH, out).expect("write baseline");
        eprintln!("perf_report: wrote {BASELINE_PATH}");
        return;
    }

    let baseline = std::fs::read_to_string(BASELINE_PATH).unwrap_or_else(|e| {
        panic!("perf_report: cannot read {BASELINE_PATH} ({e}); run with --baseline first")
    });
    let mut out = String::from("{\n  \"schema\": \"parfem-bench-perf-v1\",\n  \"baseline\": {\n");
    for line in baseline.lines() {
        // Re-indent the baseline bench lines into the report's nested object.
        let t = line.trim();
        if t.starts_with('{') || t.starts_with('}') || t.starts_with("\"schema\"") {
            continue;
        }
        out.push_str("    ");
        out.push_str(t.trim_end_matches(','));
        // Separators re-added below via fixed ordering.
        out.push_str(",\n");
    }
    // Drop the trailing comma of the last copied line.
    if out.ends_with(",\n") {
        out.truncate(out.len() - 2);
        out.push('\n');
    }
    out.push_str("  },\n  \"current\": {\n");
    out.push_str(&render_benches(&lines, "    "));
    out.push_str("  },\n  \"speedup\": {\n");
    for (i, l) in lines.iter().enumerate() {
        let base = extract_number(&baseline, l.name, l.rate_unit).unwrap_or(f64::NAN);
        let speedup = l.rate / base;
        let comma = if i + 1 == lines.len() { "" } else { "," };
        out.push_str(&format!("    \"{}\": {:.4}{}\n", l.name, speedup, comma));
        eprintln!("  speedup {:<24} {:.3}x", l.name, speedup);
    }
    // Modeled (virtual-time) win from the nonblocking overlapped interface
    // exchange; deterministic, so only recorded in the report, not baselined.
    eprintln!("perf_report: measuring overlapped-exchange modeled times ...");
    let overlap = bench_overlap();
    for l in &overlap {
        eprintln!(
            "  overlap {:<12} blocking {:.4e} s  overlapped {:.4e} s  ({:.3}x)",
            l.machine,
            l.blocking_secs,
            l.overlapped_secs,
            l.blocking_secs / l.overlapped_secs
        );
    }
    out.push_str("  },\n  \"overlap_modeled\": {\n");
    out.push_str(&render_overlap(&overlap));
    out.push_str("  }\n}\n");
    std::fs::write(REPORT_PATH, out).expect("write report");
    eprintln!("perf_report: wrote {REPORT_PATH}");
}
