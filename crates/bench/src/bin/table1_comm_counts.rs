//! Table 1: communication cost of the inner Arnoldi process, *measured*
//! from the communicator statistics instead of hand-counted.
//!
//! The paper's claim: per Arnoldi iteration, Algorithm 5 (basic EDD) does
//! 3 nearest-neighbour exchanges, Algorithm 6 (enhanced EDD) 1, and
//! Algorithm 8 (RDD) 1, with one global reduction each. Preconditioner-
//! internal exchanges (`degree` per iteration) are identical across all
//! three and reported separately.

use parfem::prelude::*;
use parfem_bench::harness::{banner, Case, Table};

fn main() {
    banner("Table 1: measured communication per Arnoldi iteration (Mesh4, P=4, gls(5))");
    let p = CantileverProblem::paper_mesh(4);
    let degree = 5usize;
    let gls5 = PrecondSpec::Gls {
        degree,
        theta: None,
    };

    let basic = Case::edd(&p)
        .precond(gls5.clone())
        .variant(EddVariant::Basic)
        .machine(MachineModel::ideal())
        .run(4);
    // Trace the enhanced run: the event stream must reproduce the live
    // counters exactly, which cross-validates the Table 1 numbers below.
    let sink = TraceSink::recording();
    let enhanced = Case::edd(&p)
        .precond(gls5.clone())
        .machine(MachineModel::ideal())
        .run_traced(4, &sink);
    let rdd = Case::rdd(&p)
        .precond(gls5)
        .machine(MachineModel::ideal())
        .run(4);

    let mut table = Table::new(&[
        "algorithm",
        "iterations",
        "neighbor_exchanges_per_iter",
        "global_reductions_per_iter",
        "precond_exchanges_total",
    ]);
    let mut per_iter_exchanges = Vec::new();
    for (name, out) in [
        ("Alg5 EDD basic", &basic),
        ("Alg6 EDD enhanced", &enhanced),
        ("Alg8 RDD", &rdd),
    ] {
        let iters = out.history.iterations() as f64;
        let s = &out.reports[0].stats;
        // Preconditioner matvecs contribute `degree` exchanges every
        // iteration in all three algorithms; subtract to isolate the
        // solver skeleton the paper's Table 1 counts.
        let total = s.neighbor_exchanges as f64;
        let precond = degree as f64 * iters;
        let skeleton = (total - precond) / iters;
        let reds = s.allreduces as f64 / iters;
        table.row([
            name.to_string(),
            format!("{iters}"),
            format!("{skeleton:.3}"),
            format!("{reds:.3}"),
            format!("{precond}"),
        ]);
        per_iter_exchanges.push(skeleton);
    }
    table.emit("table1_comm_counts");

    // The trace must re-derive the enhanced run's comm counts by counting
    // events — any drift between instrumentation and live stats is a bug.
    let report = TraceReport::from_events(&sink.take_events());
    for rank in &report.ranks {
        let live = &enhanced.reports[rank.rank].stats;
        assert_eq!(rank.comm.neighbor_exchanges, live.neighbor_exchanges);
        assert_eq!(rank.comm.allreduces, live.allreduces);
        assert_eq!(rank.comm.bytes_sent, live.bytes_sent);
    }
    let (ex_per_iter, red_per_iter) = report.per_iteration_comm().expect("iter events");
    println!(
        "\ntrace cross-check (enhanced): {:.2} exchanges/iter, {:.2} reductions/iter from {} events",
        ex_per_iter,
        red_per_iter,
        report.iters.len(),
    );

    // Paper shape: basic ~= enhanced + 2; enhanced ~= rdd ~= 1 (+ setup).
    assert!(
        (per_iter_exchanges[0] - per_iter_exchanges[1] - 2.0).abs() < 0.2,
        "basic must pay 2 extra exchanges per iteration"
    );
    assert!(
        (per_iter_exchanges[1] - per_iter_exchanges[2]).abs() < 0.5,
        "enhanced EDD and RDD skeletons must match"
    );
    println!("\nshape checks passed: Alg5 = Alg6 + 2 exchanges/iter; Alg6 ~= Alg8");
}
