//! Figure 14: convergence versus increasing GLS polynomial degree for the
//! *dynamic* cantilever (first Newmark step), Mesh1 and Mesh2.

use parfem::dynamic::first_step_solve;
use parfem::prelude::*;
use parfem::sequential::SeqPrecond;
use parfem_bench::harness::{banner, Table};

const DEGREES: [usize; 5] = [1, 3, 7, 10, 20];

fn run_mesh(k: usize, dt: f64) -> Vec<usize> {
    let p = CantileverProblem::paper_mesh(k);
    banner(&format!(
        "Figure 14, Mesh{k} ({} equations), dt = {dt}: GLS degree sweep (dynamic)",
        p.n_eqn()
    ));
    let cfg = GmresConfig {
        tol: 1e-6,
        max_iters: 40_000,
        ..Default::default()
    };
    let mut table = Table::new(&["degree", "iterations"]);
    let mut iters = Vec::new();
    for &m in &DEGREES {
        let (_, h) = first_step_solve(&p, dt, &SeqPrecond::Gls(m), &cfg).unwrap();
        table.row([m.to_string(), h.iterations().to_string()]);
        iters.push(h.iterations());
    }
    table.emit(&format!("fig14_dynamic_degree_mesh{k}"));
    iters
}

fn main() {
    // dt chosen so the mass shift helps but does not trivialize the system.
    let i1 = run_mesh(1, 1.0);
    let i2 = run_mesh(2, 1.0);
    for (mesh, iters) in [(1, &i1), (2, &i2)] {
        for w in iters.windows(2) {
            assert!(
                w[1] <= w[0],
                "Mesh{mesh}: higher degree must not need more iterations: {iters:?}"
            );
        }
    }
    // Dynamic systems converge at least as fast as static ones (Figs. 13
    // vs 14); checked indirectly: Mesh2 gls(7) should need few iterations.
    assert!(i2[2] < 60, "dynamic gls(7) unexpectedly slow: {i2:?}");
    println!("\nshape checks passed (paper Fig. 14)");
}
