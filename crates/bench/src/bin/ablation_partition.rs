//! Ablation: partition shape (vertical strips vs 2-D blocks vs greedy BFS)
//! at fixed P — interface sizes, per-iteration communication volume and
//! modeled time.
//!
//! The paper uses strip-like partitions on its elongated cantilevers; this
//! quantifies how much the partition geometry matters for the EDD solver.

use parfem::prelude::*;
use parfem_bench::harness::{banner, Case, Table};

fn main() {
    banner("Ablation: partition geometry at P = 4 (EDD-FGMRES-gls(7), SGI-Origin)");
    let p = CantileverProblem::new(32, 32, Material::unit(), LoadCase::PullX(1.0));
    let case = Case::edd(&p);

    let parts: Vec<(&str, ElementPartition)> = vec![
        ("strips_x", ElementPartition::strips_x(&p.mesh, 4)),
        ("blocks_2x2", ElementPartition::blocks(&p.mesh, 2, 2)),
        ("blocks_1x4", ElementPartition::blocks(&p.mesh, 1, 4)),
        (
            "greedy_bfs",
            parfem::mesh::graph::greedy_bfs_partition(&p.mesh, 4),
        ),
    ];

    let mut table = Table::new(&[
        "partition",
        "iterations",
        "interface_nodes",
        "bytes_per_iter",
        "modeled_time_s",
        "speedup_vs_p1",
    ]);
    let mut times = Vec::new();
    // Single-rank baseline for speedup.
    let t1 = case.run(1).modeled_time;

    for (name, part) in &parts {
        // Interface size: nodes with multiplicity > 1, summed over subs.
        let subs = part.subdomains(&p.mesh);
        let iface: usize = subs.iter().map(|s| s.n_interface_nodes()).sum();
        let out = case.run_strategy(Strategy::Edd(part.clone()));
        let bytes_per_iter =
            out.reports[0].stats.bytes_sent as f64 / out.history.iterations() as f64;
        table.row([
            name.to_string(),
            out.history.iterations().to_string(),
            iface.to_string(),
            format!("{bytes_per_iter:.1}"),
            format!("{:.6}", out.modeled_time),
            format!("{:.3}", t1 / out.modeled_time),
        ]);
        times.push(out.modeled_time);
    }
    table.emit("ablation_partition");

    // Shape: every partition achieves solid speedup; the worst/best modeled
    // times stay within 2x of each other on this square mesh.
    let tmin = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let tmax = times.iter().cloned().fold(0.0_f64, f64::max);
    assert!(
        tmax / tmin < 2.0,
        "partition geometry should not change modeled time by 2x here: {times:?}"
    );
    println!("\nall partitions converge identically; comm volume follows interface size");
}
