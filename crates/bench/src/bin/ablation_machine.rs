//! Ablation: machine-model sensitivity — sweeping the message latency α
//! from "modern NIC" to "mid-90s Ethernet" and watching the P = 8 speedup
//! collapse. This isolates the mechanism behind the paper's Fig. 17(e)
//! SP2-vs-Origin gap.

use parfem::prelude::*;
use parfem_bench::harness::{banner, Case, Table};

fn main() {
    banner("Ablation: P = 8 speedup vs message latency (EDD-FGMRES-gls(7))");
    let p = CantileverProblem::paper_mesh(4);

    let latencies_us = [1.0f64, 10.0, 40.0, 100.0, 400.0, 1600.0];
    let mut table = Table::new(&["latency_us", "t8_s", "speedup8"]);
    let mut speedups = Vec::new();
    for &lat in &latencies_us {
        let model = MachineModel::flat("sweep", lat * 1e-6, 100e6, 100e6, lat * 1e-6);
        let runs = Case::edd(&p).machine(model).sweep(&[1, 8]);
        let (t1, t8) = (runs[0].modeled_time, runs[1].modeled_time);
        let s = t1 / t8;
        table.row([format!("{lat}"), format!("{t8:.6}"), format!("{s:.3}")]);
        speedups.push(s);
    }
    table.emit("ablation_machine_latency");

    // Speedup must decay monotonically with latency, from near-linear to
    // communication-bound.
    for w in speedups.windows(2) {
        assert!(
            w[1] <= w[0] + 1e-9,
            "speedup must fall with latency: {speedups:?}"
        );
    }
    assert!(
        speedups[0] > 6.0,
        "low-latency speedup too low: {}",
        speedups[0]
    );
    assert!(
        *speedups.last().unwrap() < 4.0,
        "high-latency speedup should collapse: {}",
        speedups.last().unwrap()
    );
    println!("\nlatency alone reproduces the Fig. 17(e) machine gap");
}
