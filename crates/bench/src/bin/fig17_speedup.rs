//! Figures 15–17: parallel speedup of polynomial-preconditioned FGMRES.
//!
//! Panels reproduced (modeled time on the virtual machines — see
//! DESIGN.md for the substitution):
//!   (a) EDD speedup vs GLS degree (3, 7, 10) — higher degree ⇒ more
//!       matvec-dominated ⇒ better speedup;
//!   (b) RDD speedup vs GLS degree — much weaker dependence;
//!   (c) EDD speedup vs problem size (Mesh3, Mesh5, Mesh7);
//!   (d) RDD speedup vs problem size;
//!   (e) IBM SP2 vs SGI Origin portability comparison.
//!
//! Set `PARFEM_QUICK=1` to shrink the sweep for smoke runs.

use parfem::prelude::*;
use parfem_bench::{banner, write_csv};

fn speedups_edd(
    p: &CantileverProblem,
    degree: usize,
    model: &MachineModel,
    ps: &[usize],
) -> Vec<f64> {
    let cfg = SolverConfig {
        gmres: GmresConfig::default(),
        precond: PrecondSpec::Gls {
            degree,
            theta: None,
        },
        variant: EddVariant::Enhanced,
        overlap: false,
        ..Default::default()
    };
    let mut t1 = 0.0;
    ps.iter()
        .map(|&np| {
            let out = solve_edd(
                &p.mesh,
                &p.dof_map,
                &p.material,
                &p.loads,
                &ElementPartition::strips_x(&p.mesh, np),
                model.clone(),
                &cfg,
            );
            assert!(out.history.converged(), "EDD P={np} gls({degree})");
            if np == ps[0] {
                t1 = out.modeled_time;
            }
            t1 / out.modeled_time
        })
        .collect()
}

fn speedups_rdd(
    p: &CantileverProblem,
    degree: usize,
    model: &MachineModel,
    ps: &[usize],
) -> Vec<f64> {
    let cfg = SolverConfig {
        gmres: GmresConfig::default(),
        precond: PrecondSpec::Gls {
            degree,
            theta: None,
        },
        variant: EddVariant::Enhanced,
        overlap: false,
        ..Default::default()
    };
    let mut t1 = 0.0;
    ps.iter()
        .map(|&np| {
            let out = solve_rdd(
                &p.mesh,
                &p.dof_map,
                &p.material,
                &p.loads,
                &NodePartition::strips_x(&p.mesh, np),
                model.clone(),
                &cfg,
            );
            assert!(out.history.converged(), "RDD P={np} gls({degree})");
            if np == ps[0] {
                t1 = out.modeled_time;
            }
            t1 / out.modeled_time
        })
        .collect()
}

fn print_panel(title: &str, labels: &[String], ps: &[usize], series: &[Vec<f64>]) {
    banner(title);
    print!("{:>6}", "P");
    for l in labels {
        print!(" {l:>12}");
    }
    println!();
    for (i, &np) in ps.iter().enumerate() {
        print!("{np:>6}");
        for s in series {
            print!(" {:>12.2}", s[i]);
        }
        println!();
    }
}

fn to_rows(ps: &[usize], series: &[Vec<f64>]) -> Vec<Vec<String>> {
    ps.iter()
        .enumerate()
        .map(|(i, &np)| {
            std::iter::once(np.to_string())
                .chain(series.iter().map(|s| format!("{:.4}", s[i])))
                .collect()
        })
        .collect()
}

fn main() {
    let quick = std::env::var("PARFEM_QUICK").is_ok();
    let ps: Vec<usize> = vec![1, 2, 4, 8];
    let origin = MachineModel::sgi_origin();
    let sp2 = MachineModel::ibm_sp2();

    // Panels (a)/(b): degree sweep on Mesh5 (60x60) or Mesh3 in quick mode.
    let mesh_ab = if quick { 3 } else { 5 };
    let degrees = [3usize, 7, 10];
    let p_ab = CantileverProblem::paper_mesh(mesh_ab);
    let edd_series: Vec<Vec<f64>> = degrees
        .iter()
        .map(|&m| speedups_edd(&p_ab, m, &origin, &ps))
        .collect();
    let labels: Vec<String> = degrees.iter().map(|m| format!("gls({m})")).collect();
    print_panel(
        &format!("Fig 17(a): EDD speedup vs degree, Mesh{mesh_ab}, SGI-Origin"),
        &labels,
        &ps,
        &edd_series,
    );
    let mut header = vec!["P".to_string()];
    header.extend(labels.clone());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    write_csv(
        "fig17a_edd_degree",
        &header_refs,
        &to_rows(&ps, &edd_series),
    );

    let rdd_series: Vec<Vec<f64>> = degrees
        .iter()
        .map(|&m| speedups_rdd(&p_ab, m, &origin, &ps))
        .collect();
    print_panel(
        &format!("Fig 17(b): RDD speedup vs degree, Mesh{mesh_ab}, SGI-Origin"),
        &labels,
        &ps,
        &rdd_series,
    );
    write_csv(
        "fig17b_rdd_degree",
        &header_refs,
        &to_rows(&ps, &rdd_series),
    );

    // Shape check (a): EDD speedup at P=8 grows with degree.
    let s8: Vec<f64> = edd_series.iter().map(|s| s[3]).collect();
    assert!(
        s8[2] >= s8[0] - 0.05,
        "EDD speedup should improve (or hold) with degree: {s8:?}"
    );

    // Panels (c)/(d): size sweep.
    let meshes: Vec<usize> = if quick { vec![2, 3] } else { vec![3, 5, 7] };
    let size_labels: Vec<String> = meshes.iter().map(|k| format!("Mesh{k}")).collect();
    let mut edd_size = Vec::new();
    let mut rdd_size = Vec::new();
    for &k in &meshes {
        let prob = CantileverProblem::paper_mesh(k);
        edd_size.push(speedups_edd(&prob, 7, &origin, &ps));
        rdd_size.push(speedups_rdd(&prob, 7, &origin, &ps));
    }
    print_panel(
        "Fig 17(c): EDD speedup vs problem size, gls(7), SGI-Origin",
        &size_labels,
        &ps,
        &edd_size,
    );
    print_panel(
        "Fig 17(d): RDD speedup vs problem size, gls(7), SGI-Origin",
        &size_labels,
        &ps,
        &rdd_size,
    );
    let mut h2 = vec!["P".to_string()];
    h2.extend(size_labels.clone());
    let h2_refs: Vec<&str> = h2.iter().map(|s| s.as_str()).collect();
    write_csv("fig17c_edd_size", &h2_refs, &to_rows(&ps, &edd_size));
    write_csv("fig17d_rdd_size", &h2_refs, &to_rows(&ps, &rdd_size));

    // Shape check (c): bigger problems scale better at P=8.
    let first = edd_size.first().expect("non-empty")[3];
    let last = edd_size.last().expect("non-empty")[3];
    assert!(
        last > first,
        "larger meshes must speed up better: {first:.2} -> {last:.2}"
    );

    // Panel (e): SP2 vs Origin on one configuration.
    let p_e = CantileverProblem::paper_mesh(if quick { 3 } else { 6 });
    let origin_s = speedups_edd(&p_e, 7, &origin, &ps);
    let sp2_s = speedups_edd(&p_e, 7, &sp2, &ps);
    print_panel(
        "Fig 17(e): EDD gls(7) speedup, SP2 vs Origin",
        &["SGI-Origin".into(), "IBM-SP2".into()],
        &ps,
        &[origin_s.clone(), sp2_s.clone()],
    );
    write_csv(
        "fig17e_machines",
        &["P", "sgi_origin", "ibm_sp2"],
        &to_rows(&ps, &[origin_s.clone(), sp2_s.clone()]),
    );
    assert!(
        origin_s[3] > sp2_s[3],
        "Origin must out-scale SP2 (paper Fig. 17e): {:.2} vs {:.2}",
        origin_s[3],
        sp2_s[3]
    );
    println!("\nall speedup shape checks passed");
}
