//! Figures 15–17: parallel speedup of polynomial-preconditioned FGMRES.
//!
//! Panels reproduced (modeled time on the virtual machines — see
//! DESIGN.md for the substitution):
//!   (a) EDD speedup vs GLS degree (3, 7, 10) — higher degree ⇒ more
//!       matvec-dominated ⇒ better speedup;
//!   (b) RDD speedup vs GLS degree — much weaker dependence;
//!   (c) EDD speedup vs problem size (Mesh3, Mesh5, Mesh7);
//!   (d) RDD speedup vs problem size;
//!   (e) IBM SP2 vs SGI Origin portability comparison.
//!
//! Set `PARFEM_QUICK=1` to shrink the sweep for smoke runs.

use parfem::prelude::*;
use parfem_bench::harness::{banner, quick, Case, Table, RANKS};

fn gls(degree: usize) -> PrecondSpec {
    PrecondSpec::Gls {
        degree,
        theta: None,
    }
}

fn panel(title: &str, csv: &str, labels: &[String], ps: &[usize], series: &[Vec<f64>]) {
    banner(title);
    let header: Vec<String> = std::iter::once("P".to_string())
        .chain(labels.iter().cloned())
        .collect();
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&header_refs);
    for (i, &np) in ps.iter().enumerate() {
        t.row(std::iter::once(np.to_string()).chain(series.iter().map(|s| format!("{:.4}", s[i]))));
    }
    t.emit(csv);
}

fn main() {
    let ps = RANKS.to_vec();
    let origin = MachineModel::sgi_origin();
    let sp2 = MachineModel::ibm_sp2();

    // Panels (a)/(b): degree sweep on Mesh5 (60x60) or Mesh3 in quick mode.
    let mesh_ab = if quick() { 3 } else { 5 };
    let degrees = [3usize, 7, 10];
    let p_ab = CantileverProblem::paper_mesh(mesh_ab);
    let labels: Vec<String> = degrees.iter().map(|m| format!("gls({m})")).collect();
    let edd_series: Vec<Vec<f64>> = degrees
        .iter()
        .map(|&m| Case::edd(&p_ab).precond(gls(m)).speedups(&ps))
        .collect();
    panel(
        &format!("Fig 17(a): EDD speedup vs degree, Mesh{mesh_ab}, SGI-Origin"),
        "fig17a_edd_degree",
        &labels,
        &ps,
        &edd_series,
    );
    let rdd_series: Vec<Vec<f64>> = degrees
        .iter()
        .map(|&m| Case::rdd(&p_ab).precond(gls(m)).speedups(&ps))
        .collect();
    panel(
        &format!("Fig 17(b): RDD speedup vs degree, Mesh{mesh_ab}, SGI-Origin"),
        "fig17b_rdd_degree",
        &labels,
        &ps,
        &rdd_series,
    );

    // Shape check (a): EDD speedup at P=8 grows with degree.
    let s8: Vec<f64> = edd_series.iter().map(|s| s[3]).collect();
    assert!(
        s8[2] >= s8[0] - 0.05,
        "EDD speedup should improve (or hold) with degree: {s8:?}"
    );

    // Panels (c)/(d): size sweep.
    let meshes: Vec<usize> = if quick() { vec![2, 3] } else { vec![3, 5, 7] };
    let size_labels: Vec<String> = meshes.iter().map(|k| format!("Mesh{k}")).collect();
    let probs: Vec<CantileverProblem> = meshes
        .iter()
        .map(|&k| CantileverProblem::paper_mesh(k))
        .collect();
    let edd_size: Vec<Vec<f64>> = probs
        .iter()
        .map(|prob| Case::edd(prob).precond(gls(7)).speedups(&ps))
        .collect();
    let rdd_size: Vec<Vec<f64>> = probs
        .iter()
        .map(|prob| Case::rdd(prob).precond(gls(7)).speedups(&ps))
        .collect();
    panel(
        "Fig 17(c): EDD speedup vs problem size, gls(7), SGI-Origin",
        "fig17c_edd_size",
        &size_labels,
        &ps,
        &edd_size,
    );
    panel(
        "Fig 17(d): RDD speedup vs problem size, gls(7), SGI-Origin",
        "fig17d_rdd_size",
        &size_labels,
        &ps,
        &rdd_size,
    );

    // Shape check (c): bigger problems scale better at P=8.
    let first = edd_size.first().expect("non-empty")[3];
    let last = edd_size.last().expect("non-empty")[3];
    assert!(
        last > first,
        "larger meshes must speed up better: {first:.2} -> {last:.2}"
    );

    // Panel (e): SP2 vs Origin on one configuration.
    let p_e = CantileverProblem::paper_mesh(if quick() { 3 } else { 6 });
    let origin_s = Case::edd(&p_e)
        .precond(gls(7))
        .machine(origin)
        .speedups(&ps);
    let sp2_s = Case::edd(&p_e).precond(gls(7)).machine(sp2).speedups(&ps);
    panel(
        "Fig 17(e): EDD gls(7) speedup, SP2 vs Origin",
        "fig17e_machines",
        &["sgi_origin".into(), "ibm_sp2".into()],
        &ps,
        &[origin_s.clone(), sp2_s.clone()],
    );
    assert!(
        origin_s[3] > sp2_s[3],
        "Origin must out-scale SP2 (paper Fig. 17e): {:.2} vs {:.2}",
        origin_s[3],
        sp2_s[3]
    );
    println!("\nall speedup shape checks passed");
}
