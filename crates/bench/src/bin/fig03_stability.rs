//! Figure 3: floating-point stability of polynomial preconditioning —
//! the accumulated-roundoff bound `mε Σ|aᵢ|` (Eq. 24) versus polynomial
//! degree, for Θ = (ε, 1) and Θ = (−4, −1) ∪ (7, 10).
//!
//! The paper concludes the practical degree must stay below ~10; the bound
//! here grows by orders of magnitude per few degrees.

use parfem_bench::harness::{banner, fmt, write_csv};
use parfem_precond::poly::stability_bound;
use parfem_precond::{GlsPrecond, IntervalUnion};

fn main() {
    banner("Figure 3: stability bound m*eps*sum|a_i| vs degree");
    let eps = f64::EPSILON;
    let theta_unit = IntervalUnion::unit();
    let theta_split = IntervalUnion::new(vec![(-4.0, -1.0), (7.0, 10.0)]);

    println!(
        "{:>6} {:>16} {:>16}",
        "degree", "theta=(0,1)", "theta=(-4,-1)u(7,10)"
    );
    let mut rows = Vec::new();
    let mut unit_bounds = Vec::new();
    for m in 1..=25 {
        let b_unit = stability_bound(&GlsPrecond::new(m, theta_unit.clone()).monomial(), eps);
        let b_split = stability_bound(&GlsPrecond::new(m, theta_split.clone()).monomial(), eps);
        println!("{:>6} {:>16} {:>16}", m, fmt(b_unit), fmt(b_split));
        rows.push(vec![
            m.to_string(),
            format!("{b_unit:e}"),
            format!("{b_split:e}"),
        ]);
        unit_bounds.push(b_unit);
    }
    write_csv(
        "fig03_stability",
        &["degree", "bound_unit_theta", "bound_split_theta"],
        &rows,
    );

    // Shape checks: explosive growth; degree <= 10 safe, degree 20+ risky
    // relative to the paper's 1e-6 solver tolerance.
    assert!(unit_bounds[9] < 1e-6, "degree 10 must still be safe");
    assert!(
        unit_bounds[19] > 1e-4,
        "degree 20 must be near the danger zone"
    );
    assert!(unit_bounds[24] > unit_bounds[9] * 1e6);
    println!("\nshape checks passed: bound explodes past degree ~10, as the paper argues");
}
