//! Table 2: the cantilever mesh family Mesh1–Mesh10 — element grid, node
//! count and equation count.
//!
//! `nNode` matches the paper exactly for every mesh. `nEqn` is reported for
//! the left-edge clamp of Fig. 9; the paper's own nEqn column is internally
//! inconsistent about which edge is clamped (Mesh1 and Mesh10 imply the
//! short edge, Mesh2–3 the long edge), so EXPERIMENTS.md records both
//! values per mesh.

use parfem::prelude::*;
use parfem_bench::{banner, write_csv};

fn main() {
    banner("Table 2: finite element meshes");
    let paper_neqn = [
        28usize, 656, 1640, 5100, 7320, 9940, 12960, 16380, 20200, 40400,
    ];
    println!(
        "{:>7} {:>12} {:>8} {:>10} {:>12}",
        "Mesh", "nXele x nYele", "nNode", "nEqn(ours)", "nEqn(paper)"
    );
    let mut rows = Vec::new();
    for k in 1..=10 {
        let p = CantileverProblem::paper_mesh(k);
        let (nx, ny) = PAPER_MESHES[k - 1];
        println!(
            "{:>7} {:>12} {:>8} {:>10} {:>12}",
            format!("Mesh{k}"),
            format!("{nx} x {ny}"),
            p.mesh.n_nodes(),
            p.n_eqn(),
            paper_neqn[k - 1]
        );
        rows.push(vec![
            format!("Mesh{k}"),
            nx.to_string(),
            ny.to_string(),
            p.mesh.n_nodes().to_string(),
            p.n_eqn().to_string(),
            paper_neqn[k - 1].to_string(),
        ]);
    }
    write_csv(
        "table2_meshes",
        &["mesh", "nx", "ny", "n_node", "n_eqn_ours", "n_eqn_paper"],
        &rows,
    );

    // Node counts must match the paper exactly.
    let expected_nodes = [16, 369, 861, 2601, 3721, 5041, 6561, 8281, 10201, 20301];
    for (k, &nn) in (1..=10).zip(&expected_nodes) {
        assert_eq!(CantileverProblem::paper_mesh(k).mesh.n_nodes(), nn);
    }
    println!("\nnode counts match the paper for all ten meshes");
}
