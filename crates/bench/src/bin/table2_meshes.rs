//! Table 2: the cantilever mesh family Mesh1–Mesh10 — element grid, node
//! count and equation count.
//!
//! `nNode` matches the paper exactly for every mesh. `nEqn` is reported for
//! the left-edge clamp of Fig. 9; the paper's own nEqn column is internally
//! inconsistent about which edge is clamped (Mesh1 and Mesh10 imply the
//! short edge, Mesh2–3 the long edge), so EXPERIMENTS.md records both
//! values per mesh.

use parfem::prelude::*;
use parfem_bench::harness::{banner, Table};

fn main() {
    banner("Table 2: finite element meshes");
    let paper_neqn = [
        28usize, 656, 1640, 5100, 7320, 9940, 12960, 16380, 20200, 40400,
    ];
    let mut table = Table::new(&["mesh", "nx", "ny", "n_node", "n_eqn_ours", "n_eqn_paper"]);
    for k in 1..=10 {
        let p = CantileverProblem::paper_mesh(k);
        let (nx, ny) = PAPER_MESHES[k - 1];
        table.row([
            format!("Mesh{k}"),
            nx.to_string(),
            ny.to_string(),
            p.mesh.n_nodes().to_string(),
            p.n_eqn().to_string(),
            paper_neqn[k - 1].to_string(),
        ]);
    }
    table.emit("table2_meshes");

    // Node counts must match the paper exactly.
    let expected_nodes = [16, 369, 861, 2601, 3721, 5041, 6561, 8281, 10201, 20301];
    for (k, &nn) in (1..=10).zip(&expected_nodes) {
        assert_eq!(CantileverProblem::paper_mesh(k).mesh.n_nodes(), nn);
    }
    println!("\nnode counts match the paper for all ten meshes");
}
