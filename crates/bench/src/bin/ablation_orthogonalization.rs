//! Ablation: classical vs modified Gram–Schmidt in FGMRES.
//!
//! The paper picks classical GS so each Arnoldi step needs one batched
//! global reduction (Algorithms 5/6/8). This ablation verifies the choice
//! is numerically safe for the paper's workloads: iteration counts match
//! MGS on every mesh/preconditioner combination tested.

use parfem::krylov::gmres::Orthogonalization;
use parfem::prelude::*;
use parfem::sequential::SeqPrecond;
use parfem_bench::harness::{banner, Table};

fn main() {
    banner("Ablation: CGS vs MGS orthogonalization");
    let mut table = Table::new(&["mesh", "precond", "cgs_iters", "mgs_iters", "delta"]);
    let mut max_delta = 0i64;
    for k in [1usize, 2, 3] {
        let p = CantileverProblem::paper_mesh(k);
        for pc in [
            SeqPrecond::None,
            SeqPrecond::Gls(7),
            SeqPrecond::Neumann(20),
        ] {
            let mut iters = Vec::new();
            for ortho in [Orthogonalization::Classical, Orthogonalization::Modified] {
                let cfg = GmresConfig {
                    tol: 1e-6,
                    max_iters: 20_000,
                    ortho,
                    ..Default::default()
                };
                let (_, h) = parfem::sequential::solve_static(&p, &pc, &cfg).unwrap();
                assert!(h.converged(), "Mesh{k} {} {ortho:?}", pc.name());
                iters.push(h.iterations());
            }
            let delta = iters[0] as i64 - iters[1] as i64;
            max_delta = max_delta.max(delta.abs());
            table.row([
                format!("Mesh{k}"),
                pc.name(),
                iters[0].to_string(),
                iters[1].to_string(),
                delta.to_string(),
            ]);
        }
    }
    table.emit("ablation_orthogonalization");
    assert!(
        max_delta <= 2,
        "CGS must track MGS within 2 iterations on these systems (max delta {max_delta})"
    );
    println!("\nCGS is safe here: worst-case difference {max_delta} iterations — the paper's choice holds");
}
