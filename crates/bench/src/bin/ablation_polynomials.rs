//! Ablation: the three polynomial preconditioner families at equal degree —
//! Neumann series, Chebyshev (min-max) and GLS (weighted least squares) —
//! plus block-Jacobi-ILU(0), on the paper's static workload.
//!
//! Expected shape (paper Section 2.1.3): Chebyshev/GLS, which use spectrum
//! bounds, dominate Neumann at equal degree; GLS trades a slightly larger
//! sup-norm for interval-union generality.

use parfem::precond::{ChebyshevPrecond, GlsPrecond, NeumannPrecond};
use parfem::prelude::*;
use parfem::sequential::SeqPrecond;
use parfem_bench::harness::{banner, Table};

fn main() {
    banner("Ablation: polynomial preconditioner families (Mesh3, static, degree 7)");
    let p = CantileverProblem::paper_mesh(3);
    let cfg = GmresConfig {
        tol: 1e-6,
        max_iters: 40_000,
        ..Default::default()
    };
    let degree = 7;

    // Measure the true spectrum floor of the scaled operator: Chebyshev's
    // min-max objective requires it (on an interval reaching 0 no residual
    // with r(0)=1 can have sup-norm < 1 — this is precisely why the paper's
    // GLS, which minimizes a *weighted L2* norm, wins on theta = (eps, 1)).
    let sys = p.static_system();
    let (a, _, _) = parfem::sparse::scaling::scale_system(&sys.stiffness, &sys.rhs).unwrap();
    let lmin = parfem::sparse::gershgorin::power_iteration_lambda_min(&a, 50_000, 1e-12).max(1e-6);
    println!("measured lambda_min of the scaled operator: {lmin:.4e}");

    // Theory: sup-norm of the residual on (lmin, 1).
    let sup_of = |f: &dyn Fn(f64) -> f64| -> f64 {
        (0..=300)
            .map(|k| f(lmin + (1.0 - lmin) * k as f64 / 300.0).abs())
            .fold(0.0_f64, f64::max)
    };
    let neu = NeumannPrecond::for_scaled_system(degree);
    let cheb = ChebyshevPrecond::new(degree, lmin, 1.0);
    let gls = GlsPrecond::for_scaled_system(degree);
    println!("sup |1 - lambda P(lambda)| on (lambda_min, 1):");
    println!(
        "  neumann({degree})   = {:.4}",
        sup_of(&|l| neu.residual(l))
    );
    println!(
        "  chebyshev({degree}) = {:.4}",
        sup_of(&|l| cheb.residual(l))
    );
    println!(
        "  gls({degree})       = {:.4}",
        sup_of(&|l| gls.residual(l))
    );

    // Practice: solver iterations and total matvec cost.
    println!();
    let mut table = Table::new(&["preconditioner", "iterations", "total_matvecs", "converged"]);
    let mut by_name = std::collections::BTreeMap::new();
    let mut record = |name: String, iters: usize, matvecs_per_iter: usize, converged: bool| {
        table.row([
            name.clone(),
            iters.to_string(),
            (iters * matvecs_per_iter).to_string(),
            converged.to_string(),
        ]);
        by_name.insert(name, iters);
    };
    for pc in [
        SeqPrecond::Neumann(degree),
        SeqPrecond::Gls(degree),
        SeqPrecond::BlockJacobi(4),
        SeqPrecond::Ilu0,
    ] {
        let (_, h) = parfem::sequential::solve_static(&p, &pc, &cfg).unwrap();
        let matvecs_per_iter = match &pc {
            SeqPrecond::Neumann(m) | SeqPrecond::Gls(m) => m + 1,
            _ => 1,
        };
        record(pc.name(), h.iterations(), matvecs_per_iter, h.converged());
    }
    // Spectrum-informed Chebyshev on the scaled operator directly.
    {
        let b = {
            let mut rhs = sys.rhs.clone();
            let sc = parfem::sparse::DiagonalScaling::from_matrix(&sys.stiffness).unwrap();
            sc.apply_in_place(&mut rhs);
            rhs
        };
        let res = parfem::krylov::gmres::fgmres(&a, &cheb, &b, &vec![0.0; a.n_rows()], &cfg);
        record(
            format!("chebyshev({degree})"),
            res.history.iterations(),
            degree + 1,
            res.history.converged(),
        );
    }
    table.emit("ablation_polynomials");

    // Shape: GLS dominates everything at equal degree — the paper's core
    // claim. A further *finding* of this reproduction: on severely
    // ill-conditioned spectra (kappa ~ 4e4 here) the min-max (Chebyshev)
    // objective is the wrong one for GMRES — its sup-norm over
    // [lambda_min, 1] cannot drop below ~0.997 at degree 7, whereas GLS's
    // endpoint-weighted L2 objective hammers the bulk of the spectrum and
    // leaves the few stubborn small modes to the Krylov iteration. This is
    // precisely why the paper builds on GLS rather than Chebyshev.
    let n_it = by_name[&format!("neumann({degree})")];
    let c_it = by_name[&format!("chebyshev({degree})")];
    let g_it = by_name[&format!("gls({degree})")];
    assert!(
        g_it < n_it && g_it < c_it,
        "gls must dominate at equal degree: neumann {n_it}, chebyshev {c_it}, gls {g_it}"
    );
    println!(
        "\nshape checks passed: gls({degree}) dominates (gls {g_it} < neumann {n_it}, chebyshev {c_it});"
    );
    println!("min-max optimality is the wrong objective for GMRES on ill-conditioned spectra");
}
