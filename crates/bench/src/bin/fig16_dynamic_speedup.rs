//! Figures 15/16: parallel speedup for the *dynamic* problem — Newmark
//! time stepping with the EDD-FGMRES-GLS solver inside the loop, on the
//! virtual SGI Origin and IBM SP2.
//!
//! The paper reports speedups for "large-scale static and dynamic
//! problems"; the static side lives in `fig17_speedup`/`table3_performance`,
//! this binary covers the transient. Speedups should match the static ones
//! closely: the per-step work has the same structure.

use parfem::prelude::*;
use parfem_bench::{banner, write_csv};

fn main() {
    let quick = std::env::var("PARFEM_QUICK").is_ok();
    banner("Figs. 15/16: dynamic (Newmark) speedup, EDD-FGMRES-gls(7)");
    let mesh_id = if quick { 3 } else { 5 };
    let p = CantileverProblem::paper_mesh(mesh_id);
    let tip = p.dof_map.dof(p.mesh.node_at(p.mesh.nx(), p.mesh.ny()), 0);
    let steps = if quick { 3 } else { 5 };
    let cfg = DynamicRunConfig {
        solver: SolverConfig::default(),
        params: NewmarkParams::average_acceleration(1.0),
        steps,
    };

    println!(
        "Mesh{mesh_id}, {} equations, {} Newmark steps of dt = 1\n",
        p.n_eqn(),
        steps
    );
    println!(
        "{:>4} {:>16} {:>10} {:>16} {:>10} {:>12}",
        "P", "Origin T (s)", "S", "SP2 T (s)", "S", "total iters"
    );
    let mut rows = Vec::new();
    let mut t1 = [0.0f64; 2];
    let mut s8 = [0.0f64; 2];
    for np in [1usize, 2, 4, 8] {
        let part = ElementPartition::strips_x(&p.mesh, np);
        let mut line = vec![np.to_string()];
        let mut cells = String::new();
        let mut iters = 0;
        for (mi, model) in [MachineModel::sgi_origin(), MachineModel::ibm_sp2()]
            .into_iter()
            .enumerate()
        {
            let out = solve_dynamic_edd(
                &p.mesh,
                &p.dof_map,
                &p.material,
                &p.loads,
                &part,
                model,
                &cfg,
                &[tip],
            );
            assert!(out.all_converged, "P={np}");
            let t = out.last.modeled_time;
            if np == 1 {
                t1[mi] = t;
            }
            let s = t1[mi] / t;
            if np == 8 {
                s8[mi] = s;
            }
            cells += &format!(" {t:>16.4} {s:>10.2}");
            line.push(format!("{t:.6}"));
            line.push(format!("{s:.3}"));
            iters = out.total_iterations;
        }
        println!("{:>4}{} {:>12}", np, cells, iters);
        line.push(iters.to_string());
        rows.push(line);
    }
    write_csv(
        "fig16_dynamic_speedup",
        &["P", "origin_t", "origin_s", "sp2_t", "sp2_s", "total_iters"],
        &rows,
    );
    assert!(s8[0] > 5.5, "Origin dynamic speedup too low: {}", s8[0]);
    assert!(
        s8[0] > s8[1],
        "Origin must out-scale SP2 on the dynamic problem too"
    );
    println!("\nshape checks passed: dynamic speedups mirror the static ones");
}
