//! Figures 15/16: parallel speedup for the *dynamic* problem — Newmark
//! time stepping with the EDD-FGMRES-GLS solver inside the loop, on the
//! virtual SGI Origin and IBM SP2.
//!
//! The paper reports speedups for "large-scale static and dynamic
//! problems"; the static side lives in `fig17_speedup`/`table3_performance`,
//! this binary covers the transient. Speedups should match the static ones
//! closely: the per-step work has the same structure.

use parfem::prelude::*;
use parfem_bench::harness::{banner, quick, Case, Table, RANKS};

fn main() {
    banner("Figs. 15/16: dynamic (Newmark) speedup, EDD-FGMRES-gls(7)");
    let mesh_id = if quick() { 3 } else { 5 };
    let p = CantileverProblem::paper_mesh(mesh_id);
    let tip = p.dof_map.dof(p.mesh.node_at(p.mesh.nx(), p.mesh.ny()), 0);
    let steps = if quick() { 3 } else { 5 };
    let params = NewmarkParams::average_acceleration(1.0);

    println!(
        "Mesh{mesh_id}, {} equations, {} Newmark steps of dt = 1\n",
        p.n_eqn(),
        steps
    );
    let mut table = Table::new(&["P", "origin_t", "origin_s", "sp2_t", "sp2_s", "total_iters"]);
    let mut t1 = [0.0f64; 2];
    let mut s8 = [0.0f64; 2];
    for np in RANKS {
        let mut line = vec![np.to_string()];
        let mut iters = 0;
        for (mi, model) in [MachineModel::sgi_origin(), MachineModel::ibm_sp2()]
            .into_iter()
            .enumerate()
        {
            let out = Case::edd(&p)
                .machine(model)
                .run_dynamic(np, params, steps, &[tip]);
            let t = out.last.modeled_time;
            if np == 1 {
                t1[mi] = t;
            }
            let s = t1[mi] / t;
            if np == 8 {
                s8[mi] = s;
            }
            line.push(format!("{t:.6}"));
            line.push(format!("{s:.3}"));
            iters = out.total_iterations;
        }
        line.push(iters.to_string());
        table.row(line);
    }
    table.emit("fig16_dynamic_speedup");
    assert!(s8[0] > 5.5, "Origin dynamic speedup too low: {}", s8[0]);
    assert!(
        s8[0] > s8[1],
        "Origin must out-scale SP2 on the dynamic problem too"
    );
    println!("\nshape checks passed: dynamic speedups mirror the static ones");
}
