//! Scaling laboratory: modeled weak- and strong-scaling curves at large P.
//!
//! The paper evaluates P ≤ 8 on mid-90s hosts; this lab asks what the same
//! EDD/RDD algorithms cost at P = 64..4096 on modern topologies (two-level
//! cluster, fat tree, 3-D torus), using the analytic machine model rather
//! than real threads:
//!
//! - **weak scaling** — a fixed 8x8-element tile per rank (the mesh grows
//!   with P), so the curve isolates the parallel overheads: the O(log P)
//!   all-reduce, interface exchange, and link contention;
//! - **strong scaling** — one fixed mesh spread ever thinner, so the curve
//!   shows where per-rank compute stops hiding those overheads.
//!
//! Each point partitions the mesh twice — structured strips (the paper's
//! layout) and the multilevel graph partitioner — and records edge cut,
//! imbalance, and the worst link-sharing factor alongside the modeled
//! per-iteration times for blocking EDD, RDD, and overlapped EDD. The
//! summary feeds the `scaling_modeled` series of `BENCH_PERF.json`, which
//! the perf gate checks (graph must never cut more than strips; overlap
//! must never be modeled slower than blocking).
//!
//! A third series asks the paper's *convergence* question at the same
//! scale: the `twolevel` sweep runs real (sequential) FGMRES solves on a
//! weak-scaling cantilever family (one 3x3-element square aggregate per
//! rank, mesh growing with P) and records the iteration count of the
//! two-level preconditioner against its one-level smoother as P grows.
//! The configuration is the one that actually flattens elasticity counts:
//! `twolevel:rbm.s3:gls-3` — three rigid-body modes per aggregate run
//! through three prolongator-smoothing passes (plain aggregation modes
//! keep elasticity counts creeping up with P; the smoothed-aggregation
//! prolongator is what stops the creep). Solves run to 1e-12 so the
//! recorded counts reflect the asymptotic convergence rate rather than the
//! initial outlier-elimination transient. One-level runs are capped; a
//! point that hits the cap is reported as a censored lower bound (only the
//! first point must converge, since it anchors the growth ratio). The
//! `twolevel_modeled` section of `BENCH_PERF.json` records both growth
//! ratios and the perf gate enforces them. Modeled per-machine times add
//! the coarse level's extra all-reduce, replicated back-solve, and
//! (multiplicative composition) one extra operator application.
//!
//! `PARFEM_QUICK=1` shrinks both sweeps to CI smoke size.

use parfem::prelude::*;
use parfem_bench::harness::{banner, quick, Table};
use parfem_bench::modeling::{modeled_edd, rank_stats, IterCostModel};
use parfem_krylov::gmres::fgmres_with;
use parfem_krylov::KrylovWorkspace;
use parfem_mesh::numbering::DOFS_PER_NODE;
use parfem_mesh::DofMap;
use parfem_precond::twolevel::{build_coarse_basis, CoarseSolver};
use parfem_precond::CoarsePartGeometry;
use parfem_sparse::scaling;
use parfem_sparse::skyline::DEFAULT_PIVOT_TOL;

const GRAPH_SEED: u64 = 0;

/// The paper's 2-D elasticity FGMRES + gls(7) iteration cost model.
fn cost() -> IterCostModel {
    IterCostModel::paper_gls7()
}

/// Modeled per-iteration time of the RDD strategy, which always splits the
/// node columns into strips (matching the CLI): each rank trades one
/// column of externals with each side neighbor per matvec.
fn modeled_rdd(
    model: &MachineModel,
    p: usize,
    mesh: &QuadMesh,
    total_flops: f64,
    cost: &IterCostModel,
) -> f64 {
    let part = NodePartition::strips_x(mesh, p);
    let mut nodes = vec![0usize; p];
    for &o in part.owners() {
        nodes[o] += 1;
    }
    let n_nodes = part.owners().len() as f64;
    let bytes = (mesh.ny() + 1) * cost.bytes_per_node;
    let sync = cost.syncs_per_iter as f64 * model.allreduce_time(p, cost.allreduce_bytes);
    let mut t = 0.0f64;
    for (r, &owned) in nodes.iter().enumerate() {
        let compute = model.compute_time((total_flops * owned as f64 / n_nodes) as u64);
        let nbrs: Vec<usize> = (r.saturating_sub(1)..=(r + 1).min(p - 1))
            .filter(|&q| q != r)
            .collect();
        let factors = model.contention_factors(p, r, &nbrs);
        let mut round = 0.0f64;
        for (&q, &f) in nbrs.iter().zip(&factors) {
            round = round.max(model.message_time_contended(p, r, q, bytes, f));
        }
        t = t.max(compute + cost.exchange_rounds as f64 * round);
    }
    t + sync
}

struct SeriesSummary {
    p_max: usize,
    cut_ratio_max: f64,
    overlap_speedup_min: f64,
    /// `(machine name, efficiency at p_max)` per topology.
    eff_at_pmax: Vec<(&'static str, f64)>,
}

/// Runs one series (`weak` grows the mesh with P, `strong` fixes it) over
/// every P and topology, emits the table, and returns the gate summary.
fn run_series(
    name: &str,
    ps: &[usize],
    mesh_for: impl Fn(usize) -> QuadMesh,
    weak: bool,
    topos: &[MachineModel],
) -> SeriesSummary {
    banner(&format!(
        "{name}-scaling (modeled, EDD graph partition vs RDD strips)"
    ));
    let mut table = Table::new(&[
        "p",
        "machine",
        "elems",
        "strips_cut",
        "graph_cut",
        "cut_ratio",
        "imbalance",
        "contention",
        "t_edd_s",
        "t_rdd_s",
        "t_overlap_s",
        "overlap_speedup",
        "efficiency",
    ]);
    let mut cut_ratio_max = 0.0f64;
    let mut overlap_speedup_min = f64::INFINITY;
    let mut eff_curves: Vec<Vec<f64>> = vec![Vec::new(); topos.len()];
    for &p in ps {
        let mesh = mesh_for(p);
        let n = mesh.n_elems();
        let strips = PartitionerSpec::Strips.element_partition(&mesh, p);
        let graph = PartitionerSpec::Graph { seed: GRAPH_SEED }.element_partition(&mesh, p);
        let (strips_cut, graph_cut) = (
            strips.edge_cut().expect("strips cut recorded"),
            graph.edge_cut().expect("graph cut recorded"),
        );
        assert!(
            graph_cut < strips_cut,
            "{name} P={p}: graph cut {graph_cut} must beat strips {strips_cut}"
        );
        let imbalance = graph.imbalance();
        assert!(
            imbalance <= 1.25,
            "{name} P={p}: graph imbalance {imbalance} out of tolerance"
        );
        let ratio = graph_cut as f64 / strips_cut as f64;
        cut_ratio_max = cut_ratio_max.max(ratio);
        let cost = cost();
        let stats = rank_stats(&mesh, graph.owners(), p, &cost);
        let total_flops = n as f64 * cost.flops_per_elem_iter;
        for (ti, model) in topos.iter().enumerate() {
            let (t_edd, t_overlap, contention) = modeled_edd(model, p, &stats, &cost);
            let t_rdd = modeled_rdd(model, p, &mesh, total_flops, &cost);
            let speedup = t_edd / t_overlap;
            overlap_speedup_min = overlap_speedup_min.min(speedup);
            // Weak: time of the per-rank tile with all overheads removed.
            // Strong: the one-rank time over P ranks.
            let t_ref = if weak {
                model.compute_time((total_flops / p as f64) as u64)
            } else {
                model.compute_time(total_flops as u64) / p as f64
            };
            let eff = t_ref / t_edd;
            eff_curves[ti].push(eff);
            table.row([
                format!("{p}"),
                model.name.to_string(),
                format!("{n}"),
                format!("{strips_cut}"),
                format!("{graph_cut}"),
                format!("{ratio:.4}"),
                format!("{imbalance:.4}"),
                format!("{contention:.2}"),
                format!("{t_edd:.6e}"),
                format!("{t_rdd:.6e}"),
                format!("{t_overlap:.6e}"),
                format!("{speedup:.4}"),
                format!("{eff:.4}"),
            ]);
        }
    }
    table.emit(&format!("scaling_{name}"));

    assert!(
        overlap_speedup_min >= 1.0 - 1e-12,
        "{name}: overlap modeled slower than blocking ({overlap_speedup_min})"
    );
    let mut eff_at_pmax = Vec::new();
    for (ti, model) in topos.iter().enumerate() {
        let effs = &eff_curves[ti];
        for &e in effs {
            assert!(
                e > 0.0 && e <= 1.0 + 1e-9,
                "{name}/{}: modeled efficiency {e} outside (0, 1]",
                model.name
            );
        }
        assert!(
            effs.last().unwrap() <= effs.first().unwrap(),
            "{name}/{}: efficiency must not rise with P: {effs:?}",
            model.name
        );
        eff_at_pmax.push((model.name, *effs.last().unwrap()));
    }
    SeriesSummary {
        p_max: *ps.last().unwrap(),
        cut_ratio_max,
        overlap_speedup_min,
        eff_at_pmax,
    }
}

/// The two-level spec the convergence sweep runs, and the one-level
/// smoother it is compared against.
const TWOLEVEL_SPEC: &str = "twolevel:rbm.s3:gls-3";
const ONELEVEL_SPEC: &str = "gls:3";
/// The gate threshold on two-level iteration growth from `p_min` to
/// `p_max` — must match `GateConfig::default().max_twolevel_iter_growth`.
const MAX_TWOLEVEL_ITER_GROWTH: f64 = 1.3;
/// Per-mode flops of the replicated coarse back-solve (skyline forward +
/// backward sweep over a narrow strip-coupled band).
const COARSE_SOLVE_FLOPS_PER_MODE: f64 = 50.0;

/// One solved point of the two-level convergence sweep.
struct TwoLevelPoint {
    p: usize,
    iters_two: usize,
    iters_one: usize,
    /// One-level hit the iteration cap without converging; `iters_one` is
    /// then a lower bound, which only understates its growth.
    one_censored: bool,
}

struct TwoLevelSummary {
    p_min: usize,
    p_max: usize,
    points: Vec<TwoLevelPoint>,
    growth_two: f64,
    growth_one: f64,
    one_censored_any: bool,
    /// `(machine, modeled one-level/two-level solve-time ratio at p_max)`.
    speedup_at_pmax: Vec<(&'static str, f64)>,
}

/// Per-part coarse geometry of an element partition: every dof of every
/// node a part's elements touch, with the global multiplicity (how many
/// parts share each dof) for the partition-of-unity weights.
fn coarse_parts(
    mesh: &QuadMesh,
    dm: &DofMap,
    owner: &[usize],
    p: usize,
) -> (Vec<CoarsePartGeometry>, Vec<f64>) {
    let coords = mesh.coords();
    // Disjoint node aggregation: a node shared by several tiles goes to
    // the lowest-indexed element touching it, so every dof sits in
    // exactly one aggregate and the coarse modes are true indicator
    // functions rather than partition-of-unity ramps.
    let n_nodes = coords.len();
    let mut node_owner = vec![usize::MAX; n_nodes];
    for (e, &own) in owner.iter().enumerate() {
        for n in mesh.elem_nodes(e) {
            if node_owner[n] == usize::MAX {
                node_owner[n] = own;
            }
        }
    }
    let mut nodes_of: Vec<std::collections::BTreeSet<usize>> =
        vec![std::collections::BTreeSet::new(); p];
    for (n, &own) in node_owner.iter().enumerate() {
        nodes_of[own].insert(n);
    }
    let mut mult = vec![0.0f64; dm.n_dofs()];
    let parts = nodes_of
        .iter()
        .map(|nodes| {
            let mut geo = CoarsePartGeometry::default();
            for &n in nodes {
                for c in 0..DOFS_PER_NODE {
                    let g = n * DOFS_PER_NODE + c;
                    geo.dofs.push(g);
                    geo.pos.push([coords[n][0], coords[n][1], 0.0]);
                    geo.comp.push(c);
                    geo.constrained.push(dm.is_fixed(g));
                    mult[g] += 1.0;
                }
            }
            geo
        })
        .collect();
    (parts, mult)
}

/// Element owners of a `px × py` checkerboard tiling of a structured
/// mesh — square tiles, so coarse aggregates keep a bounded diameter in
/// both directions as the weak family grows.
fn tile_owners(mesh: &QuadMesh, px: usize, py: usize) -> Vec<usize> {
    let (tx, ty) = (mesh.nx() / px, mesh.ny() / py);
    (0..mesh.n_elems())
        .map(|e| {
            let (i, j) = (e % mesh.nx(), e / mesh.nx());
            (j / ty) * px + i / tx
        })
        .collect()
}

/// One sequential FGMRES solve of the scaled system under `spec_str`,
/// capped at `cap` iterations: `(iterations, converged)`.
fn solve_iters(
    scaled: &CsrMatrix,
    b: &[f64],
    coarse: Option<CoarseSolver>,
    spec_str: &str,
    cap: usize,
) -> (usize, bool) {
    let cfg = GmresConfig {
        restart: 100,
        max_iters: cap,
        tol: 1e-12,
        ..Default::default()
    };
    let x0 = vec![0.0; b.len()];
    let spec = PrecondSpec::parse(spec_str).expect("bench spec parses");
    let pc = spec.instantiate_with_coarse(coarse, || scaled.diagonal());
    let res = fgmres_with(scaled, &pc, b, &x0, &cfg, &mut KrylovWorkspace::new());
    (res.history.iterations(), res.history.converged())
}

/// Runs the two-level convergence sweep over the weak-scaling cantilever
/// family and models the per-machine solve times.
fn run_twolevel_series(
    ps: &[usize],
    onelevel_cap: usize,
    topos: &[MachineModel],
) -> TwoLevelSummary {
    banner("twolevel convergence (real solves, weak family, modeled times)");
    let mut table = Table::new(&[
        "p",
        "machine",
        "dofs",
        "modes",
        "iters_1lvl",
        "iters_2lvl",
        "t_iter_1lvl_s",
        "t_iter_2lvl_s",
        "t_solve_1lvl_s",
        "t_solve_2lvl_s",
        "speedup",
    ]);
    let mut points = Vec::new();
    let mut speedup_at_pmax = Vec::new();
    for &p in ps {
        let side = (p as f64).sqrt().round() as usize;
        assert_eq!(side * side, p, "twolevel sweep wants square rank grids");
        let prob =
            CantileverProblem::new(3 * side, 3 * side, Material::unit(), LoadCase::PullX(1.0));
        let sys = prob.static_system();
        let (scaled, b, _sc) =
            scaling::scale_system(&sys.stiffness, &sys.rhs).expect("SPD cantilever scales");
        let d: Vec<f64> = scaled.diagonal();
        let owners = tile_owners(&prob.mesh, side, side);
        let (parts, mult) = coarse_parts(&prob.mesh, &prob.dof_map, &owners, p);
        let coarse_spec = match PrecondSpec::parse(TWOLEVEL_SPEC).expect("bench spec parses") {
            PrecondSpec::TwoLevel { coarse, .. } => coarse,
            _ => unreachable!("TWOLEVEL_SPEC is a twolevel spec"),
        };
        let basis = build_coarse_basis(&coarse_spec, &parts, &mult, &d, &scaled, DEFAULT_PIVOT_TOL);
        let n_modes = basis.n_modes();
        let (iters_two, conv_two) = solve_iters(
            &scaled,
            &b,
            Some(basis.solver()),
            TWOLEVEL_SPEC,
            onelevel_cap,
        );
        assert!(
            conv_two,
            "twolevel P={p}: {TWOLEVEL_SPEC} must converge within {onelevel_cap} iterations"
        );
        let (iters_one, conv_one) = solve_iters(&scaled, &b, None, ONELEVEL_SPEC, onelevel_cap);

        // Modeled per-iteration times on the strip partition. The
        // two-level apply adds: one n_modes-double all-reduce for the
        // coarse residual moments, the replicated skyline back-solve, and
        // (multiplicative composition) one extra operator application.
        let cost = cost();
        let stats = rank_stats(&prob.mesh, &owners, p, &cost);
        let elems_max = *stats.elems.iter().max().unwrap() as f64;
        for model in topos {
            let (t_one_iter, _, _) = modeled_edd(model, p, &stats, &cost);
            let extra = model.allreduce_time(p, n_modes * 8)
                + model.compute_time((n_modes as f64 * COARSE_SOLVE_FLOPS_PER_MODE) as u64)
                + model.compute_time((elems_max * cost.flops_per_elem_iter / 8.0) as u64);
            let t_two_iter = t_one_iter + extra;
            let t_one = iters_one as f64 * t_one_iter;
            let t_two = iters_two as f64 * t_two_iter;
            let speedup = t_one / t_two;
            if p == *ps.last().unwrap() {
                speedup_at_pmax.push((model.name, speedup));
            }
            table.row([
                format!("{p}"),
                model.name.to_string(),
                format!("{}", prob.n_dofs()),
                format!("{n_modes}"),
                format!("{}{}", iters_one, if conv_one { "" } else { "+" }),
                format!("{iters_two}"),
                format!("{t_one_iter:.6e}"),
                format!("{t_two_iter:.6e}"),
                format!("{t_one:.6e}"),
                format!("{t_two:.6e}"),
                format!("{speedup:.4}"),
            ]);
        }
        points.push(TwoLevelPoint {
            p,
            iters_two,
            iters_one,
            one_censored: !conv_one,
        });
    }
    table.emit("scaling_twolevel");

    let first = points.first().unwrap();
    let last = points.last().unwrap();
    assert!(
        !first.one_censored,
        "one-level must converge at P={} so the growth baseline is real",
        first.p
    );
    let growth_two = last.iters_two as f64 / first.iters_two as f64;
    let growth_one = last.iters_one as f64 / first.iters_one as f64;
    assert!(
        growth_two <= MAX_TWOLEVEL_ITER_GROWTH,
        "two-level iteration growth {growth_two:.4} exceeds {MAX_TWOLEVEL_ITER_GROWTH}"
    );
    assert!(
        growth_one > growth_two,
        "one-level growth {growth_one:.4} must exceed two-level growth {growth_two:.4}"
    );
    TwoLevelSummary {
        p_min: first.p,
        p_max: last.p,
        one_censored_any: points.iter().any(|pt| pt.one_censored),
        points,
        growth_two,
        growth_one,
        speedup_at_pmax,
    }
}

fn emit_twolevel_summary(s: &TwoLevelSummary) {
    println!("\nBENCH_PERF.json `twolevel_modeled` section:");
    println!("  \"twolevel_modeled\": {{");
    println!("    \"weak\": {{");
    println!("      \"p_min\": {},", s.p_min);
    println!("      \"p_max\": {},", s.p_max);
    for pt in &s.points {
        println!("      \"iters_twolevel_p{}\": {},", pt.p, pt.iters_two);
    }
    for pt in &s.points {
        println!("      \"iters_onelevel_p{}\": {},", pt.p, pt.iters_one);
    }
    println!(
        "      \"onelevel_censored\": {},",
        if s.one_censored_any { 1 } else { 0 }
    );
    println!("      \"twolevel_iter_growth\": {:.4},", s.growth_two);
    println!("      \"onelevel_iter_growth\": {:.4},", s.growth_one);
    let rows: Vec<String> = s
        .speedup_at_pmax
        .iter()
        .map(|(m, v)| format!("      \"modeled_speedup_{m}_p{}\": {v:.4}", s.p_max))
        .collect();
    println!("{}", rows.join(",\n"));
    println!("    }}");
    println!("  }}");
}

fn emit_summary(series: &[(&str, SeriesSummary)]) {
    println!("\nBENCH_PERF.json `scaling_modeled` section:");
    println!("  \"scaling_modeled\": {{");
    for (i, (name, s)) in series.iter().enumerate() {
        let effs: Vec<String> = s
            .eff_at_pmax
            .iter()
            .map(|(m, e)| format!("      \"efficiency_{m}_p{}\": {e:.4}", s.p_max))
            .collect();
        println!("    \"{name}\": {{");
        println!("      \"p_max\": {},", s.p_max);
        println!("      \"graph_cut_ratio_max\": {:.4},", s.cut_ratio_max);
        println!(
            "      \"overlap_speedup_min\": {:.4},",
            s.overlap_speedup_min
        );
        println!("{}", effs.join(",\n"));
        println!("    }}{}", if i + 1 < series.len() { "," } else { "" });
    }
    println!("  }}");
}

fn main() {
    let topos = [
        MachineModel::cluster(),
        MachineModel::fat_tree(),
        MachineModel::torus3d(),
    ];
    // Weak: an 8x8 tile per rank on a (p/4) x 4 rank grid -> a 2p x 32
    // mesh, so strips exist at every P (p <= nx) while the 2-D layout
    // keeps a real edge-cut advantage.
    // Strong: one fixed mesh with the same aspect guarantees, spread
    // thinner as P grows.
    let (weak_ps, strong_ps, strong_mesh): (&[usize], &[usize], _) = if quick() {
        (&[64, 256], &[64, 256], QuadMesh::cantilever(1024, 96))
    } else {
        (
            &[64, 256, 1024, 4096],
            &[64, 256, 1024, 4096],
            QuadMesh::cantilever(4096, 384),
        )
    };
    // The convergence sweep runs real solves, so the one-level runs are
    // capped: past the cap the count is reported as a lower bound, which
    // only understates how much faster one-level iteration counts grow.
    let (twolevel_ps, onelevel_cap): (&[usize], usize) = if quick() {
        (&[64, 256, 1024], 400)
    } else {
        (&[64, 256, 1024, 4096], 1200)
    };
    let weak = run_series(
        "weak",
        weak_ps,
        |p| QuadMesh::cantilever(2 * p, 32),
        true,
        &topos,
    );
    let strong = run_series(
        "strong",
        strong_ps,
        move |_| strong_mesh.clone(),
        false,
        &topos,
    );
    let twolevel = run_twolevel_series(twolevel_ps, onelevel_cap, &topos);
    emit_summary(&[("weak", weak), ("strong", strong)]);
    emit_twolevel_summary(&twolevel);
    println!("\ngraph partitioner beat strips on edge cut at every point");
    println!(
        "two-level iteration growth {:.4} (one-level {:.4}) over P={}..{}",
        twolevel.growth_two, twolevel.growth_one, twolevel.p_min, twolevel.p_max
    );
}
