//! Scaling laboratory: modeled weak- and strong-scaling curves at large P.
//!
//! The paper evaluates P ≤ 8 on mid-90s hosts; this lab asks what the same
//! EDD/RDD algorithms cost at P = 64..4096 on modern topologies (two-level
//! cluster, fat tree, 3-D torus), using the analytic machine model rather
//! than real threads:
//!
//! - **weak scaling** — a fixed 8x8-element tile per rank (the mesh grows
//!   with P), so the curve isolates the parallel overheads: the O(log P)
//!   all-reduce, interface exchange, and link contention;
//! - **strong scaling** — one fixed mesh spread ever thinner, so the curve
//!   shows where per-rank compute stops hiding those overheads.
//!
//! Each point partitions the mesh twice — structured strips (the paper's
//! layout) and the multilevel graph partitioner — and records edge cut,
//! imbalance, and the worst link-sharing factor alongside the modeled
//! per-iteration times for blocking EDD, RDD, and overlapped EDD. The
//! summary feeds the `scaling_modeled` series of `BENCH_PERF.json`, which
//! the perf gate checks (graph must never cut more than strips; overlap
//! must never be modeled slower than blocking).
//!
//! `PARFEM_QUICK=1` shrinks both sweeps to CI smoke size.

use parfem::prelude::*;
use parfem_bench::harness::{banner, quick, Table};
use parfem_mesh::Cells;
use std::collections::BTreeMap;

/// Per-element flops of one FGMRES+gls(7) iteration: 8 matvecs (degree-7
/// polynomial application plus the outer operator) at ~150 flops per
/// element-row contribution.
const FLOPS_PER_ELEM_ITER: f64 = 1200.0;
/// Interface exchanges per iteration — one per matvec.
const EXCHANGE_ROUNDS: usize = 8;
/// Global synchronizations per iteration: Gram-Schmidt dots + residual norm.
const SYNCS_PER_ITER: usize = 3;
/// Interface payload per shared node: two displacement dofs, f64.
const BYTES_PER_NODE: usize = 16;
/// All-reduce payload: one f64 partial sum (header-dominated).
const ALLREDUCE_BYTES: usize = 8;
const GRAPH_SEED: u64 = 0;

/// Per-rank element counts and neighbor interface sizes of a partition.
struct RankStats {
    elems: Vec<usize>,
    /// For each rank: `(neighbor, interface bytes)` — shared mesh nodes
    /// times [`BYTES_PER_NODE`].
    nbr_bytes: Vec<Vec<(usize, usize)>>,
}

fn rank_stats<M: Cells>(mesh: &M, owner: &[usize], p: usize) -> RankStats {
    let mut elems = vec![0usize; p];
    for &o in owner {
        elems[o] += 1;
    }
    // Parts touching each node; a node shared by parts {a, b} is one
    // interface entry each way.
    let mut node_parts: Vec<Vec<usize>> = vec![Vec::new(); mesh.n_cell_nodes()];
    for (e, &own) in owner.iter().enumerate() {
        for n in mesh.cell_nodes(e) {
            let parts = &mut node_parts[n];
            if !parts.contains(&own) {
                parts.push(own);
            }
        }
    }
    let mut shared: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for parts in &node_parts {
        for (i, &a) in parts.iter().enumerate() {
            for &b in &parts[i + 1..] {
                *shared.entry((a.min(b), a.max(b))).or_insert(0) += 1;
            }
        }
    }
    let mut nbr_bytes: Vec<Vec<(usize, usize)>> = vec![Vec::new(); p];
    for (&(a, b), &nodes) in &shared {
        nbr_bytes[a].push((b, nodes * BYTES_PER_NODE));
        nbr_bytes[b].push((a, nodes * BYTES_PER_NODE));
    }
    RankStats { elems, nbr_bytes }
}

/// Modeled per-iteration times of one EDD partition on one machine:
/// `(blocking, overlapped, worst contention factor)`.
///
/// A rank's exchange round posts all neighbor sends at once, so the round
/// costs its slowest contended message; blocking pays compute + comm,
/// overlapped pays `max(compute, comm)`. Both then pay the collectives.
fn modeled_edd(model: &MachineModel, p: usize, stats: &RankStats) -> (f64, f64, f64) {
    let sync = SYNCS_PER_ITER as f64 * model.allreduce_time(p, ALLREDUCE_BYTES);
    let (mut t_block, mut t_overlap, mut worst_factor) = (0.0f64, 0.0f64, 1.0f64);
    for r in 0..p {
        let compute = model.compute_time((stats.elems[r] as f64 * FLOPS_PER_ELEM_ITER) as u64);
        let nbrs: Vec<usize> = stats.nbr_bytes[r].iter().map(|&(q, _)| q).collect();
        let factors = model.contention_factors(p, r, &nbrs);
        let mut round = 0.0f64;
        for (&(q, bytes), &f) in stats.nbr_bytes[r].iter().zip(&factors) {
            round = round.max(model.message_time_contended(p, r, q, bytes, f));
            worst_factor = worst_factor.max(f);
        }
        let comm = EXCHANGE_ROUNDS as f64 * round;
        t_block = t_block.max(compute + comm);
        t_overlap = t_overlap.max(model.overlapped_time(compute, comm));
    }
    (t_block + sync, t_overlap + sync, worst_factor)
}

/// Modeled per-iteration time of the RDD strategy, which always splits the
/// node columns into strips (matching the CLI): each rank trades one
/// column of externals with each side neighbor per matvec.
fn modeled_rdd(model: &MachineModel, p: usize, mesh: &QuadMesh, total_flops: f64) -> f64 {
    let part = NodePartition::strips_x(mesh, p);
    let mut nodes = vec![0usize; p];
    for &o in part.owners() {
        nodes[o] += 1;
    }
    let n_nodes = part.owners().len() as f64;
    let bytes = (mesh.ny() + 1) * BYTES_PER_NODE;
    let sync = SYNCS_PER_ITER as f64 * model.allreduce_time(p, ALLREDUCE_BYTES);
    let mut t = 0.0f64;
    for (r, &owned) in nodes.iter().enumerate() {
        let compute = model.compute_time((total_flops * owned as f64 / n_nodes) as u64);
        let nbrs: Vec<usize> = (r.saturating_sub(1)..=(r + 1).min(p - 1))
            .filter(|&q| q != r)
            .collect();
        let factors = model.contention_factors(p, r, &nbrs);
        let mut round = 0.0f64;
        for (&q, &f) in nbrs.iter().zip(&factors) {
            round = round.max(model.message_time_contended(p, r, q, bytes, f));
        }
        t = t.max(compute + EXCHANGE_ROUNDS as f64 * round);
    }
    t + sync
}

struct SeriesSummary {
    p_max: usize,
    cut_ratio_max: f64,
    overlap_speedup_min: f64,
    /// `(machine name, efficiency at p_max)` per topology.
    eff_at_pmax: Vec<(&'static str, f64)>,
}

/// Runs one series (`weak` grows the mesh with P, `strong` fixes it) over
/// every P and topology, emits the table, and returns the gate summary.
fn run_series(
    name: &str,
    ps: &[usize],
    mesh_for: impl Fn(usize) -> QuadMesh,
    weak: bool,
    topos: &[MachineModel],
) -> SeriesSummary {
    banner(&format!(
        "{name}-scaling (modeled, EDD graph partition vs RDD strips)"
    ));
    let mut table = Table::new(&[
        "p",
        "machine",
        "elems",
        "strips_cut",
        "graph_cut",
        "cut_ratio",
        "imbalance",
        "contention",
        "t_edd_s",
        "t_rdd_s",
        "t_overlap_s",
        "overlap_speedup",
        "efficiency",
    ]);
    let mut cut_ratio_max = 0.0f64;
    let mut overlap_speedup_min = f64::INFINITY;
    let mut eff_curves: Vec<Vec<f64>> = vec![Vec::new(); topos.len()];
    for &p in ps {
        let mesh = mesh_for(p);
        let n = mesh.n_elems();
        let strips = PartitionerSpec::Strips.element_partition(&mesh, p);
        let graph = PartitionerSpec::Graph { seed: GRAPH_SEED }.element_partition(&mesh, p);
        let (strips_cut, graph_cut) = (
            strips.edge_cut().expect("strips cut recorded"),
            graph.edge_cut().expect("graph cut recorded"),
        );
        assert!(
            graph_cut < strips_cut,
            "{name} P={p}: graph cut {graph_cut} must beat strips {strips_cut}"
        );
        let imbalance = graph.imbalance();
        assert!(
            imbalance <= 1.25,
            "{name} P={p}: graph imbalance {imbalance} out of tolerance"
        );
        let ratio = graph_cut as f64 / strips_cut as f64;
        cut_ratio_max = cut_ratio_max.max(ratio);
        let stats = rank_stats(&mesh, graph.owners(), p);
        let total_flops = n as f64 * FLOPS_PER_ELEM_ITER;
        for (ti, model) in topos.iter().enumerate() {
            let (t_edd, t_overlap, contention) = modeled_edd(model, p, &stats);
            let t_rdd = modeled_rdd(model, p, &mesh, total_flops);
            let speedup = t_edd / t_overlap;
            overlap_speedup_min = overlap_speedup_min.min(speedup);
            // Weak: time of the per-rank tile with all overheads removed.
            // Strong: the one-rank time over P ranks.
            let t_ref = if weak {
                model.compute_time((total_flops / p as f64) as u64)
            } else {
                model.compute_time(total_flops as u64) / p as f64
            };
            let eff = t_ref / t_edd;
            eff_curves[ti].push(eff);
            table.row([
                format!("{p}"),
                model.name.to_string(),
                format!("{n}"),
                format!("{strips_cut}"),
                format!("{graph_cut}"),
                format!("{ratio:.4}"),
                format!("{imbalance:.4}"),
                format!("{contention:.2}"),
                format!("{t_edd:.6e}"),
                format!("{t_rdd:.6e}"),
                format!("{t_overlap:.6e}"),
                format!("{speedup:.4}"),
                format!("{eff:.4}"),
            ]);
        }
    }
    table.emit(&format!("scaling_{name}"));

    assert!(
        overlap_speedup_min >= 1.0 - 1e-12,
        "{name}: overlap modeled slower than blocking ({overlap_speedup_min})"
    );
    let mut eff_at_pmax = Vec::new();
    for (ti, model) in topos.iter().enumerate() {
        let effs = &eff_curves[ti];
        for &e in effs {
            assert!(
                e > 0.0 && e <= 1.0 + 1e-9,
                "{name}/{}: modeled efficiency {e} outside (0, 1]",
                model.name
            );
        }
        assert!(
            effs.last().unwrap() <= effs.first().unwrap(),
            "{name}/{}: efficiency must not rise with P: {effs:?}",
            model.name
        );
        eff_at_pmax.push((model.name, *effs.last().unwrap()));
    }
    SeriesSummary {
        p_max: *ps.last().unwrap(),
        cut_ratio_max,
        overlap_speedup_min,
        eff_at_pmax,
    }
}

fn emit_summary(series: &[(&str, SeriesSummary)]) {
    println!("\nBENCH_PERF.json `scaling_modeled` section:");
    println!("  \"scaling_modeled\": {{");
    for (i, (name, s)) in series.iter().enumerate() {
        let effs: Vec<String> = s
            .eff_at_pmax
            .iter()
            .map(|(m, e)| format!("      \"efficiency_{m}_p{}\": {e:.4}", s.p_max))
            .collect();
        println!("    \"{name}\": {{");
        println!("      \"p_max\": {},", s.p_max);
        println!("      \"graph_cut_ratio_max\": {:.4},", s.cut_ratio_max);
        println!(
            "      \"overlap_speedup_min\": {:.4},",
            s.overlap_speedup_min
        );
        println!("{}", effs.join(",\n"));
        println!("    }}{}", if i + 1 < series.len() { "," } else { "" });
    }
    println!("  }}");
}

fn main() {
    let topos = [
        MachineModel::cluster(),
        MachineModel::fat_tree(),
        MachineModel::torus3d(),
    ];
    // Weak: an 8x8 tile per rank on a (p/4) x 4 rank grid -> a 2p x 32
    // mesh, so strips exist at every P (p <= nx) while the 2-D layout
    // keeps a real edge-cut advantage.
    // Strong: one fixed mesh with the same aspect guarantees, spread
    // thinner as P grows.
    let (weak_ps, strong_ps, strong_mesh): (&[usize], &[usize], _) = if quick() {
        (&[64, 256], &[64, 256], QuadMesh::cantilever(1024, 96))
    } else {
        (
            &[64, 256, 1024, 4096],
            &[64, 256, 1024, 4096],
            QuadMesh::cantilever(4096, 384),
        )
    };
    let weak = run_series(
        "weak",
        weak_ps,
        |p| QuadMesh::cantilever(2 * p, 32),
        true,
        &topos,
    );
    let strong = run_series(
        "strong",
        strong_ps,
        move |_| strong_mesh.clone(),
        false,
        &topos,
    );
    emit_summary(&[("weak", weak), ("strong", strong)]);
    println!("\ngraph partitioner beat strips on edge cut at every point");
}
