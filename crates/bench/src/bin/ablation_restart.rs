//! Ablation: GMRES restart dimension m̃ (the paper fixes m̃ = 25).
//!
//! Small restarts save memory (the Krylov basis is m̃+1 vectors plus m̃
//! flexible vectors) but risk stagnation; this sweep shows where the
//! paper's choice sits for its workloads.

use parfem::prelude::*;
use parfem::sequential::SeqPrecond;
use parfem_bench::harness::{banner, Table};

fn main() {
    banner("Ablation: restart dimension (Mesh3, static)");
    let p = CantileverProblem::paper_mesh(3);
    let mut table = Table::new(&[
        "restart",
        "gls7_iters",
        "gls7_converged",
        "none_iters",
        "none_converged",
    ]);
    let mut gls_by_restart = Vec::new();
    for restart in [5usize, 10, 25, 50, 100] {
        let cfg = GmresConfig {
            tol: 1e-6,
            max_iters: 60_000,
            restart,
            ..Default::default()
        };
        let (_, hg) = parfem::sequential::solve_static(&p, &SeqPrecond::Gls(7), &cfg).unwrap();
        let (_, hn) = parfem::sequential::solve_static(&p, &SeqPrecond::None, &cfg).unwrap();
        table.row([
            restart.to_string(),
            hg.iterations().to_string(),
            hg.converged().to_string(),
            hn.iterations().to_string(),
            hn.converged().to_string(),
        ]);
        if hg.converged() {
            gls_by_restart.push((restart, hg.iterations()));
        }
    }
    table.emit("ablation_restart");
    // With gls(7) the iteration count at the paper's restart 25 must be
    // within 20% of the unrestarted (restart 100) count — i.e. m = 25 is
    // already in the flat region for preconditioned runs.
    let at25 = gls_by_restart
        .iter()
        .find(|(r, _)| *r == 25)
        .expect("restart 25 converged")
        .1;
    let at100 = gls_by_restart
        .iter()
        .find(|(r, _)| *r == 100)
        .expect("restart 100 converged")
        .1;
    assert!(
        (at25 as f64) <= 1.2 * at100 as f64,
        "m=25 should be near-optimal for gls(7): {at25} vs {at100}"
    );
    println!("\nthe paper's m = 25 sits in the flat region once polynomial preconditioning is on");
}
