//! Shared modeled-cost machinery for the scaling laboratory binaries.
//!
//! The `scaling` and `physics_scaling` bins both turn an element partition
//! into modeled per-iteration times on the analytic [`MachineModel`]
//! topologies. The partition statistics ([`rank_stats`]) and the
//! blocking/overlapped EDD iteration model ([`modeled_edd`]) live here so
//! the two sweeps model the *same* machine with physics-dependent
//! parameters — the interface payload in particular is `8 × dofs-per-node`
//! bytes per shared mesh node, not a hardwired two-displacement-DOF
//! constant.

use parfem::prelude::MachineModel;
use parfem_mesh::Cells;
use std::collections::BTreeMap;

/// Per-iteration cost parameters of the modeled FGMRES + polynomial
/// preconditioner sweep.
#[derive(Debug, Clone, Copy)]
pub struct IterCostModel {
    /// Per-element flops of one preconditioned iteration (all matvecs).
    pub flops_per_elem_iter: f64,
    /// Interface exchanges per iteration — one per matvec.
    pub exchange_rounds: usize,
    /// Global synchronizations per iteration (Gram-Schmidt dots + norm).
    pub syncs_per_iter: usize,
    /// Interface payload per shared mesh node: `8 × dofs-per-node` bytes.
    pub bytes_per_node: usize,
    /// All-reduce payload: one f64 partial sum (header-dominated).
    pub allreduce_bytes: usize,
}

impl IterCostModel {
    /// The FGMRES + gls(7) iteration of the paper's 2-D elasticity
    /// workload: 8 matvecs at ~150 flops per element-row contribution,
    /// two displacement DOFs per interface node.
    pub fn paper_gls7() -> Self {
        IterCostModel {
            flops_per_elem_iter: 1200.0,
            exchange_rounds: 8,
            syncs_per_iter: 3,
            bytes_per_node: 16,
            allreduce_bytes: 8,
        }
    }

    /// The same machine traffic pattern for an arbitrary physics: the
    /// interface payload scales with DOFs per node, the per-element flops
    /// with the element stiffness row count (`flops_per_elem_iter` is per
    /// preconditioned iteration, matvec count included).
    pub fn for_physics(dofs_per_node: usize, flops_per_elem_iter: f64) -> Self {
        IterCostModel {
            flops_per_elem_iter,
            bytes_per_node: 8 * dofs_per_node,
            ..Self::paper_gls7()
        }
    }
}

/// Per-rank element counts and neighbor interface sizes of a partition.
pub struct RankStats {
    /// Elements owned by each rank.
    pub elems: Vec<usize>,
    /// For each rank: `(neighbor, interface bytes)` — shared mesh nodes
    /// times [`IterCostModel::bytes_per_node`].
    pub nbr_bytes: Vec<Vec<(usize, usize)>>,
}

/// Computes [`RankStats`] for an element `owner` map over any structured
/// cell mesh (quadrilaterals and hexahedra alike).
pub fn rank_stats<M: Cells>(
    mesh: &M,
    owner: &[usize],
    p: usize,
    cost: &IterCostModel,
) -> RankStats {
    let mut elems = vec![0usize; p];
    for &o in owner {
        elems[o] += 1;
    }
    // Parts touching each node; a node shared by parts {a, b} is one
    // interface entry each way.
    let mut node_parts: Vec<Vec<usize>> = vec![Vec::new(); mesh.n_cell_nodes()];
    for (e, &own) in owner.iter().enumerate() {
        for n in mesh.cell_nodes(e) {
            let parts = &mut node_parts[n];
            if !parts.contains(&own) {
                parts.push(own);
            }
        }
    }
    let mut shared: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for parts in &node_parts {
        for (i, &a) in parts.iter().enumerate() {
            for &b in &parts[i + 1..] {
                *shared.entry((a.min(b), a.max(b))).or_insert(0) += 1;
            }
        }
    }
    let mut nbr_bytes: Vec<Vec<(usize, usize)>> = vec![Vec::new(); p];
    for (&(a, b), &nodes) in &shared {
        nbr_bytes[a].push((b, nodes * cost.bytes_per_node));
        nbr_bytes[b].push((a, nodes * cost.bytes_per_node));
    }
    RankStats { elems, nbr_bytes }
}

/// Modeled per-iteration times of one EDD partition on one machine:
/// `(blocking, overlapped, worst contention factor)`.
///
/// A rank's exchange round posts all neighbor sends at once, so the round
/// costs its slowest contended message; blocking pays compute + comm,
/// overlapped pays `max(compute, comm)`. Both then pay the collectives.
pub fn modeled_edd(
    model: &MachineModel,
    p: usize,
    stats: &RankStats,
    cost: &IterCostModel,
) -> (f64, f64, f64) {
    let sync = cost.syncs_per_iter as f64 * model.allreduce_time(p, cost.allreduce_bytes);
    let (mut t_block, mut t_overlap, mut worst_factor) = (0.0f64, 0.0f64, 1.0f64);
    for r in 0..p {
        let compute = model.compute_time((stats.elems[r] as f64 * cost.flops_per_elem_iter) as u64);
        let nbrs: Vec<usize> = stats.nbr_bytes[r].iter().map(|&(q, _)| q).collect();
        let factors = model.contention_factors(p, r, &nbrs);
        let mut round = 0.0f64;
        for (&(q, bytes), &f) in stats.nbr_bytes[r].iter().zip(&factors) {
            round = round.max(model.message_time_contended(p, r, q, bytes, f));
            worst_factor = worst_factor.max(f);
        }
        let comm = cost.exchange_rounds as f64 * round;
        t_block = t_block.max(compute + comm);
        t_overlap = t_overlap.max(model.overlapped_time(compute, comm));
    }
    (t_block + sync, t_overlap + sync, worst_factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfem_mesh::QuadMesh;

    #[test]
    fn payload_scales_with_dofs_per_node() {
        let scalar = IterCostModel::for_physics(1, 300.0);
        let vector3 = IterCostModel::for_physics(3, 2700.0);
        assert_eq!(scalar.bytes_per_node, 8);
        assert_eq!(vector3.bytes_per_node, 24);
        assert_eq!(IterCostModel::paper_gls7().bytes_per_node, 16);
    }

    #[test]
    fn rank_stats_count_shared_interface_nodes() {
        // 2x1 elements split into two ranks share one element edge: 2 nodes.
        let mesh = QuadMesh::cantilever(2, 1);
        let cost = IterCostModel::paper_gls7();
        let stats = rank_stats(&mesh, &[0, 1], 2, &cost);
        assert_eq!(stats.elems, vec![1, 1]);
        assert_eq!(stats.nbr_bytes[0], vec![(1, 2 * cost.bytes_per_node)]);
        assert_eq!(stats.nbr_bytes[1], vec![(0, 2 * cost.bytes_per_node)]);
    }

    #[test]
    fn overlapped_never_models_slower_than_blocking() {
        let mesh = QuadMesh::cantilever(16, 4);
        let owner: Vec<usize> = (0..mesh.n_elems()).map(|e| (e % 16) / 4).collect();
        let cost = IterCostModel::paper_gls7();
        let stats = rank_stats(&mesh, &owner, 4, &cost);
        let model = MachineModel::cluster();
        let (block, overlap, _) = modeled_edd(&model, 4, &stats, &cost);
        assert!(overlap <= block + 1e-15, "{overlap} vs {block}");
    }
}
