//! Declarative sweep harness for the figure/table regenerator binaries.
//!
//! Every regenerator follows the same skeleton: build a benchmark case
//! (problem × decomposition × preconditioner × machine), sweep it over
//! subdomain counts or parameter grids, print an aligned table, write the
//! CSV, and assert the paper's qualitative shape. [`Case`] captures the
//! distributed-solve portion of that skeleton on top of
//! [`SolveSession`] — one assembly path, one convergence assertion, one
//! speedup normalization — and [`Table`] captures the output portion, so a
//! binary reduces to the sweep grid and its shape checks.

use parfem::prelude::*;

pub use crate::{banner, fmt, results_dir, write_csv};

/// True when `PARFEM_QUICK` is set: binaries shrink their sweeps to smoke
/// size.
pub fn quick() -> bool {
    std::env::var("PARFEM_QUICK").is_ok()
}

/// The paper's default rank sweep `P ∈ {1, 2, 4, 8}`.
pub const RANKS: [usize; 4] = [1, 2, 4, 8];

/// Which domain-decomposition strategy a [`Case`] runs, with the default
/// strip partition built per rank count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decomp {
    /// Element-based decomposition over `ElementPartition::strips_x`.
    Edd,
    /// Row/node-based decomposition over `NodePartition::strips_x`.
    Rdd,
}

/// One declarative distributed benchmark case. Builders mirror the
/// [`SolveSession`] options; [`Case::run`] panics (with the case label) on
/// any rank failure or non-convergence, so sweeps stay assertion-dense
/// without per-call boilerplate.
pub struct Case<'a> {
    problem: &'a CantileverProblem,
    decomp: Decomp,
    cfg: SolverConfig,
    model: MachineModel,
    label: String,
}

impl<'a> Case<'a> {
    /// An EDD case with the paper's defaults: `gls(7)`, enhanced variant,
    /// virtual SGI Origin.
    pub fn edd(problem: &'a CantileverProblem) -> Self {
        Case {
            problem,
            decomp: Decomp::Edd,
            cfg: SolverConfig::default(),
            model: MachineModel::sgi_origin(),
            label: "edd".to_string(),
        }
    }

    /// An RDD case with the same defaults.
    pub fn rdd(problem: &'a CantileverProblem) -> Self {
        Case {
            label: "rdd".to_string(),
            decomp: Decomp::Rdd,
            ..Case::edd(problem)
        }
    }

    /// Overrides the preconditioner (registry spec).
    pub fn precond(mut self, spec: PrecondSpec) -> Self {
        self.label = format!("{} {}", self.label, spec.name());
        self.cfg.precond = spec;
        self
    }

    /// Overrides the EDD algorithm variant.
    pub fn variant(mut self, variant: EddVariant) -> Self {
        self.cfg.variant = variant;
        self
    }

    /// Enables or disables overlapped interface exchange.
    pub fn overlap(mut self, overlap: bool) -> Self {
        self.cfg.overlap = overlap;
        self
    }

    /// Overrides the GMRES configuration.
    pub fn gmres(mut self, gmres: GmresConfig) -> Self {
        self.cfg.gmres = gmres;
        self
    }

    /// Overrides the virtual machine model.
    pub fn machine(mut self, model: MachineModel) -> Self {
        self.model = model;
        self
    }

    /// Replaces the whole solver configuration at once.
    pub fn config(mut self, cfg: SolverConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// The solver configuration this case runs with.
    pub fn cfg(&self) -> &SolverConfig {
        &self.cfg
    }

    /// Solves on `parts` subdomains with the default strip partition.
    ///
    /// # Panics
    /// Panics if any rank fails or the solve does not converge.
    pub fn run(&self, parts: usize) -> DdSolveOutput {
        let strategy = match self.decomp {
            Decomp::Edd => Strategy::Edd(ElementPartition::strips_x(&self.problem.mesh, parts)),
            Decomp::Rdd => Strategy::Rdd(NodePartition::strips_x(&self.problem.mesh, parts)),
        };
        self.run_strategy(strategy)
    }

    /// Solves with an explicit (possibly non-strip) partition strategy.
    ///
    /// # Panics
    /// Panics if any rank fails or the solve does not converge.
    pub fn run_strategy(&self, strategy: Strategy) -> DdSolveOutput {
        self.session(strategy).run().map_or_else(
            |failures| panic!("{}: {failures}", self.label),
            |out| {
                assert!(out.history.converged(), "{} did not converge", self.label);
                out
            },
        )
    }

    /// Like [`Case::run`], recording a structured trace into `sink`.
    ///
    /// # Panics
    /// Panics if any rank fails or the solve does not converge.
    pub fn run_traced(&self, parts: usize, sink: &TraceSink) -> DdSolveOutput {
        let strategy = match self.decomp {
            Decomp::Edd => Strategy::Edd(ElementPartition::strips_x(&self.problem.mesh, parts)),
            Decomp::Rdd => Strategy::Rdd(NodePartition::strips_x(&self.problem.mesh, parts)),
        };
        self.session(strategy).trace(sink).run().map_or_else(
            |failures| panic!("{}: {failures}", self.label),
            |out| {
                assert!(out.history.converged(), "{} did not converge", self.label);
                out
            },
        )
    }

    /// Runs `steps` Newmark time steps on `parts` subdomains (EDD only).
    ///
    /// # Panics
    /// Panics if any step's solve fails to converge.
    pub fn run_dynamic(
        &self,
        parts: usize,
        params: NewmarkParams,
        steps: usize,
        watch_dofs: &[usize],
    ) -> DynamicRunOutput {
        let strategy = Strategy::Edd(ElementPartition::strips_x(&self.problem.mesh, parts));
        let out = self
            .session(strategy)
            .run_dynamic(params, steps, watch_dofs);
        assert!(
            out.all_converged,
            "{} (dynamic) did not converge",
            self.label
        );
        out
    }

    /// Solves at every rank count in `ps`.
    pub fn sweep(&self, ps: &[usize]) -> Vec<DdSolveOutput> {
        ps.iter().map(|&p| self.run(p)).collect()
    }

    /// Speedups `T(ps[0]) / T(p)` over the rank sweep `ps`.
    pub fn speedups(&self, ps: &[usize]) -> Vec<f64> {
        speedups_of(&self.sweep(ps))
    }

    fn session(&self, strategy: Strategy) -> SolveSession<'a> {
        SolveSession::new(self.problem.as_problem())
            .strategy(strategy)
            .config(self.cfg.clone())
            .machine(self.model.clone())
    }
}

/// Speedups of a sweep relative to its first entry's modeled time.
pub fn speedups_of(runs: &[DdSolveOutput]) -> Vec<f64> {
    let t0 = runs.first().map_or(1.0, |r| r.modeled_time);
    runs.iter().map(|r| t0 / r.modeled_time).collect()
}

/// An aligned console table that doubles as the CSV payload: collect rows,
/// then [`Table::emit`] prints every column right-aligned and writes
/// `results/<name>.csv` with the same header and cells.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column header.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (any iterable of cells).
    pub fn row<I>(&mut self, cells: I)
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width != header width");
        self.rows.push(row);
    }

    /// The collected rows (for shape checks over the printed data).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Prints the table with each column right-aligned to its widest cell.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!("{}", line(&self.header));
        for row in &self.rows {
            println!("{}", line(row));
        }
    }

    /// Prints the table and writes it as `results/<name>.csv`.
    pub fn emit(&self, name: &str) {
        self.print();
        let header_refs: Vec<&str> = self.header.iter().map(|s| s.as_str()).collect();
        write_csv(name, &header_refs, &self.rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_runs_and_speedups_normalize() {
        let p = CantileverProblem::paper_mesh(1);
        let runs = Case::edd(&p)
            .precond(PrecondSpec::parse("gls:3").unwrap())
            .sweep(&[1, 2]);
        assert!(runs.iter().all(|r| r.history.converged()));
        let s = speedups_of(&runs);
        assert_eq!(s[0], 1.0);
        assert!(s[1] > 0.0);
    }

    #[test]
    fn rdd_case_matches_edd_solution() {
        let p = CantileverProblem::paper_mesh(1);
        let e = Case::edd(&p).run(2);
        let r = Case::rdd(&p).run(2);
        let diff: f64 =
            e.u.iter()
                .zip(&r.u)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
        assert!(diff < 1e-6, "EDD/RDD solutions diverged: {diff}");
    }

    #[test]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.rows().len(), 1);
        let ragged = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.row(["only-one"]);
        }));
        assert!(ragged.is_err());
    }
}
