//! Shared harness utilities for the figure/table regenerator binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper:
//! it prints the paper-style rows to stdout **and** writes a CSV under
//! `results/` at the workspace root, so the data can be re-plotted.

pub mod harness;
pub mod modeling;

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// The workspace-root `results/` directory (created on demand).
///
/// # Panics
/// Panics if the directory cannot be created.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Writes `rows` (plus a `header`) as `results/<name>.csv`.
///
/// # Panics
/// Panics on I/O errors — the harness should fail loudly.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let path = results_dir().join(format!("{name}.csv"));
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", header.join(",")).expect("write header");
    for row in rows {
        writeln!(f, "{}", row.join(",")).expect("write row");
    }
    println!("[wrote {}]", path.display());
}

/// Formats a float for table output.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e4 || v.abs() < 1e-3 {
        format!("{v:.4e}")
    } else {
        format!("{v:.4}")
    }
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_switches_notation() {
        assert_eq!(fmt(0.0), "0");
        assert!(fmt(12345.6).contains('e'));
        assert!(fmt(0.0001).contains('e'));
        assert_eq!(fmt(1.5), "1.5000");
    }

    #[test]
    fn results_dir_exists_after_call() {
        let d = results_dir();
        assert!(d.is_dir());
    }

    #[test]
    fn write_csv_round_trips() {
        write_csv(
            "unit_test_artifact",
            &["a", "b"],
            &[vec!["1".into(), "2".into()]],
        );
        let content =
            std::fs::read_to_string(results_dir().join("unit_test_artifact.csv")).unwrap();
        assert!(content.starts_with("a,b\n1,2"));
        let _ = std::fs::remove_file(results_dir().join("unit_test_artifact.csv"));
    }
}
