//! Spectrum-estimation cost: a 30-step Lanczos run (the `GlsAuto` setup
//! overhead) versus plain power iteration, on the paper's Mesh4 operator.

use criterion::{criterion_group, criterion_main, Criterion};
use parfem::krylov::lanczos;
use parfem::prelude::*;
use parfem::sparse::gershgorin;
use parfem::sparse::scaling::scale_system;
use std::hint::black_box;

fn bench_spectrum(c: &mut Criterion) {
    let p = CantileverProblem::paper_mesh(4);
    let sys = p.static_system();
    let (a, _, _) = scale_system(&sys.stiffness, &sys.rhs).unwrap();

    let mut group = c.benchmark_group("spectrum_estimation_mesh4");
    group.sample_size(20);
    group.bench_function("lanczos_30_steps", |b| {
        b.iter(|| black_box(lanczos::estimate_spectrum(&a, 30)))
    });
    group.bench_function("power_iteration_lambda_max_1e-6", |b| {
        b.iter(|| black_box(gershgorin::power_iteration_lambda_max(&a, 10_000, 1e-6)))
    });
    group.bench_function("gershgorin_bounds", |b| {
        b.iter(|| {
            black_box((
                gershgorin::gershgorin_lower_bound(&a),
                gershgorin::gershgorin_upper_bound(&a),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_spectrum);
criterion_main!(benches);
