//! End-to-end parallel solve: element-based vs row-based decomposition at
//! P = 4 (wall-clock of the threaded run; modeled speedups come from the
//! fig17/table3 binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parfem::prelude::*;
use std::hint::black_box;

fn bench_dd(c: &mut Criterion) {
    let p = CantileverProblem::paper_mesh(3);
    let cfg = SolverConfig::default();
    let epart = ElementPartition::strips_x(&p.mesh, 4);
    let npart = NodePartition::strips_x(&p.mesh, 4);

    let mut group = c.benchmark_group("dd_solve_mesh3_p4");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("edd", "enhanced"), |b| {
        b.iter(|| {
            let out = SolveSession::new(p.as_problem())
                .strategy(Strategy::Edd(black_box(&epart).clone()))
                .config(cfg.clone())
                .run()
                .expect("fault-free solve");
            assert!(out.history.converged());
            black_box(out.u)
        })
    });
    let basic_cfg = SolverConfig {
        variant: EddVariant::Basic,
        ..SolverConfig::default()
    };
    group.bench_function(BenchmarkId::new("edd", "basic"), |b| {
        b.iter(|| {
            let out = SolveSession::new(p.as_problem())
                .strategy(Strategy::Edd(black_box(&epart).clone()))
                .config(basic_cfg.clone())
                .run()
                .expect("fault-free solve");
            black_box(out.u)
        })
    });
    group.bench_function(BenchmarkId::new("rdd", "block_row"), |b| {
        b.iter(|| {
            let out = SolveSession::new(p.as_problem())
                .strategy(Strategy::Rdd(black_box(&npart).clone()))
                .config(cfg.clone())
                .run()
                .expect("fault-free solve");
            assert!(out.history.converged());
            black_box(out.u)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dd);
criterion_main!(benches);
