//! Preconditioner application cost: GLS(m) and Neumann(m) are `m` SpMVs,
//! ILU(0) is one triangular sweep — the cost trade-off behind the paper's
//! Table 3 CPU-time discussion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parfem::precond::{GlsPrecond, Ilu0Precond, JacobiPrecond, NeumannPrecond, Preconditioner};
use parfem::prelude::*;
use parfem::sparse::scaling::scale_system;
use std::hint::black_box;

fn bench_precond(c: &mut Criterion) {
    let p = CantileverProblem::paper_mesh(4);
    let sys = p.static_system();
    let (a, _, _) = scale_system(&sys.stiffness, &sys.rhs).unwrap();
    let v = vec![1.0; a.n_rows()];
    let mut z = vec![0.0; a.n_rows()];

    let mut group = c.benchmark_group("precond_apply_mesh4");
    for m in [3usize, 7, 10] {
        let gls = GlsPrecond::for_scaled_system(m);
        group.bench_with_input(BenchmarkId::new("gls", m), &gls, |b, pc| {
            b.iter(|| pc.apply_into(black_box(&a), black_box(&v), black_box(&mut z)))
        });
        let neu = NeumannPrecond::for_scaled_system(m);
        group.bench_with_input(BenchmarkId::new("neumann", m), &neu, |b, pc| {
            b.iter(|| pc.apply_into(black_box(&a), black_box(&v), black_box(&mut z)))
        });
    }
    let ilu = Ilu0Precond::factorize(&a).expect("spd system factorizes");
    group.bench_function("ilu0_solve", |b| {
        b.iter(|| ilu.apply_into(black_box(&a), black_box(&v), black_box(&mut z)))
    });
    let jac = JacobiPrecond::from_matrix(&a);
    group.bench_function("jacobi", |b| {
        b.iter(|| jac.apply_into(black_box(&a), black_box(&v), black_box(&mut z)))
    });
    group.finish();

    // Construction costs (the paper stresses polynomial construction is
    // negligible next to ILU factorization).
    let mut group = c.benchmark_group("precond_construct_mesh4");
    group.bench_function("gls7_construct", |b| {
        b.iter(|| black_box(GlsPrecond::for_scaled_system(7)))
    });
    group.bench_function("ilu0_factorize", |b| {
        b.iter(|| black_box(Ilu0Precond::factorize(&a).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_precond);
criterion_main!(benches);
