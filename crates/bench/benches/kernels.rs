//! Micro-benches for the fused/unrolled sparse and dense kernels behind the
//! zero-allocation FGMRES hot path: fused `spmv_axpby` vs the unfused pair,
//! the row-partitioned threaded SpMV, the blocked Gram–Schmidt sweeps
//! (`dot_sweep` / `axpy_sweep_neg`) against their scalar loops, the
//! kernel-variant storage formats (SELL-C-σ, 2×2 block CSR, lane CSR)
//! against scalar CSR, the lane Gram–Schmidt kernels, and the `f32`
//! polynomial preconditioner against its `f64` reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parfem::prelude::*;
use parfem_precond::{GlsPrecond, GlsPrecondF32, Preconditioner};
use parfem_sparse::{dense, kernels, scaling, simd, BcsrMatrix, SellMatrix};
use std::hint::black_box;

fn bench_fused_spmv(c: &mut Criterion) {
    let p = CantileverProblem::paper_mesh(4);
    let sys = p.static_system();
    let a = sys.stiffness;
    let x = vec![1.0; a.n_cols()];
    let mut y = vec![0.5; a.n_rows()];
    let mut t = vec![0.0; a.n_rows()];

    let mut group = c.benchmark_group("kernels_spmv");
    group.throughput(Throughput::Elements(a.nnz() as u64));
    group.bench_function("axpby_fused", |b| {
        b.iter(|| {
            a.spmv_axpby(
                black_box(0.7),
                black_box(&x),
                black_box(0.3),
                black_box(&mut y),
            )
        })
    });
    group.bench_function("axpby_unfused", |b| {
        b.iter(|| {
            a.spmv_into(black_box(&x), black_box(&mut t));
            for (yi, ti) in y.iter_mut().zip(&t) {
                *yi = 0.7 * ti + 0.3 * *yi;
            }
        })
    });
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("threaded", threads),
            &threads,
            |b, &threads| b.iter(|| a.par_spmv_into(black_box(&x), black_box(&mut t), threads)),
        );
    }
    group.finish();
}

fn bench_gram_schmidt_sweeps(c: &mut Criterion) {
    let n = 20_000usize;
    let k = 8usize;
    let vs: Vec<Vec<f64>> = (0..k)
        .map(|j| (0..n).map(|i| ((i + j) as f64).sin()).collect())
        .collect();
    let w0: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
    let coeffs: Vec<f64> = (0..k).map(|j| 0.1 * (j as f64 + 1.0)).collect();
    let mut out = vec![0.0; k];

    let mut group = c.benchmark_group("kernels_gram_schmidt");
    group.throughput(Throughput::Elements((n * k) as u64));
    group.bench_function("dot_sweep", |b| {
        b.iter(|| kernels::dot_sweep(black_box(&w0), black_box(&vs), black_box(&mut out)))
    });
    group.bench_function("dot_scalar", |b| {
        b.iter(|| {
            for (o, v) in out.iter_mut().zip(&vs) {
                *o = dense::dot(black_box(&w0), v);
            }
        })
    });
    let mut w = w0.clone();
    group.bench_function("axpy_sweep_neg", |b| {
        b.iter(|| {
            w.copy_from_slice(&w0);
            black_box(kernels::axpy_sweep_neg(
                black_box(&coeffs),
                black_box(&vs),
                &mut w,
            ))
        })
    });
    group.bench_function("axpy_scalar", |b| {
        b.iter(|| {
            w.copy_from_slice(&w0);
            for (cj, v) in coeffs.iter().zip(&vs) {
                dense::axpy(-cj, v, &mut w);
            }
            black_box(dense::dot(&w, &w))
        })
    });
    group.finish();
}

fn bench_kernel_variants(c: &mut Criterion) {
    let p = CantileverProblem::paper_mesh(4);
    let sys = p.static_system();
    let a = sys.stiffness;
    let x = vec![1.0; a.n_cols()];
    let mut y = vec![0.0; a.n_rows()];

    let sell = SellMatrix::from_csr(&a, 8, 64);
    let bcsr = BcsrMatrix::try_from_csr(&a);
    let (row_ptr, col_idx, values) = a.raw_parts();

    let mut group = c.benchmark_group("kernels_variants");
    group.throughput(Throughput::Elements(a.nnz() as u64));
    group.bench_function("spmv_csr_scalar", |b| {
        b.iter(|| a.spmv_into(black_box(&x), black_box(&mut y)))
    });
    group.bench_function("spmv_csr_lanes", |b| {
        b.iter(|| {
            simd::spmv_lanes(
                black_box(row_ptr),
                black_box(col_idx),
                black_box(values),
                black_box(&x),
                black_box(&mut y),
            )
        })
    });
    group.bench_function("spmv_sellcs_c8", |b| {
        b.iter(|| sell.spmv_into(black_box(&x), black_box(&mut y)))
    });
    // The 2-D cantilever mesh has 2 DOF per node, so the 2×2 block format
    // is admissible; skip silently only if a mesh change ever breaks that.
    if let Some(bcsr) = &bcsr {
        group.bench_function("spmv_bcsr_2x2", |b| {
            b.iter(|| bcsr.spmv_into(black_box(&x), black_box(&mut y)))
        });
    }
    group.finish();
}

fn bench_lane_gram_schmidt(c: &mut Criterion) {
    let n = 20_000usize;
    let k = 8usize;
    let vs: Vec<Vec<f64>> = (0..k)
        .map(|j| (0..n).map(|i| ((i + j) as f64).sin()).collect())
        .collect();
    let w0: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
    let coeffs: Vec<f64> = (0..k).map(|j| 0.1 * (j as f64 + 1.0)).collect();
    let mut out = vec![0.0; k];

    let mut group = c.benchmark_group("kernels_lane_gram_schmidt");
    group.throughput(Throughput::Elements((n * k) as u64));
    group.bench_function("dot_many_lanes", |b| {
        b.iter(|| simd::dot_many_lanes(black_box(&w0), black_box(&vs), black_box(&mut out)))
    });
    let mut w = w0.clone();
    group.bench_function("axpy_sweep_neg_lanes", |b| {
        b.iter(|| {
            w.copy_from_slice(&w0);
            black_box(simd::axpy_sweep_neg_lanes(
                black_box(&coeffs),
                black_box(&vs),
                &mut w,
            ))
        })
    });
    group.finish();
}

fn bench_mixed_precision_precond(c: &mut Criterion) {
    let p = CantileverProblem::paper_mesh(4);
    let sys = p.static_system();
    let f = vec![1.0; sys.stiffness.n_rows()];
    let (scaled, b_rhs, _) = scaling::scale_system(&sys.stiffness, &f).unwrap();
    let n = scaled.n_rows();

    let gls64 = GlsPrecond::for_scaled_system(7);
    let gls32 = GlsPrecondF32::for_scaled_system(7).with_matrix(&scaled);
    let mut z = vec![0.0; n];
    let n_scratch =
        Preconditioner::<CsrMatrix>::scratch_vectors(&gls64)
            .max(Preconditioner::<CsrMatrix>::scratch_vectors(&gls32));
    let mut scratch: Vec<Vec<f64>> = vec![vec![0.0; n]; n_scratch];

    let mut group = c.benchmark_group("kernels_mixed_precision");
    // Degree-7 polynomial: 7 SpMVs plus vector updates per application.
    group.throughput(Throughput::Elements(7 * scaled.nnz() as u64));
    group.bench_function("gls7_apply_f64", |b| {
        b.iter(|| {
            gls64.apply_scratch(
                black_box(&scaled),
                black_box(&b_rhs),
                black_box(&mut z),
                &mut scratch,
            )
        })
    });
    group.bench_function("gls7_apply_f32", |b| {
        b.iter(|| {
            gls32.apply_scratch(
                black_box(&scaled),
                black_box(&b_rhs),
                black_box(&mut z),
                &mut scratch,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fused_spmv,
    bench_gram_schmidt_sweeps,
    bench_kernel_variants,
    bench_lane_gram_schmidt,
    bench_mixed_precision_precond
);
criterion_main!(benches);
