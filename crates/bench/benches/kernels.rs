//! Micro-benches for the fused/unrolled sparse and dense kernels behind the
//! zero-allocation FGMRES hot path: fused `spmv_axpby` vs the unfused pair,
//! the row-partitioned threaded SpMV, and the blocked Gram–Schmidt sweeps
//! (`dot_sweep` / `axpy_sweep_neg`) against their scalar loops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parfem::prelude::*;
use parfem_sparse::{dense, kernels};
use std::hint::black_box;

fn bench_fused_spmv(c: &mut Criterion) {
    let p = CantileverProblem::paper_mesh(4);
    let sys = p.static_system();
    let a = sys.stiffness;
    let x = vec![1.0; a.n_cols()];
    let mut y = vec![0.5; a.n_rows()];
    let mut t = vec![0.0; a.n_rows()];

    let mut group = c.benchmark_group("kernels_spmv");
    group.throughput(Throughput::Elements(a.nnz() as u64));
    group.bench_function("axpby_fused", |b| {
        b.iter(|| {
            a.spmv_axpby(
                black_box(0.7),
                black_box(&x),
                black_box(0.3),
                black_box(&mut y),
            )
        })
    });
    group.bench_function("axpby_unfused", |b| {
        b.iter(|| {
            a.spmv_into(black_box(&x), black_box(&mut t));
            for (yi, ti) in y.iter_mut().zip(&t) {
                *yi = 0.7 * ti + 0.3 * *yi;
            }
        })
    });
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("threaded", threads),
            &threads,
            |b, &threads| b.iter(|| a.par_spmv_into(black_box(&x), black_box(&mut t), threads)),
        );
    }
    group.finish();
}

fn bench_gram_schmidt_sweeps(c: &mut Criterion) {
    let n = 20_000usize;
    let k = 8usize;
    let vs: Vec<Vec<f64>> = (0..k)
        .map(|j| (0..n).map(|i| ((i + j) as f64).sin()).collect())
        .collect();
    let w0: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
    let coeffs: Vec<f64> = (0..k).map(|j| 0.1 * (j as f64 + 1.0)).collect();
    let mut out = vec![0.0; k];

    let mut group = c.benchmark_group("kernels_gram_schmidt");
    group.throughput(Throughput::Elements((n * k) as u64));
    group.bench_function("dot_sweep", |b| {
        b.iter(|| kernels::dot_sweep(black_box(&w0), black_box(&vs), black_box(&mut out)))
    });
    group.bench_function("dot_scalar", |b| {
        b.iter(|| {
            for (o, v) in out.iter_mut().zip(&vs) {
                *o = dense::dot(black_box(&w0), v);
            }
        })
    });
    let mut w = w0.clone();
    group.bench_function("axpy_sweep_neg", |b| {
        b.iter(|| {
            w.copy_from_slice(&w0);
            black_box(kernels::axpy_sweep_neg(
                black_box(&coeffs),
                black_box(&vs),
                &mut w,
            ))
        })
    });
    group.bench_function("axpy_scalar", |b| {
        b.iter(|| {
            w.copy_from_slice(&w0);
            for (cj, v) in coeffs.iter().zip(&vs) {
                dense::axpy(-cj, v, &mut w);
            }
            black_box(dense::dot(&w, &w))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fused_spmv, bench_gram_schmidt_sweeps);
criterion_main!(benches);
