//! Full FGMRES solve cost per preconditioner — wall-clock companion to the
//! iteration-count comparisons of Figs. 11/13.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parfem::prelude::*;
use parfem::sequential::{solve_system, SeqPrecond};
use std::hint::black_box;

fn bench_fgmres(c: &mut Criterion) {
    let p = CantileverProblem::paper_mesh(3);
    let sys = p.static_system();
    let cfg = GmresConfig {
        tol: 1e-6,
        max_iters: 20_000,
        ..Default::default()
    };

    let mut group = c.benchmark_group("fgmres_solve_mesh3");
    group.sample_size(10);
    for pc in [
        SeqPrecond::Gls(3),
        SeqPrecond::Gls(7),
        SeqPrecond::Gls(10),
        SeqPrecond::Neumann(20),
        SeqPrecond::Ilu0,
    ] {
        group.bench_with_input(BenchmarkId::new("precond", pc.name()), &pc, |b, pc| {
            b.iter(|| {
                let (u, h) = solve_system(black_box(&sys.stiffness), &sys.rhs, pc, &cfg).unwrap();
                assert!(h.converged());
                black_box(u)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fgmres);
criterion_main!(benches);
