//! Interface-exchange overhead of the threaded message substrate: the real
//! (wall-clock) cost of one `⊕Σ_{∂Ω}` round at P = 2..4, versus the payload
//! size — measures the substrate's own overhead, which the virtual-time
//! model deliberately excludes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parfem_msg::{run_ranks, Communicator, MachineModel};
use std::hint::black_box;

fn bench_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("interface_exchange");
    group.sample_size(20);
    for &len in &[64usize, 1024, 16384] {
        group.bench_with_input(BenchmarkId::new("pairwise_p2", len), &len, |b, &len| {
            b.iter(|| {
                let out = run_ranks(2, MachineModel::ideal(), |comm| {
                    let other = 1 - comm.rank();
                    let data = vec![vec![comm.rank() as f64; len]];
                    // Ten rounds per spawn to amortize thread start-up.
                    let mut acc = 0.0;
                    for _ in 0..10 {
                        let got = comm.exchange(&[other], &data);
                        acc += got[0][0];
                    }
                    acc
                });
                black_box(out.results)
            })
        });
    }
    group.bench_function("allreduce_p4_batched_dots", |b| {
        b.iter(|| {
            let out = run_ranks(4, MachineModel::ideal(), |comm| {
                let v = vec![comm.rank() as f64; 26]; // one Arnoldi column of dots
                let mut acc = 0.0;
                for _ in 0..10 {
                    acc += comm.allreduce_sum(&v)[0];
                }
                acc
            });
            black_box(out.results)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_exchange);
criterion_main!(benches);
