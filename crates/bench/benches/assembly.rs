//! FEM assembly cost: global vs per-subdomain (unassembled) assembly.
//! The EDD strategy's setup advantage is skipping the assembled matrix
//! entirely (paper claim i).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parfem::fem::{assembly, SubdomainSystem};
use parfem::prelude::*;
use std::hint::black_box;

fn bench_assembly(c: &mut Criterion) {
    let p = CantileverProblem::paper_mesh(4);
    let mut group = c.benchmark_group("assembly_mesh4");
    group.sample_size(20);

    group.bench_function("global_stiffness", |b| {
        b.iter(|| {
            black_box(assembly::assemble_stiffness(
                &p.mesh,
                &p.dof_map,
                &p.material,
            ))
        })
    });
    group.bench_function("global_with_bc_and_rhs", |b| {
        b.iter(|| {
            black_box(assembly::build_static(
                &p.mesh,
                &p.dof_map,
                &p.material,
                &p.loads,
            ))
        })
    });

    for parts in [2usize, 4, 8] {
        let subs = ElementPartition::strips_x(&p.mesh, parts).subdomains(&p.mesh);
        group.bench_with_input(
            BenchmarkId::new("all_subdomains", parts),
            &subs,
            |b, subs| {
                b.iter(|| {
                    let systems: Vec<SubdomainSystem> = subs
                        .iter()
                        .map(|s| {
                            SubdomainSystem::build(
                                &p.mesh,
                                &p.dof_map,
                                &p.material,
                                s,
                                &p.loads,
                                None,
                            )
                        })
                        .collect();
                    black_box(systems)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_assembly);
criterion_main!(benches);
