//! Norm-1 diagonal scaling cost (paper Algorithm 3/4): construction and
//! application are one pass over the matrix — negligible next to the solve,
//! which is why the paper treats it as a free pre-process.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parfem::prelude::*;
use parfem::sparse::scaling::{scale_system, DiagonalScaling};
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("diagonal_scaling");
    for k in [2usize, 4, 6] {
        let p = CantileverProblem::paper_mesh(k);
        let sys = p.static_system();
        group.bench_with_input(
            BenchmarkId::new("construct", format!("mesh{k}")),
            &sys.stiffness,
            |b, m| b.iter(|| black_box(DiagonalScaling::from_matrix(m).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("full_scale_system", format!("mesh{k}")),
            &sys,
            |b, s| b.iter(|| black_box(scale_system(&s.stiffness, &s.rhs).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
