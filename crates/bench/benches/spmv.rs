//! SpMV kernel bench: the single stiffness-matrix operation every solver
//! phase reduces to (paper Section 3.1.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parfem::prelude::*;
use std::hint::black_box;

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv");
    for k in [2usize, 4, 6] {
        let p = CantileverProblem::paper_mesh(k);
        let sys = p.static_system();
        let a = sys.stiffness;
        let x = vec![1.0; a.n_cols()];
        let mut y = vec![0.0; a.n_rows()];
        group.throughput(Throughput::Elements(a.nnz() as u64));
        group.bench_with_input(
            BenchmarkId::new("csr", format!("mesh{k}_nnz{}", a.nnz())),
            &a,
            |b, a| {
                b.iter(|| {
                    a.spmv_into(black_box(&x), black_box(&mut y));
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_spmv);
criterion_main!(benches);
