//! Chaos tests for the message layer: deterministic fault injection under
//! real multi-threaded runs.
//!
//! The invariants pinned here are the foundation the solver-level chaos
//! suite builds on:
//! - recoverable fault schedules (drops + retries, duplicates, delays,
//!   reorders) leave the **payload stream bit-identical** to the fault-free
//!   run — only virtual time changes;
//! - unrecoverable schedules (killed ranks, undeliverable messages) return
//!   typed [`CommError`]s on every affected rank within the wall-clock
//!   watchdog — no hangs, no orphaned threads.

use parfem_msg::{
    try_run_ranks, CommError, Communicator, FaultPlan, FaultyComm, MachineModel, RunOptions,
    ThreadComm,
};
use parfem_trace::TraceSink;
use std::time::{Duration, Instant};

/// A communication-heavy workload: `rounds` of ring exchanges plus an
/// all-reduce per round. Returns every payload this rank received, plus the
/// reduction results — the full numerical transcript of the run.
fn ring_workload(comm: &dyn Communicator, rounds: usize) -> Result<Vec<f64>, CommError> {
    let p = comm.size();
    let rank = comm.rank();
    let next = (rank + 1) % p;
    let prev = (rank + p - 1) % p;
    let mut transcript = Vec::new();
    for round in 0..rounds {
        let payload = vec![rank as f64 + round as f64 * 0.25, round as f64];
        comm.try_send(next, &payload)?;
        let got = comm.try_recv(prev)?;
        transcript.extend_from_slice(&got);
        let sum = comm.try_allreduce_sum_scalar(got[0])?;
        transcript.push(sum);
    }
    Ok(transcript)
}

fn run_with_plan(
    p: usize,
    rounds: usize,
    plan: Option<FaultPlan>,
) -> (Vec<Result<Vec<f64>, CommError>>, f64) {
    let opts = RunOptions {
        comm_timeout: Duration::from_secs(10),
    };
    let out = try_run_ranks(
        p,
        MachineModel::ibm_sp2(),
        opts,
        &TraceSink::disabled(),
        |comm: &ThreadComm| match &plan {
            Some(plan) => {
                let faulty = FaultyComm::new(comm, plan.clone());
                ring_workload(&faulty, rounds)
            }
            None => ring_workload(comm, rounds),
        },
    );
    let results = out
        .results
        .into_iter()
        .map(|r| r.expect("no rank panicked"))
        .collect();
    (results, out.modeled_time)
}

#[test]
fn drop_with_retries_is_bit_identical_to_fault_free() {
    let (clean, clean_time) = run_with_plan(4, 20, None);
    for seed in [1u64, 42, 2026] {
        let plan = FaultPlan::new(seed)
            .with_drops(0.4)
            .with_retry_policy(30, 1e-3, 2.0);
        let (faulty, faulty_time) = run_with_plan(4, 20, Some(plan));
        for (rank, (c, f)) in clean.iter().zip(&faulty).enumerate() {
            let c = c.as_ref().expect("clean run succeeds");
            let f = f.as_ref().expect("recoverable faults must recover");
            assert_eq!(
                c, f,
                "seed {seed}, rank {rank}: payloads must match bit for bit"
            );
        }
        assert!(
            faulty_time >= clean_time,
            "retransmission can only add virtual time"
        );
    }
}

#[test]
fn duplicates_delays_and_reorders_are_absorbed() {
    let (clean, _) = run_with_plan(4, 20, None);
    let plan = FaultPlan::new(7)
        .with_duplicates(0.5)
        .with_delays(0.5, 1e-3)
        .with_reorders(0.5);
    let (faulty, _) = run_with_plan(4, 20, Some(plan));
    for (c, f) in clean.iter().zip(&faulty) {
        assert_eq!(
            c.as_ref().expect("clean"),
            f.as_ref().expect("recoverable"),
            "dup/delay/reorder must be invisible in the payload stream"
        );
    }
}

#[test]
fn mixed_intensity_plan_recovers_across_seeds() {
    let (clean, _) = run_with_plan(3, 15, None);
    for seed in 0..5u64 {
        let plan = FaultPlan::from_seed_intensity(seed, 0.5);
        let (faulty, _) = run_with_plan(3, 15, Some(plan));
        for (c, f) in clean.iter().zip(&faulty) {
            assert_eq!(c.as_ref().unwrap(), f.as_ref().unwrap(), "seed {seed}");
        }
    }
}

#[test]
fn same_seed_reproduces_the_same_faulted_run() {
    let plan = FaultPlan::from_seed_intensity(1234, 0.6);
    let (a, ta) = run_with_plan(4, 10, Some(plan.clone()));
    let (b, tb) = run_with_plan(4, 10, Some(plan));
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.as_ref().unwrap(), y.as_ref().unwrap());
    }
    assert_eq!(ta, tb, "virtual time is part of the reproducible outcome");
}

#[test]
fn injected_delay_shows_up_in_virtual_time() {
    let (_, clean_time) = run_with_plan(2, 10, None);
    let plan = FaultPlan::new(5).with_delays(1.0, 0.5);
    let (_, slow_time) = run_with_plan(2, 10, Some(plan));
    assert!(
        slow_time > clean_time + 0.4,
        "a certain 0..0.5s delay per message must slow the modeled run \
         (clean {clean_time}, faulted {slow_time})"
    );
}

#[test]
fn straggler_rank_stretches_modeled_time() {
    let workload = |comm: &dyn Communicator| -> Result<f64, CommError> {
        comm.work(1_000_000);
        comm.try_barrier()?;
        Ok(comm.virtual_time())
    };
    let base = try_run_ranks(
        2,
        MachineModel::ideal(),
        RunOptions::default(),
        &TraceSink::disabled(),
        |c: &ThreadComm| workload(c),
    );
    let straggling = try_run_ranks(
        2,
        MachineModel::ideal(),
        RunOptions::default(),
        &TraceSink::disabled(),
        |c: &ThreadComm| {
            let faulty = FaultyComm::new(c, FaultPlan::new(0).with_straggler(1, 4.0));
            workload(&faulty)
        },
    );
    let t_base = base.modeled_time;
    let t_slow = straggling.modeled_time;
    assert!(
        (t_slow / t_base - 4.0).abs() < 1e-9,
        "4x straggler must dominate the barrier: {t_base} vs {t_slow}"
    );
}

#[test]
fn killed_rank_errors_everywhere_within_budget() {
    let watchdog = Duration::from_millis(200);
    let start = Instant::now();
    let out = try_run_ranks(
        4,
        MachineModel::ibm_sp2(),
        RunOptions {
            comm_timeout: watchdog,
        },
        &TraceSink::disabled(),
        |comm: &ThreadComm| {
            // Rank 2 dies after 5 communicator operations.
            let faulty = FaultyComm::new(comm, FaultPlan::new(0).with_kill(2, 5));
            ring_workload(&faulty, 20)
        },
    );
    let elapsed = start.elapsed();
    for (rank, res) in out.results.iter().enumerate() {
        let res = res.as_ref().expect("no rank panicked");
        let err = res.as_ref().expect_err("every rank must observe the kill");
        match (rank, err) {
            (
                2,
                CommError::RankKilled {
                    rank: 2,
                    after_ops: 5,
                },
            ) => {}
            (2, other) => panic!("rank 2 must die by schedule, got {other:?}"),
            (_, CommError::RankKilled { .. }) => {
                panic!("surviving rank {rank} reported itself killed")
            }
            // Survivors see the death as a disconnect (fast path) or as a
            // watchdog timeout on a collective the dead rank never joins.
            (_, CommError::Disconnected { .. } | CommError::Timeout { .. }) => {}
            (_, other) => panic!("rank {rank}: unexpected error {other:?}"),
        }
    }
    // Every rank errors within a few watchdog periods; nothing hangs. The
    // bound is loose (threads, scheduling) but orders below a hang.
    assert!(
        elapsed < Duration::from_secs(10),
        "killed-rank run took {elapsed:?}"
    );
}

#[test]
fn undeliverable_message_errors_on_both_endpoints() {
    // drop_p = 1 with a tiny retry budget: the first ring message is
    // undeliverable; the sender and the receiver must independently reach
    // the same typed verdict, with no watchdog wait on the receive side.
    let out = try_run_ranks(
        2,
        MachineModel::ideal(),
        RunOptions {
            comm_timeout: Duration::from_secs(5),
        },
        &TraceSink::disabled(),
        |comm: &ThreadComm| {
            let faulty = FaultyComm::new(
                comm,
                FaultPlan::new(3)
                    .with_drops(1.0)
                    .with_retry_policy(2, 1e-3, 2.0),
            );
            ring_workload(&faulty, 1)
        },
    );
    for (rank, res) in out.results.iter().enumerate() {
        let err = res
            .as_ref()
            .expect("no panic")
            .as_ref()
            .expect_err("undeliverable message must surface");
        assert!(
            matches!(err, CommError::RetriesExhausted { attempts: 3, .. }),
            "rank {rank}: {err:?}"
        );
    }
}

#[test]
fn fault_counters_record_injections() {
    let out = try_run_ranks(
        2,
        MachineModel::ideal(),
        RunOptions::default(),
        &TraceSink::disabled(),
        |comm: &ThreadComm| {
            let faulty = FaultyComm::new(
                comm,
                FaultPlan::new(11)
                    .with_drops(0.5)
                    .with_duplicates(0.5)
                    .with_retry_policy(30, 1e-3, 2.0),
            );
            ring_workload(&faulty, 30)?;
            Ok::<_, CommError>(faulty.fault_stats())
        },
    );
    let totals = out
        .results
        .iter()
        .map(|r| r.as_ref().unwrap().as_ref().unwrap())
        .fold((0u64, 0u64, 0u64), |acc, s| {
            (acc.0 + s.drops, acc.1 + s.retransmits, acc.2 + s.duplicates)
        });
    assert!(totals.0 > 0, "p=0.5 over 60 messages must drop some");
    assert_eq!(
        totals.0, totals.1,
        "every dropped frame is answered by exactly one retransmission"
    );
    assert!(totals.2 > 0, "p=0.5 must duplicate some");
}

#[test]
fn reorder_swaps_wire_order_but_not_delivery_order() {
    // Two back-to-back messages 0 -> 1 with the first scheduled for
    // reordering: on the wire the second leaves first, yet the receiver
    // still delivers them in sequence order.
    let plan_seed = (0..1000)
        .find(|&s| {
            let plan = FaultPlan::new(s).with_reorders(0.999);
            plan.reordered(0, 1, 0)
        })
        .expect("a seed reordering message 0 exists");
    let plan = FaultPlan::new(plan_seed).with_reorders(0.999);
    let out = try_run_ranks(
        2,
        MachineModel::ideal(),
        RunOptions::default(),
        &TraceSink::disabled(),
        |comm: &ThreadComm| {
            let faulty = FaultyComm::new(comm, plan.clone());
            if comm.rank() == 0 {
                faulty.try_send(1, &[10.0])?;
                faulty.try_send(1, &[20.0])?;
                Ok::<_, CommError>(vec![faulty.fault_stats().reorders as f64])
            } else {
                let a = faulty.try_recv(0)?;
                let b = faulty.try_recv(0)?;
                Ok(vec![a[0], b[0]])
            }
        },
    );
    let sender = out.results[0].as_ref().unwrap().as_ref().unwrap();
    assert!(sender[0] >= 1.0, "at least one message was held back");
    let receiver = out.results[1].as_ref().unwrap().as_ref().unwrap();
    assert_eq!(receiver, &vec![10.0, 20.0], "sequence order restored");
}
