//! Property-based tests for the message-passing substrate.

use parfem_msg::{run_ranks, Communicator, MachineModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allreduce_equals_sequential_sum(p in 1usize..6,
                                       data in prop::collection::vec(
                                           prop::collection::vec(-100.0..100.0f64, 4), 6)) {
        // Rank r contributes data[r]; the all-reduce must equal the
        // rank-ordered sequential sum exactly (bitwise).
        let data = std::sync::Arc::new(data);
        let mut expect = vec![0.0f64; 4];
        for r in 0..p {
            for (e, x) in expect.iter_mut().zip(&data[r]) {
                *e += x;
            }
        }
        let d = std::sync::Arc::clone(&data);
        let out = run_ranks(p, MachineModel::ideal(), move |c| {
            c.allreduce_sum(&d[c.rank()])
        });
        for r in out.results {
            prop_assert_eq!(&r, &expect);
        }
    }

    #[test]
    fn ring_messages_preserve_payload(p in 2usize..6,
                                      payload in prop::collection::vec(-1e6..1e6f64, 1..20)) {
        let payload = std::sync::Arc::new(payload);
        let pl = std::sync::Arc::clone(&payload);
        let out = run_ranks(p, MachineModel::ideal(), move |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            // Everyone sends its rank-scaled payload around the ring.
            let mine: Vec<f64> = pl.iter().map(|x| x + c.rank() as f64).collect();
            c.send(next, &mine);
            c.recv(prev)
        });
        for (r, got) in out.results.iter().enumerate() {
            let prev = (r + p - 1) % p;
            for (g, x) in got.iter().zip(payload.iter()) {
                prop_assert_eq!(*g, x + prev as f64);
            }
        }
    }

    #[test]
    fn virtual_time_never_decreases_with_more_work(flops_a in 1u64..1000, extra in 1u64..1000) {
        let t1 = run_ranks(1, MachineModel::ibm_sp2(), |c| {
            c.work(flops_a * 1_000);
            c.virtual_time()
        }).results[0];
        let t2 = run_ranks(1, MachineModel::ibm_sp2(), |c| {
            c.work((flops_a + extra) * 1_000);
            c.virtual_time()
        }).results[0];
        prop_assert!(t2 > t1);
    }

    #[test]
    fn exchange_is_an_involution(p in 2usize..5,
                                 payload in prop::collection::vec(-10.0..10.0f64, 3)) {
        // Exchanging twice with the same neighbour returns the own data.
        let payload = std::sync::Arc::new(payload);
        let pl = std::sync::Arc::clone(&payload);
        let out = run_ranks(p, MachineModel::ideal(), move |c| {
            let partner = c.rank() ^ 1;
            if partner >= c.size() {
                return true; // odd rank count: last rank sits out
            }
            let mine: Vec<f64> = pl.iter().map(|x| x * (c.rank() as f64 + 1.0)).collect();
            let theirs = c.exchange(&[partner], std::slice::from_ref(&mine));
            let back = c.exchange(&[partner], &[theirs[0].clone()]);
            back[0] == mine
        });
        prop_assert!(out.results.iter().all(|&ok| ok));
    }
}
