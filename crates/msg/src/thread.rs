//! `ThreadComm`: the communicator over OS threads and channels.
//!
//! Every rank is an OS thread; point-to-point messages travel over dedicated
//! unbounded `std::sync::mpsc` channels (one per ordered rank pair, so
//! messages between a pair stay in order), and collectives rendezvous at a
//! shared mutex/condvar point that sums contributions **in rank order** —
//! parallel results are therefore bit-for-bit deterministic and independent
//! of scheduling.
//!
//! Virtual-time rules (see [`crate::model`]):
//! - `work(f)` advances the local clock by `f / rate`;
//! - a message is stamped `sender_clock + α + bytes/β` (plus any injected
//!   delay, see [`crate::fault`]); the receiver's clock becomes
//!   `max(receiver_clock, stamp)` (eager/asynchronous send);
//! - an all-reduce synchronizes every participant to
//!   `max(all clocks) + ⌈log₂P⌉ · stage_cost`.
//!
//! Failure handling: every blocking wait carries a **wall-clock watchdog**
//! ([`RunOptions::comm_timeout`]). A rank whose peer died sees the closed
//! channel immediately ([`CommError::Disconnected`]); a rank whose peer
//! merely never sends gives up after the watchdog
//! ([`CommError::Timeout`]). Errors latch on the endpoint (see
//! [`Communicator::status`]) so a degraded rank fails fast after its first
//! watchdog wait, and [`try_run_ranks`] converts rank panics into per-rank
//! [`RankPanic`] values instead of aborting the whole process.
//!
//! Tracing: [`run_ranks_traced`] hands each rank a
//! [`parfem_trace::RankTracer`], and every communicator operation then emits
//! a structured event stamped with both wall and virtual time — a recorded
//! run replays into the per-rank Gantt timeline and the Table-1
//! communication counts. [`run_ranks`] passes a disabled sink, so the
//! untraced path pays one `Option` branch per operation.

use crate::comm::Communicator;
use crate::error::CommError;
use crate::model::MachineModel;
use crate::stats::CommStats;
use parfem_trace::{EventKind, Histogram, RankTracer, TraceSink, Value};
use std::cell::{Cell, RefCell};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A message with its modeled arrival time.
struct Msg {
    data: Vec<f64>,
    arrival: f64,
}

/// Shared rendezvous state for collectives.
struct CollectiveState {
    generation: u64,
    contributions: Vec<Option<Vec<f64>>>,
    clocks: Vec<f64>,
    count: usize,
    result: Vec<f64>,
    result_clock: f64,
}

struct CollectivePoint {
    size: usize,
    state: Mutex<CollectiveState>,
    cv: Condvar,
}

impl CollectivePoint {
    fn new(size: usize) -> Self {
        CollectivePoint {
            size,
            state: Mutex::new(CollectiveState {
                generation: 0,
                contributions: vec![None; size],
                clocks: vec![0.0; size],
                count: 0,
                result: Vec::new(),
                result_clock: 0.0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Contributes `v` at virtual time `clock`; returns the rank-ordered sum
    /// and the max contribution clock. A rank that waits longer than
    /// `timeout` wall-clock seconds withdraws its contribution and returns a
    /// timeout error, so a dead rank cannot hang the survivors.
    fn allreduce(
        &self,
        rank: usize,
        v: &[f64],
        clock: f64,
        timeout: Duration,
    ) -> Result<(Vec<f64>, f64), CommError> {
        if self.size == 1 {
            return Ok((v.to_vec(), clock));
        }
        let mut st = self.state.lock().map_err(|_| CommError::Poisoned)?;
        let my_gen = st.generation;
        st.contributions[rank] = Some(v.to_vec());
        st.clocks[rank] = clock;
        st.count += 1;
        if st.count == self.size {
            // Deterministic rank-ordered summation.
            let mut sum = vec![0.0; v.len()];
            for c in st.contributions.iter_mut() {
                let contrib = c.take().expect("all ranks contributed");
                assert_eq!(
                    contrib.len(),
                    sum.len(),
                    "allreduce called with mismatched lengths across ranks"
                );
                for (s, x) in sum.iter_mut().zip(&contrib) {
                    *s += x;
                }
            }
            let max_clock = st.clocks.iter().fold(0.0_f64, |m, &c| m.max(c));
            st.result = sum.clone();
            st.result_clock = max_clock;
            st.count = 0;
            st.generation += 1;
            self.cv.notify_all();
            Ok((sum, max_clock))
        } else {
            let start = Instant::now();
            while st.generation == my_gen {
                let waited = start.elapsed();
                if waited >= timeout {
                    // Withdraw so a later generation is not corrupted by a
                    // stale contribution.
                    st.contributions[rank] = None;
                    st.count -= 1;
                    return Err(CommError::Timeout {
                        op: "allreduce",
                        rank,
                        peer: None,
                        waited_s: waited.as_secs_f64(),
                    });
                }
                let (guard, _) = self
                    .cv
                    .wait_timeout(st, timeout - waited)
                    .map_err(|_| CommError::Poisoned)?;
                st = guard;
            }
            Ok((st.result.clone(), st.result_clock))
        }
    }
}

/// One rank's endpoint of a threaded communicator.
pub struct ThreadComm {
    rank: usize,
    size: usize,
    model: Arc<MachineModel>,
    /// `senders[d]` sends to rank `d` (None at `d == rank`).
    senders: Vec<Option<Sender<Msg>>>,
    /// `receivers[s]` receives from rank `s` (None at `s == rank`).
    receivers: Vec<Option<Receiver<Msg>>>,
    collective: Arc<CollectivePoint>,
    clock: Cell<f64>,
    stats: RefCell<CommStats>,
    /// Wall-clock watchdog for blocking waits.
    timeout: Duration,
    /// First communication failure observed by this endpoint (sticky).
    error: RefCell<Option<CommError>>,
    /// Present only under a recording sink; every comm op then emits an
    /// event and sends feed the message-size histogram.
    tracer: Option<RankTracer>,
    msg_bytes: RefCell<Histogram>,
    /// Per-peer send/receive ordinals. Channels are FIFO per ordered pair,
    /// so the k-th send `s → d` is consumed by the k-th receive at `d` from
    /// `s`; stamping that ordinal on both events lets the critical-path
    /// analyzer re-match message flights offline.
    send_seq: RefCell<Vec<u64>>,
    recv_seq: RefCell<Vec<u64>>,
    /// Collective ordinal: all collectives serialize through one
    /// [`CollectivePoint`], and SPMD code calls them in the same order on
    /// every rank, so ordinal `k` names the same rendezvous everywhere.
    coll_seq: Cell<u64>,
    /// Link-sharing factors of the exchange round currently posting its
    /// sends: `(peer, factor > 1)` pairs set by
    /// [`Communicator::note_exchange_batch`] from the topology (a pure
    /// function of the neighbour list, never of scheduling) and cleared by
    /// [`Communicator::end_exchange_batch`]. Empty on flat topologies, so
    /// legacy runs never consult it.
    batch_factors: RefCell<Vec<(usize, f64)>>,
}

impl ThreadComm {
    /// Short-circuit with the latched error, if any.
    fn check(&self) -> Result<(), CommError> {
        match &*self.error.borrow() {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Latch `err` (first error wins) and return it.
    fn latch(&self, err: CommError) -> CommError {
        let mut slot = self.error.borrow_mut();
        if slot.is_none() {
            *slot = Some(err.clone());
        }
        err
    }
}

impl Communicator for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn try_send_delayed(
        &self,
        to: usize,
        data: &[f64],
        extra_delay_s: f64,
    ) -> Result<(), CommError> {
        assert!(to < self.size && to != self.rank, "send: bad peer {to}");
        self.check()?;
        let bytes = std::mem::size_of_val(data);
        let factor = self
            .batch_factors
            .borrow()
            .iter()
            .find(|(peer, _)| *peer == to)
            .map_or(1.0, |(_, f)| *f);
        let flight = if factor > 1.0 {
            self.model
                .message_time_contended(self.size, self.rank, to, bytes, factor)
        } else {
            self.model
                .message_time_between(self.size, self.rank, to, bytes)
        };
        let arrival = self.clock.get() + flight + extra_delay_s;
        let sent = self.senders[to]
            .as_ref()
            .expect("sender exists for peers")
            .send(Msg {
                data: data.to_vec(),
                arrival,
            });
        if sent.is_err() {
            return Err(self.latch(CommError::Disconnected {
                rank: self.rank,
                peer: to,
            }));
        }
        let mut st = self.stats.borrow_mut();
        st.sends += 1;
        st.bytes_sent += bytes as u64;
        if factor > 1.0 {
            st.contended_sends += 1;
        }
        drop(st);
        let seq = {
            let mut seqs = self.send_seq.borrow_mut();
            let s = seqs[to];
            seqs[to] += 1;
            s
        };
        if let Some(tracer) = &self.tracer {
            let mut fields = vec![
                ("peer".to_string(), Value::U64(to as u64)),
                ("bytes".to_string(), Value::U64(bytes as u64)),
                ("seq".to_string(), Value::U64(seq)),
            ];
            if factor > 1.0 {
                let uncontended = self
                    .model
                    .message_time_between(self.size, self.rank, to, bytes);
                fields.push(("contention".to_string(), Value::F64(factor)));
                fields.push(("t_contention".to_string(), Value::F64(flight - uncontended)));
            }
            tracer.emit(EventKind::Send, "", self.clock.get(), fields);
            self.msg_bytes.borrow_mut().record(bytes as u64);
        }
        Ok(())
    }

    fn try_recv(&self, from: usize) -> Result<Vec<f64>, CommError> {
        assert!(
            from < self.size && from != self.rank,
            "recv: bad peer {from}"
        );
        self.check()?;
        let msg = self.receivers[from]
            .as_ref()
            .expect("receiver exists for peers")
            .recv_timeout(self.timeout);
        let msg = match msg {
            Ok(msg) => msg,
            Err(RecvTimeoutError::Timeout) => {
                return Err(self.latch(CommError::Timeout {
                    op: "recv",
                    rank: self.rank,
                    peer: Some(from),
                    waited_s: self.timeout.as_secs_f64(),
                }))
            }
            Err(RecvTimeoutError::Disconnected) => {
                return Err(self.latch(CommError::Disconnected {
                    rank: self.rank,
                    peer: from,
                }))
            }
        };
        let t_before = self.clock.get();
        self.clock.set(t_before.max(msg.arrival));
        let bytes = std::mem::size_of_val(&msg.data[..]);
        let mut st = self.stats.borrow_mut();
        st.recvs += 1;
        st.bytes_received += bytes as u64;
        drop(st);
        let seq = {
            let mut seqs = self.recv_seq.borrow_mut();
            let s = seqs[from];
            seqs[from] += 1;
            s
        };
        if let Some(tracer) = &self.tracer {
            tracer.emit(
                EventKind::Recv,
                "",
                self.clock.get(),
                vec![
                    ("peer".to_string(), Value::U64(from as u64)),
                    ("bytes".to_string(), Value::U64(bytes as u64)),
                    ("seq".to_string(), Value::U64(seq)),
                    ("t_before".to_string(), Value::F64(t_before)),
                    ("t_arrival".to_string(), Value::F64(msg.arrival)),
                ],
            );
        }
        Ok(msg.data)
    }

    fn try_allreduce_sum_into(&self, buf: &mut [f64]) -> Result<(), CommError> {
        self.check()?;
        let bytes = std::mem::size_of_val(&buf[..]);
        let t_before = self.clock.get();
        let coll = self.coll_seq.get();
        self.coll_seq.set(coll + 1);
        let (sum, max_clock) = self
            .collective
            .allreduce(self.rank, buf, t_before, self.timeout)
            .map_err(|e| self.latch(e))?;
        buf.copy_from_slice(&sum);
        self.clock
            .set(max_clock + self.model.allreduce_time(self.size, bytes));
        let mut st = self.stats.borrow_mut();
        st.allreduces += 1;
        st.allreduce_bytes += bytes as u64;
        drop(st);
        if let Some(tracer) = &self.tracer {
            tracer.emit(
                EventKind::Allreduce,
                "",
                self.clock.get(),
                vec![
                    ("bytes".to_string(), Value::U64(bytes as u64)),
                    ("coll".to_string(), Value::U64(coll)),
                    ("t_before".to_string(), Value::F64(t_before)),
                    ("t_sync".to_string(), Value::F64(max_clock)),
                ],
            );
        }
        Ok(())
    }

    fn try_barrier(&self) -> Result<(), CommError> {
        self.check()?;
        let t_before = self.clock.get();
        let coll = self.coll_seq.get();
        self.coll_seq.set(coll + 1);
        let (_, max_clock) = self
            .collective
            .allreduce(self.rank, &[], t_before, self.timeout)
            .map_err(|e| self.latch(e))?;
        self.clock
            .set(max_clock + self.model.allreduce_time(self.size, 0));
        self.stats.borrow_mut().barriers += 1;
        if let Some(tracer) = &self.tracer {
            tracer.emit(
                EventKind::Barrier,
                "",
                self.clock.get(),
                vec![
                    ("coll".to_string(), Value::U64(coll)),
                    ("t_before".to_string(), Value::F64(t_before)),
                    ("t_sync".to_string(), Value::F64(max_clock)),
                ],
            );
        }
        Ok(())
    }

    fn status(&self) -> Result<(), CommError> {
        self.check()
    }

    fn post_error(&self, err: CommError) {
        self.latch(err);
    }

    fn work(&self, flops: u64) {
        self.clock
            .set(self.clock.get() + self.model.compute_time(flops));
        self.stats.borrow_mut().flops += flops;
    }

    fn virtual_time(&self) -> f64 {
        self.clock.get()
    }

    fn stats(&self) -> CommStats {
        *self.stats.borrow()
    }

    fn count_neighbor_exchange(&self) {
        self.stats.borrow_mut().neighbor_exchanges += 1;
        if let Some(tracer) = &self.tracer {
            tracer.emit(EventKind::Exchange, "", self.clock.get(), Vec::new());
        }
    }

    fn note_exchange_batch(&self, neighbors: &[usize]) {
        let factors = self
            .model
            .contention_factors(self.size, self.rank, neighbors);
        let mut slot = self.batch_factors.borrow_mut();
        slot.clear();
        for (&nb, &f) in neighbors.iter().zip(&factors) {
            if f > 1.0 {
                slot.push((nb, f));
            }
        }
    }

    fn end_exchange_batch(&self) {
        self.batch_factors.borrow_mut().clear();
    }

    fn tracer(&self) -> Option<&RankTracer> {
        self.tracer.as_ref()
    }
}

/// Per-rank summary returned by [`run_ranks`].
#[derive(Debug, Clone)]
pub struct RankReport {
    /// Rank id.
    pub rank: usize,
    /// Final virtual time of the rank (modeled seconds).
    pub virtual_time: f64,
    /// Communication counters.
    pub stats: CommStats,
}

/// Output of a parallel run.
#[derive(Debug)]
pub struct RunOutput<R> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank reports, indexed by rank.
    pub reports: Vec<RankReport>,
    /// Modeled parallel time: the maximum final virtual clock.
    pub modeled_time: f64,
}

/// A rank's closure panicked during a [`try_run_ranks`] run.
///
/// The panic is caught on the rank's own thread; the rank's report (and its
/// `rank_end` trace event) are still produced, and surviving ranks see the
/// dead rank's closed channels as [`CommError::Disconnected`] instead of
/// hanging.
#[derive(Debug, Clone)]
pub struct RankPanic {
    /// The rank that panicked.
    pub rank: usize,
    /// The panic payload, rendered as a string.
    pub message: String,
}

impl std::fmt::Display for RankPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank {} panicked: {}", self.rank, self.message)
    }
}

impl std::error::Error for RankPanic {}

/// Knobs for a parallel run's failure handling.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Wall-clock watchdog for every blocking communicator wait (receives
    /// and collective rendezvous). A rank that waits longer surfaces
    /// [`CommError::Timeout`] instead of hanging forever. This is *real*
    /// time, unrelated to the virtual clock.
    pub comm_timeout: Duration,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            // Generous enough that a healthy run never trips it, short
            // enough that CI watchdogs see a typed error, not a hang.
            comm_timeout: Duration::from_secs(30),
        }
    }
}

/// Runs `f` on `p` ranks over OS threads and collects results and reports.
///
/// `f` receives each rank's [`ThreadComm`]; ranks communicate only through
/// it. The function blocks until every rank returns.
///
/// ```
/// use parfem_msg::{run_ranks, Communicator, MachineModel};
///
/// let out = run_ranks(4, MachineModel::sgi_origin(), |comm| {
///     comm.work(1_000_000); // report local compute to the virtual clock
///     comm.allreduce_sum_scalar(comm.rank() as f64)
/// });
/// assert_eq!(out.results, vec![6.0; 4]); // 0+1+2+3 on every rank
/// assert!(out.modeled_time > 0.0);
/// ```
///
/// # Panics
/// Panics if `p == 0` or if any rank panics (use [`try_run_ranks`] to get
/// per-rank results instead).
pub fn run_ranks<F, R>(p: usize, model: MachineModel, f: F) -> RunOutput<R>
where
    F: Fn(&ThreadComm) -> R + Send + Sync,
    R: Send,
{
    run_ranks_traced(p, model, &TraceSink::disabled(), f)
}

/// [`run_ranks`], recording structured events into `sink`.
///
/// Under a recording sink every rank gets a [`parfem_trace::RankTracer`]
/// (reachable from solver code via [`Communicator::tracer`]); all
/// point-to-point and collective operations emit events, per-message sizes
/// feed a histogram, and when a rank's closure returns a `rank_end` event is
/// stamped with the final virtual clock, the rank's modeled flops, and the
/// histogram. With [`TraceSink::disabled`] this is exactly [`run_ranks`].
///
/// # Panics
/// Panics if `p == 0` or if any rank panics (use [`try_run_ranks`] to get
/// per-rank results instead).
pub fn run_ranks_traced<F, R>(p: usize, model: MachineModel, sink: &TraceSink, f: F) -> RunOutput<R>
where
    F: Fn(&ThreadComm) -> R + Send + Sync,
    R: Send,
{
    let out = try_run_ranks(p, model, RunOptions::default(), sink, f);
    let results = out
        .results
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(e) => panic!("rank panicked: {}", e.message),
        })
        .collect();
    RunOutput {
        results,
        reports: out.reports,
        modeled_time: out.modeled_time,
    }
}

/// Fault-tolerant [`run_ranks_traced`]: rank panics become per-rank
/// [`RankPanic`] values instead of aborting the run.
///
/// Each rank's closure runs under `catch_unwind`; a panicking rank still
/// produces its [`RankReport`] (and `rank_end` trace event), and its
/// dropped channel endpoints make every surviving peer's next receive fail
/// fast with [`CommError::Disconnected`] rather than hang. Combined with
/// the wall-clock watchdog in [`RunOptions::comm_timeout`], a run with any
/// mixture of dead, killed, and healthy ranks always terminates: every
/// thread is joined before this function returns — no orphans.
///
/// # Panics
/// Panics if `p == 0`.
pub fn try_run_ranks<F, R>(
    p: usize,
    model: MachineModel,
    opts: RunOptions,
    sink: &TraceSink,
    f: F,
) -> RunOutput<Result<R, RankPanic>>
where
    F: Fn(&ThreadComm) -> R + Send + Sync,
    R: Send,
{
    assert!(p > 0, "need at least one rank");
    let model = Arc::new(model);
    let collective = Arc::new(CollectivePoint::new(p));

    // Channel matrix: channel (s, d) carries messages s -> d.
    let mut senders: Vec<Vec<Option<Sender<Msg>>>> = (0..p).map(|_| Vec::new()).collect();
    let mut receivers: Vec<Vec<Option<Receiver<Msg>>>> = (0..p).map(|_| Vec::new()).collect();
    for s in 0..p {
        for d in 0..p {
            if s == d {
                senders[s].push(None);
            } else {
                let (tx, rx) = channel();
                senders[s].push(Some(tx));
                // Receiver slots arrive in increasing s order: pad the row
                // with None up to index s, then append.
                receivers[d].resize_with(s, || None);
                receivers[d].push(Some(rx));
            }
        }
    }
    for r in receivers.iter_mut() {
        r.resize_with(p, || None);
    }

    let mut comms: Vec<ThreadComm> = Vec::with_capacity(p);
    let receivers_iter = receivers.into_iter();
    for (rank, (tx_row, rx_row)) in senders.into_iter().zip(receivers_iter).enumerate() {
        comms.push(ThreadComm {
            rank,
            size: p,
            model: Arc::clone(&model),
            senders: tx_row,
            receivers: rx_row,
            collective: Arc::clone(&collective),
            clock: Cell::new(0.0),
            stats: RefCell::new(CommStats::default()),
            timeout: opts.comm_timeout,
            error: RefCell::new(None),
            tracer: sink.tracer(Some(rank)),
            msg_bytes: RefCell::new(Histogram::new()),
            send_seq: RefCell::new(vec![0; p]),
            recv_seq: RefCell::new(vec![0; p]),
            coll_seq: Cell::new(0),
            batch_factors: RefCell::new(Vec::new()),
        });
    }

    let f = &f;
    let outputs: Vec<(Result<R, RankPanic>, RankReport)> = std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                scope.spawn(move || {
                    let result =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&comm)));
                    let report = RankReport {
                        rank: comm.rank(),
                        virtual_time: comm.virtual_time(),
                        stats: comm.stats(),
                    };
                    if let Some(tracer) = &comm.tracer {
                        let mut fields = vec![
                            ("flops".to_string(), Value::U64(report.stats.flops)),
                            ("t_virt_final".to_string(), Value::F64(report.virtual_time)),
                        ];
                        fields.extend(comm.msg_bytes.borrow().to_fields());
                        tracer.emit(EventKind::RankEnd, "", report.virtual_time, fields);
                    }
                    let result = result.map_err(|payload| RankPanic {
                        rank: report.rank,
                        message: panic_message(payload.as_ref()),
                    });
                    // Dropping `comm` drops its tracer, flushing this rank's
                    // buffered events into the sink in one lock acquisition
                    // — and closes its channels, so peers of a dead rank
                    // fail fast instead of waiting out the watchdog.
                    (result, report)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread could not be joined"))
            .collect()
    });

    let mut results = Vec::with_capacity(p);
    let mut reports = Vec::with_capacity(p);
    for (r, rep) in outputs {
        results.push(r);
        reports.push(rep);
    }
    let modeled_time = reports
        .iter()
        .map(|r| r.virtual_time)
        .fold(0.0_f64, f64::max);
    RunOutput {
        results,
        reports,
        modeled_time,
    }
}

/// Renders a caught panic payload as a string (the common `&str` / `String`
/// payloads verbatim, anything else as a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let out = run_ranks(1, MachineModel::ideal(), |c| {
            assert_eq!(c.rank(), 0);
            assert_eq!(c.size(), 1);
            c.work(100e6 as u64);
            c.allreduce_sum_scalar(5.0)
        });
        assert_eq!(out.results, vec![5.0]);
        assert!((out.modeled_time - 1.0).abs() < 1e-12);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let out = run_ranks(4, MachineModel::ideal(), |c| {
            c.allreduce_sum_scalar(c.rank() as f64 + 1.0)
        });
        for r in out.results {
            assert_eq!(r, 10.0);
        }
    }

    #[test]
    fn allreduce_vector_is_deterministic_and_uniform() {
        // Sum of distinctly scaled vectors: every rank gets the exact same
        // floating-point result because summation is rank-ordered.
        let out = run_ranks(3, MachineModel::ideal(), |c| {
            let v = vec![0.1 * (c.rank() as f64 + 1.0); 5];
            c.allreduce_sum(&v)
        });
        let first = &out.results[0];
        for r in &out.results {
            assert_eq!(r, first);
        }
        for x in first {
            assert!((x - 0.6).abs() < 1e-15);
        }
    }

    #[test]
    fn point_to_point_ring_exchange() {
        let out = run_ranks(4, MachineModel::ideal(), |c| {
            let p = c.size();
            let next = (c.rank() + 1) % p;
            let prev = (c.rank() + p - 1) % p;
            c.send(next, &[c.rank() as f64]);
            let got = c.recv(prev);
            got[0]
        });
        assert_eq!(out.results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn messages_between_a_pair_stay_ordered() {
        let out = run_ranks(2, MachineModel::ideal(), |c| {
            if c.rank() == 0 {
                for k in 0..10 {
                    c.send(1, &[k as f64]);
                }
                Vec::new()
            } else {
                (0..10).map(|_| c.recv(0)[0]).collect::<Vec<f64>>()
            }
        });
        assert_eq!(
            out.results[1],
            (0..10).map(|k| k as f64).collect::<Vec<_>>()
        );
    }

    #[test]
    fn exchange_helper_swaps_buffers() {
        let out = run_ranks(2, MachineModel::ideal(), |c| {
            let other = 1 - c.rank();
            let data = vec![vec![c.rank() as f64 * 10.0 + 1.0; 3]];
            let got = c.exchange(&[other], &data);
            got[0][0]
        });
        assert_eq!(out.results, vec![11.0, 1.0]);
        assert_eq!(out.reports[0].stats.neighbor_exchanges, 1);
    }

    #[test]
    fn split_exchange_overlaps_compute_with_communication() {
        // Two symmetric ranks swap one buffer and compute `flops` of local
        // work. Blocking order (compute, then exchange) pays the sum of the
        // two phases; the split exchange (post sends, compute, receive)
        // pays max(compute, comm) — the overlap credit of
        // MachineModel::overlapped_time.
        let model = MachineModel::ibm_sp2();
        let flops = 1000u64; // ~17 µs compute vs ~40 µs latency
        let bytes = 3 * std::mem::size_of::<f64>();
        let compute = model.compute_time(flops);
        let comm = model.message_time(bytes);
        let blocking = run_ranks(2, model.clone(), |c| {
            let other = 1 - c.rank();
            c.work(flops);
            let mut out = vec![Vec::new()];
            c.exchange_into(&[other], &[vec![c.rank() as f64; 3]], &mut out);
            c.virtual_time()
        });
        let split = run_ranks(2, model.clone(), |c| {
            let other = 1 - c.rank();
            let handle = c.start_exchange(&[other], &[vec![c.rank() as f64; 3]]);
            c.work(flops);
            let mut out = vec![Vec::new()];
            c.finish_exchange(handle, &[other], &mut out);
            c.virtual_time()
        });
        for r in 0..2 {
            assert!((blocking.results[r] - (compute + comm)).abs() < 1e-12);
            assert!(
                (split.results[r] - model.overlapped_time(compute, comm)).abs() < 1e-12,
                "split exchange must cost max(compute, comm)"
            );
        }
        // Both forms count as one neighbour-exchange round and the same
        // message traffic.
        for (b, s) in blocking.reports.iter().zip(&split.reports) {
            assert_eq!(b.stats.neighbor_exchanges, s.stats.neighbor_exchanges);
            assert_eq!(b.stats.sends, s.stats.sends);
            assert_eq!(b.stats.bytes_sent, s.stats.bytes_sent);
        }
    }

    #[test]
    fn virtual_time_tracks_work_imbalance() {
        let out = run_ranks(2, MachineModel::ideal(), |c| {
            if c.rank() == 0 {
                c.work(300e6 as u64); // 3 s
            } else {
                c.work(100e6 as u64); // 1 s
            }
        });
        assert!((out.reports[0].virtual_time - 3.0).abs() < 1e-9);
        assert!((out.reports[1].virtual_time - 1.0).abs() < 1e-9);
        assert!((out.modeled_time - 3.0).abs() < 1e-9);
    }

    #[test]
    fn allreduce_synchronizes_clocks() {
        let out = run_ranks(2, MachineModel::ideal(), |c| {
            if c.rank() == 0 {
                c.work(200e6 as u64); // 2 s
            }
            c.allreduce_sum_scalar(1.0);
            c.virtual_time()
        });
        // The idle rank's clock jumps to the busy rank's 2 s.
        assert!((out.results[1] - 2.0).abs() < 1e-9, "{}", out.results[1]);
    }

    #[test]
    fn message_latency_advances_receiver_clock() {
        let model = MachineModel::flat("test", 0.5, f64::INFINITY, 1e9, 0.0);
        let out = run_ranks(2, model, |c| {
            if c.rank() == 0 {
                c.send(1, &[1.0]);
                0.0
            } else {
                c.recv(0);
                c.virtual_time()
            }
        });
        assert!((out.results[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn delayed_send_charges_only_the_receiver() {
        let out = run_ranks(2, MachineModel::ideal(), |c| {
            if c.rank() == 0 {
                c.try_send_delayed(1, &[1.0], 2.5).expect("send");
                c.virtual_time()
            } else {
                c.recv(0);
                c.virtual_time()
            }
        });
        assert_eq!(out.results[0], 0.0, "sender clock untouched (eager send)");
        assert!((out.results[1] - 2.5).abs() < 1e-12, "receiver pays delay");
    }

    #[test]
    fn barrier_joins_all_ranks() {
        let out = run_ranks(3, MachineModel::ideal(), |c| {
            if c.rank() == 2 {
                c.work(100e6 as u64);
            }
            c.barrier();
            c.virtual_time() >= 1.0 - 1e-9
        });
        assert!(out.results.iter().all(|&b| b));
        assert!(out.reports.iter().all(|r| r.stats.barriers == 1));
    }

    #[test]
    fn stats_count_sends_and_reductions() {
        let out = run_ranks(2, MachineModel::ideal(), |c| {
            let other = 1 - c.rank();
            c.send(other, &[1.0, 2.0]);
            c.recv(other);
            c.allreduce_sum_scalar(1.0);
        });
        for rep in &out.reports {
            assert_eq!(rep.stats.sends, 1);
            assert_eq!(rep.stats.recvs, 1);
            assert_eq!(rep.stats.bytes_sent, 16);
            assert_eq!(rep.stats.allreduces, 1);
        }
    }

    #[test]
    fn modeled_speedup_of_balanced_work_is_linear_on_ideal_machine() {
        let total: u64 = 400e6 as u64;
        let t1 = run_ranks(1, MachineModel::ideal(), |c| c.work(total)).modeled_time;
        let t4 = run_ranks(4, MachineModel::ideal(), |c| c.work(total / 4)).modeled_time;
        assert!((t1 / t4 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn broadcast_distributes_roots_buffer() {
        let out = run_ranks(4, MachineModel::ideal(), |c| {
            let data = if c.rank() == 2 {
                vec![7.0, 8.0]
            } else {
                vec![0.0, 0.0]
            };
            c.broadcast(2, &data)
        });
        for r in out.results {
            assert_eq!(r, vec![7.0, 8.0]);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = run_ranks(3, MachineModel::ideal(), |c| {
            c.gather(0, &[c.rank() as f64 * 10.0])
        });
        let gathered = out.results[0].as_ref().expect("root gets the data");
        assert_eq!(gathered, &vec![vec![0.0], vec![10.0], vec![20.0]]);
        assert!(out.results[1].is_none());
        assert!(out.results[2].is_none());
    }

    #[test]
    fn gather_then_broadcast_round_trips() {
        // allgather emulation: gather at 0, flatten, broadcast back.
        let out = run_ranks(3, MachineModel::ideal(), |c| {
            let gathered = c.gather(0, &[c.rank() as f64 + 1.0]);
            let flat: Vec<f64> = gathered
                .map(|g| g.into_iter().flatten().collect())
                .unwrap_or_default();
            c.broadcast(0, &flat)
        });
        for r in out.results {
            assert_eq!(r, vec![1.0, 2.0, 3.0]);
        }
    }

    #[test]
    fn broadcast_costs_latency_on_receivers() {
        let model = MachineModel::flat("test", 1.0, f64::INFINITY, 1e9, 0.0);
        let out = run_ranks(2, model, |c| {
            let _ = c.broadcast(0, &[1.0]);
            c.virtual_time()
        });
        assert_eq!(out.results[0], 0.0, "sender pays nothing (eager send)");
        assert!((out.results[1] - 1.0).abs() < 1e-12, "receiver pays alpha");
    }

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn self_send_panics_the_run() {
        // The offending rank panics with "bad peer"; run_ranks surfaces the
        // failure when joining.
        run_ranks(2, MachineModel::ideal(), |c| {
            if c.rank() == 0 {
                c.send(0, &[1.0]);
            } else {
                // Keep rank 1 from waiting on the dead rank.
            }
        });
    }

    #[test]
    fn try_run_captures_panics_per_rank() {
        let out = try_run_ranks(
            2,
            MachineModel::ideal(),
            RunOptions::default(),
            &TraceSink::disabled(),
            |c| {
                if c.rank() == 0 {
                    panic!("deliberate failure on rank 0");
                }
                c.rank()
            },
        );
        let err = out.results[0].as_ref().expect_err("rank 0 panicked");
        assert_eq!(err.rank, 0);
        assert!(err.message.contains("deliberate failure"));
        assert_eq!(*out.results[1].as_ref().expect("rank 1 survives"), 1);
        assert_eq!(out.reports.len(), 2);
    }

    #[test]
    fn dead_peer_surfaces_as_disconnected_not_hang() {
        let opts = RunOptions {
            comm_timeout: Duration::from_secs(5),
        };
        let start = Instant::now();
        let out = try_run_ranks(
            2,
            MachineModel::ideal(),
            opts,
            &TraceSink::disabled(),
            |c| {
                if c.rank() == 0 {
                    // Return immediately: rank 1's recv sees closed channels.
                    Ok(())
                } else {
                    c.try_recv(0).map(|_| ())
                }
            },
        );
        assert!(out.results[0].as_ref().expect("no panic").is_ok());
        let r1 = out.results[1].as_ref().expect("no panic");
        assert_eq!(
            *r1,
            Err(CommError::Disconnected { rank: 1, peer: 0 }),
            "{r1:?}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "disconnect must beat the watchdog"
        );
    }

    #[test]
    fn recv_timeout_fires_and_latches() {
        let opts = RunOptions {
            comm_timeout: Duration::from_millis(50),
        };
        let out = try_run_ranks(
            2,
            MachineModel::ideal(),
            opts,
            &TraceSink::disabled(),
            |c| {
                if c.rank() == 1 {
                    // Rank 0 never sends: the watchdog fires. The error
                    // latches, so the next operation fails instantly.
                    let first = c.try_recv(0);
                    let second_started = Instant::now();
                    let second = c.try_recv(0);
                    assert_eq!(first, second, "sticky error repeats");
                    assert!(
                        second_started.elapsed() < Duration::from_millis(40),
                        "latched error must short-circuit"
                    );
                    assert!(c.status().is_err());
                    matches!(first, Err(CommError::Timeout { op: "recv", .. }))
                } else {
                    // Keep rank 0 alive past rank 1's first watchdog window
                    // so the closed-channel (Disconnected) path cannot win.
                    std::thread::sleep(Duration::from_millis(80));
                    true
                }
            },
        );
        assert!(out.results.iter().all(|r| *r.as_ref().expect("no panic")));
    }

    #[test]
    fn allreduce_timeout_does_not_hang_survivors() {
        let opts = RunOptions {
            comm_timeout: Duration::from_millis(50),
        };
        let start = Instant::now();
        let out = try_run_ranks(
            3,
            MachineModel::ideal(),
            opts,
            &TraceSink::disabled(),
            |c| {
                if c.rank() == 0 {
                    // Never joins the collective.
                    Ok(0.0)
                } else {
                    c.try_allreduce_sum_scalar(1.0)
                }
            },
        );
        for r in 1..3 {
            let res = out.results[r].as_ref().expect("no panic");
            assert!(
                matches!(
                    res,
                    Err(CommError::Timeout {
                        op: "allreduce",
                        ..
                    })
                ),
                "rank {r}: {res:?}"
            );
        }
        assert!(start.elapsed() < Duration::from_secs(10), "no hang");
    }

    #[test]
    fn infallible_ops_latch_and_degrade() {
        let out = try_run_ranks(
            2,
            MachineModel::ideal(),
            RunOptions {
                comm_timeout: Duration::from_millis(50),
            },
            &TraceSink::disabled(),
            |c| {
                if c.rank() == 0 {
                    return (true, true);
                }
                // Infallible recv from a dead peer: empty buffer, latched
                // error, and subsequent allreduce degrades to identity.
                let got = c.recv(0);
                let sum = c.allreduce_sum(&[41.0]);
                (got.is_empty() && sum == vec![41.0], c.status().is_err())
            },
        );
        let (degraded, latched) = out.results[1].as_ref().expect("no panic");
        assert!(degraded, "degraded returns are identity-shaped");
        assert!(latched, "error latched for the solver to pick up");
    }

    #[test]
    fn untraced_run_exposes_no_tracer() {
        run_ranks(2, MachineModel::ideal(), |c| {
            assert!(c.tracer().is_none());
            c.barrier();
        });
    }

    /// Two nodes of two ranks: rank 0's batch to `[1, 2, 3]` has one free
    /// intra-node message and two cross-node messages sharing the node
    /// uplink (factor 2). The contended arrival is `α + 2·bytes/β`; the
    /// intra-node arrival is unaffected; a send outside the batch is
    /// uncontended again.
    #[test]
    fn contended_batch_charges_the_shared_uplink() {
        use crate::topology::{CollectiveAlgo, Link, Topology};
        let model = MachineModel {
            name: "2x2",
            flops_per_s: 1e9,
            topology: Topology::TwoLevel {
                node_size: 2,
                intra: Link::new(0.0, f64::INFINITY),
                inter: Link::new(1.0, 8.0), // 8 B (one f64) costs 1 s
            },
            collective: CollectiveAlgo::Tree,
        };
        let run = || {
            run_ranks(4, model.clone(), |c| {
                if c.rank() == 0 {
                    c.note_exchange_batch(&[1, 2, 3]);
                    for to in 1..4 {
                        c.send(to, &[1.0]);
                    }
                    c.end_exchange_batch();
                    c.stats().contended_sends as f64
                } else {
                    c.recv(0);
                    c.virtual_time()
                }
            })
        };
        let out = run();
        assert_eq!(out.results[0], 2.0, "two cross-node sends contend");
        assert_eq!(out.results[1], 0.0, "intra-node message is free");
        // α=1 + factor 2 × (8 B / 8 B/s) = 3 s on both uplink riders.
        assert!((out.results[2] - 3.0).abs() < 1e-12, "{}", out.results[2]);
        assert!((out.results[3] - 3.0).abs() < 1e-12);
        // Scheduling independence: a second run reproduces bit for bit.
        let again = run();
        assert_eq!(out.results, again.results);
    }

    /// The default `exchange` wires the batch hooks itself: an all-to-all
    /// on the two-level machine counts its cross-node sends as contended.
    #[test]
    fn exchange_on_hierarchical_topology_counts_contended_sends() {
        use crate::topology::{CollectiveAlgo, Link, Topology};
        let model = MachineModel {
            name: "2x2",
            flops_per_s: 1e9,
            topology: Topology::TwoLevel {
                node_size: 2,
                intra: Link::new(0.1, 1e9),
                inter: Link::new(1.0, 1e9),
            },
            collective: CollectiveAlgo::Tree,
        };
        let out = run_ranks(4, model, |c| {
            let neighbors: Vec<usize> = (0..4).filter(|&r| r != c.rank()).collect();
            let data: Vec<Vec<f64>> = neighbors.iter().map(|_| vec![1.0; 4]).collect();
            let _ = c.exchange(&neighbors, &data);
            c.stats()
        });
        for st in &out.results {
            assert_eq!(st.sends, 3);
            assert_eq!(st.contended_sends, 2, "two cross-node sends per rank");
        }
        // Flat machines never contend, even through the same helper.
        let flat = run_ranks(4, MachineModel::ideal(), |c| {
            let neighbors: Vec<usize> = (0..4).filter(|&r| r != c.rank()).collect();
            let data: Vec<Vec<f64>> = neighbors.iter().map(|_| vec![1.0; 4]).collect();
            let _ = c.exchange(&neighbors, &data);
            c.stats().contended_sends
        });
        assert!(flat.results.iter().all(|&n| n == 0));
    }

    #[test]
    fn traced_run_events_match_live_stats() {
        use parfem_trace::TraceReport;

        let sink = TraceSink::recording();
        let out = run_ranks_traced(3, MachineModel::sgi_origin(), &sink, |c| {
            assert!(c.tracer().is_some());
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.work(1_000_000);
            let _ = c.exchange(
                &[next, prev],
                &[vec![c.rank() as f64; 4], vec![c.rank() as f64; 2]],
            );
            c.send(prev, &[1.0, 2.0]);
            let _ = c.recv(next);
            c.allreduce_sum_scalar(1.0);
            c.barrier();
        });
        let report = TraceReport::from_events(&sink.take_events());
        assert_eq!(report.nranks(), 3);
        for rep in &out.reports {
            let traced = &report.ranks[rep.rank];
            assert_eq!(traced.comm.sends, rep.stats.sends);
            assert_eq!(traced.comm.bytes_sent, rep.stats.bytes_sent);
            assert_eq!(traced.comm.recvs, rep.stats.recvs);
            assert_eq!(traced.comm.bytes_received, rep.stats.bytes_received);
            assert_eq!(traced.comm.allreduces, rep.stats.allreduces);
            assert_eq!(traced.comm.allreduce_bytes, rep.stats.allreduce_bytes);
            assert_eq!(traced.comm.barriers, rep.stats.barriers);
            assert_eq!(traced.comm.neighbor_exchanges, rep.stats.neighbor_exchanges);
            assert_eq!(traced.comm.flops, rep.stats.flops);
            assert!((traced.final_virt - rep.virtual_time).abs() < 1e-15);
            let hist = traced.msg_bytes.as_ref().expect("histogram recorded");
            assert_eq!(hist.count(), rep.stats.sends);
            assert_eq!(hist.sum(), rep.stats.bytes_sent);
        }
    }
}
