//! `ThreadComm`: the communicator over OS threads and channels.
//!
//! Every rank is an OS thread; point-to-point messages travel over dedicated
//! unbounded `std::sync::mpsc` channels (one per ordered rank pair, so
//! messages between a pair stay in order), and collectives rendezvous at a
//! shared mutex/condvar point that sums contributions **in rank order** —
//! parallel results are therefore bit-for-bit deterministic and independent
//! of scheduling.
//!
//! Virtual-time rules (see [`crate::model`]):
//! - `work(f)` advances the local clock by `f / rate`;
//! - a message is stamped `sender_clock + α + bytes/β`; the receiver's clock
//!   becomes `max(receiver_clock, stamp)` (eager/asynchronous send);
//! - an all-reduce synchronizes every participant to
//!   `max(all clocks) + ⌈log₂P⌉ · stage_cost`.
//!
//! Tracing: [`run_ranks_traced`] hands each rank a
//! [`parfem_trace::RankTracer`], and every communicator operation then emits
//! a structured event stamped with both wall and virtual time — a recorded
//! run replays into the per-rank Gantt timeline and the Table-1
//! communication counts. [`run_ranks`] passes a disabled sink, so the
//! untraced path pays one `Option` branch per operation.

use crate::comm::Communicator;
use crate::model::MachineModel;
use crate::stats::CommStats;
use parfem_trace::{EventKind, Histogram, RankTracer, TraceSink, Value};
use std::cell::{Cell, RefCell};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};

/// A message with its modeled arrival time.
struct Msg {
    data: Vec<f64>,
    arrival: f64,
}

/// Shared rendezvous state for collectives.
struct CollectiveState {
    generation: u64,
    contributions: Vec<Option<Vec<f64>>>,
    clocks: Vec<f64>,
    count: usize,
    result: Vec<f64>,
    result_clock: f64,
}

struct CollectivePoint {
    size: usize,
    state: Mutex<CollectiveState>,
    cv: Condvar,
}

impl CollectivePoint {
    fn new(size: usize) -> Self {
        CollectivePoint {
            size,
            state: Mutex::new(CollectiveState {
                generation: 0,
                contributions: vec![None; size],
                clocks: vec![0.0; size],
                count: 0,
                result: Vec::new(),
                result_clock: 0.0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Contributes `v` at virtual time `clock`; returns the rank-ordered sum
    /// and the max contribution clock.
    fn allreduce(&self, rank: usize, v: &[f64], clock: f64) -> (Vec<f64>, f64) {
        if self.size == 1 {
            return (v.to_vec(), clock);
        }
        let mut st = self.state.lock().expect("collective mutex poisoned");
        let my_gen = st.generation;
        st.contributions[rank] = Some(v.to_vec());
        st.clocks[rank] = clock;
        st.count += 1;
        if st.count == self.size {
            // Deterministic rank-ordered summation.
            let mut sum = vec![0.0; v.len()];
            for c in st.contributions.iter_mut() {
                let contrib = c.take().expect("all ranks contributed");
                assert_eq!(
                    contrib.len(),
                    sum.len(),
                    "allreduce called with mismatched lengths across ranks"
                );
                for (s, x) in sum.iter_mut().zip(&contrib) {
                    *s += x;
                }
            }
            let max_clock = st.clocks.iter().fold(0.0_f64, |m, &c| m.max(c));
            st.result = sum.clone();
            st.result_clock = max_clock;
            st.count = 0;
            st.generation += 1;
            self.cv.notify_all();
            (sum, max_clock)
        } else {
            while st.generation == my_gen {
                st = self.cv.wait(st).expect("collective mutex poisoned");
            }
            (st.result.clone(), st.result_clock)
        }
    }
}

/// One rank's endpoint of a threaded communicator.
pub struct ThreadComm {
    rank: usize,
    size: usize,
    model: Arc<MachineModel>,
    /// `senders[d]` sends to rank `d` (None at `d == rank`).
    senders: Vec<Option<Sender<Msg>>>,
    /// `receivers[s]` receives from rank `s` (None at `s == rank`).
    receivers: Vec<Option<Receiver<Msg>>>,
    collective: Arc<CollectivePoint>,
    clock: Cell<f64>,
    stats: RefCell<CommStats>,
    /// Present only under a recording sink; every comm op then emits an
    /// event and sends feed the message-size histogram.
    tracer: Option<RankTracer>,
    msg_bytes: RefCell<Histogram>,
}

impl Communicator for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&self, to: usize, data: &[f64]) {
        assert!(to < self.size && to != self.rank, "send: bad peer {to}");
        let bytes = std::mem::size_of_val(data);
        let arrival = self.clock.get() + self.model.message_time(bytes);
        let mut st = self.stats.borrow_mut();
        st.sends += 1;
        st.bytes_sent += bytes as u64;
        drop(st);
        if let Some(tracer) = &self.tracer {
            tracer.emit(
                EventKind::Send,
                "",
                self.clock.get(),
                vec![
                    ("peer".to_string(), Value::U64(to as u64)),
                    ("bytes".to_string(), Value::U64(bytes as u64)),
                ],
            );
            self.msg_bytes.borrow_mut().record(bytes as u64);
        }
        self.senders[to]
            .as_ref()
            .expect("sender exists for peers")
            .send(Msg {
                data: data.to_vec(),
                arrival,
            })
            .expect("peer hung up");
    }

    fn recv(&self, from: usize) -> Vec<f64> {
        assert!(
            from < self.size && from != self.rank,
            "recv: bad peer {from}"
        );
        let msg = self.receivers[from]
            .as_ref()
            .expect("receiver exists for peers")
            .recv()
            .expect("peer hung up");
        self.clock.set(self.clock.get().max(msg.arrival));
        let bytes = std::mem::size_of_val(&msg.data[..]);
        let mut st = self.stats.borrow_mut();
        st.recvs += 1;
        st.bytes_received += bytes as u64;
        drop(st);
        if let Some(tracer) = &self.tracer {
            tracer.emit(
                EventKind::Recv,
                "",
                self.clock.get(),
                vec![
                    ("peer".to_string(), Value::U64(from as u64)),
                    ("bytes".to_string(), Value::U64(bytes as u64)),
                ],
            );
        }
        msg.data
    }

    fn allreduce_sum(&self, v: &[f64]) -> Vec<f64> {
        let bytes = std::mem::size_of_val(v);
        {
            let mut st = self.stats.borrow_mut();
            st.allreduces += 1;
            st.allreduce_bytes += bytes as u64;
        }
        let (sum, max_clock) = self.collective.allreduce(self.rank, v, self.clock.get());
        self.clock
            .set(max_clock + self.model.allreduce_time(self.size, bytes));
        if let Some(tracer) = &self.tracer {
            tracer.emit(
                EventKind::Allreduce,
                "",
                self.clock.get(),
                vec![("bytes".to_string(), Value::U64(bytes as u64))],
            );
        }
        sum
    }

    fn barrier(&self) {
        self.stats.borrow_mut().barriers += 1;
        let (_, max_clock) = self.collective.allreduce(self.rank, &[], self.clock.get());
        self.clock
            .set(max_clock + self.model.allreduce_time(self.size, 0));
        if let Some(tracer) = &self.tracer {
            tracer.emit(EventKind::Barrier, "", self.clock.get(), Vec::new());
        }
    }

    fn work(&self, flops: u64) {
        self.clock
            .set(self.clock.get() + self.model.compute_time(flops));
        self.stats.borrow_mut().flops += flops;
    }

    fn virtual_time(&self) -> f64 {
        self.clock.get()
    }

    fn stats(&self) -> CommStats {
        *self.stats.borrow()
    }

    fn count_neighbor_exchange(&self) {
        self.stats.borrow_mut().neighbor_exchanges += 1;
        if let Some(tracer) = &self.tracer {
            tracer.emit(EventKind::Exchange, "", self.clock.get(), Vec::new());
        }
    }

    fn tracer(&self) -> Option<&RankTracer> {
        self.tracer.as_ref()
    }
}

/// Per-rank summary returned by [`run_ranks`].
#[derive(Debug, Clone)]
pub struct RankReport {
    /// Rank id.
    pub rank: usize,
    /// Final virtual time of the rank (modeled seconds).
    pub virtual_time: f64,
    /// Communication counters.
    pub stats: CommStats,
}

/// Output of a parallel run.
#[derive(Debug)]
pub struct RunOutput<R> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank reports, indexed by rank.
    pub reports: Vec<RankReport>,
    /// Modeled parallel time: the maximum final virtual clock.
    pub modeled_time: f64,
}

/// Runs `f` on `p` ranks over OS threads and collects results and reports.
///
/// `f` receives each rank's [`ThreadComm`]; ranks communicate only through
/// it. The function blocks until every rank returns.
///
/// ```
/// use parfem_msg::{run_ranks, Communicator, MachineModel};
///
/// let out = run_ranks(4, MachineModel::sgi_origin(), |comm| {
///     comm.work(1_000_000); // report local compute to the virtual clock
///     comm.allreduce_sum_scalar(comm.rank() as f64)
/// });
/// assert_eq!(out.results, vec![6.0; 4]); // 0+1+2+3 on every rank
/// assert!(out.modeled_time > 0.0);
/// ```
///
/// # Panics
/// Panics if `p == 0` or if any rank panics.
pub fn run_ranks<F, R>(p: usize, model: MachineModel, f: F) -> RunOutput<R>
where
    F: Fn(&ThreadComm) -> R + Send + Sync,
    R: Send,
{
    run_ranks_traced(p, model, &TraceSink::disabled(), f)
}

/// [`run_ranks`], recording structured events into `sink`.
///
/// Under a recording sink every rank gets a [`parfem_trace::RankTracer`]
/// (reachable from solver code via [`Communicator::tracer`]); all
/// point-to-point and collective operations emit events, per-message sizes
/// feed a histogram, and when a rank's closure returns a `rank_end` event is
/// stamped with the final virtual clock, the rank's modeled flops, and the
/// histogram. With [`TraceSink::disabled`] this is exactly [`run_ranks`].
///
/// # Panics
/// Panics if `p == 0` or if any rank panics.
pub fn run_ranks_traced<F, R>(p: usize, model: MachineModel, sink: &TraceSink, f: F) -> RunOutput<R>
where
    F: Fn(&ThreadComm) -> R + Send + Sync,
    R: Send,
{
    assert!(p > 0, "need at least one rank");
    let model = Arc::new(model);
    let collective = Arc::new(CollectivePoint::new(p));

    // Channel matrix: channel (s, d) carries messages s -> d.
    let mut senders: Vec<Vec<Option<Sender<Msg>>>> = (0..p).map(|_| Vec::new()).collect();
    let mut receivers: Vec<Vec<Option<Receiver<Msg>>>> = (0..p).map(|_| Vec::new()).collect();
    for s in 0..p {
        for d in 0..p {
            if s == d {
                senders[s].push(None);
            } else {
                let (tx, rx) = channel();
                senders[s].push(Some(tx));
                // Receiver slots arrive in increasing s order: pad the row
                // with None up to index s, then append.
                receivers[d].resize_with(s, || None);
                receivers[d].push(Some(rx));
            }
        }
    }
    for r in receivers.iter_mut() {
        r.resize_with(p, || None);
    }

    let mut comms: Vec<ThreadComm> = Vec::with_capacity(p);
    let receivers_iter = receivers.into_iter();
    for (rank, (tx_row, rx_row)) in senders.into_iter().zip(receivers_iter).enumerate() {
        comms.push(ThreadComm {
            rank,
            size: p,
            model: Arc::clone(&model),
            senders: tx_row,
            receivers: rx_row,
            collective: Arc::clone(&collective),
            clock: Cell::new(0.0),
            stats: RefCell::new(CommStats::default()),
            tracer: sink.tracer(Some(rank)),
            msg_bytes: RefCell::new(Histogram::new()),
        });
    }

    let f = &f;
    let outputs: Vec<(R, RankReport)> = std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                scope.spawn(move || {
                    let result = f(&comm);
                    let report = RankReport {
                        rank: comm.rank(),
                        virtual_time: comm.virtual_time(),
                        stats: comm.stats(),
                    };
                    if let Some(tracer) = &comm.tracer {
                        let mut fields = vec![
                            ("flops".to_string(), Value::U64(report.stats.flops)),
                            ("t_virt_final".to_string(), Value::F64(report.virtual_time)),
                        ];
                        fields.extend(comm.msg_bytes.borrow().to_fields());
                        tracer.emit(EventKind::RankEnd, "", report.virtual_time, fields);
                    }
                    // Dropping `comm` drops its tracer, flushing this rank's
                    // buffered events into the sink in one lock acquisition.
                    (result, report)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    });

    let mut results = Vec::with_capacity(p);
    let mut reports = Vec::with_capacity(p);
    for (r, rep) in outputs {
        results.push(r);
        reports.push(rep);
    }
    let modeled_time = reports
        .iter()
        .map(|r| r.virtual_time)
        .fold(0.0_f64, f64::max);
    RunOutput {
        results,
        reports,
        modeled_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let out = run_ranks(1, MachineModel::ideal(), |c| {
            assert_eq!(c.rank(), 0);
            assert_eq!(c.size(), 1);
            c.work(100e6 as u64);
            c.allreduce_sum_scalar(5.0)
        });
        assert_eq!(out.results, vec![5.0]);
        assert!((out.modeled_time - 1.0).abs() < 1e-12);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let out = run_ranks(4, MachineModel::ideal(), |c| {
            c.allreduce_sum_scalar(c.rank() as f64 + 1.0)
        });
        for r in out.results {
            assert_eq!(r, 10.0);
        }
    }

    #[test]
    fn allreduce_vector_is_deterministic_and_uniform() {
        // Sum of distinctly scaled vectors: every rank gets the exact same
        // floating-point result because summation is rank-ordered.
        let out = run_ranks(3, MachineModel::ideal(), |c| {
            let v = vec![0.1 * (c.rank() as f64 + 1.0); 5];
            c.allreduce_sum(&v)
        });
        let first = &out.results[0];
        for r in &out.results {
            assert_eq!(r, first);
        }
        for x in first {
            assert!((x - 0.6).abs() < 1e-15);
        }
    }

    #[test]
    fn point_to_point_ring_exchange() {
        let out = run_ranks(4, MachineModel::ideal(), |c| {
            let p = c.size();
            let next = (c.rank() + 1) % p;
            let prev = (c.rank() + p - 1) % p;
            c.send(next, &[c.rank() as f64]);
            let got = c.recv(prev);
            got[0]
        });
        assert_eq!(out.results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn messages_between_a_pair_stay_ordered() {
        let out = run_ranks(2, MachineModel::ideal(), |c| {
            if c.rank() == 0 {
                for k in 0..10 {
                    c.send(1, &[k as f64]);
                }
                Vec::new()
            } else {
                (0..10).map(|_| c.recv(0)[0]).collect::<Vec<f64>>()
            }
        });
        assert_eq!(
            out.results[1],
            (0..10).map(|k| k as f64).collect::<Vec<_>>()
        );
    }

    #[test]
    fn exchange_helper_swaps_buffers() {
        let out = run_ranks(2, MachineModel::ideal(), |c| {
            let other = 1 - c.rank();
            let data = vec![vec![c.rank() as f64 * 10.0 + 1.0; 3]];
            let got = c.exchange(&[other], &data);
            got[0][0]
        });
        assert_eq!(out.results, vec![11.0, 1.0]);
        assert_eq!(out.reports[0].stats.neighbor_exchanges, 1);
    }

    #[test]
    fn split_exchange_overlaps_compute_with_communication() {
        // Two symmetric ranks swap one buffer and compute `flops` of local
        // work. Blocking order (compute, then exchange) pays the sum of the
        // two phases; the split exchange (post sends, compute, receive)
        // pays max(compute, comm) — the overlap credit of
        // MachineModel::overlapped_time.
        let model = MachineModel::ibm_sp2();
        let flops = 1000u64; // ~17 µs compute vs ~40 µs latency
        let bytes = 3 * std::mem::size_of::<f64>();
        let compute = model.compute_time(flops);
        let comm = model.message_time(bytes);
        let blocking = run_ranks(2, model.clone(), |c| {
            let other = 1 - c.rank();
            c.work(flops);
            let mut out = vec![Vec::new()];
            c.exchange_into(&[other], &[vec![c.rank() as f64; 3]], &mut out);
            c.virtual_time()
        });
        let split = run_ranks(2, model.clone(), |c| {
            let other = 1 - c.rank();
            let handle = c.start_exchange(&[other], &[vec![c.rank() as f64; 3]]);
            c.work(flops);
            let mut out = vec![Vec::new()];
            c.finish_exchange(handle, &[other], &mut out);
            c.virtual_time()
        });
        for r in 0..2 {
            assert!((blocking.results[r] - (compute + comm)).abs() < 1e-12);
            assert!(
                (split.results[r] - model.overlapped_time(compute, comm)).abs() < 1e-12,
                "split exchange must cost max(compute, comm)"
            );
        }
        // Both forms count as one neighbour-exchange round and the same
        // message traffic.
        for (b, s) in blocking.reports.iter().zip(&split.reports) {
            assert_eq!(b.stats.neighbor_exchanges, s.stats.neighbor_exchanges);
            assert_eq!(b.stats.sends, s.stats.sends);
            assert_eq!(b.stats.bytes_sent, s.stats.bytes_sent);
        }
    }

    #[test]
    fn virtual_time_tracks_work_imbalance() {
        let out = run_ranks(2, MachineModel::ideal(), |c| {
            if c.rank() == 0 {
                c.work(300e6 as u64); // 3 s
            } else {
                c.work(100e6 as u64); // 1 s
            }
        });
        assert!((out.reports[0].virtual_time - 3.0).abs() < 1e-9);
        assert!((out.reports[1].virtual_time - 1.0).abs() < 1e-9);
        assert!((out.modeled_time - 3.0).abs() < 1e-9);
    }

    #[test]
    fn allreduce_synchronizes_clocks() {
        let out = run_ranks(2, MachineModel::ideal(), |c| {
            if c.rank() == 0 {
                c.work(200e6 as u64); // 2 s
            }
            c.allreduce_sum_scalar(1.0);
            c.virtual_time()
        });
        // The idle rank's clock jumps to the busy rank's 2 s.
        assert!((out.results[1] - 2.0).abs() < 1e-9, "{}", out.results[1]);
    }

    #[test]
    fn message_latency_advances_receiver_clock() {
        let model = MachineModel {
            name: "test",
            latency_s: 0.5,
            bandwidth_bytes_per_s: f64::INFINITY,
            flops_per_s: 1e9,
            reduce_latency_s: 0.0,
        };
        let out = run_ranks(2, model, |c| {
            if c.rank() == 0 {
                c.send(1, &[1.0]);
                0.0
            } else {
                c.recv(0);
                c.virtual_time()
            }
        });
        assert!((out.results[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn barrier_joins_all_ranks() {
        let out = run_ranks(3, MachineModel::ideal(), |c| {
            if c.rank() == 2 {
                c.work(100e6 as u64);
            }
            c.barrier();
            c.virtual_time() >= 1.0 - 1e-9
        });
        assert!(out.results.iter().all(|&b| b));
        assert!(out.reports.iter().all(|r| r.stats.barriers == 1));
    }

    #[test]
    fn stats_count_sends_and_reductions() {
        let out = run_ranks(2, MachineModel::ideal(), |c| {
            let other = 1 - c.rank();
            c.send(other, &[1.0, 2.0]);
            c.recv(other);
            c.allreduce_sum_scalar(1.0);
        });
        for rep in &out.reports {
            assert_eq!(rep.stats.sends, 1);
            assert_eq!(rep.stats.recvs, 1);
            assert_eq!(rep.stats.bytes_sent, 16);
            assert_eq!(rep.stats.allreduces, 1);
        }
    }

    #[test]
    fn modeled_speedup_of_balanced_work_is_linear_on_ideal_machine() {
        let total: u64 = 400e6 as u64;
        let t1 = run_ranks(1, MachineModel::ideal(), |c| c.work(total)).modeled_time;
        let t4 = run_ranks(4, MachineModel::ideal(), |c| c.work(total / 4)).modeled_time;
        assert!((t1 / t4 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn broadcast_distributes_roots_buffer() {
        let out = run_ranks(4, MachineModel::ideal(), |c| {
            let data = if c.rank() == 2 {
                vec![7.0, 8.0]
            } else {
                vec![0.0, 0.0]
            };
            c.broadcast(2, &data)
        });
        for r in out.results {
            assert_eq!(r, vec![7.0, 8.0]);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = run_ranks(3, MachineModel::ideal(), |c| {
            c.gather(0, &[c.rank() as f64 * 10.0])
        });
        let gathered = out.results[0].as_ref().expect("root gets the data");
        assert_eq!(gathered, &vec![vec![0.0], vec![10.0], vec![20.0]]);
        assert!(out.results[1].is_none());
        assert!(out.results[2].is_none());
    }

    #[test]
    fn gather_then_broadcast_round_trips() {
        // allgather emulation: gather at 0, flatten, broadcast back.
        let out = run_ranks(3, MachineModel::ideal(), |c| {
            let gathered = c.gather(0, &[c.rank() as f64 + 1.0]);
            let flat: Vec<f64> = gathered
                .map(|g| g.into_iter().flatten().collect())
                .unwrap_or_default();
            c.broadcast(0, &flat)
        });
        for r in out.results {
            assert_eq!(r, vec![1.0, 2.0, 3.0]);
        }
    }

    #[test]
    fn broadcast_costs_latency_on_receivers() {
        let model = MachineModel {
            name: "test",
            latency_s: 1.0,
            bandwidth_bytes_per_s: f64::INFINITY,
            flops_per_s: 1e9,
            reduce_latency_s: 0.0,
        };
        let out = run_ranks(2, model, |c| {
            let _ = c.broadcast(0, &[1.0]);
            c.virtual_time()
        });
        assert_eq!(out.results[0], 0.0, "sender pays nothing (eager send)");
        assert!((out.results[1] - 1.0).abs() < 1e-12, "receiver pays alpha");
    }

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn self_send_panics_the_run() {
        // The offending rank panics with "bad peer"; run_ranks surfaces the
        // failure when joining.
        run_ranks(2, MachineModel::ideal(), |c| {
            if c.rank() == 0 {
                c.send(0, &[1.0]);
            }
        });
    }

    #[test]
    fn untraced_run_exposes_no_tracer() {
        run_ranks(2, MachineModel::ideal(), |c| {
            assert!(c.tracer().is_none());
            c.barrier();
        });
    }

    #[test]
    fn traced_run_events_match_live_stats() {
        use parfem_trace::TraceReport;

        let sink = TraceSink::recording();
        let out = run_ranks_traced(3, MachineModel::sgi_origin(), &sink, |c| {
            assert!(c.tracer().is_some());
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.work(1_000_000);
            let _ = c.exchange(
                &[next, prev],
                &[vec![c.rank() as f64; 4], vec![c.rank() as f64; 2]],
            );
            c.send(prev, &[1.0, 2.0]);
            let _ = c.recv(next);
            c.allreduce_sum_scalar(1.0);
            c.barrier();
        });
        let report = TraceReport::from_events(&sink.take_events());
        assert_eq!(report.nranks(), 3);
        for rep in &out.reports {
            let traced = &report.ranks[rep.rank];
            assert_eq!(traced.comm.sends, rep.stats.sends);
            assert_eq!(traced.comm.bytes_sent, rep.stats.bytes_sent);
            assert_eq!(traced.comm.recvs, rep.stats.recvs);
            assert_eq!(traced.comm.bytes_received, rep.stats.bytes_received);
            assert_eq!(traced.comm.allreduces, rep.stats.allreduces);
            assert_eq!(traced.comm.allreduce_bytes, rep.stats.allreduce_bytes);
            assert_eq!(traced.comm.barriers, rep.stats.barriers);
            assert_eq!(traced.comm.neighbor_exchanges, rep.stats.neighbor_exchanges);
            assert_eq!(traced.comm.flops, rep.stats.flops);
            assert!((traced.final_virt - rep.virtual_time).abs() < 1e-15);
            let hist = traced.msg_bytes.as_ref().expect("histogram recorded");
            assert_eq!(hist.count(), rep.stats.sends);
            assert_eq!(hist.sum(), rep.stats.bytes_sent);
        }
    }
}
