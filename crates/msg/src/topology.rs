//! Composable network topologies and collective algorithms.
//!
//! The flat `α + bytes/β` model of [`crate::model`] treats every rank pair
//! as a dedicated wire — adequate for the paper's 8-processor SP2/Origin
//! runs, but wrong at P=64..4096 where messages share links and the
//! all-reduce tree descends a physical hierarchy. This module factors the
//! network out of [`MachineModel`](crate::model::MachineModel) into:
//!
//! - [`Link`] — one latency/bandwidth pair;
//! - [`Topology`] — how ranks map onto links: [`Topology::Flat`] (the
//!   legacy uniform network, **bit-identical** to the pre-topology model),
//!   [`Topology::TwoLevel`] (node + network hierarchy of a modern
//!   cluster), [`Topology::FatTree`] and [`Topology::Torus3d`];
//! - [`CollectiveAlgo`] — how an all-reduce descends the topology:
//!   [`CollectiveAlgo::FlatTree`] (the legacy `⌈log₂P⌉` formula),
//!   [`CollectiveAlgo::Tree`] (hierarchical per-level combine) and
//!   [`CollectiveAlgo::RecursiveDoubling`] (distance-doubling exchange).
//!
//! # Contention
//!
//! When one rank posts several messages in a single exchange round, the
//! messages that traverse the same physical link serialize: each is
//! charged `latency + k · bytes/bandwidth`, where `k` is the number of
//! round-mates sharing that link ([`Topology::contention_factors`]).
//! Factors are a pure function of the topology and the neighbour list —
//! *never* of thread scheduling — so contended runs stay bit-for-bit
//! deterministic. The flat topology reports no shared links, preserving
//! the legacy dedicated-wire semantics exactly.

/// One network link class: a latency/bandwidth pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// One-way message latency in seconds.
    pub latency_s: f64,
    /// Sustained bandwidth in bytes per second.
    pub bandwidth_bytes_per_s: f64,
}

impl Link {
    /// A link with the given latency (seconds) and bandwidth (bytes/s).
    pub const fn new(latency_s: f64, bandwidth_bytes_per_s: f64) -> Self {
        Link {
            latency_s,
            bandwidth_bytes_per_s,
        }
    }

    /// Time for `bytes` to traverse this link: `α + bytes/β`.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bytes_per_s
    }

    /// Transfer time when `factor` messages share the link in one round:
    /// the serialization multiplies the bandwidth term, not the latency.
    pub fn transfer_time_shared(&self, bytes: usize, factor: f64) -> f64 {
        self.latency_s + factor * (bytes as f64 / self.bandwidth_bytes_per_s)
    }
}

/// How `P` virtual ranks map onto physical links.
#[derive(Debug, Clone, PartialEq)]
pub enum Topology {
    /// Uniform all-to-all network: every pair owns a dedicated wire of the
    /// given link class. This is the legacy machine model — its
    /// [`Topology::message_time`] evaluates *exactly* the historical
    /// `latency + bytes/bandwidth` expression, and it never reports
    /// contention, so pre-topology solves stay bit-identical.
    Flat(Link),
    /// Two-level hierarchy of a modern cluster: ranks are packed
    /// `node_size` per node (rank `r` lives on node `r / node_size`);
    /// same-node messages use the `intra` link (shared memory / NVLink
    /// class), cross-node messages use the `inter` link (NIC + switch) and
    /// share the sender's single node uplink.
    TwoLevel {
        /// Ranks per node.
        node_size: usize,
        /// Intra-node link (latency/bandwidth of the memory fabric).
        intra: Link,
        /// Inter-node link (end-to-end NIC-to-NIC through the switch).
        inter: Link,
    },
    /// A fat tree with `radix` leaves per edge switch: the hop count to the
    /// lowest common ancestor sets the latency (2 hops per level, up and
    /// down), bandwidth is full-bisection per link. Messages leaving the
    /// sender's edge switch share the sender's uplink.
    FatTree {
        /// Leaves (ranks) per edge switch, and the fan-out of every level.
        radix: usize,
        /// Per-hop link class.
        link: Link,
    },
    /// A 3-D torus: ranks are folded into a near-cubic `nx × ny × nz` grid
    /// (recomputed from `P` per call), cost is Manhattan hop distance with
    /// wraparound times the per-hop latency plus one serialization.
    /// Messages taking the same first-hop direction share that physical
    /// link.
    Torus3d {
        /// Per-hop link class.
        link: Link,
    },
}

impl Topology {
    /// The representative (nearest-peer) link: what one hop costs. For
    /// [`Topology::Flat`] this is *the* link of the legacy model.
    pub fn base_link(&self) -> Link {
        match *self {
            Topology::Flat(link) => link,
            Topology::TwoLevel { intra, .. } => intra,
            Topology::FatTree { link, .. } => link,
            Topology::Torus3d { link } => link,
        }
    }

    /// Near-cubic factorization `nx ≥ ny ≥ nz` with `nx·ny·nz ≥ p`, used
    /// to fold `p` ranks into the torus.
    pub fn torus_dims(p: usize) -> [usize; 3] {
        let p = p.max(1);
        let c = (p as f64).cbrt().floor().max(1.0) as usize;
        let mut nz = c;
        while nz > 1 && !p.is_multiple_of(nz) {
            nz -= 1;
        }
        let rest = p / nz;
        let s = (rest as f64).sqrt().floor().max(1.0) as usize;
        let mut ny = s;
        while ny > 1 && !rest.is_multiple_of(ny) {
            ny -= 1;
        }
        [rest / ny, ny, nz]
    }

    /// Torus coordinates of `rank` in the `p`-rank folding.
    fn torus_coord(p: usize, rank: usize) -> ([usize; 3], [usize; 3]) {
        let dims = Self::torus_dims(p);
        let x = rank % dims[0];
        let y = (rank / dims[0]) % dims[1];
        let z = rank / (dims[0] * dims[1]);
        ([x, y, z], dims)
    }

    /// Ring distance between `a` and `b` on a ring of length `n`, and the
    /// step direction (+1/-1) of the shorter way.
    fn ring_step(a: usize, b: usize, n: usize) -> (usize, i32) {
        let fwd = (b + n - a) % n;
        let bwd = (a + n - b) % n;
        if fwd <= bwd {
            (fwd, 1)
        } else {
            (bwd, -1)
        }
    }

    /// Level of the lowest common ancestor switch of two leaves, counted
    /// from the leaves: `1` when both hang off the same edge switch (a
    /// 2-hop path through it), `2` one level higher (4 hops), and so on.
    fn fat_tree_lca_level(radix: usize, from: usize, to: usize) -> u32 {
        let radix = radix.max(2);
        let mut l = 1u32;
        let (mut a, mut b) = (from / radix, to / radix);
        while a != b {
            a /= radix;
            b /= radix;
            l += 1;
        }
        l
    }

    /// Modeled time of one `bytes`-sized message from `from` to `to` in a
    /// `p`-rank job, uncontended.
    ///
    /// For [`Topology::Flat`] this is exactly `latency + bytes/bandwidth`
    /// regardless of the pair — the legacy expression, preserved
    /// operation-for-operation for bit reproducibility.
    pub fn message_time(&self, p: usize, from: usize, to: usize, bytes: usize) -> f64 {
        self.message_time_contended(p, from, to, bytes, 1.0)
    }

    /// [`Topology::message_time`] with a link-sharing `factor` (≥ 1): the
    /// bandwidth term of the bottleneck link is multiplied by `factor`.
    /// `factor == 1.0` reproduces the uncontended expression exactly.
    pub fn message_time_contended(
        &self,
        p: usize,
        from: usize,
        to: usize,
        bytes: usize,
        factor: f64,
    ) -> f64 {
        match *self {
            Topology::Flat(link) => {
                if factor > 1.0 {
                    link.transfer_time_shared(bytes, factor)
                } else {
                    // The legacy expression, verbatim.
                    link.latency_s + bytes as f64 / link.bandwidth_bytes_per_s
                }
            }
            Topology::TwoLevel {
                node_size,
                intra,
                inter,
            } => {
                let ns = node_size.max(1);
                let link = if from / ns == to / ns { intra } else { inter };
                if factor > 1.0 {
                    link.transfer_time_shared(bytes, factor)
                } else {
                    link.transfer_time(bytes)
                }
            }
            Topology::FatTree { radix, link } => {
                let l = Self::fat_tree_lca_level(radix, from, to);
                let hops = 2.0 * l as f64;
                hops * link.latency_s
                    + factor.max(1.0) * (bytes as f64 / link.bandwidth_bytes_per_s)
            }
            Topology::Torus3d { link } => {
                let (a, dims) = Self::torus_coord(p, from);
                let (b, _) = Self::torus_coord(p, to);
                let mut hops = 0usize;
                for d in 0..3 {
                    hops += Self::ring_step(a[d], b[d], dims[d]).0;
                }
                hops.max(1) as f64 * link.latency_s
                    + factor.max(1.0) * (bytes as f64 / link.bandwidth_bytes_per_s)
            }
        }
    }

    /// The id of the shared physical link a message from `from` to `to`
    /// rides, or `None` when the message has a dedicated path. Two
    /// messages in one batch with equal `Some` ids serialize.
    fn shared_link(&self, p: usize, from: usize, to: usize) -> Option<u64> {
        match *self {
            // Legacy semantics: every pair owns its wire.
            Topology::Flat(_) => None,
            Topology::TwoLevel { node_size, .. } => {
                let ns = node_size.max(1);
                if from / ns == to / ns {
                    None
                } else {
                    // All cross-node traffic from this rank funnels through
                    // the node's single uplink.
                    Some(1 + (from / ns) as u64)
                }
            }
            Topology::FatTree { radix, .. } => {
                if Self::fat_tree_lca_level(radix, from, to) > 1 {
                    // Traffic leaving the edge switch shares the sender's
                    // uplink.
                    Some(1 + (from / radix.max(2)) as u64)
                } else {
                    None
                }
            }
            Topology::Torus3d { .. } => {
                let (a, dims) = Self::torus_coord(p, from);
                let (b, _) = Self::torus_coord(p, to);
                // The first traversed axis' directed link out of `from`.
                for d in 0..3 {
                    let (dist, dir) = Self::ring_step(a[d], b[d], dims[d]);
                    if dist > 0 {
                        return Some(1 + 2 * d as u64 + u64::from(dir < 0));
                    }
                }
                None
            }
        }
    }

    /// Link-sharing factors for one rank's batch of sends to `neighbors`:
    /// `factor[i]` is the number of batch messages (including message `i`
    /// itself) that traverse message `i`'s shared link, or `1.0` for a
    /// dedicated path. Pure in `(topology, p, from, neighbors)` — thread
    /// scheduling cannot perturb it.
    pub fn contention_factors(&self, p: usize, from: usize, neighbors: &[usize]) -> Vec<f64> {
        let ids: Vec<Option<u64>> = neighbors
            .iter()
            .map(|&to| self.shared_link(p, from, to))
            .collect();
        ids.iter()
            .map(|id| match id {
                None => 1.0,
                Some(v) => ids.iter().filter(|o| **o == Some(*v)).count() as f64,
            })
            .collect()
    }
}

/// How an all-reduce of `bytes` across `p` ranks descends the topology.
#[derive(Debug, Clone, PartialEq)]
pub enum CollectiveAlgo {
    /// The legacy formula: `⌈log₂P⌉ · (reduce_latency + bytes/bandwidth)`
    /// on the topology's base link — kept for bit-identity with the
    /// pre-topology SP2/Origin/ideal presets.
    FlatTree {
        /// Per-tree-stage latency in seconds.
        reduce_latency_s: f64,
    },
    /// Hierarchical binary tree: combine within the lowest topology level
    /// first, then across levels, each of the `O(log P)` stages charged
    /// its own level's link cost.
    Tree,
    /// Recursive doubling: `⌈log₂P⌉` pairwise exchange stages; stage `k`
    /// partners ranks at distance `2^k`, so later stages traverse wider
    /// (more expensive) parts of the topology.
    RecursiveDoubling,
}

impl CollectiveAlgo {
    /// Modeled all-reduce time over `topo`. Zero for `p ≤ 1`.
    pub fn allreduce_time(&self, topo: &Topology, p: usize, bytes: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let stages = |n: usize| (n as f64).log2().ceil();
        match self {
            CollectiveAlgo::FlatTree { reduce_latency_s } => {
                let link = topo.base_link();
                // The legacy expression, verbatim.
                stages(p) * (reduce_latency_s + bytes as f64 / link.bandwidth_bytes_per_s)
            }
            CollectiveAlgo::Tree => match *topo {
                Topology::Flat(link) => stages(p) * link.transfer_time(bytes),
                Topology::TwoLevel {
                    node_size,
                    intra,
                    inter,
                } => {
                    let ns = node_size.max(1);
                    let local = ns.min(p);
                    let nodes = p.div_ceil(ns);
                    let mut t = stages(local) * intra.transfer_time(bytes);
                    if nodes > 1 {
                        t += stages(nodes) * inter.transfer_time(bytes);
                    }
                    t
                }
                Topology::FatTree { radix, link } => {
                    // One combine round per tree level; a level-l round
                    // moves messages between children of a level-l switch
                    // (2l hops), log2(radix) binary stages per level.
                    let radix = radix.max(2);
                    let mut t = 0.0;
                    let mut span = 1usize;
                    let mut l = 1u32;
                    while span < p {
                        let group = radix.min(p.div_ceil(span));
                        t += stages(group)
                            * (2.0 * l as f64 * link.latency_s
                                + bytes as f64 / link.bandwidth_bytes_per_s);
                        span *= radix;
                        l += 1;
                    }
                    t
                }
                Topology::Torus3d { link } => {
                    // Recursive halving along each ring. Under cut-through
                    // routing the partner distance does not add latency, so
                    // every stage costs one link traversal and the total is
                    // `Σ_d ⌈log₂ n_d⌉ = O(log p)` stages.
                    let dims = Topology::torus_dims(p);
                    let mut t = 0.0;
                    for n in dims {
                        t += stages(n.max(1)) * link.transfer_time(bytes);
                    }
                    t
                }
            },
            CollectiveAlgo::RecursiveDoubling => {
                // Representative pair (0, 2^k) prices each stage.
                let mut t = 0.0;
                let mut k = 0u32;
                while (1usize << k) < p {
                    let partner = (1usize << k).min(p - 1);
                    t += topo.message_time(p, 0, partner, bytes);
                    k += 1;
                }
                t
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: Link = Link::new(1e-6, 1e9);

    #[test]
    fn flat_message_time_is_the_legacy_expression() {
        let topo = Topology::Flat(Link::new(40e-6, 35e6));
        for &bytes in &[0usize, 64, 1 << 20] {
            let legacy = 40e-6 + bytes as f64 / 35e6;
            // Bit-identical, not approximately equal.
            assert_eq!(topo.message_time(8, 0, 5, bytes), legacy);
        }
    }

    #[test]
    fn flat_reports_no_contention() {
        let topo = Topology::Flat(L);
        let f = topo.contention_factors(8, 0, &[1, 2, 3, 4, 5, 6, 7]);
        assert!(f.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn two_level_contends_on_the_node_uplink() {
        let topo = Topology::TwoLevel {
            node_size: 4,
            intra: Link::new(0.2e-6, 50e9),
            inter: Link::new(1.5e-6, 12.5e9),
        };
        // Rank 0: one intra-node peer, three cross-node peers.
        let f = topo.contention_factors(16, 0, &[1, 4, 8, 12]);
        assert_eq!(f, vec![1.0, 3.0, 3.0, 3.0]);
        // Intra-node messages ride the cheap link.
        assert!(topo.message_time(16, 0, 1, 1024) < topo.message_time(16, 0, 4, 1024));
    }

    #[test]
    fn contention_is_monotone_in_link_load() {
        let topo = Topology::TwoLevel {
            node_size: 4,
            intra: Link::new(0.2e-6, 50e9),
            inter: Link::new(1.5e-6, 12.5e9),
        };
        // More concurrent cross-node messages => every shared factor grows,
        // and the modeled per-message time grows with it.
        let mut last = 0.0;
        for k in 1..=6usize {
            let neighbors: Vec<usize> = (0..k).map(|i| 4 + 4 * i).collect();
            let f = topo.contention_factors(32, 0, &neighbors);
            assert!(f.iter().all(|&x| x == k as f64));
            let t = topo.message_time_contended(32, 0, 4, 8192, f[0]);
            assert!(t > last, "modeled time must grow with load: {t} vs {last}");
            last = t;
        }
    }

    #[test]
    fn fat_tree_latency_grows_with_lca_distance() {
        let topo = Topology::FatTree { radix: 4, link: L };
        // Same edge switch: 2 hops; adjacent switch: 4 hops; far: 6 hops.
        let near = topo.message_time(64, 0, 1, 0);
        let mid = topo.message_time(64, 0, 5, 0);
        let far = topo.message_time(64, 0, 60, 0);
        assert!(near < mid && mid < far);
        assert_eq!(near, 2.0 * L.latency_s);
        assert_eq!(mid, 4.0 * L.latency_s);
    }

    #[test]
    fn torus_dims_cover_p() {
        for p in [1usize, 2, 8, 27, 64, 100, 256, 1024, 4096] {
            let d = Topology::torus_dims(p);
            assert_eq!(d[0] * d[1] * d[2], p, "dims {d:?} for p={p}");
        }
    }

    #[test]
    fn torus_first_hop_links_serialize() {
        let topo = Topology::Torus3d { link: L };
        // p=64 folds to 4x4x4. Neighbors +x (rank 1) and far +x (rank 2)
        // leave on the same +x link; -x (rank 3, wraparound) does not.
        let f = topo.contention_factors(64, 0, &[1, 2, 3]);
        assert_eq!(f, vec![2.0, 2.0, 1.0]);
    }

    #[test]
    fn tree_allreduce_matches_closed_form_on_two_level() {
        let intra = Link::new(0.2e-6, 50e9);
        let inter = Link::new(1.5e-6, 12.5e9);
        let topo = Topology::TwoLevel {
            node_size: 32,
            intra,
            inter,
        };
        let bytes = 64usize;
        for p in [64usize, 256, 1024, 4096] {
            let nodes = p.div_ceil(32);
            let expect = (32f64).log2().ceil() * intra.transfer_time(bytes)
                + (nodes as f64).log2().ceil() * inter.transfer_time(bytes);
            let got = CollectiveAlgo::Tree.allreduce_time(&topo, p, bytes);
            assert!((got - expect).abs() < 1e-18, "p={p}: {got} vs {expect}");
        }
    }

    #[test]
    fn tree_allreduce_scales_logarithmically() {
        let topo = Topology::TwoLevel {
            node_size: 32,
            intra: Link::new(0.2e-6, 50e9),
            inter: Link::new(1.5e-6, 12.5e9),
        };
        // Quadrupling P adds exactly 2 inter-node tree stages (node count
        // ×4 ⇒ +2 doublings): the growth is additive in log₂P, not
        // multiplicative in P.
        let t: Vec<f64> = [64usize, 256, 1024, 4096]
            .iter()
            .map(|&p| CollectiveAlgo::Tree.allreduce_time(&topo, p, 8))
            .collect();
        let steps: Vec<f64> = t.windows(2).map(|w| w[1] - w[0]).collect();
        for w in steps.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-15, "log-linear growth: {steps:?}");
        }
        assert!(t[3] > t[0]);
    }

    #[test]
    fn tree_reduces_to_flat_model_at_p2() {
        // On a flat topology whose reduce latency equals the link latency
        // (true for every legacy preset), one tree stage == one flat stage.
        let link = Link::new(40e-6, 35e6);
        let topo = Topology::Flat(link);
        let flat = CollectiveAlgo::FlatTree {
            reduce_latency_s: 40e-6,
        };
        let bytes = 128usize;
        assert_eq!(
            CollectiveAlgo::Tree.allreduce_time(&topo, 2, bytes),
            flat.allreduce_time(&topo, 2, bytes)
        );
        assert_eq!(CollectiveAlgo::Tree.allreduce_time(&topo, 1, bytes), 0.0);
    }

    #[test]
    fn recursive_doubling_is_log_p_stages() {
        let topo = Topology::Flat(L);
        let t = CollectiveAlgo::RecursiveDoubling.allreduce_time(&topo, 1024, 8);
        let one = topo.message_time(1024, 0, 1, 8);
        assert!((t - 10.0 * one).abs() < 1e-18);
    }
}
