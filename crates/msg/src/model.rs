//! Virtual-time machine models (LogP-style).
//!
//! A [`MachineModel`] turns counted work into modeled time:
//!
//! - computation: `flops / flops_per_s`,
//! - a point-to-point message of `b` bytes: `latency + b / bandwidth`,
//! - an all-reduce over `P` ranks: `⌈log₂ P⌉ · (reduce latency + b/bandwidth)`,
//!
//! The SP2/Origin presets use published characteristics of the mid-1990s
//! machines (MPI latency, sustained link bandwidth, sustained per-node
//! sparse-kernel flop rates); the paper's observation that the Origin
//! out-scales the SP2 at small processor counts comes directly from the
//! latency gap.

/// A parametric machine for virtual-time accounting.
#[derive(Debug, Clone)]
pub struct MachineModel {
    /// Human-readable machine name.
    pub name: &'static str,
    /// Point-to-point message latency `α` in seconds.
    pub latency_s: f64,
    /// Link bandwidth `1/β` in bytes per second.
    pub bandwidth_bytes_per_s: f64,
    /// Sustained floating-point rate in flop/s (sparse-kernel sustained,
    /// not peak).
    pub flops_per_s: f64,
    /// Per-tree-stage latency of a reduction in seconds.
    pub reduce_latency_s: f64,
}

impl MachineModel {
    /// IBM SP2 (thin nodes, TB3 switch): ~40 µs MPI latency, ~35 MB/s
    /// sustained bandwidth, ~60 Mflop/s sustained per node on sparse
    /// kernels.
    pub fn ibm_sp2() -> Self {
        MachineModel {
            name: "IBM-SP2",
            latency_s: 40e-6,
            bandwidth_bytes_per_s: 35e6,
            flops_per_s: 60e6,
            reduce_latency_s: 40e-6,
        }
    }

    /// SGI Origin 2000 (ccNUMA): ~10 µs effective MPI latency, ~160 MB/s,
    /// ~100 Mflop/s sustained per node on sparse kernels.
    pub fn sgi_origin() -> Self {
        MachineModel {
            name: "SGI-ORIGIN",
            latency_s: 10e-6,
            bandwidth_bytes_per_s: 160e6,
            flops_per_s: 100e6,
            reduce_latency_s: 10e-6,
        }
    }

    /// An idealized machine with free communication — modeled speedup under
    /// it is bounded only by load imbalance (useful in tests).
    pub fn ideal() -> Self {
        MachineModel {
            name: "ideal",
            latency_s: 0.0,
            bandwidth_bytes_per_s: f64::INFINITY,
            flops_per_s: 100e6,
            reduce_latency_s: 0.0,
        }
    }

    /// Looks a preset machine up by its CLI name: `origin`, `sp2` or
    /// `ideal` (the paper's two evaluation hosts plus the test machine).
    /// Returns `None` for unknown names so callers can print the list.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "origin" => Some(Self::sgi_origin()),
            "sp2" => Some(Self::ibm_sp2()),
            "ideal" => Some(Self::ideal()),
            _ => None,
        }
    }

    /// The CLI names [`MachineModel::by_name`] accepts, for usage text.
    pub const NAMES: &'static [&'static str] = &["origin", "sp2", "ideal"];

    /// Modeled time of one point-to-point message of `bytes`.
    pub fn message_time(&self, bytes: usize) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bytes_per_s
    }

    /// Modeled time of `flops` floating-point operations.
    pub fn compute_time(&self, flops: u64) -> f64 {
        flops as f64 / self.flops_per_s
    }

    /// Modeled time of a compute phase overlapped with an in-flight
    /// communication phase: `max(compute, comm)` rather than their sum.
    ///
    /// This is the credit a split (nonblocking) exchange earns under the
    /// virtual-time model. No special-casing is needed in the clock
    /// mechanics to achieve it: sends are stamped with the sender's clock
    /// *at posting time* plus [`MachineModel::message_time`], and a receive
    /// advances the receiver to `max(own clock, arrival)` — so a rank that
    /// posts its sends, computes, and only then receives pays exactly
    /// `overlapped_time(compute, comm)` instead of `compute + comm`.
    pub fn overlapped_time(&self, compute_s: f64, comm_s: f64) -> f64 {
        compute_s.max(comm_s)
    }

    /// Modeled time of an all-reduce of `bytes` across `p` ranks
    /// (binary-tree combine + broadcast folded into `⌈log₂ p⌉` stages, the
    /// `O(log P)` cost the paper cites for hypercube/switched networks).
    pub fn allreduce_time(&self, p: usize, bytes: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let stages = (p as f64).log2().ceil();
        stages * (self.reduce_latency_s + bytes as f64 / self.bandwidth_bytes_per_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sp2_has_higher_latency_than_origin() {
        let sp2 = MachineModel::ibm_sp2();
        let origin = MachineModel::sgi_origin();
        assert!(sp2.latency_s > origin.latency_s);
        assert!(sp2.bandwidth_bytes_per_s < origin.bandwidth_bytes_per_s);
        // Small-message cost gap: this is what degrades SP2 speedup at
        // small P in Fig. 17(e).
        assert!(sp2.message_time(64) > 2.0 * origin.message_time(64));
    }

    #[test]
    fn message_time_scales_with_size() {
        let m = MachineModel::ibm_sp2();
        assert!(m.message_time(1_000_000) > m.message_time(1_000));
        assert!(m.message_time(0) == m.latency_s);
    }

    #[test]
    fn compute_time_is_linear() {
        let m = MachineModel::sgi_origin();
        assert_eq!(m.compute_time(0), 0.0);
        assert!((m.compute_time(200e6 as u64) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn allreduce_is_logarithmic() {
        let m = MachineModel::ibm_sp2();
        assert_eq!(m.allreduce_time(1, 8), 0.0);
        let t2 = m.allreduce_time(2, 8);
        let t4 = m.allreduce_time(4, 8);
        let t8 = m.allreduce_time(8, 8);
        assert!((t4 - 2.0 * t2).abs() < 1e-12);
        assert!((t8 - 3.0 * t2).abs() < 1e-12);
    }

    #[test]
    fn overlapped_time_is_max_not_sum() {
        let m = MachineModel::ibm_sp2();
        let compute = m.compute_time(10_000);
        let comm = m.message_time(256);
        assert_eq!(m.overlapped_time(compute, comm), compute.max(comm));
        assert!(m.overlapped_time(compute, comm) < compute + comm);
        assert_eq!(m.overlapped_time(0.0, comm), comm);
        assert_eq!(m.overlapped_time(compute, 0.0), compute);
    }

    #[test]
    fn ideal_machine_communicates_for_free() {
        let m = MachineModel::ideal();
        assert_eq!(m.message_time(1 << 20), 0.0);
        assert_eq!(m.allreduce_time(8, 1 << 20), 0.0);
        assert!(m.compute_time(1) > 0.0);
    }
}
