//! Virtual-time machine models (LogP-style) over composable topologies.
//!
//! A [`MachineModel`] turns counted work into modeled time:
//!
//! - computation: `flops / flops_per_s`,
//! - a point-to-point message: the [`Topology`]'s route cost between the
//!   two ranks (for the flat legacy presets: `latency + bytes/bandwidth`),
//! - an all-reduce over `P` ranks: the [`CollectiveAlgo`]'s `O(log P)`
//!   tree over the topology (for the legacy presets:
//!   `⌈log₂ P⌉ · (reduce latency + bytes/bandwidth)`).
//!
//! The SP2/Origin presets use published characteristics of the mid-1990s
//! machines (MPI latency, sustained link bandwidth, sustained per-node
//! sparse-kernel flop rates); the paper's observation that the Origin
//! out-scales the SP2 at small processor counts comes directly from the
//! latency gap. They are built through [`MachineModel::flat`], whose cost
//! expressions are **bit-identical** to the pre-topology model — golden
//! solve digests do not move.
//!
//! The modern presets ([`MachineModel::cluster`],
//! [`MachineModel::fat_tree`], [`MachineModel::torus3d`]) model
//! commodity-cluster-class hardware for the P=64..4096 scaling laboratory:
//! hierarchical links, shared-uplink contention, and per-level collective
//! trees.

use crate::topology::{CollectiveAlgo, Link, Topology};

/// A parametric machine for virtual-time accounting.
#[derive(Debug, Clone)]
pub struct MachineModel {
    /// Human-readable machine name.
    pub name: &'static str,
    /// Sustained floating-point rate in flop/s (sparse-kernel sustained,
    /// not peak).
    pub flops_per_s: f64,
    /// The network: how ranks map onto links.
    pub topology: Topology,
    /// The all-reduce algorithm run over that network.
    pub collective: CollectiveAlgo,
}

/// Typed error of [`MachineModel::by_name`]: the requested preset does not
/// exist. Displays the full list of valid names so CLI layers can print it
/// verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownMachine {
    /// The name that failed to resolve.
    pub given: String,
}

impl std::fmt::Display for UnknownMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown machine '{}' (valid: {})",
            self.given,
            MachineModel::NAMES.join("|")
        )
    }
}

impl std::error::Error for UnknownMachine {}

impl MachineModel {
    /// Compatibility constructor: a flat (uniform, dedicated-wire) machine
    /// with the legacy four-parameter shape. Every cost it produces is
    /// bit-identical to the historical flat `MachineModel` — the topology
    /// layer evaluates the same `latency + bytes/bandwidth` and
    /// `⌈log₂P⌉·(reduce_latency + bytes/bandwidth)` expressions.
    pub fn flat(
        name: &'static str,
        latency_s: f64,
        bandwidth_bytes_per_s: f64,
        flops_per_s: f64,
        reduce_latency_s: f64,
    ) -> Self {
        MachineModel {
            name,
            flops_per_s,
            topology: Topology::Flat(Link::new(latency_s, bandwidth_bytes_per_s)),
            collective: CollectiveAlgo::FlatTree { reduce_latency_s },
        }
    }

    /// IBM SP2 (thin nodes, TB3 switch): ~40 µs MPI latency, ~35 MB/s
    /// sustained bandwidth, ~60 Mflop/s sustained per node on sparse
    /// kernels.
    pub fn ibm_sp2() -> Self {
        Self::flat("IBM-SP2", 40e-6, 35e6, 60e6, 40e-6)
    }

    /// SGI Origin 2000 (ccNUMA): ~10 µs effective MPI latency, ~160 MB/s,
    /// ~100 Mflop/s sustained per node on sparse kernels.
    pub fn sgi_origin() -> Self {
        Self::flat("SGI-ORIGIN", 10e-6, 160e6, 100e6, 10e-6)
    }

    /// An idealized machine with free communication — modeled speedup under
    /// it is bounded only by load imbalance (useful in tests).
    pub fn ideal() -> Self {
        Self::flat("ideal", 0.0, f64::INFINITY, 100e6, 0.0)
    }

    /// A modern two-level commodity cluster: 32 ranks per node, shared-
    /// memory intra-node links (~0.3 µs, ~20 GB/s per rank pair), 100 Gb/s
    /// NIC per node (~1.5 µs, 12.5 GB/s) shared by all of the node's
    /// cross-node traffic, hierarchical tree collectives, ~1.5 Gflop/s
    /// sustained sparse per rank.
    pub fn cluster() -> Self {
        MachineModel {
            name: "cluster-2level",
            flops_per_s: 1.5e9,
            topology: Topology::TwoLevel {
                node_size: 32,
                intra: Link::new(0.3e-6, 20e9),
                inter: Link::new(1.5e-6, 12.5e9),
            },
            collective: CollectiveAlgo::Tree,
        }
    }

    /// A radix-16 fat tree (16 ranks per edge switch, full bisection
    /// bandwidth per link): ~0.9 µs per hop, 25 GB/s links, per-level tree
    /// collectives, ~1.5 Gflop/s sustained sparse per rank.
    pub fn fat_tree() -> Self {
        MachineModel {
            name: "fattree-r16",
            flops_per_s: 1.5e9,
            topology: Topology::FatTree {
                radix: 16,
                link: Link::new(0.9e-6, 25e9),
            },
            collective: CollectiveAlgo::Tree,
        }
    }

    /// A 3-D torus (near-cubic folding of P): ~0.8 µs per hop, 10 GB/s
    /// links, recursive-doubling collectives along the rings,
    /// ~1.5 Gflop/s sustained sparse per rank.
    pub fn torus3d() -> Self {
        MachineModel {
            name: "torus3d",
            flops_per_s: 1.5e9,
            topology: Topology::Torus3d {
                link: Link::new(0.8e-6, 10e9),
            },
            collective: CollectiveAlgo::RecursiveDoubling,
        }
    }

    /// Looks a preset machine up by its CLI name.
    ///
    /// Legacy presets: `origin`, `sp2`, `ideal` (the paper's two
    /// evaluation hosts plus the test machine). Modern topologies:
    /// `cluster`, `fattree`, `torus3d`.
    ///
    /// # Errors
    /// [`UnknownMachine`] (whose `Display` lists every valid name) for
    /// anything else.
    pub fn by_name(name: &str) -> Result<Self, UnknownMachine> {
        match name {
            "origin" => Ok(Self::sgi_origin()),
            "sp2" => Ok(Self::ibm_sp2()),
            "ideal" => Ok(Self::ideal()),
            "cluster" => Ok(Self::cluster()),
            "fattree" => Ok(Self::fat_tree()),
            "torus3d" => Ok(Self::torus3d()),
            _ => Err(UnknownMachine {
                given: name.to_string(),
            }),
        }
    }

    /// The CLI names [`MachineModel::by_name`] accepts, for usage text.
    pub const NAMES: &'static [&'static str] =
        &["origin", "sp2", "ideal", "cluster", "fattree", "torus3d"];

    /// Modeled time of one point-to-point message of `bytes` between
    /// nearest peers (for flat topologies: between *any* pair — the
    /// legacy `α + bytes/β`).
    pub fn message_time(&self, bytes: usize) -> f64 {
        match self.topology {
            // The legacy expression, verbatim.
            Topology::Flat(link) => link.latency_s + bytes as f64 / link.bandwidth_bytes_per_s,
            _ => self.topology.message_time(2, 0, 1, bytes),
        }
    }

    /// Modeled time of one message of `bytes` from `from` to `to` in a
    /// `p`-rank job — route-aware on hierarchical topologies, identical to
    /// [`MachineModel::message_time`] on flat ones.
    pub fn message_time_between(&self, p: usize, from: usize, to: usize, bytes: usize) -> f64 {
        self.topology.message_time(p, from, to, bytes)
    }

    /// Route-aware message time under a link-sharing `factor` (see
    /// [`Topology::contention_factors`]). `factor == 1.0` is the
    /// uncontended expression, bit for bit.
    pub fn message_time_contended(
        &self,
        p: usize,
        from: usize,
        to: usize,
        bytes: usize,
        factor: f64,
    ) -> f64 {
        self.topology
            .message_time_contended(p, from, to, bytes, factor)
    }

    /// Link-sharing factors for one rank's batched sends to `neighbors`
    /// (all `1.0` on flat topologies — the legacy dedicated-wire model).
    pub fn contention_factors(&self, p: usize, from: usize, neighbors: &[usize]) -> Vec<f64> {
        self.topology.contention_factors(p, from, neighbors)
    }

    /// Modeled time of `flops` floating-point operations.
    pub fn compute_time(&self, flops: u64) -> f64 {
        flops as f64 / self.flops_per_s
    }

    /// Modeled time of a compute phase overlapped with an in-flight
    /// communication phase: `max(compute, comm)` rather than their sum.
    ///
    /// This is the credit a split (nonblocking) exchange earns under the
    /// virtual-time model. No special-casing is needed in the clock
    /// mechanics to achieve it: sends are stamped with the sender's clock
    /// *at posting time* plus [`MachineModel::message_time`], and a receive
    /// advances the receiver to `max(own clock, arrival)` — so a rank that
    /// posts its sends, computes, and only then receives pays exactly
    /// `overlapped_time(compute, comm)` instead of `compute + comm`.
    pub fn overlapped_time(&self, compute_s: f64, comm_s: f64) -> f64 {
        compute_s.max(comm_s)
    }

    /// Modeled time of an all-reduce of `bytes` across `p` ranks: the
    /// configured [`CollectiveAlgo`] over the configured [`Topology`] —
    /// `O(log P)` stages with per-level costs. For the legacy flat presets
    /// this is the historical
    /// `⌈log₂ p⌉ · (reduce latency + bytes/bandwidth)`, bit for bit.
    pub fn allreduce_time(&self, p: usize, bytes: usize) -> f64 {
        self.collective.allreduce_time(&self.topology, p, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sp2_has_higher_latency_than_origin() {
        let sp2 = MachineModel::ibm_sp2();
        let origin = MachineModel::sgi_origin();
        assert!(sp2.message_time(0) > origin.message_time(0));
        // Small-message cost gap: this is what degrades SP2 speedup at
        // small P in Fig. 17(e).
        assert!(sp2.message_time(64) > 2.0 * origin.message_time(64));
    }

    #[test]
    fn legacy_presets_reproduce_the_flat_expressions_bitwise() {
        // The pre-topology model computed `latency + bytes/bw` and
        // `ceil(log2 p) * (reduce_latency + bytes/bw)` directly from four
        // scalar fields. The topology path must produce the *same bits*.
        let cases = [
            (MachineModel::ibm_sp2(), 40e-6, 35e6, 40e-6),
            (MachineModel::sgi_origin(), 10e-6, 160e6, 10e-6),
            (MachineModel::ideal(), 0.0, f64::INFINITY, 0.0),
        ];
        for (m, lat, bw, rl) in cases {
            for bytes in [0usize, 8, 88, 1 << 20] {
                assert_eq!(m.message_time(bytes), lat + bytes as f64 / bw);
                assert_eq!(
                    m.message_time_between(8, 3, 6, bytes),
                    lat + bytes as f64 / bw
                );
                for p in [2usize, 3, 4, 8] {
                    let stages = (p as f64).log2().ceil();
                    assert_eq!(
                        m.allreduce_time(p, bytes),
                        stages * (rl + bytes as f64 / bw)
                    );
                }
                assert_eq!(m.allreduce_time(1, bytes), 0.0);
            }
        }
    }

    #[test]
    fn flat_compat_constructor_matches_struct_shape() {
        let m = MachineModel::flat("test", 0.5, 2.0, 1e9, 0.25);
        assert_eq!(m.message_time(4), 0.5 + 4.0 / 2.0);
        assert_eq!(m.allreduce_time(2, 4), 0.25 + 4.0 / 2.0);
        assert_eq!(m.compute_time(2_000_000_000), 2.0);
    }

    #[test]
    fn message_time_scales_with_size() {
        let m = MachineModel::ibm_sp2();
        assert!(m.message_time(1_000_000) > m.message_time(1_000));
        assert!(m.message_time(0) == 40e-6);
    }

    #[test]
    fn compute_time_is_linear() {
        let m = MachineModel::sgi_origin();
        assert_eq!(m.compute_time(0), 0.0);
        assert!((m.compute_time(200e6 as u64) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn allreduce_is_logarithmic() {
        let m = MachineModel::ibm_sp2();
        assert_eq!(m.allreduce_time(1, 8), 0.0);
        let t2 = m.allreduce_time(2, 8);
        let t4 = m.allreduce_time(4, 8);
        let t8 = m.allreduce_time(8, 8);
        assert!((t4 - 2.0 * t2).abs() < 1e-12);
        assert!((t8 - 3.0 * t2).abs() < 1e-12);
    }

    #[test]
    fn overlapped_time_is_max_not_sum() {
        let m = MachineModel::ibm_sp2();
        let compute = m.compute_time(10_000);
        let comm = m.message_time(256);
        assert_eq!(m.overlapped_time(compute, comm), compute.max(comm));
        assert!(m.overlapped_time(compute, comm) < compute + comm);
        assert_eq!(m.overlapped_time(0.0, comm), comm);
        assert_eq!(m.overlapped_time(compute, 0.0), compute);
    }

    #[test]
    fn ideal_machine_communicates_for_free() {
        let m = MachineModel::ideal();
        assert_eq!(m.message_time(1 << 20), 0.0);
        assert_eq!(m.allreduce_time(8, 1 << 20), 0.0);
        assert!(m.compute_time(1) > 0.0);
    }

    #[test]
    fn by_name_resolves_every_listed_preset() {
        for name in MachineModel::NAMES {
            let m = MachineModel::by_name(name)
                .unwrap_or_else(|e| panic!("listed preset must resolve: {e}"));
            assert!(!m.name.is_empty());
        }
    }

    #[test]
    fn by_name_error_lists_the_valid_names() {
        let err = MachineModel::by_name("vax").expect_err("vax is not a machine");
        assert_eq!(err.given, "vax");
        let msg = err.to_string();
        for name in MachineModel::NAMES {
            assert!(msg.contains(name), "{msg} must list {name}");
        }
    }

    #[test]
    fn modern_presets_scale_allreduce_logarithmically() {
        for m in [
            MachineModel::cluster(),
            MachineModel::fat_tree(),
            MachineModel::torus3d(),
        ] {
            let t64 = m.allreduce_time(64, 8);
            let t4096 = m.allreduce_time(4096, 8);
            assert!(t64 > 0.0, "{}", m.name);
            // A 64x rank increase costs far less than 64x — single-digit
            // growth, consistent with O(log P) stages at per-level prices.
            assert!(
                t4096 < 8.0 * t64,
                "{}: allreduce must be O(log p): t64={t64} t4096={t4096}",
                m.name
            );
        }
    }

    #[test]
    fn cluster_charges_cross_node_messages_more() {
        let m = MachineModel::cluster();
        // Ranks 0 and 1 share a node; ranks 0 and 32 do not.
        assert!(m.message_time_between(64, 0, 1, 8192) < m.message_time_between(64, 0, 32, 8192));
        // And the cross-node batch contends on the uplink.
        let f = m.contention_factors(128, 0, &[1, 32, 64, 96]);
        assert_eq!(f, vec![1.0, 3.0, 3.0, 3.0]);
    }
}
