//! Message-passing substrate for the `parfem` distributed solvers.
//!
//! The paper runs C + MPI on an IBM SP2 and an SGI Origin. This crate
//! substitutes both:
//!
//! - [`comm`] — an MPI-shaped [`comm::Communicator`] trait
//!   covering exactly the subset the paper's Algorithms 5/6/8 use:
//!   point-to-point send/receive, summing all-reduce, and barrier;
//! - [`thread`] — [`thread::ThreadComm`], a real implementation
//!   over OS threads and `std::sync::mpsc` channels: `P` ranks run
//!   concurrently and exchange actual messages, so the communication
//!   structure (and every numerical result) is the same as an MPI run.
//!   [`thread::run_ranks_traced`] additionally records every communicator
//!   operation as a structured `parfem-trace` event;
//! - [`model`] — a **virtual-time LogP-style machine model**. The host this
//!   reproduction runs on may have a single core, where wall-clock speedup
//!   is physically meaningless; instead every rank advances a virtual clock
//!   by `flops / rate` for computation (reported by the solvers through
//!   [`comm::Communicator::work`]), message receives
//!   synchronize clocks at `sender + α + bytes/β`, and all-reduces cost a
//!   `⌈log₂ P⌉` tree. Presets [`MachineModel::ibm_sp2`](model::MachineModel::ibm_sp2)
//!   and [`MachineModel::sgi_origin`](model::MachineModel::sgi_origin)
//!   reproduce the latency/bandwidth contrast the paper observes in
//!   Fig. 17(e);
//! - [`topology`] — composable network topologies behind the machine
//!   model: the legacy flat network plus two-level cluster / fat-tree /
//!   3-D-torus presets with route-aware message costs, deterministic
//!   per-batch link contention, and `O(log P)` hierarchical collective
//!   algorithms for the P=64..4096 scaling laboratory;
//! - [`stats`] — per-rank communication statistics (message counts, bytes,
//!   reductions) that regenerate the paper's Table 1 cost comparison;
//! - [`error`] and [`fault`] — the failure model: typed [`CommError`]s with
//!   sticky latching and wall-clock watchdogs on every blocking wait, plus
//!   deterministic seeded fault injection ([`FaultPlan`]/[`FaultyComm`])
//!   with sequence-numbered retransmission, so chaos runs reproduce bit
//!   for bit and degraded runs return errors instead of hanging.

#![deny(missing_docs)]
#![warn(clippy::all)]
// Indexed `for r in 0..n` loops are the idiomatic form for the sparse/FEM
// kernels in this workspace (the index feeds several arrays and the CSR
// row spans at once); the iterator forms clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]

pub mod comm;
pub mod error;
pub mod fault;
pub mod model;
pub mod stats;
pub mod thread;
pub mod topology;

pub use comm::{Communicator, ExchangeHandle};
pub use error::CommError;
pub use fault::{FaultPlan, FaultStats, FaultyComm, RankKill};
pub use model::{MachineModel, UnknownMachine};
pub use stats::CommStats;
pub use thread::{
    run_ranks, run_ranks_traced, try_run_ranks, RankPanic, RankReport, RunOptions, RunOutput,
    ThreadComm,
};
pub use topology::{CollectiveAlgo, Link, Topology};
