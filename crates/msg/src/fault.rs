//! Deterministic fault injection for the message layer.
//!
//! [`FaultPlan`] is a *seeded, pure schedule* of communication faults:
//! whether the `attempt`-th transmission of message `seq` from rank `from`
//! to rank `to` is dropped, delayed, duplicated, or reordered is a pure
//! hash of `(seed, from, to, seq, attempt)`. Both endpoints of a channel
//! can therefore evaluate the *same* schedule independently — no shared
//! mutable state, no dependence on thread interleaving — which is what
//! makes chaos runs reproducible: same seed ⇒ same faults ⇒ same outcome,
//! bit for bit.
//!
//! [`FaultyComm`] wraps any inner [`Communicator`] and implements the
//! recovery protocol on top of the plan:
//!
//! - every point-to-point payload travels in a *sequence-numbered frame*
//!   (`[seq, attempt]` header + data);
//! - a dropped frame is retransmitted up to [`FaultPlan::max_retries`]
//!   times, each retry charged `retry_timeout · backoff^k` **virtual**
//!   seconds to the arrival stamp (the sender's own clock is untouched —
//!   eager-send semantics survive);
//! - the receiver discards frames the plan says were dropped, discards
//!   duplicates, buffers out-of-order frames, and releases payloads in
//!   sequence order — so the *payload stream the solver sees is identical
//!   to the fault-free run*; only virtual time differs;
//! - a message dropped on every attempt surfaces as
//!   [`CommError::RetriesExhausted`] on **both** endpoints (each evaluates
//!   the plan for itself), and a killed rank starts failing with
//!   [`CommError::RankKilled`] after its scheduled operation count.
//!
//! Collectives are delegated to the inner communicator untouched: the
//! rank-ordered summation is the determinism anchor, and a rank that dies
//! before a collective surfaces there as a timeout/disconnect from the
//! inner layer's watchdog.

use crate::comm::Communicator;
use crate::error::CommError;
use crate::stats::CommStats;
use parfem_trace::RankTracer;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

/// Number of `f64` slots prepended to every faulty-layer frame
/// (`[seq, attempt]`).
const HEADER: usize = 2;

/// splitmix64 finalizer: a high-quality 64-bit mixer, used to turn the
/// (seed, edge, seq, attempt) tuple into an i.i.d.-looking stream.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform deviate in `[0, 1)`.
fn u01(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A scheduled rank kill: the deterministic stand-in for a node crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankKill {
    /// The rank to kill.
    pub rank: usize,
    /// Communicator operations the rank completes before dying.
    pub after_ops: u64,
}

/// Counters of the faults a [`FaultyComm`] endpoint injected/absorbed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames the plan dropped (and the sender retransmitted past).
    pub drops: u64,
    /// Retransmissions performed (attempts beyond the first).
    pub retransmits: u64,
    /// Duplicate frames injected by the sender.
    pub duplicates: u64,
    /// Messages that incurred an injected delay.
    pub delays: u64,
    /// Messages held back for reordering.
    pub reorders: u64,
    /// Stale or duplicate frames the receiver discarded.
    pub discards: u64,
}

/// A seeded, deterministic schedule of message-layer faults.
///
/// All decision functions are pure in `(seed, from, to, seq, attempt)`;
/// cloning a plan or evaluating it from another thread yields identical
/// answers. Probabilities are per-message (drop is per-attempt), in
/// `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// RNG seed; the identity of the schedule.
    pub seed: u64,
    /// Probability that any single transmission attempt is dropped.
    pub drop_p: f64,
    /// Probability that a delivered message is also duplicated.
    pub dup_p: f64,
    /// Probability that a message incurs an extra delivery delay.
    pub delay_p: f64,
    /// Probability that a message is held back behind its successor.
    pub reorder_p: f64,
    /// Upper bound of the injected delay (virtual seconds).
    pub max_delay_s: f64,
    /// Retransmissions allowed after the initial attempt.
    pub max_retries: u32,
    /// Virtual-time retransmission timeout for the first retry (seconds).
    pub retry_timeout_s: f64,
    /// Multiplicative backoff applied to successive retry timeouts.
    pub backoff: f64,
    /// Ranks scheduled to die, and when.
    pub kills: Vec<RankKill>,
    /// `(rank, slowdown)` pairs: the rank's compute costs are multiplied
    /// by `slowdown` (≥ 1 models a straggler node).
    pub stragglers: Vec<(usize, f64)>,
}

// Salts separating the independent decision streams.
const S_DROP: u64 = 0x01;
const S_DUP: u64 = 0x02;
const S_DELAY: u64 = 0x03;
const S_REORDER: u64 = 0x04;
const S_DELAY_AMT: u64 = 0x05;

impl FaultPlan {
    /// The fault-free plan for `seed` (all probabilities zero). Useful as a
    /// base for the builder methods.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            reorder_p: 0.0,
            max_delay_s: 0.0,
            max_retries: 4,
            retry_timeout_s: 1e-3,
            backoff: 2.0,
            kills: Vec::new(),
            stragglers: Vec::new(),
        }
    }

    /// A mixed recoverable plan scaled by `intensity` in `[0, 1]` — the
    /// CLI's `--faults seed:intensity` spec. Drops, duplicates, delays and
    /// reorders all fire with probability proportional to the intensity;
    /// the retry budget is sized so that even `intensity = 1` leaves a
    /// vanishing chance of an undeliverable message.
    pub fn from_seed_intensity(seed: u64, intensity: f64) -> Self {
        let p = intensity.clamp(0.0, 1.0);
        let mut plan = FaultPlan::new(seed);
        plan.drop_p = 0.4 * p;
        plan.dup_p = 0.3 * p;
        plan.delay_p = p;
        plan.reorder_p = 0.3 * p;
        plan.max_delay_s = 1e-3;
        plan.max_retries = 30;
        plan
    }

    /// Parses a `seed:intensity` spec (e.g. `42:0.2`).
    ///
    /// # Errors
    /// A human-readable message when the spec does not parse.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let (seed, intensity) = spec
            .split_once(':')
            .ok_or_else(|| format!("bad fault spec '{spec}': expected SEED:INTENSITY"))?;
        let seed: u64 = seed
            .parse()
            .map_err(|_| format!("bad fault seed '{seed}': expected an integer"))?;
        let intensity: f64 = intensity
            .parse()
            .map_err(|_| format!("bad fault intensity '{intensity}': expected a number"))?;
        if !(0.0..=1.0).contains(&intensity) {
            return Err(format!("fault intensity {intensity} outside [0, 1]"));
        }
        Ok(FaultPlan::from_seed_intensity(seed, intensity))
    }

    /// Sets the per-attempt drop probability.
    pub fn with_drops(mut self, p: f64) -> Self {
        self.drop_p = p;
        self
    }

    /// Sets the duplicate probability.
    pub fn with_duplicates(mut self, p: f64) -> Self {
        self.dup_p = p;
        self
    }

    /// Sets the delay probability and the delay upper bound.
    pub fn with_delays(mut self, p: f64, max_delay_s: f64) -> Self {
        self.delay_p = p;
        self.max_delay_s = max_delay_s;
        self
    }

    /// Sets the reorder probability.
    pub fn with_reorders(mut self, p: f64) -> Self {
        self.reorder_p = p;
        self
    }

    /// Schedules `rank` to die after `after_ops` communicator operations.
    pub fn with_kill(mut self, rank: usize, after_ops: u64) -> Self {
        self.kills.push(RankKill { rank, after_ops });
        self
    }

    /// Multiplies `rank`'s compute costs by `slowdown` (a straggler node).
    pub fn with_straggler(mut self, rank: usize, slowdown: f64) -> Self {
        self.stragglers.push((rank, slowdown));
        self
    }

    /// Sets the retransmission policy: retry budget, first-retry virtual
    /// timeout, and multiplicative backoff.
    pub fn with_retry_policy(
        mut self,
        max_retries: u32,
        retry_timeout_s: f64,
        backoff: f64,
    ) -> Self {
        self.max_retries = max_retries;
        self.retry_timeout_s = retry_timeout_s;
        self.backoff = backoff;
        self
    }

    /// The decision hash for one (salt, edge, seq, attempt) tuple.
    fn h(&self, salt: u64, from: usize, to: usize, seq: u64, attempt: u32) -> u64 {
        mix(self.seed.wrapping_mul(0x9E6D)
            ^ salt.wrapping_mul(0xA24B_AED4_963E_E407)
            ^ (from as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25)
            ^ (to as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            ^ seq.wrapping_mul(0x1656_67B1_9E37_79F9)
            ^ (attempt as u64).wrapping_mul(0x2545_F491_4F6C_DD1D))
    }

    /// Is transmission attempt `attempt` of message `seq` on edge
    /// `from → to` dropped?
    pub fn attempt_dropped(&self, from: usize, to: usize, seq: u64, attempt: u32) -> bool {
        self.drop_p > 0.0 && u01(self.h(S_DROP, from, to, seq, attempt)) < self.drop_p
    }

    /// The first attempt of message `seq` that gets through, or `None` if
    /// every attempt within the retry budget is dropped (the message is
    /// undeliverable). Both endpoints evaluate this identically.
    pub fn delivery_attempt(&self, from: usize, to: usize, seq: u64) -> Option<u32> {
        (0..=self.max_retries).find(|&a| !self.attempt_dropped(from, to, seq, a))
    }

    /// Is the delivered copy of message `seq` duplicated in flight?
    pub fn duplicated(&self, from: usize, to: usize, seq: u64) -> bool {
        self.dup_p > 0.0 && u01(self.h(S_DUP, from, to, seq, 0)) < self.dup_p
    }

    /// Injected delivery delay for message `seq` (0 when the message is not
    /// delayed), in virtual seconds.
    pub fn extra_delay(&self, from: usize, to: usize, seq: u64) -> f64 {
        if self.delay_p > 0.0 && u01(self.h(S_DELAY, from, to, seq, 0)) < self.delay_p {
            u01(self.h(S_DELAY_AMT, from, to, seq, 0)) * self.max_delay_s
        } else {
            0.0
        }
    }

    /// Is message `seq` held back behind its successor on the same edge?
    pub fn reordered(&self, from: usize, to: usize, seq: u64) -> bool {
        self.reorder_p > 0.0 && u01(self.h(S_REORDER, from, to, seq, 0)) < self.reorder_p
    }

    /// Virtual time charged to a frame that is delivered on attempt
    /// `attempt`: the sum of the elapsed retransmission timeouts
    /// `Σ_{k<attempt} retry_timeout · backoff^k`.
    pub fn retry_delay(&self, attempt: u32) -> f64 {
        let mut t = 0.0;
        let mut step = self.retry_timeout_s;
        for _ in 0..attempt {
            t += step;
            step *= self.backoff;
        }
        t
    }

    /// When `rank` is scheduled to die: the operation count after which all
    /// its communicator calls fail with [`CommError::RankKilled`].
    pub fn kill_after(&self, rank: usize) -> Option<u64> {
        self.kills
            .iter()
            .find(|k| k.rank == rank)
            .map(|k| k.after_ops)
    }

    /// Compute-cost multiplier for `rank` (1.0 unless scheduled as a
    /// straggler).
    pub fn slowdown(&self, rank: usize) -> f64 {
        self.stragglers
            .iter()
            .find(|(r, _)| *r == rank)
            .map(|(_, s)| *s)
            .unwrap_or(1.0)
    }
}

/// A frame held back by the reorder fault, with its accumulated virtual
/// delay, awaiting a flush.
struct HeldFrame {
    frame: Vec<f64>,
    delay_s: f64,
}

/// A [`Communicator`] that injects the faults of a [`FaultPlan`] and
/// recovers from the recoverable ones — see the [module docs](self) for
/// the protocol. Wraps any inner communicator by reference; collectives
/// and the virtual clock are the inner layer's.
pub struct FaultyComm<'a, C: Communicator> {
    inner: &'a C,
    plan: FaultPlan,
    /// Next sequence number per destination rank.
    send_seq: RefCell<Vec<u64>>,
    /// Next expected sequence number per source rank.
    next_expected: RefCell<Vec<u64>>,
    /// Out-of-order frames buffered per source rank, keyed by seq.
    pending: RefCell<Vec<BTreeMap<u64, Vec<f64>>>>,
    /// Frames held back for reordering, per destination rank.
    held: RefCell<Vec<Vec<HeldFrame>>>,
    /// Operations performed (for the kill schedule).
    ops: Cell<u64>,
    /// When this rank is scheduled to die.
    kill_after: Option<u64>,
    /// Compute-cost multiplier (straggler model).
    slowdown: f64,
    /// First failure observed at this layer (sticky).
    error: RefCell<Option<CommError>>,
    fstats: RefCell<FaultStats>,
}

impl<'a, C: Communicator> FaultyComm<'a, C> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: &'a C, plan: FaultPlan) -> Self {
        let p = inner.size();
        let kill_after = plan.kill_after(inner.rank());
        let slowdown = plan.slowdown(inner.rank());
        FaultyComm {
            inner,
            plan,
            send_seq: RefCell::new(vec![0; p]),
            next_expected: RefCell::new(vec![0; p]),
            pending: RefCell::new(vec![BTreeMap::new(); p]),
            held: RefCell::new((0..p).map(|_| Vec::new()).collect()),
            ops: Cell::new(0),
            kill_after,
            slowdown,
            error: RefCell::new(None),
            fstats: RefCell::new(FaultStats::default()),
        }
    }

    /// The active plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters of faults injected/absorbed by this endpoint.
    pub fn fault_stats(&self) -> FaultStats {
        *self.fstats.borrow()
    }

    /// Latch `err` (first error wins) and return it.
    fn latch(&self, err: CommError) -> CommError {
        let mut slot = self.error.borrow_mut();
        if slot.is_none() {
            *slot = Some(err.clone());
        }
        err
    }

    /// Sticky-error short circuit plus the kill schedule: every operation
    /// counts toward the rank's scheduled death.
    fn preflight(&self) -> Result<(), CommError> {
        if let Some(e) = self.error.borrow().clone() {
            return Err(e);
        }
        let ops = self.ops.get();
        if let Some(after) = self.kill_after {
            if ops >= after {
                return Err(self.latch(CommError::RankKilled {
                    rank: self.inner.rank(),
                    after_ops: after,
                }));
            }
        }
        self.ops.set(ops + 1);
        Ok(())
    }

    fn count(&self, name: &str, bump: impl FnOnce(&mut FaultStats)) {
        bump(&mut self.fstats.borrow_mut());
        if let Some(tracer) = self.inner.tracer() {
            tracer.add_count(name, 1);
        }
    }

    /// Sends every physical frame of message `seq` (retransmissions the
    /// plan drops, the delivered copy, and a duplicate when scheduled).
    fn transmit(
        &self,
        to: usize,
        seq: u64,
        payload: &[f64],
        base_delay_s: f64,
    ) -> Result<(), CommError> {
        let rank = self.inner.rank();
        let delivered = match self.plan.delivery_attempt(rank, to, seq) {
            Some(a) => a,
            None => {
                return Err(self.latch(CommError::RetriesExhausted {
                    from: rank,
                    to,
                    seq,
                    attempts: self.plan.max_retries + 1,
                }))
            }
        };
        let extra = self.plan.extra_delay(rank, to, seq);
        if extra > 0.0 {
            self.count("fault_delays", |s| s.delays += 1);
        }
        let mut frame = Vec::with_capacity(HEADER + payload.len());
        for attempt in 0..=delivered {
            frame.clear();
            frame.push(seq as f64);
            frame.push(attempt as f64);
            frame.extend_from_slice(payload);
            let delay = base_delay_s + extra + self.plan.retry_delay(attempt);
            if attempt > 0 {
                self.count("fault_retransmits", |s| s.retransmits += 1);
            }
            if attempt < delivered {
                self.count("fault_drops", |s| s.drops += 1);
            }
            if self.plan.reordered(rank, to, seq) && attempt == delivered {
                // Hold the delivered copy back; it flushes behind the next
                // message to this destination (or at the next blocking
                // point, so paired exchanges cannot deadlock).
                self.count("fault_reorders", |s| s.reorders += 1);
                self.held.borrow_mut()[to].push(HeldFrame {
                    frame: frame.clone(),
                    delay_s: delay,
                });
            } else {
                self.inner.try_send_delayed(to, &frame, delay)?;
            }
        }
        if self.plan.duplicated(rank, to, seq) {
            self.count("fault_duplicates", |s| s.duplicates += 1);
            frame.clear();
            frame.push(seq as f64);
            frame.push(delivered as f64);
            frame.extend_from_slice(payload);
            self.inner
                .try_send_delayed(to, &frame, base_delay_s + extra)?;
        }
        Ok(())
    }

    /// Releases frames held back for reordering toward `to`.
    fn flush_held(&self, to: usize) -> Result<(), CommError> {
        let frames: Vec<HeldFrame> = std::mem::take(&mut self.held.borrow_mut()[to]);
        for hf in frames {
            self.inner.try_send_delayed(to, &hf.frame, hf.delay_s)?;
        }
        Ok(())
    }

    /// Releases every held frame (before collectives, and on drop).
    fn flush_all_held(&self) -> Result<(), CommError> {
        for to in 0..self.inner.size() {
            self.flush_held(to)?;
        }
        Ok(())
    }
}

impl<C: Communicator> Drop for FaultyComm<'_, C> {
    fn drop(&mut self) {
        // A frame held for reordering must not outlive the endpoint: a
        // peer could still be blocked waiting for it. Errors are moot here.
        let _ = self.flush_all_held();
    }
}

impl<C: Communicator> Communicator for FaultyComm<'_, C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn try_send_delayed(
        &self,
        to: usize,
        data: &[f64],
        extra_delay_s: f64,
    ) -> Result<(), CommError> {
        assert!(to < self.size() && to != self.rank(), "send: bad peer {to}");
        self.preflight()?;
        let seq = {
            let mut seqs = self.send_seq.borrow_mut();
            let s = seqs[to];
            seqs[to] += 1;
            s
        };
        // A newer message flushes the held (reordered) one *after* itself:
        // that is the reordering. The receiver restores sequence order.
        let had_held = !self.held.borrow()[to].is_empty();
        let res = self.transmit(to, seq, data, extra_delay_s);
        if had_held {
            self.flush_held(to)?;
        }
        res
    }

    fn try_recv(&self, from: usize) -> Result<Vec<f64>, CommError> {
        assert!(
            from < self.size() && from != self.rank(),
            "recv: bad peer {from}"
        );
        self.preflight()?;
        // Before blocking, release *every* held frame — a peer (directly,
        // or through a cycle of waiting ranks) could be blocked on one of
        // them. With nothing held while waiting, the faulty layer is
        // deadlock-free whenever the fault-free pattern is: every
        // fault-free send has physically happened before any rank blocks.
        self.flush_all_held()?;
        let rank = self.inner.rank();
        let expected = self.next_expected.borrow()[from];
        if let Some(payload) = self.pending.borrow_mut()[from].remove(&expected) {
            self.next_expected.borrow_mut()[from] = expected + 1;
            return Ok(payload);
        }
        // Symmetric undeliverability check: if the plan drops every attempt
        // of the message we are about to wait for, fail now — the sender
        // reached the same verdict from its side.
        if self.plan.delivery_attempt(from, rank, expected).is_none() {
            return Err(self.latch(CommError::RetriesExhausted {
                from,
                to: rank,
                seq: expected,
                attempts: self.plan.max_retries + 1,
            }));
        }
        loop {
            let frame = self.inner.try_recv(from).map_err(|e| self.latch(e))?;
            assert!(
                frame.len() >= HEADER,
                "faulty-layer frame shorter than its header"
            );
            let seq = frame[0] as u64;
            let attempt = frame[1] as u32;
            if self.plan.attempt_dropped(from, rank, seq, attempt) {
                // This physical copy is one the plan dropped in flight.
                continue;
            }
            if seq < expected {
                // Stale duplicate of an already-delivered message.
                self.count("fault_discards", |s| s.discards += 1);
                continue;
            }
            if seq == expected {
                self.next_expected.borrow_mut()[from] = expected + 1;
                return Ok(frame[HEADER..].to_vec());
            }
            // Out of order: park it unless an identical copy is parked.
            let mut pending = self.pending.borrow_mut();
            match pending[from].entry(seq) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(frame[HEADER..].to_vec());
                }
                std::collections::btree_map::Entry::Occupied(_) => {
                    self.count("fault_discards", |s| s.discards += 1);
                }
            }
        }
    }

    fn try_allreduce_sum_into(&self, buf: &mut [f64]) -> Result<(), CommError> {
        self.preflight()?;
        self.flush_all_held()?;
        self.inner
            .try_allreduce_sum_into(buf)
            .map_err(|e| self.latch(e))
    }

    fn try_barrier(&self) -> Result<(), CommError> {
        self.preflight()?;
        self.flush_all_held()?;
        self.inner.try_barrier().map_err(|e| self.latch(e))
    }

    fn status(&self) -> Result<(), CommError> {
        if let Some(e) = self.error.borrow().clone() {
            return Err(e);
        }
        self.inner.status()
    }

    fn post_error(&self, err: CommError) {
        self.latch(err);
    }

    fn work(&self, flops: u64) {
        if self.slowdown == 1.0 {
            self.inner.work(flops);
        } else {
            self.inner
                .work((flops as f64 * self.slowdown).round() as u64);
        }
    }

    fn virtual_time(&self) -> f64 {
        self.inner.virtual_time()
    }

    fn stats(&self) -> CommStats {
        self.inner.stats()
    }

    fn count_neighbor_exchange(&self) {
        self.inner.count_neighbor_exchange();
    }

    fn note_exchange_batch(&self, neighbors: &[usize]) {
        // Contention factors are a property of the physical network, not of
        // the fault layer: forward so the inner endpoint sees the batch.
        self.inner.note_exchange_batch(neighbors);
    }

    fn end_exchange_batch(&self) {
        self.inner.end_exchange_batch();
    }

    fn tracer(&self) -> Option<&RankTracer> {
        self.inner.tracer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_decisions_are_deterministic() {
        let a = FaultPlan::from_seed_intensity(42, 0.5);
        let b = FaultPlan::from_seed_intensity(42, 0.5);
        for seq in 0..200u64 {
            assert_eq!(a.delivery_attempt(0, 1, seq), b.delivery_attempt(0, 1, seq));
            assert_eq!(a.duplicated(0, 1, seq), b.duplicated(0, 1, seq));
            assert_eq!(a.extra_delay(0, 1, seq), b.extra_delay(0, 1, seq));
            assert_eq!(a.reordered(0, 1, seq), b.reordered(0, 1, seq));
        }
    }

    #[test]
    fn different_edges_get_different_streams() {
        let plan = FaultPlan::new(7).with_drops(0.5);
        let forward: Vec<bool> = (0..64).map(|s| plan.attempt_dropped(0, 1, s, 0)).collect();
        let backward: Vec<bool> = (0..64).map(|s| plan.attempt_dropped(1, 0, s, 0)).collect();
        assert_ne!(forward, backward, "edge direction must matter");
        assert!(forward.iter().any(|&d| d), "p=0.5 should drop something");
        assert!(
            !forward.iter().all(|&d| d),
            "p=0.5 should deliver something"
        );
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let plan = FaultPlan::new(3).with_drops(0.3);
        let n = 10_000;
        let dropped = (0..n).filter(|&s| plan.attempt_dropped(2, 5, s, 0)).count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "empirical rate {rate}");
    }

    #[test]
    fn zero_probability_plan_is_transparent() {
        let plan = FaultPlan::new(99);
        for seq in 0..100 {
            assert_eq!(plan.delivery_attempt(0, 1, seq), Some(0));
            assert!(!plan.duplicated(0, 1, seq));
            assert_eq!(plan.extra_delay(0, 1, seq), 0.0);
            assert!(!plan.reordered(0, 1, seq));
        }
    }

    #[test]
    fn retry_delay_follows_exponential_backoff() {
        let plan = FaultPlan::new(0).with_retry_policy(5, 1.0, 2.0);
        assert_eq!(plan.retry_delay(0), 0.0);
        assert_eq!(plan.retry_delay(1), 1.0);
        assert_eq!(plan.retry_delay(2), 3.0);
        assert_eq!(plan.retry_delay(3), 7.0);
    }

    #[test]
    fn certain_drop_exhausts_retries() {
        let plan = FaultPlan::new(1).with_drops(1.0);
        assert_eq!(plan.delivery_attempt(0, 1, 0), None);
    }

    #[test]
    fn spec_parsing_round_trips() {
        let plan = FaultPlan::from_spec("42:0.25").expect("valid spec");
        assert_eq!(plan, FaultPlan::from_seed_intensity(42, 0.25));
        assert!(FaultPlan::from_spec("42").is_err());
        assert!(FaultPlan::from_spec("x:0.5").is_err());
        assert!(FaultPlan::from_spec("42:1.5").is_err());
        assert!(FaultPlan::from_spec("42:nope").is_err());
    }

    #[test]
    fn kill_and_straggler_lookups() {
        let plan = FaultPlan::new(0).with_kill(2, 100).with_straggler(1, 3.0);
        assert_eq!(plan.kill_after(2), Some(100));
        assert_eq!(plan.kill_after(0), None);
        assert_eq!(plan.slowdown(1), 3.0);
        assert_eq!(plan.slowdown(0), 1.0);
    }
}
