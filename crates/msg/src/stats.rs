//! Per-rank communication statistics.
//!
//! These counters regenerate the paper's Table 1 (neighbour vs. global
//! communication per Arnoldi cycle) from *measurements* instead of manual
//! counting.

/// Counters of everything one rank did on the network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Point-to-point messages sent.
    pub sends: u64,
    /// Bytes sent point-to-point.
    pub bytes_sent: u64,
    /// Point-to-point messages received.
    pub recvs: u64,
    /// Bytes received point-to-point.
    pub bytes_received: u64,
    /// All-reduce operations participated in.
    pub allreduces: u64,
    /// Bytes contributed to all-reduces.
    pub allreduce_bytes: u64,
    /// Barriers participated in.
    pub barriers: u64,
    /// Nearest-neighbour exchange rounds (one round = send+recv with every
    /// neighbour; the paper's `⊕Σ_{∂Ω}` operation).
    pub neighbor_exchanges: u64,
    /// Floating-point operations reported by the solver kernels.
    pub flops: u64,
    /// Sends whose modeled cost included a link-sharing (contention)
    /// factor > 1 — always 0 on flat topologies.
    pub contended_sends: u64,
}

impl CommStats {
    /// Element-wise sum of two stats records.
    pub fn merged(&self, other: &CommStats) -> CommStats {
        CommStats {
            sends: self.sends + other.sends,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            recvs: self.recvs + other.recvs,
            bytes_received: self.bytes_received + other.bytes_received,
            allreduces: self.allreduces + other.allreduces,
            allreduce_bytes: self.allreduce_bytes + other.allreduce_bytes,
            barriers: self.barriers + other.barriers,
            neighbor_exchanges: self.neighbor_exchanges + other.neighbor_exchanges,
            flops: self.flops + other.flops,
            contended_sends: self.contended_sends + other.contended_sends,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_adds_fields() {
        let a = CommStats {
            sends: 1,
            bytes_sent: 10,
            recvs: 2,
            bytes_received: 20,
            allreduces: 3,
            allreduce_bytes: 30,
            barriers: 4,
            neighbor_exchanges: 5,
            flops: 100,
            contended_sends: 6,
        };
        let b = a;
        let c = a.merged(&b);
        assert_eq!(c.sends, 2);
        assert_eq!(c.bytes_received, 40);
        assert_eq!(c.flops, 200);
        assert_eq!(c.neighbor_exchanges, 10);
        assert_eq!(c.contended_sends, 12);
    }

    #[test]
    fn default_is_zeroed() {
        assert_eq!(CommStats::default().sends, 0);
        assert_eq!(CommStats::default(), CommStats::default());
    }
}
