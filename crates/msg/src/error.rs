//! Structured communication errors.
//!
//! Real message-passing substrates fail in a handful of well-understood
//! ways: a peer goes away (crash, early exit), a blocking operation never
//! completes (lost message, hung rank), or a transport gives up after its
//! retransmission budget. [`CommError`] gives each of those a typed,
//! `Display`-able representation so solvers can surface degraded runs as
//! `Result`s instead of panicking or deadlocking — the error taxonomy of
//! DESIGN.md §10.
//!
//! Errors are **sticky**: once a communicator endpoint observes one, every
//! subsequent fallible operation on that endpoint short-circuits with the
//! same error (see [`crate::Communicator::status`]). That guarantees a rank
//! pays the wall-clock watchdog at most once before its solve loop notices
//! and aborts — the "returns `Err` within the timeout budget" property the
//! chaos suite pins.

use std::fmt;

/// A structured failure of a communicator operation.
///
/// Programming errors (bad peer index, mismatched collective lengths) still
/// panic — they are bugs, not runtime conditions. `CommError` covers the
/// conditions a correct program can encounter on a degraded machine.
#[derive(Debug, Clone, PartialEq)]
pub enum CommError {
    /// A blocking operation exceeded the wall-clock watchdog.
    ///
    /// This is how a *silent* failure (peer hung, message lost without
    /// trace) surfaces: the receiver or collective waits `waited_s` real
    /// seconds and gives up instead of hanging forever.
    Timeout {
        /// The operation that timed out (`"recv"`, `"allreduce"`, …).
        op: &'static str,
        /// The rank that observed the timeout.
        rank: usize,
        /// The peer being waited on, when the operation has one.
        peer: Option<usize>,
        /// Wall-clock seconds waited before giving up.
        waited_s: f64,
    },
    /// The peer's endpoint was dropped — its rank returned early, errored
    /// out, or panicked. Unlike [`CommError::Timeout`] this is detected
    /// immediately (the channel is closed), so surviving ranks fail fast.
    Disconnected {
        /// The rank that observed the disconnect.
        rank: usize,
        /// The peer whose endpoint is gone.
        peer: usize,
    },
    /// This rank was killed by the active fault plan after `after_ops`
    /// communicator operations (the deterministic stand-in for a node
    /// crash). All of the rank's subsequent operations return this error.
    RankKilled {
        /// The killed rank.
        rank: usize,
        /// Operation count at which the kill fired.
        after_ops: u64,
    },
    /// A message could not be delivered within the retransmission budget:
    /// the fault plan dropped the original send and every retry.
    RetriesExhausted {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// Sequence number of the undeliverable message.
        seq: u64,
        /// Attempts made (original send plus retries).
        attempts: u32,
    },
    /// A collective rendezvous was poisoned: a participant panicked while
    /// holding the rendezvous lock, leaving the shared state unusable.
    Poisoned,
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Timeout {
                op,
                rank,
                peer,
                waited_s,
            } => match peer {
                Some(p) => write!(
                    f,
                    "rank {rank}: {op} from rank {p} timed out after {waited_s:.3}s"
                ),
                None => write!(f, "rank {rank}: {op} timed out after {waited_s:.3}s"),
            },
            CommError::Disconnected { rank, peer } => {
                write!(f, "rank {rank}: peer rank {peer} disconnected")
            }
            CommError::RankKilled { rank, after_ops } => {
                write!(f, "rank {rank} killed by fault plan after {after_ops} ops")
            }
            CommError::RetriesExhausted {
                from,
                to,
                seq,
                attempts,
            } => write!(
                f,
                "message {seq} from rank {from} to rank {to} undeliverable after {attempts} attempts"
            ),
            CommError::Poisoned => write!(f, "collective rendezvous poisoned by a rank panic"),
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_parties() {
        let e = CommError::Timeout {
            op: "recv",
            rank: 0,
            peer: Some(3),
            waited_s: 1.5,
        };
        let s = e.to_string();
        assert!(s.contains("rank 0") && s.contains("rank 3") && s.contains("recv"));
        let e = CommError::RetriesExhausted {
            from: 1,
            to: 2,
            seq: 7,
            attempts: 5,
        };
        let s = e.to_string();
        assert!(s.contains("rank 1") && s.contains("rank 2") && s.contains('7'));
    }

    #[test]
    fn errors_are_comparable_and_cloneable() {
        let e = CommError::Disconnected { rank: 0, peer: 1 };
        assert_eq!(e.clone(), e);
        assert_ne!(e, CommError::Poisoned);
    }
}
