//! The communicator abstraction.
//!
//! Exactly the MPI subset the paper's algorithms use: paired point-to-point
//! messages on the subdomain interface graph, a summing all-reduce for the
//! Gram–Schmidt inner products, and a barrier. Implementations additionally
//! account virtual time (see [`crate::model`]) so modeled parallel
//! performance can be extracted from any run.

use crate::stats::CommStats;
use parfem_trace::RankTracer;

/// In-flight nonblocking neighbour exchange started by
/// [`Communicator::start_exchange`].
///
/// The handle records how many receives are still pending; it must be
/// passed back to [`Communicator::finish_exchange`] with the *same*
/// neighbour list to complete the round. Dropping it without finishing
/// leaves messages queued and the exchange-round accounting short, hence
/// `#[must_use]`.
#[must_use = "an exchange must be completed with finish_exchange"]
#[derive(Debug)]
pub struct ExchangeHandle {
    pending: usize,
}

impl ExchangeHandle {
    /// Number of receives still outstanding.
    pub fn pending(&self) -> usize {
        self.pending
    }
}

/// A rank's endpoint into a `P`-way communicator.
pub trait Communicator {
    /// This rank's id in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks.
    fn size(&self) -> usize;

    /// Sends `data` to rank `to` (asynchronous, unbounded buffering — the
    /// classic MPI eager protocol, which makes paired exchanges
    /// deadlock-free).
    ///
    /// # Panics
    /// Panics if `to` is out of range or equal to this rank.
    fn send(&self, to: usize, data: &[f64]);

    /// Receives the next message from rank `from`, blocking.
    ///
    /// Messages between a fixed pair of ranks arrive in send order.
    ///
    /// # Panics
    /// Panics if `from` is out of range, equal to this rank, or the peer
    /// disconnected.
    fn recv(&self, from: usize) -> Vec<f64>;

    /// [`Communicator::recv`] into a caller-owned buffer, so a persistent
    /// buffer absorbs repeated receives without per-message allocation on
    /// the receiving side (once its capacity has grown to the message
    /// size). `buf` is cleared and refilled; its capacity is reused.
    fn recv_into(&self, from: usize, buf: &mut Vec<f64>) {
        let msg = self.recv(from);
        buf.clear();
        buf.extend_from_slice(&msg);
    }

    /// Element-wise sum of `v` across all ranks. All ranks must call with
    /// equal lengths; every rank receives the same result (summed in rank
    /// order, so the outcome is deterministic).
    fn allreduce_sum(&self, v: &[f64]) -> Vec<f64>;

    /// In-place variant of [`Communicator::allreduce_sum`]: `buf` is
    /// replaced by the element-wise sum over all ranks. Lets hot loops
    /// (the batched Gram–Schmidt reduction) reuse one persistent buffer
    /// instead of allocating a result vector per iteration. Counts as
    /// exactly one all-reduce, like the allocating form.
    fn allreduce_sum_into(&self, buf: &mut [f64]) {
        let sums = self.allreduce_sum(buf);
        buf.copy_from_slice(&sums);
    }

    /// Scalar convenience wrapper over [`Communicator::allreduce_sum`].
    fn allreduce_sum_scalar(&self, v: f64) -> f64 {
        self.allreduce_sum(&[v])[0]
    }

    /// Blocks until every rank reaches the barrier.
    fn barrier(&self);

    /// Reports `flops` of local computation to the virtual clock.
    fn work(&self, flops: u64);

    /// This rank's current virtual time in modeled seconds.
    fn virtual_time(&self) -> f64;

    /// Snapshot of this rank's communication counters.
    fn stats(&self) -> CommStats;

    /// Increments the nearest-neighbour-exchange round counter (called once
    /// per `⊕Σ_{∂Ω}` operation by the distributed vector code).
    fn count_neighbor_exchange(&self);

    /// The structured-event tracer attached to this rank, when the run was
    /// started under a recording [`parfem_trace::TraceSink`]. Solver code
    /// uses this to emit per-iteration events and hot-path counters; the
    /// default (and any untraced run) is `None`, so instrumentation costs a
    /// single branch when tracing is off.
    fn tracer(&self) -> Option<&RankTracer> {
        None
    }

    /// Exchanges `data[k]` with `neighbors[k]` for all `k` and returns the
    /// received buffers in the same order. This is the communication kernel
    /// of the paper's interface sum: all sends are posted first, then all
    /// receives, so the exchange cannot deadlock.
    ///
    /// # Panics
    /// Panics if `neighbors` and `data` lengths differ.
    fn exchange(&self, neighbors: &[usize], data: &[Vec<f64>]) -> Vec<Vec<f64>> {
        assert_eq!(
            neighbors.len(),
            data.len(),
            "exchange: neighbour/data length mismatch"
        );
        self.count_neighbor_exchange();
        for (&nb, buf) in neighbors.iter().zip(data) {
            self.send(nb, buf);
        }
        neighbors.iter().map(|&nb| self.recv(nb)).collect()
    }

    /// [`Communicator::exchange`] into caller-owned receive buffers (one
    /// per neighbour, capacities reused across rounds). Counts as one
    /// neighbour-exchange round, like the allocating form.
    ///
    /// # Panics
    /// Panics if `neighbors`, `data` and `out` lengths differ.
    fn exchange_into(&self, neighbors: &[usize], data: &[Vec<f64>], out: &mut [Vec<f64>]) {
        assert_eq!(
            neighbors.len(),
            data.len(),
            "exchange_into: neighbour/data length mismatch"
        );
        assert_eq!(
            neighbors.len(),
            out.len(),
            "exchange_into: neighbour/output length mismatch"
        );
        self.count_neighbor_exchange();
        for (&nb, buf) in neighbors.iter().zip(data) {
            self.send(nb, buf);
        }
        for (&nb, buf) in neighbors.iter().zip(out.iter_mut()) {
            self.recv_into(nb, buf);
        }
    }

    /// Nonblocking half of [`Communicator::exchange_into`]: posts the sends
    /// to every neighbour and returns immediately with an
    /// [`ExchangeHandle`], *without* waiting for the matching receives. The
    /// caller computes while the messages fly and completes the round with
    /// [`Communicator::finish_exchange`].
    ///
    /// Counts as the exchange round's single `count_neighbor_exchange`
    /// (the finish half counts nothing), so a split exchange is
    /// indistinguishable from a blocking one in the communication
    /// statistics.
    ///
    /// Under the virtual-time model this is what buys overlap: the sends
    /// are stamped with the clock *at posting time*, so a receiver that
    /// computes before collecting them advances to
    /// `max(own compute, message arrival)` instead of their sum — see
    /// [`MachineModel::overlapped_time`](crate::model::MachineModel::overlapped_time).
    ///
    /// # Panics
    /// Panics if `neighbors` and `data` lengths differ.
    fn start_exchange(&self, neighbors: &[usize], data: &[Vec<f64>]) -> ExchangeHandle {
        assert_eq!(
            neighbors.len(),
            data.len(),
            "start_exchange: neighbour/data length mismatch"
        );
        self.count_neighbor_exchange();
        for (&nb, buf) in neighbors.iter().zip(data) {
            self.send(nb, buf);
        }
        ExchangeHandle {
            pending: neighbors.len(),
        }
    }

    /// Completes an exchange started by [`Communicator::start_exchange`]:
    /// receives one message from each neighbour, in neighbour order, into
    /// the caller-owned buffers. `neighbors` must be the list the exchange
    /// was started with. The modeled time this rank spends blocked on
    /// late messages is recorded as an `exchange-wait` span when tracing.
    ///
    /// # Panics
    /// Panics if the handle's pending count or `out` length disagrees with
    /// `neighbors`.
    fn finish_exchange(&self, handle: ExchangeHandle, neighbors: &[usize], out: &mut [Vec<f64>]) {
        assert_eq!(
            handle.pending,
            neighbors.len(),
            "finish_exchange: handle does not match neighbour list"
        );
        assert_eq!(
            neighbors.len(),
            out.len(),
            "finish_exchange: neighbour/output length mismatch"
        );
        let wait_start = self.virtual_time();
        for (&nb, buf) in neighbors.iter().zip(out.iter_mut()) {
            self.recv_into(nb, buf);
        }
        if let Some(tracer) = self.tracer() {
            tracer.span_begin("exchange-wait", wait_start);
            tracer.span_end("exchange-wait", self.virtual_time());
        }
    }

    /// Broadcasts `data` from `root` to every rank; all ranks (including
    /// the root) return the root's buffer. Flat fan-out over point-to-point
    /// messages — fine for the setup-phase uses it serves here.
    ///
    /// # Panics
    /// Panics if `root` is out of range.
    fn broadcast(&self, root: usize, data: &[f64]) -> Vec<f64> {
        assert!(root < self.size(), "broadcast: bad root {root}");
        if self.size() == 1 {
            return data.to_vec();
        }
        if self.rank() == root {
            for r in 0..self.size() {
                if r != root {
                    self.send(r, data);
                }
            }
            data.to_vec()
        } else {
            self.recv(root)
        }
    }

    /// Gathers every rank's buffer at `root`. The root receives the buffers
    /// in rank order (`Some(vec)` with `vec[r]` from rank `r`); other ranks
    /// return `None`.
    ///
    /// # Panics
    /// Panics if `root` is out of range.
    fn gather(&self, root: usize, data: &[f64]) -> Option<Vec<Vec<f64>>> {
        assert!(root < self.size(), "gather: bad root {root}");
        if self.rank() == root {
            let mut out = Vec::with_capacity(self.size());
            for r in 0..self.size() {
                if r == root {
                    out.push(data.to_vec());
                } else {
                    out.push(self.recv(r));
                }
            }
            Some(out)
        } else {
            self.send(root, data);
            None
        }
    }
}
