//! The communicator abstraction.
//!
//! Exactly the MPI subset the paper's algorithms use: paired point-to-point
//! messages on the subdomain interface graph, a summing all-reduce for the
//! Gram–Schmidt inner products, and a barrier. Implementations additionally
//! account virtual time (see [`crate::model`]) so modeled parallel
//! performance can be extracted from any run.
//!
//! # Failure model
//!
//! Every blocking operation has a fallible `try_*` form returning
//! [`CommError`] — a timeout on a hung peer, an immediate error on a
//! disconnected one, a typed give-up after a retransmission budget. The
//! plain (infallible) forms remain for setup code and tests: on failure
//! they **latch** the error on the endpoint (see [`Communicator::status`])
//! and degrade to a harmless no-op instead of panicking. Errors are sticky:
//! once latched, every subsequent fallible operation short-circuits with
//! the same error, so a degraded rank pays its wall-clock watchdog once and
//! then fails fast. Solver loops call `status()` at iteration boundaries to
//! convert a latched error into a typed solve failure.
//!
//! Programming errors — peer index out of range, self-send, mismatched
//! collective lengths — still panic: they are bugs, not runtime conditions.

use crate::error::CommError;
use crate::stats::CommStats;
use parfem_trace::RankTracer;

/// In-flight nonblocking neighbour exchange started by
/// [`Communicator::start_exchange`].
///
/// The handle records how many receives are still pending; it must be
/// passed back to [`Communicator::finish_exchange`] with the *same*
/// neighbour list to complete the round. Dropping it without finishing
/// leaves messages queued and the exchange-round accounting short, hence
/// `#[must_use]`.
#[must_use = "an exchange must be completed with finish_exchange"]
#[derive(Debug)]
pub struct ExchangeHandle {
    pending: usize,
}

impl ExchangeHandle {
    /// Number of receives still outstanding.
    pub fn pending(&self) -> usize {
        self.pending
    }
}

/// A rank's endpoint into a `P`-way communicator.
pub trait Communicator {
    /// This rank's id in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks.
    fn size(&self) -> usize;

    /// Fallible send with an extra virtual-latency penalty: the message is
    /// charged `extra_delay_s` modeled seconds *on top of* the machine
    /// model's `α + bytes/β` before it becomes visible to the receiver's
    /// clock. This is the hook the fault layer uses to charge
    /// retransmission backoff and injected delays to virtual time without
    /// perturbing the sender's own clock (the eager-send semantics).
    ///
    /// Implementations without a virtual clock may ignore the penalty.
    ///
    /// # Errors
    /// [`CommError::Disconnected`] if the peer's endpoint is gone; any
    /// previously latched error (sticky failure).
    ///
    /// # Panics
    /// Panics if `to` is out of range or equal to this rank.
    fn try_send_delayed(
        &self,
        to: usize,
        data: &[f64],
        extra_delay_s: f64,
    ) -> Result<(), CommError>;

    /// Fallible form of [`Communicator::send`].
    ///
    /// # Errors
    /// See [`Communicator::try_send_delayed`].
    ///
    /// # Panics
    /// Panics if `to` is out of range or equal to this rank.
    fn try_send(&self, to: usize, data: &[f64]) -> Result<(), CommError> {
        self.try_send_delayed(to, data, 0.0)
    }

    /// Sends `data` to rank `to` (asynchronous, unbounded buffering — the
    /// classic MPI eager protocol, which makes paired exchanges
    /// deadlock-free). On communication failure the error is latched (see
    /// [`Communicator::status`]) and the call is a no-op.
    ///
    /// # Panics
    /// Panics if `to` is out of range or equal to this rank.
    fn send(&self, to: usize, data: &[f64]) {
        if let Err(e) = self.try_send(to, data) {
            self.post_error(e);
        }
    }

    /// Fallible form of [`Communicator::recv`]: blocks until the next
    /// message from `from` arrives or the wall-clock watchdog expires.
    ///
    /// # Errors
    /// [`CommError::Timeout`] after the watchdog,
    /// [`CommError::Disconnected`] if the peer's endpoint is gone, or any
    /// previously latched error.
    ///
    /// # Panics
    /// Panics if `from` is out of range or equal to this rank.
    fn try_recv(&self, from: usize) -> Result<Vec<f64>, CommError>;

    /// Receives the next message from rank `from`, blocking.
    ///
    /// Messages between a fixed pair of ranks arrive in send order. On
    /// communication failure (timeout, disconnected peer) the error is
    /// latched (see [`Communicator::status`]) and an **empty** buffer is
    /// returned, so downstream arithmetic degrades to a no-op until the
    /// caller checks `status()`.
    ///
    /// # Panics
    /// Panics if `from` is out of range or equal to this rank.
    fn recv(&self, from: usize) -> Vec<f64> {
        match self.try_recv(from) {
            Ok(msg) => msg,
            Err(e) => {
                self.post_error(e);
                Vec::new()
            }
        }
    }

    /// Fallible form of [`Communicator::recv_into`].
    ///
    /// # Errors
    /// See [`Communicator::try_recv`]. On error `buf` is cleared.
    fn try_recv_into(&self, from: usize, buf: &mut Vec<f64>) -> Result<(), CommError> {
        buf.clear();
        match self.try_recv(from) {
            Ok(msg) => {
                buf.extend_from_slice(&msg);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// [`Communicator::recv`] into a caller-owned buffer, so a persistent
    /// buffer absorbs repeated receives without per-message allocation on
    /// the receiving side (once its capacity has grown to the message
    /// size). `buf` is cleared and refilled; its capacity is reused. On
    /// communication failure the error is latched and `buf` stays empty.
    fn recv_into(&self, from: usize, buf: &mut Vec<f64>) {
        if let Err(e) = self.try_recv_into(from, buf) {
            self.post_error(e);
        }
    }

    /// Fallible in-place all-reduce: `buf` is replaced by the element-wise
    /// sum over all ranks (summed in rank order, so the outcome is
    /// deterministic). All ranks must call with equal lengths.
    ///
    /// # Errors
    /// [`CommError::Timeout`] if some rank never reaches the collective
    /// within the watchdog, [`CommError::Poisoned`] if a participant
    /// panicked mid-rendezvous, or any previously latched error.
    ///
    /// # Panics
    /// Panics if ranks call with mismatched lengths.
    fn try_allreduce_sum_into(&self, buf: &mut [f64]) -> Result<(), CommError>;

    /// Element-wise sum of `v` across all ranks; every rank receives the
    /// same result. On communication failure the error is latched and `v`
    /// is returned unchanged (the single-rank identity).
    fn allreduce_sum(&self, v: &[f64]) -> Vec<f64> {
        let mut out = v.to_vec();
        if let Err(e) = self.try_allreduce_sum_into(&mut out) {
            self.post_error(e);
            out.copy_from_slice(v);
        }
        out
    }

    /// Fallible allocating all-reduce.
    ///
    /// # Errors
    /// See [`Communicator::try_allreduce_sum_into`].
    fn try_allreduce_sum(&self, v: &[f64]) -> Result<Vec<f64>, CommError> {
        let mut out = v.to_vec();
        self.try_allreduce_sum_into(&mut out)?;
        Ok(out)
    }

    /// In-place variant of [`Communicator::allreduce_sum`]: `buf` is
    /// replaced by the element-wise sum over all ranks. Lets hot loops
    /// (the batched Gram–Schmidt reduction) reuse one persistent buffer
    /// instead of allocating a result vector per iteration. Counts as
    /// exactly one all-reduce, like the allocating form. On failure the
    /// error is latched and `buf` is left as it was.
    fn allreduce_sum_into(&self, buf: &mut [f64]) {
        if let Err(e) = self.try_allreduce_sum_into(buf) {
            self.post_error(e);
        }
    }

    /// Scalar convenience wrapper over [`Communicator::allreduce_sum`].
    fn allreduce_sum_scalar(&self, v: f64) -> f64 {
        self.allreduce_sum(&[v])[0]
    }

    /// Fallible scalar all-reduce.
    ///
    /// # Errors
    /// See [`Communicator::try_allreduce_sum_into`].
    fn try_allreduce_sum_scalar(&self, v: f64) -> Result<f64, CommError> {
        let mut buf = [v];
        self.try_allreduce_sum_into(&mut buf)?;
        Ok(buf[0])
    }

    /// Fallible form of [`Communicator::barrier`].
    ///
    /// # Errors
    /// See [`Communicator::try_allreduce_sum_into`].
    fn try_barrier(&self) -> Result<(), CommError>;

    /// Blocks until every rank reaches the barrier. On failure the error is
    /// latched and the call returns.
    fn barrier(&self) {
        if let Err(e) = self.try_barrier() {
            self.post_error(e);
        }
    }

    /// The endpoint's latched failure state: `Ok(())` while healthy, the
    /// first observed [`CommError`] once anything failed. Solver loops call
    /// this at iteration boundaries — the infallible operations degrade to
    /// no-ops after a failure, so checking here converts silent degradation
    /// into a typed error exactly once per solve.
    ///
    /// # Errors
    /// The first communication failure observed by this endpoint.
    fn status(&self) -> Result<(), CommError>;

    /// Latches `err` as this endpoint's failure state (first error wins).
    /// Called by the infallible wrappers; also available to wrappers such
    /// as the fault layer to record out-of-band failures.
    fn post_error(&self, err: CommError);

    /// Reports `flops` of local computation to the virtual clock.
    fn work(&self, flops: u64);

    /// This rank's current virtual time in modeled seconds.
    fn virtual_time(&self) -> f64;

    /// Snapshot of this rank's communication counters.
    fn stats(&self) -> CommStats;

    /// Increments the nearest-neighbour-exchange round counter (called once
    /// per `⊕Σ_{∂Ω}` operation by the distributed vector code).
    fn count_neighbor_exchange(&self);

    /// Announces the neighbour list of an exchange round *before* its sends
    /// are posted, so topology-aware endpoints can derive deterministic
    /// link-sharing (contention) factors for the batch — see
    /// [`Topology::contention_factors`](crate::topology::Topology::contention_factors).
    /// The default (and any flat-topology endpoint) is a no-op. Called by
    /// the default `exchange*` implementations; wrappers must forward it to
    /// their inner communicator.
    fn note_exchange_batch(&self, _neighbors: &[usize]) {}

    /// Closes the send half of an exchange round: batch contention factors
    /// stop applying to subsequent sends. Paired with
    /// [`Communicator::note_exchange_batch`]; default no-op.
    fn end_exchange_batch(&self) {}

    /// The structured-event tracer attached to this rank, when the run was
    /// started under a recording [`parfem_trace::TraceSink`]. Solver code
    /// uses this to emit per-iteration events and hot-path counters; the
    /// default (and any untraced run) is `None`, so instrumentation costs a
    /// single branch when tracing is off.
    fn tracer(&self) -> Option<&RankTracer> {
        None
    }

    /// Exchanges `data[k]` with `neighbors[k]` for all `k` and returns the
    /// received buffers in the same order. This is the communication kernel
    /// of the paper's interface sum: all sends are posted first, then all
    /// receives, so the exchange cannot deadlock.
    ///
    /// # Panics
    /// Panics if `neighbors` and `data` lengths differ.
    fn exchange(&self, neighbors: &[usize], data: &[Vec<f64>]) -> Vec<Vec<f64>> {
        assert_eq!(
            neighbors.len(),
            data.len(),
            "exchange: neighbour/data length mismatch"
        );
        self.count_neighbor_exchange();
        self.note_exchange_batch(neighbors);
        for (&nb, buf) in neighbors.iter().zip(data) {
            self.send(nb, buf);
        }
        self.end_exchange_batch();
        neighbors.iter().map(|&nb| self.recv(nb)).collect()
    }

    /// [`Communicator::exchange`] into caller-owned receive buffers (one
    /// per neighbour, capacities reused across rounds). Counts as one
    /// neighbour-exchange round, like the allocating form.
    ///
    /// # Panics
    /// Panics if `neighbors`, `data` and `out` lengths differ.
    fn exchange_into(&self, neighbors: &[usize], data: &[Vec<f64>], out: &mut [Vec<f64>]) {
        if let Err(e) = self.try_exchange_into(neighbors, data, out) {
            self.post_error(e);
        }
    }

    /// Fallible form of [`Communicator::exchange_into`]: stops at the first
    /// failing send or receive.
    ///
    /// # Errors
    /// The first send/receive failure of the round.
    ///
    /// # Panics
    /// Panics if `neighbors`, `data` and `out` lengths differ.
    fn try_exchange_into(
        &self,
        neighbors: &[usize],
        data: &[Vec<f64>],
        out: &mut [Vec<f64>],
    ) -> Result<(), CommError> {
        assert_eq!(
            neighbors.len(),
            data.len(),
            "exchange_into: neighbour/data length mismatch"
        );
        assert_eq!(
            neighbors.len(),
            out.len(),
            "exchange_into: neighbour/output length mismatch"
        );
        self.count_neighbor_exchange();
        self.note_exchange_batch(neighbors);
        let mut sent = Ok(());
        for (&nb, buf) in neighbors.iter().zip(data) {
            if let Err(e) = self.try_send(nb, buf) {
                sent = Err(e);
                break;
            }
        }
        self.end_exchange_batch();
        sent?;
        for (&nb, buf) in neighbors.iter().zip(out.iter_mut()) {
            self.try_recv_into(nb, buf)?;
        }
        Ok(())
    }

    /// Nonblocking half of [`Communicator::exchange_into`]: posts the sends
    /// to every neighbour and returns immediately with an
    /// [`ExchangeHandle`], *without* waiting for the matching receives. The
    /// caller computes while the messages fly and completes the round with
    /// [`Communicator::finish_exchange`].
    ///
    /// Counts as the exchange round's single `count_neighbor_exchange`
    /// (the finish half counts nothing), so a split exchange is
    /// indistinguishable from a blocking one in the communication
    /// statistics.
    ///
    /// Under the virtual-time model this is what buys overlap: the sends
    /// are stamped with the clock *at posting time*, so a receiver that
    /// computes before collecting them advances to
    /// `max(own compute, message arrival)` instead of their sum — see
    /// [`MachineModel::overlapped_time`](crate::model::MachineModel::overlapped_time).
    ///
    /// On a send failure the error is latched and the remaining sends are
    /// skipped; the matching [`Communicator::finish_exchange`] then fails
    /// fast on the sticky error.
    ///
    /// # Panics
    /// Panics if `neighbors` and `data` lengths differ.
    fn start_exchange(&self, neighbors: &[usize], data: &[Vec<f64>]) -> ExchangeHandle {
        assert_eq!(
            neighbors.len(),
            data.len(),
            "start_exchange: neighbour/data length mismatch"
        );
        self.count_neighbor_exchange();
        self.note_exchange_batch(neighbors);
        for (&nb, buf) in neighbors.iter().zip(data) {
            if let Err(e) = self.try_send(nb, buf) {
                self.post_error(e);
                break;
            }
        }
        self.end_exchange_batch();
        ExchangeHandle {
            pending: neighbors.len(),
        }
    }

    /// Completes an exchange started by [`Communicator::start_exchange`]:
    /// receives one message from each neighbour, in neighbour order, into
    /// the caller-owned buffers. `neighbors` must be the list the exchange
    /// was started with. The modeled time this rank spends blocked on
    /// late messages is recorded as an `exchange-wait` span when tracing.
    /// On a receive failure the error is latched and the remaining buffers
    /// are cleared.
    ///
    /// # Panics
    /// Panics if the handle's pending count or `out` length disagrees with
    /// `neighbors`.
    fn finish_exchange(&self, handle: ExchangeHandle, neighbors: &[usize], out: &mut [Vec<f64>]) {
        assert_eq!(
            handle.pending,
            neighbors.len(),
            "finish_exchange: handle does not match neighbour list"
        );
        assert_eq!(
            neighbors.len(),
            out.len(),
            "finish_exchange: neighbour/output length mismatch"
        );
        let wait_start = self.virtual_time();
        for (&nb, buf) in neighbors.iter().zip(out.iter_mut()) {
            self.recv_into(nb, buf);
        }
        if let Some(tracer) = self.tracer() {
            tracer.span_begin("exchange-wait", wait_start);
            tracer.span_end("exchange-wait", self.virtual_time());
        }
    }

    /// Broadcasts `data` from `root` to every rank; all ranks (including
    /// the root) return the root's buffer. Flat fan-out over point-to-point
    /// messages — fine for the setup-phase uses it serves here.
    ///
    /// # Panics
    /// Panics if `root` is out of range.
    fn broadcast(&self, root: usize, data: &[f64]) -> Vec<f64> {
        assert!(root < self.size(), "broadcast: bad root {root}");
        if self.size() == 1 {
            return data.to_vec();
        }
        if self.rank() == root {
            for r in 0..self.size() {
                if r != root {
                    self.send(r, data);
                }
            }
            data.to_vec()
        } else {
            self.recv(root)
        }
    }

    /// Gathers every rank's buffer at `root`. The root receives the buffers
    /// in rank order (`Some(vec)` with `vec[r]` from rank `r`); other ranks
    /// return `None`.
    ///
    /// # Panics
    /// Panics if `root` is out of range.
    fn gather(&self, root: usize, data: &[f64]) -> Option<Vec<Vec<f64>>> {
        assert!(root < self.size(), "gather: bad root {root}");
        if self.rank() == root {
            let mut out = Vec::with_capacity(self.size());
            for r in 0..self.size() {
                if r == root {
                    out.push(data.to_vec());
                } else {
                    out.push(self.recv(r));
                }
            }
            Some(out)
        } else {
            self.send(root, data);
            None
        }
    }
}
