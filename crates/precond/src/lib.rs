//! Preconditioners for the `parfem` solver stack.
//!
//! The paper's central contribution is pairing element-based domain
//! decomposition with **polynomial preconditioners**, which need nothing but
//! matrix–vector products — the one operation the distributed formats
//! provide cheaply. This crate implements:
//!
//! - [`neumann`] — the Neumann-series preconditioner
//!   `P_m(A) = ω (I + G + … + G^m)`, `G = I − ωA` (paper Section 2.1.2,
//!   Algorithm 7),
//! - [`gls`] — the generalized least-squares polynomial built from
//!   orthogonal polynomials via the Stieltjes procedure over an arbitrary
//!   union of disjoint spectrum intervals (Section 2.1.3),
//! - [`poly`] — monomial-coefficient utilities and the floating-point
//!   stability bound `mε Σ|a_i|` of Eq. 24 (Fig. 3),
//! - [`jacobi`], [`identity`] — the trivial comparators,
//! - [`ilu0`] — a [`Preconditioner`] wrapper around
//!   [`parfem_sparse::Ilu0`], the sequential comparator of Figs. 11–12,
//! - [`mixed`] — `f32` mirrors of the polynomial preconditioners for
//!   mixed-precision runs (outer FGMRES stays `f64`),
//! - [`direct`] — the exact rank-local sparse direct solve (RCM-ordered
//!   profile LDLᵀ), pivot-tolerant where ILU(0) fails on floating
//!   subdomains,
//! - [`twolevel`] — the two-level coarse-space correction (per-subdomain
//!   constant/rigid-body/low-rank modes, a directly factored Galerkin
//!   coarse operator, additive and multiplicative composition around the
//!   polynomial smoothers),
//! - [`registry`] — the one spec type ([`PrecondSpec`]) every solver,
//!   binary and test parses and builds preconditioners through.
//!
//! All preconditioners implement [`Preconditioner`] over an abstract
//! [`LinearOperator`], so the identical code runs sequentially and inside
//! the element-/row-based distributed solvers.

#![deny(missing_docs)]
#![warn(clippy::all)]
// Indexed `for r in 0..n` loops are the idiomatic form for the sparse/FEM
// kernels in this workspace (the index feeds several arrays and the CSR
// row spans at once); the iterator forms clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]

pub mod adaptive;
pub mod chebyshev;
pub mod direct;
pub mod gls;
pub mod identity;
pub mod ilu0;
pub mod jacobi;
pub mod mixed;
pub mod neumann;
pub mod poly;
pub mod registry;
pub mod schwarz;
pub mod twolevel;

pub use adaptive::EscalatingGls;
pub use chebyshev::ChebyshevPrecond;
pub use direct::DirectPrecond;
pub use gls::{GlsPrecond, IntervalUnion};
pub use identity::IdentityPrecond;
pub use ilu0::Ilu0Precond;
pub use jacobi::JacobiPrecond;
pub use mixed::{GlsPrecondF32, NeumannPrecondF32};
pub use neumann::NeumannPrecond;
pub use registry::{BuiltPrecond, ParseSpecError, PrecondSpec};
pub use schwarz::BlockJacobiPrecond;
pub use twolevel::{
    build_coarse_basis, CoarseBasis, CoarsePartGeometry, CoarseReduce, CoarseSolver, CoarseSpec,
    Composition, SpecPrecond, TwoLevelPrecond,
};

use parfem_sparse::LinearOperator;

/// The hook a rank-local *subdomain solve* needs from a distributed
/// operator: re-imposing interface agreement on per-rank solutions.
///
/// Element-based (EDD) local vectors replicate interface entries across the
/// subdomains sharing them, and an exact local solve gives each sharing
/// rank a *different* interface value — so [`DirectPrecond`] must follow
/// its solve with the partition-of-unity average `z ← ⊕Σ z/mult` (weight by
/// `1/multiplicity`, then neighbour-sum), restoring the replication
/// invariant and making the composite the classical multiplicity-weighted
/// additive Schwarz step. Operators whose vectors are not replicated —
/// sequential matrices, RDD block rows — are already consistent, and the
/// default no-op applies.
pub trait InterfaceConsistency {
    /// Restores interface agreement on the per-rank vector `z`. No-op for
    /// operators without replicated interface entries.
    fn make_consistent(&self, z: &mut [f64]) {
        let _ = z;
    }
}

/// Sequential operators hold the whole vector — nothing is replicated.
impl InterfaceConsistency for parfem_sparse::CsrMatrix {}

/// A (possibly operator-dependent) preconditioner `z = C v`.
///
/// Polynomial preconditioners evaluate `P_m(A) v` through the operator `op`
/// passed at application time; factorization-based preconditioners (ILU,
/// Jacobi) carry their own data and ignore `op`. Passing the operator at
/// apply time is what lets one `GlsPrecond` serve every subdomain of a
/// distributed solve.
pub trait Preconditioner<Op: LinearOperator + ?Sized> {
    /// Applies the preconditioner: `z = C v`.
    ///
    /// # Panics
    /// Implementations panic on length mismatches.
    fn apply_into(&self, op: &Op, v: &[f64], z: &mut [f64]);

    /// Allocating convenience wrapper.
    fn apply(&self, op: &Op, v: &[f64]) -> Vec<f64> {
        let mut z = vec![0.0; v.len()];
        self.apply_into(op, v, &mut z);
        z
    }

    /// Number of length-`op.dim()` scratch vectors
    /// [`Preconditioner::apply_scratch`] consumes. Zero for data-only
    /// preconditioners (Jacobi, ILU, identity) whose application already
    /// runs allocation-free.
    fn scratch_vectors(&self) -> usize {
        0
    }

    /// Applies the preconditioner using caller-owned scratch storage.
    ///
    /// `scratch` must hold at least [`Preconditioner::scratch_vectors`]
    /// vectors, each of length `op.dim()`; their contents on entry are
    /// irrelevant (implementations overwrite or zero what they use). With
    /// adequate scratch the application performs **no heap allocation** and
    /// produces a result bit-identical to [`Preconditioner::apply_into`] —
    /// the Krylov workspace relies on both properties.
    ///
    /// The default ignores `scratch` and delegates to `apply_into`, which
    /// is correct (if allocating) for every implementation.
    fn apply_scratch(&self, op: &Op, v: &[f64], z: &mut [f64], scratch: &mut [Vec<f64>]) {
        let _ = scratch;
        self.apply_into(op, v, z);
    }

    /// `true` iff this preconditioner is exactly the identity (`z = v`,
    /// bit-for-bit). Solvers use it to elide the `z = C v` copy and alias
    /// the Krylov basis vector instead — a pure memory-traffic optimization
    /// that cannot change any result. Only [`IdentityPrecond`] returns
    /// `true`; preconditioners that merely *happen* to act as the identity
    /// (e.g. a degree-0 polynomial) must not.
    fn is_identity(&self) -> bool {
        false
    }

    /// Number of operator applications (matrix–vector products) one
    /// preconditioner application costs. Zero for matrix-free data-only
    /// preconditioners like Jacobi/ILU.
    fn operator_applications(&self) -> usize {
        0
    }

    /// The cost of the *next* application. Identical to
    /// [`Preconditioner::operator_applications`] for fixed preconditioners;
    /// degree-schedule preconditioners (see [`EscalatingGls`]) override it so
    /// tracing can record the active degree at each FGMRES iteration.
    fn current_operator_applications(&self) -> usize {
        self.operator_applications()
    }

    /// Short human-readable name, e.g. `gls(7)` — used by the experiment
    /// harness to label convergence curves exactly like the paper.
    fn name(&self) -> String;
}
