//! The Neumann-series polynomial preconditioner (paper Section 2.1.2).
//!
//! From `A^{-1} = ω (I − G)^{-1} = ω Σ Gᵏ` with `G = I − ωA` (Theorem 2),
//! truncating at degree `m` gives
//!
//! ```text
//! P_m(A) = ω (I + G + G² + … + G^m)
//! ```
//!
//! which converges when `ρ(G) < 1`, i.e. `σ(A) ⊂ (0, 2/ω)`. After the
//! norm-1 diagonal scaling (`σ(A) ⊂ (0, 1)`) the natural choice is `ω = 1`;
//! for an unscaled SPD matrix with Gershgorin bound `h̄` use `ω = 1/h̄`.
//!
//! The residual polynomial has the closed form
//! `1 − λ P_m(λ) = (1 − ωλ)^{m+1}`, which generates Fig. 1.

use crate::poly::Poly;
use crate::Preconditioner;
use parfem_sparse::LinearOperator;

/// Neumann-series preconditioner of degree `m` with scaling factor `ω`.
#[derive(Debug, Clone, Copy)]
pub struct NeumannPrecond {
    degree: usize,
    omega: f64,
}

impl NeumannPrecond {
    /// Creates the preconditioner.
    ///
    /// # Panics
    /// Panics if `omega` is not positive.
    pub fn new(degree: usize, omega: f64) -> Self {
        assert!(omega > 0.0, "omega must be positive");
        NeumannPrecond { degree, omega }
    }

    /// The preconditioner for a system scaled to `σ(A) ⊂ (0, 1)` (`ω = 1`).
    pub fn for_scaled_system(degree: usize) -> Self {
        Self::new(degree, 1.0)
    }

    /// The preconditioner for `σ(A) ⊂ (0, upper)` (`ω = 1/upper`).
    ///
    /// # Panics
    /// Panics if `upper` is not positive.
    pub fn for_spectrum_upper_bound(degree: usize, upper: f64) -> Self {
        assert!(upper > 0.0, "spectrum upper bound must be positive");
        Self::new(degree, 1.0 / upper)
    }

    /// Polynomial degree `m`.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Scaling factor `ω`.
    pub fn omega(&self) -> f64 {
        self.omega
    }

    /// The residual polynomial `1 − λ P_m(λ) = (1 − ωλ)^{m+1}` (Fig. 1).
    pub fn residual(&self, lambda: f64) -> f64 {
        (1.0 - self.omega * lambda).powi(self.degree as i32 + 1)
    }

    /// Scalar evaluation `P_m(λ)` (for plots and tests).
    pub fn eval(&self, lambda: f64) -> f64 {
        // omega * sum_{i=0}^{m} (1 - omega*lambda)^i, Horner-style.
        let g = 1.0 - self.omega * lambda;
        let mut acc = 1.0;
        for _ in 0..self.degree {
            acc = 1.0 + g * acc;
        }
        self.omega * acc
    }

    /// Monomial coefficients of `P_m` (for the Fig. 3 stability study).
    pub fn monomial(&self) -> Poly {
        // P = omega * sum G^i, G = 1 - omega*x.
        let mut g_pow = Poly::constant(1.0);
        let mut sum = Poly::constant(1.0);
        for _ in 0..self.degree {
            g_pow = g_pow.mul_linear(-self.omega, 1.0);
            sum = sum.add_scaled(1.0, &g_pow);
        }
        sum.scale(self.omega)
    }
}

impl<Op: LinearOperator + ?Sized> Preconditioner<Op> for NeumannPrecond {
    fn apply_into(&self, op: &Op, v: &[f64], z: &mut [f64]) {
        let mut scratch = vec![vec![0.0; op.dim()]];
        self.apply_scratch(op, v, z, &mut scratch);
    }

    fn scratch_vectors(&self) -> usize {
        1
    }

    fn apply_scratch(&self, op: &Op, v: &[f64], z: &mut [f64], scratch: &mut [Vec<f64>]) {
        let n = op.dim();
        assert_eq!(v.len(), n, "neumann: v length mismatch");
        assert_eq!(z.len(), n, "neumann: z length mismatch");
        let az = &mut scratch[0];
        assert_eq!(az.len(), n, "neumann: scratch length mismatch");
        // z_{k+1} = v + G z_k = v + z_k - omega * A z_k; start z_0 = v.
        // After m updates z = (I + G + ... + G^m) v; result omega * z.
        z.copy_from_slice(v);
        for _ in 0..self.degree {
            op.apply_into(z, az);
            for i in 0..n {
                z[i] = v[i] + z[i] - self.omega * az[i];
            }
        }
        for zi in z.iter_mut() {
            *zi *= self.omega;
        }
    }

    fn operator_applications(&self) -> usize {
        self.degree
    }

    fn name(&self) -> String {
        format!("neumann({})", self.degree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfem_sparse::{CooMatrix, CsrMatrix};

    fn scaled_laplacian(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 0.5).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -0.25).unwrap();
                coo.push(i + 1, i, -0.25).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn degree_zero_is_scaled_identity() {
        let a = scaled_laplacian(4);
        let p = NeumannPrecond::new(0, 2.0);
        let v = [1.0, 2.0, 3.0, 4.0];
        let z = p.apply(&a, &v);
        assert_eq!(z, vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn matrix_application_matches_scalar_eval_on_diagonal() {
        // For diagonal A, P_m(A) is diagonal with entries P_m(a_ii).
        let a = CsrMatrix::from_diagonal(&[0.2, 0.5, 0.9]);
        let p = NeumannPrecond::for_scaled_system(6);
        let z = p.apply(&a, &[1.0, 1.0, 1.0]);
        for (zi, d) in z.iter().zip([0.2, 0.5, 0.9]) {
            assert!((zi - p.eval(d)).abs() < 1e-12, "{zi} vs {}", p.eval(d));
        }
    }

    #[test]
    fn residual_closed_form_matches_definition() {
        let p = NeumannPrecond::new(5, 0.8);
        for &l in &[0.1, 0.5, 1.0, 1.2] {
            let direct = 1.0 - l * p.eval(l);
            assert!((p.residual(l) - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn residual_shrinks_with_degree_inside_spectrum() {
        for &l in &[0.2, 0.5, 0.8] {
            let r5 = NeumannPrecond::for_scaled_system(5).residual(l).abs();
            let r10 = NeumannPrecond::for_scaled_system(10).residual(l).abs();
            let r20 = NeumannPrecond::for_scaled_system(20).residual(l).abs();
            assert!(r10 < r5 && r20 < r10, "at lambda={l}: {r5} {r10} {r20}");
        }
    }

    #[test]
    fn preconditioned_matrix_approximates_inverse() {
        // ||P_m(A) A v - v|| must shrink as m grows, for sigma(A) in (0,1).
        let a = scaled_laplacian(12);
        let v: Vec<f64> = (0..12).map(|i| ((i * 7 % 5) as f64) - 2.0).collect();
        let mut prev = f64::INFINITY;
        for m in [2usize, 6, 12, 24] {
            let p = NeumannPrecond::for_scaled_system(m);
            let av = a.spmv(&v);
            let pav = p.apply(&a, &av);
            let err: f64 = pav
                .iter()
                .zip(&v)
                .map(|(x, y)| (x - y).powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(err < prev, "degree {m}: {err} !< {prev}");
            prev = err;
        }
        // Neumann damps an eigencomponent at lambda by (1-lambda)^{m+1}, so
        // the smallest eigenvalue (~0.0146 here) limits the final error —
        // exactly why the paper prefers GLS for ill-conditioned systems.
        assert!(prev < 0.5, "final error {prev}");
    }

    #[test]
    fn monomial_form_matches_eval() {
        let p = NeumannPrecond::new(7, 0.9);
        let poly = p.monomial();
        assert_eq!(poly.degree(), 7);
        for &l in &[0.0, 0.3, 0.7, 1.1] {
            assert!((poly.eval(l) - p.eval(l)).abs() < 1e-10);
        }
    }

    #[test]
    fn spectrum_bound_constructor_sets_omega() {
        let p = NeumannPrecond::for_spectrum_upper_bound(3, 4.0);
        assert_eq!(p.omega(), 0.25);
        assert_eq!(p.degree(), 3);
        assert_eq!(
            Preconditioner::<CsrMatrix>::name(&p),
            "neumann(3)".to_string()
        );
        assert_eq!(Preconditioner::<CsrMatrix>::operator_applications(&p), 3);
    }

    #[test]
    #[should_panic(expected = "omega must be positive")]
    fn non_positive_omega_rejected() {
        NeumannPrecond::new(3, 0.0);
    }
}
