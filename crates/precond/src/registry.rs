//! The preconditioner registry: one spec type, one parser, one factory.
//!
//! Every consumer of a preconditioner — the CLI's `--precond` flag, the
//! distributed [`SolveSession`](https://docs.rs/parfem-dd) pipeline, the
//! bench harness and the tests — goes through this module:
//!
//! 1. [`PrecondSpec::parse`] turns a spec string (`gls:7`, `neumann:3`,
//!    `gls-escalating:5`, …) into a typed [`PrecondSpec`], with a typed
//!    [`ParseSpecError`] for every malformed arm,
//! 2. [`PrecondSpec::build`] constructs the boxed scratch-aware
//!    [`Preconditioner`] for **any** [`LinearOperator`] — the identical
//!    factory serves the sequential solver, the element-based and the
//!    row-based distributed operators,
//! 3. [`grammar_help`] renders the accepted grammar so the CLI usage text
//!    and the README document the registry itself rather than a copy.
//!
//! The parser also accepts the *display* form produced by
//! [`PrecondSpec::name`] (`gls(7)`, `gls-escalating(x5)`), so
//! `parse(spec.name())` round-trips for every spec — pinned by proptest.

use crate::twolevel::{CoarseSolver, CoarseSpec, Composition, SpecPrecond, TwoLevelPrecond};
use crate::{
    ChebyshevPrecond, DirectPrecond, EscalatingGls, GlsPrecond, GlsPrecondF32, IdentityPrecond,
    InterfaceConsistency, IntervalUnion, JacobiPrecond, NeumannPrecond, NeumannPrecondF32,
    Preconditioner,
};
use parfem_sparse::{CsrMatrix, LinearOperator};
use std::fmt;

/// Which preconditioner a solver should build.
#[derive(Debug, Clone, PartialEq)]
pub enum PrecondSpec {
    /// No preconditioning.
    None,
    /// Diagonal (Jacobi) preconditioning on the assembled diagonal.
    Jacobi,
    /// GLS polynomial of the given degree; `theta` defaults to the
    /// post-scaling `(ε, 1)`.
    Gls {
        /// Polynomial degree `m`.
        degree: usize,
        /// Spectrum estimate; `None` means `(ε, 1)`.
        theta: Option<IntervalUnion>,
    },
    /// Neumann series of the given degree (`ω = 1` after scaling).
    Neumann {
        /// Polynomial degree `m`.
        degree: usize,
    },
    /// GLS polynomial applied in `f32` (mixed precision; outer solver stays
    /// `f64`), on the post-scaling `(ε, 1)`.
    GlsF32 {
        /// Polynomial degree `m`.
        degree: usize,
    },
    /// Neumann series applied in `f32` (mixed precision; `ω = 1`).
    NeumannF32 {
        /// Polynomial degree `m`.
        degree: usize,
    },
    /// Chebyshev (min-max) polynomial on the post-scaling interval.
    Chebyshev {
        /// Polynomial degree `m`.
        degree: usize,
    },
    /// Degree-escalating GLS (1→3→7→10) switching every `period`
    /// applications — the flexible-GMRES showcase. Each rank holds its own
    /// schedule state; since every rank performs the same sequence of
    /// applications, the schedules stay in lock step.
    GlsEscalating {
        /// Applications per schedule stage.
        period: usize,
    },
    /// Exact rank-local sparse direct solve (RCM-ordered profile LDLᵀ with
    /// pivot skipping — well-defined even on floating subdomains where
    /// ILU(0) hits the paper's Eq. 45 zero pivot). Needs the rank-local
    /// matrix at build time — see [`PrecondSpec::instantiate_full`]; the
    /// plain [`PrecondSpec::build`]/[`PrecondSpec::instantiate`] panic for
    /// this arm.
    Direct,
    /// Two-level preconditioning: a per-subdomain coarse space composed
    /// around a one-level smoother (`twolevel:<coarse>:<smoother>[:add]`).
    /// Needs a coarse solver at build time — see
    /// [`PrecondSpec::instantiate_with_coarse`]; the plain
    /// [`PrecondSpec::build`]/[`PrecondSpec::instantiate`] panic for this
    /// arm.
    TwoLevel {
        /// Which coarse space to build per part.
        coarse: CoarseSpec,
        /// The one-level smoother spec (never itself `TwoLevel` when
        /// produced by the parser).
        smoother: Box<PrecondSpec>,
        /// `true` for additive composition (`:add`); multiplicative
        /// otherwise.
        additive: bool,
    },
}

/// Renders a smoother as a `twolevel` sub-segment, with `-` standing in
/// for the degree separator so the segment stays colon-free: `gls-3`,
/// `neumann-f32-2`, `jacobi`.
fn smoother_token(spec: &PrecondSpec) -> String {
    match spec {
        PrecondSpec::None => "none".into(),
        PrecondSpec::Jacobi => "jacobi".into(),
        PrecondSpec::Gls { degree, .. } => format!("gls-{degree}"),
        PrecondSpec::Neumann { degree } => format!("neumann-{degree}"),
        PrecondSpec::GlsF32 { degree } => format!("gls-f32-{degree}"),
        PrecondSpec::NeumannF32 { degree } => format!("neumann-f32-{degree}"),
        PrecondSpec::Chebyshev { degree } => format!("chebyshev-{degree}"),
        PrecondSpec::Direct => "direct".into(),
        // Not parseable back (the registry rejects stateful smoothers
        // inside twolevel), but printable for hand-built specs.
        PrecondSpec::GlsEscalating { period } => format!("gls-escalating-{period}"),
        PrecondSpec::TwoLevel { .. } => "twolevel".into(),
    }
}

/// Parses a `twolevel` smoother sub-segment (the inverse of
/// [`smoother_token`] over the accepted set).
fn parse_smoother(tok: &str) -> Result<PrecondSpec, ParseSpecError> {
    let bad = || ParseSpecError::BadSmoother(tok.to_string());
    match tok {
        "none" => Ok(PrecondSpec::None),
        "jacobi" => Ok(PrecondSpec::Jacobi),
        "direct" => Ok(PrecondSpec::Direct),
        _ => {
            let (base, deg) = tok.rsplit_once('-').ok_or_else(bad)?;
            let degree: usize = deg.parse().map_err(|_| bad())?;
            match base {
                "gls" => Ok(PrecondSpec::Gls {
                    degree,
                    theta: None,
                }),
                "neumann" => Ok(PrecondSpec::Neumann { degree }),
                "gls-f32" => Ok(PrecondSpec::GlsF32 { degree }),
                "neumann-f32" => Ok(PrecondSpec::NeumannF32 { degree }),
                "chebyshev" => Ok(PrecondSpec::Chebyshev { degree }),
                _ => Err(bad()),
            }
        }
    }
}

impl PrecondSpec {
    /// Display name matching the paper's curve labels, e.g. `gls(7)`.
    ///
    /// [`PrecondSpec::parse`] accepts this form back, so the name doubles
    /// as a serialization (modulo `theta`, which no string form carries).
    pub fn name(&self) -> String {
        match self {
            PrecondSpec::None => "none".into(),
            PrecondSpec::Jacobi => "jacobi".into(),
            PrecondSpec::Gls { degree, .. } => format!("gls({degree})"),
            PrecondSpec::Neumann { degree } => format!("neumann({degree})"),
            PrecondSpec::GlsF32 { degree } => format!("gls-f32({degree})"),
            PrecondSpec::NeumannF32 { degree } => format!("neumann-f32({degree})"),
            PrecondSpec::Chebyshev { degree } => format!("chebyshev({degree})"),
            PrecondSpec::GlsEscalating { period } => format!("gls-escalating(x{period})"),
            PrecondSpec::Direct => "direct".into(),
            PrecondSpec::TwoLevel { .. } => self.spec_str(),
        }
    }

    /// Canonical CLI spec string, e.g. `gls:7` — the form `--precond`
    /// takes. `parse(spec.spec_str()) == spec` for every spec (modulo
    /// `theta`).
    pub fn spec_str(&self) -> String {
        match self {
            PrecondSpec::None => "none".into(),
            PrecondSpec::Jacobi => "jacobi".into(),
            PrecondSpec::Gls { degree, .. } => format!("gls:{degree}"),
            PrecondSpec::Neumann { degree } => format!("neumann:{degree}"),
            PrecondSpec::GlsF32 { degree } => format!("gls-f32:{degree}"),
            PrecondSpec::NeumannF32 { degree } => format!("neumann-f32:{degree}"),
            PrecondSpec::Chebyshev { degree } => format!("chebyshev:{degree}"),
            PrecondSpec::GlsEscalating { period } => format!("gls-escalating:{period}"),
            PrecondSpec::Direct => "direct".into(),
            PrecondSpec::TwoLevel {
                coarse,
                smoother,
                additive,
            } => format!(
                "twolevel:{}:{}{}",
                coarse.token(),
                smoother_token(smoother),
                if *additive { ":add" } else { "" }
            ),
        }
    }

    /// Parses a spec string in either the CLI grammar (`gls:7`) or the
    /// display form produced by [`PrecondSpec::name`] (`gls(7)`,
    /// `gls-escalating(x5)`).
    ///
    /// # Errors
    /// Returns a typed [`ParseSpecError`] naming exactly which part of the
    /// spec is malformed.
    pub fn parse(spec: &str) -> Result<PrecondSpec, ParseSpecError> {
        let spec = spec.trim();
        // Split `kind:arg` (CLI grammar) or `kind(arg)` (display form).
        let (kind, arg) = if let Some((k, rest)) = spec.split_once('(') {
            let inner = rest
                .strip_suffix(')')
                .ok_or_else(|| ParseSpecError::UnknownKind(spec.to_string()))?;
            (k, Some(inner))
        } else if let Some((k, d)) = spec.split_once(':') {
            (k, Some(d))
        } else {
            (spec, None)
        };
        let degree = |arg: Option<&str>| -> Result<usize, ParseSpecError> {
            let d = arg.ok_or(ParseSpecError::MissingDegree {
                kind: kind.to_string(),
            })?;
            d.parse().map_err(|_| ParseSpecError::BadDegree {
                kind: kind.to_string(),
                given: d.to_string(),
            })
        };
        let no_arg = |spec: PrecondSpec| -> Result<PrecondSpec, ParseSpecError> {
            match arg {
                None => Ok(spec),
                Some(a) => Err(ParseSpecError::UnexpectedArgument {
                    kind: kind.to_string(),
                    given: a.to_string(),
                }),
            }
        };
        match kind {
            "none" => no_arg(PrecondSpec::None),
            "jacobi" => no_arg(PrecondSpec::Jacobi),
            "direct" => no_arg(PrecondSpec::Direct),
            "gls" => Ok(PrecondSpec::Gls {
                degree: degree(arg)?,
                theta: None,
            }),
            "neumann" => Ok(PrecondSpec::Neumann {
                degree: degree(arg)?,
            }),
            "gls-f32" => Ok(PrecondSpec::GlsF32 {
                degree: degree(arg)?,
            }),
            "neumann-f32" => Ok(PrecondSpec::NeumannF32 {
                degree: degree(arg)?,
            }),
            "chebyshev" => Ok(PrecondSpec::Chebyshev {
                degree: degree(arg)?,
            }),
            "twolevel" => {
                // `arg` holds everything after the first `:` — e.g.
                // `rbm:gls-3` or `lowrank-8:neumann-2:add`.
                let rest = arg
                    .filter(|a| !a.is_empty())
                    .ok_or(ParseSpecError::MissingCoarse)?;
                let mut segs = rest.split(':');
                let coarse_tok = segs.next().unwrap_or("");
                let coarse = CoarseSpec::parse(coarse_tok)
                    .ok_or_else(|| ParseSpecError::BadCoarse(coarse_tok.to_string()))?;
                let smoother_tok = segs.next().ok_or(ParseSpecError::MissingSmoother)?;
                let smoother = parse_smoother(smoother_tok)?;
                let additive = match segs.next() {
                    None => false,
                    Some("add") => true,
                    Some("mult") => false,
                    Some(other) => return Err(ParseSpecError::BadComposition(other.to_string())),
                };
                if let Some(extra) = segs.next() {
                    return Err(ParseSpecError::BadComposition(extra.to_string()));
                }
                Ok(PrecondSpec::TwoLevel {
                    coarse,
                    smoother: Box::new(smoother),
                    additive,
                })
            }
            "gls-escalating" => {
                let raw = arg.ok_or(ParseSpecError::MissingPeriod)?;
                // The display form writes the period as `x5`.
                let digits = raw.strip_prefix('x').unwrap_or(raw);
                let period: usize = digits
                    .parse()
                    .map_err(|_| ParseSpecError::BadPeriod(raw.to_string()))?;
                if period == 0 {
                    return Err(ParseSpecError::ZeroPeriod);
                }
                Ok(PrecondSpec::GlsEscalating { period })
            }
            _ => Err(ParseSpecError::UnknownKind(kind.to_string())),
        }
    }

    /// Builds the boxed preconditioner this spec describes, for any
    /// operator type.
    ///
    /// `diag` supplies the **assembled** operator diagonal and is invoked
    /// only when the spec actually needs it (Jacobi) — in the distributed
    /// solvers it hides an interface sum, so laziness matters.
    ///
    /// The constructors are exactly those the historical per-driver
    /// dispatchers used, so results are bit-identical through the registry.
    pub fn build<Op: LinearOperator + InterfaceConsistency + ?Sized>(
        &self,
        diag: impl FnOnce() -> Vec<f64>,
    ) -> Box<dyn Preconditioner<Op>> {
        Box::new(self.instantiate(diag))
    }

    /// Builds the preconditioner as a concrete [`BuiltPrecond`] value.
    ///
    /// Use this instead of [`PrecondSpec::build`] when one preconditioner
    /// must serve a *loop* of solves whose operator borrows differ per
    /// iteration (the transient driver, multi-right-hand-side sessions): a
    /// `Box<dyn Preconditioner<Op<'a>>>` pins one `'a` through trait-object
    /// invariance, while `BuiltPrecond` names no operator type at all and
    /// instantiates the bound freshly at every call site.
    pub fn instantiate(&self, diag: impl FnOnce() -> Vec<f64>) -> BuiltPrecond {
        match self {
            PrecondSpec::None => BuiltPrecond::None(IdentityPrecond),
            PrecondSpec::Jacobi => BuiltPrecond::Jacobi(JacobiPrecond::from_diagonal(&diag())),
            PrecondSpec::Gls { degree, theta } => {
                let t = theta.clone().unwrap_or_else(IntervalUnion::unit);
                BuiltPrecond::Gls(GlsPrecond::new(*degree, t))
            }
            PrecondSpec::Neumann { degree } => {
                BuiltPrecond::Neumann(NeumannPrecond::for_scaled_system(*degree))
            }
            PrecondSpec::GlsF32 { degree } => {
                BuiltPrecond::GlsF32(GlsPrecondF32::for_scaled_system(*degree))
            }
            PrecondSpec::NeumannF32 { degree } => {
                BuiltPrecond::NeumannF32(NeumannPrecondF32::for_scaled_system(*degree))
            }
            PrecondSpec::Chebyshev { degree } => {
                BuiltPrecond::Chebyshev(ChebyshevPrecond::for_scaled_system(*degree))
            }
            PrecondSpec::GlsEscalating { period } => {
                BuiltPrecond::Escalating(EscalatingGls::default_for_scaled_system(*period))
            }
            PrecondSpec::Direct => panic!(
                "direct spec needs the rank-local matrix; build it through \
                 PrecondSpec::instantiate_full"
            ),
            PrecondSpec::TwoLevel { .. } => panic!(
                "two-level spec `{}` needs a coarse solver; build it through \
                 PrecondSpec::instantiate_with_coarse",
                self.name()
            ),
        }
    }

    /// Builds a one-level spec as a [`BuiltPrecond`], factoring the
    /// rank-local matrix for [`PrecondSpec::Direct`] and delegating to
    /// [`PrecondSpec::instantiate`] for everything else (bit-identical to
    /// the historical path).
    fn instantiate_one_level(
        &self,
        local: Option<&CsrMatrix>,
        diag: impl FnOnce() -> Vec<f64>,
    ) -> BuiltPrecond {
        match self {
            PrecondSpec::Direct => {
                let a = local.unwrap_or_else(|| {
                    panic!("direct spec requires the rank-local matrix at build time")
                });
                BuiltPrecond::Direct(DirectPrecond::new(a))
            }
            _ => self.instantiate(diag),
        }
    }

    /// `true` iff building this spec requires a [`CoarseSolver`] — i.e. the
    /// spec is a [`PrecondSpec::TwoLevel`]. Callers that can supply one
    /// (the `SolveSession` pipeline, the benches) branch on this to
    /// [`PrecondSpec::instantiate_with_coarse`]; callers that cannot (the
    /// transient driver) reject such specs up front.
    pub fn needs_coarse(&self) -> bool {
        matches!(self, PrecondSpec::TwoLevel { .. })
    }

    /// `true` iff building this spec requires the rank-local matrix — i.e.
    /// the spec is [`PrecondSpec::Direct`], directly or as a `twolevel`
    /// smoother. Callers that hold the post-scaling local matrix (the
    /// `SolveSession` rank bodies, the sequential driver) branch on this to
    /// [`PrecondSpec::instantiate_full`]; callers that cannot supply one
    /// reject such specs up front.
    pub fn needs_local_matrix(&self) -> bool {
        match self {
            PrecondSpec::Direct => true,
            PrecondSpec::TwoLevel { smoother, .. } => smoother.needs_local_matrix(),
            _ => false,
        }
    }

    /// Builds this spec as a [`SpecPrecond`], attaching `coarse` when the
    /// spec is two-level. One-level specs ignore `coarse` and wrap the
    /// identical [`PrecondSpec::instantiate`] result, so results are
    /// bit-identical to the plain path.
    ///
    /// # Panics
    /// Panics when the spec [`PrecondSpec::needs_coarse`] but `coarse` is
    /// `None`.
    pub fn instantiate_with_coarse(
        &self,
        coarse: Option<CoarseSolver>,
        diag: impl FnOnce() -> Vec<f64>,
    ) -> SpecPrecond {
        self.instantiate_full(coarse, None, diag)
    }

    /// Builds this spec as a [`SpecPrecond`] from everything a rank can
    /// supply: a coarse solver (for two-level specs) and the rank-local
    /// post-scaling matrix (for [`PrecondSpec::Direct`], standalone or as a
    /// `twolevel` smoother). Specs needing neither ignore both arguments
    /// and wrap the identical [`PrecondSpec::instantiate`] result, so
    /// results are bit-identical to the plain path.
    ///
    /// # Panics
    /// Panics when the spec [`PrecondSpec::needs_coarse`] but `coarse` is
    /// `None`, or [`PrecondSpec::needs_local_matrix`] but `local` is
    /// `None`.
    pub fn instantiate_full(
        &self,
        coarse: Option<CoarseSolver>,
        local: Option<&CsrMatrix>,
        diag: impl FnOnce() -> Vec<f64>,
    ) -> SpecPrecond {
        match self {
            PrecondSpec::TwoLevel {
                smoother, additive, ..
            } => {
                let solver = coarse.unwrap_or_else(|| {
                    panic!("two-level spec `{}` requires a coarse solver", self.name())
                });
                let composition = if *additive {
                    Composition::Additive
                } else {
                    Composition::Multiplicative
                };
                SpecPrecond::TwoLevel(TwoLevelPrecond::new(
                    smoother.instantiate_one_level(local, diag),
                    solver,
                    composition,
                    self.name(),
                ))
            }
            _ => SpecPrecond::Plain(self.instantiate_one_level(local, diag)),
        }
    }
}

/// A registry-built preconditioner as one concrete (operator-free) value.
///
/// Every variant wraps the same constructor [`PrecondSpec::build`] boxes;
/// the [`Preconditioner`] impl delegates method-for-method, so the two
/// forms are interchangeable bit for bit.
pub enum BuiltPrecond {
    /// [`PrecondSpec::None`].
    None(IdentityPrecond),
    /// [`PrecondSpec::Jacobi`].
    Jacobi(JacobiPrecond),
    /// [`PrecondSpec::Gls`].
    Gls(GlsPrecond),
    /// [`PrecondSpec::Neumann`].
    Neumann(NeumannPrecond),
    /// [`PrecondSpec::GlsF32`].
    GlsF32(GlsPrecondF32),
    /// [`PrecondSpec::NeumannF32`].
    NeumannF32(NeumannPrecondF32),
    /// [`PrecondSpec::Chebyshev`].
    Chebyshev(ChebyshevPrecond),
    /// [`PrecondSpec::GlsEscalating`].
    Escalating(EscalatingGls),
    /// [`PrecondSpec::Direct`].
    Direct(DirectPrecond),
}

macro_rules! delegate {
    ($self:ident, $p:pat => $e:expr) => {
        match $self {
            BuiltPrecond::None($p) => $e,
            BuiltPrecond::Jacobi($p) => $e,
            BuiltPrecond::Gls($p) => $e,
            BuiltPrecond::Neumann($p) => $e,
            BuiltPrecond::GlsF32($p) => $e,
            BuiltPrecond::NeumannF32($p) => $e,
            BuiltPrecond::Chebyshev($p) => $e,
            BuiltPrecond::Escalating($p) => $e,
            BuiltPrecond::Direct($p) => $e,
        }
    };
}

impl<Op: LinearOperator + InterfaceConsistency + ?Sized> Preconditioner<Op> for BuiltPrecond {
    fn apply_into(&self, op: &Op, v: &[f64], z: &mut [f64]) {
        delegate!(self, p => p.apply_into(op, v, z))
    }

    fn scratch_vectors(&self) -> usize {
        delegate!(self, p => Preconditioner::<Op>::scratch_vectors(p))
    }

    fn apply_scratch(&self, op: &Op, v: &[f64], z: &mut [f64], scratch: &mut [Vec<f64>]) {
        delegate!(self, p => p.apply_scratch(op, v, z, scratch))
    }

    fn operator_applications(&self) -> usize {
        delegate!(self, p => Preconditioner::<Op>::operator_applications(p))
    }

    fn current_operator_applications(&self) -> usize {
        delegate!(self, p => Preconditioner::<Op>::current_operator_applications(p))
    }

    fn name(&self) -> String {
        delegate!(self, p => Preconditioner::<Op>::name(p))
    }
}

/// A malformed preconditioner spec string — one arm per way to get the
/// grammar wrong, each with an error message that names the fix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseSpecError {
    /// The kind (the part before `:`) is not in the registry.
    UnknownKind(String),
    /// A polynomial kind came without its degree (`gls`, not `gls:7`).
    MissingDegree {
        /// The kind that needs a degree.
        kind: String,
    },
    /// The degree is not a non-negative integer.
    BadDegree {
        /// The kind whose degree is malformed.
        kind: String,
        /// The malformed degree text.
        given: String,
    },
    /// `gls-escalating` came without its period.
    MissingPeriod,
    /// The escalation period is not a positive integer.
    BadPeriod(String),
    /// The escalation period is zero (the schedule would never advance).
    ZeroPeriod,
    /// An argument was given to a kind that takes none (`none`, `jacobi`).
    UnexpectedArgument {
        /// The argument-free kind.
        kind: String,
        /// The spurious argument.
        given: String,
    },
    /// `twolevel` came without its coarse segment (`twolevel`, not
    /// `twolevel:rbm:gls-3`).
    MissingCoarse,
    /// The coarse segment is not `const`, `rbm` or `lowrank-K` (K ≥ 1).
    BadCoarse(String),
    /// `twolevel:<coarse>` came without its smoother segment.
    MissingSmoother,
    /// The smoother segment is not in the accepted one-level set
    /// (`none`, `jacobi`, `direct`, `gls-M`, `neumann-M`, `gls-f32-M`,
    /// `neumann-f32-M`, `chebyshev-M`).
    BadSmoother(String),
    /// The composition segment is not `add` or `mult` (or the spec has
    /// trailing segments).
    BadComposition(String),
}

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseSpecError::UnknownKind(kind) => {
                write!(f, "unknown preconditioner {kind}; expected {GRAMMAR}")
            }
            ParseSpecError::MissingDegree { kind } => {
                write!(f, "{kind} needs a degree, e.g. {kind}:7")
            }
            ParseSpecError::BadDegree { kind, given } => {
                write!(
                    f,
                    "bad degree {given} for {kind}: expected a non-negative integer"
                )
            }
            ParseSpecError::MissingPeriod => {
                write!(f, "gls-escalating needs a period, e.g. gls-escalating:5")
            }
            ParseSpecError::BadPeriod(given) => {
                write!(f, "bad period {given}: expected a positive integer")
            }
            ParseSpecError::ZeroPeriod => write!(f, "period must be positive"),
            ParseSpecError::UnexpectedArgument { kind, given } => {
                write!(f, "{kind} takes no argument (got {kind}:{given})")
            }
            ParseSpecError::MissingCoarse => {
                write!(
                    f,
                    "twolevel needs a coarse space and a smoother, e.g. twolevel:rbm:gls-3"
                )
            }
            ParseSpecError::BadCoarse(given) => {
                write!(
                    f,
                    "bad coarse space {given}: expected const, rbm or lowrank-K \
                     (K >= 1), optionally .sK for K prolongator-smoothing passes"
                )
            }
            ParseSpecError::MissingSmoother => {
                write!(f, "twolevel needs a smoother, e.g. twolevel:rbm:gls-3")
            }
            ParseSpecError::BadSmoother(given) => {
                write!(
                    f,
                    "bad smoother {given}: expected none, jacobi, direct, gls-M, \
                     neumann-M, gls-f32-M, neumann-f32-M or chebyshev-M"
                )
            }
            ParseSpecError::BadComposition(given) => {
                write!(f, "bad composition {given}: expected add or mult")
            }
        }
    }
}

impl std::error::Error for ParseSpecError {}

/// The accepted `--precond` grammar, one spec per alternative.
pub const GRAMMAR: &str = "none|jacobi|direct|gls:M|neumann:M|gls-f32:M|neumann-f32:M|\
                           chebyshev:M|gls-escalating:PERIOD|twolevel:COARSE:SMOOTHER[:add]";

/// Multi-line help text for the grammar — rendered by the CLI usage screen
/// and quoted by the README, so the documentation always matches the
/// parser.
pub fn grammar_help() -> String {
    format!(
        "{GRAMMAR}\n\
         none                 unpreconditioned FGMRES\n\
         jacobi               assembled-diagonal scaling\n\
         direct               exact rank-local sparse direct solve (RCM + profile LDLt;\n\
                              pivot-tolerant on floating subdomains where ILU(0) fails)\n\
         gls:M                degree-M generalized least-squares polynomial on (eps, 1)\n\
         neumann:M            degree-M Neumann series (omega = 1 after scaling)\n\
         gls-f32:M            degree-M GLS applied in f32 (mixed precision)\n\
         neumann-f32:M        degree-M Neumann series applied in f32 (mixed precision)\n\
         chebyshev:M          degree-M Chebyshev (min-max) polynomial\n\
         gls-escalating:P     GLS degree schedule 1->3->7->10, advancing every P applies\n\
         twolevel:C:S         coarse space C (const|rbm|lowrank-K, each optionally .sK\n\
                              for K prolongator-smoothing passes, e.g. rbm.s3) around\n\
                              smoother S (none, jacobi, direct, gls-M, neumann-M,\n\
                              gls-f32-M, neumann-f32-M, chebyshev-M); multiplicative\n\
                              unless :add is appended"
    )
}

/// Every registered spec kind with a representative example — the registry
/// enumerates itself for tests and docs.
pub fn examples() -> Vec<PrecondSpec> {
    vec![
        PrecondSpec::None,
        PrecondSpec::Jacobi,
        PrecondSpec::Gls {
            degree: 7,
            theta: None,
        },
        PrecondSpec::Neumann { degree: 3 },
        PrecondSpec::GlsF32 { degree: 7 },
        PrecondSpec::NeumannF32 { degree: 2 },
        PrecondSpec::Chebyshev { degree: 8 },
        PrecondSpec::GlsEscalating { period: 5 },
        PrecondSpec::Direct,
        PrecondSpec::TwoLevel {
            coarse: CoarseSpec::Rbm,
            smoother: Box::new(PrecondSpec::Gls {
                degree: 3,
                theta: None,
            }),
            additive: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfem_sparse::CsrMatrix;

    #[test]
    fn parses_cli_grammar() {
        assert_eq!(PrecondSpec::parse("none").unwrap(), PrecondSpec::None);
        assert_eq!(PrecondSpec::parse("jacobi").unwrap(), PrecondSpec::Jacobi);
        assert_eq!(
            PrecondSpec::parse("gls:7").unwrap(),
            PrecondSpec::Gls {
                degree: 7,
                theta: None
            }
        );
        assert_eq!(
            PrecondSpec::parse("neumann:3").unwrap(),
            PrecondSpec::Neumann { degree: 3 }
        );
        assert_eq!(
            PrecondSpec::parse("chebyshev:12").unwrap(),
            PrecondSpec::Chebyshev { degree: 12 }
        );
        assert_eq!(
            PrecondSpec::parse("gls-escalating:5").unwrap(),
            PrecondSpec::GlsEscalating { period: 5 }
        );
    }

    #[test]
    fn parses_display_names_back() {
        for spec in examples() {
            assert_eq!(PrecondSpec::parse(&spec.name()).unwrap(), spec);
            assert_eq!(PrecondSpec::parse(&spec.spec_str()).unwrap(), spec);
        }
    }

    #[test]
    fn builds_every_example_against_a_csr_operator() {
        let a = CsrMatrix::identity(4);
        for spec in examples() {
            if spec.needs_coarse() || spec.needs_local_matrix() {
                // Two-level and direct specs need a coarse solver / local
                // matrix — covered by the instantiate_full tests below.
                continue;
            }
            let pc = spec.build::<CsrMatrix>(|| a.diagonal());
            let z = pc.apply(&a, &[1.0, 2.0, 3.0, 4.0]);
            assert_eq!(z.len(), 4);
            assert!(z.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn direct_instantiates_from_a_local_matrix() {
        let a = CsrMatrix::identity(4);
        let spec = PrecondSpec::parse("direct").unwrap();
        assert!(spec.needs_local_matrix());
        assert!(!spec.needs_coarse());
        let pc = spec.instantiate_full(None, Some(&a), || a.diagonal());
        let z = Preconditioner::<CsrMatrix>::apply(&pc, &a, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(z, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(Preconditioner::<CsrMatrix>::name(&pc), "direct");
    }

    #[test]
    fn instantiates_twolevel_examples_with_a_coarse() {
        use crate::twolevel::{build_coarse_basis, CoarsePartGeometry};
        let a = CsrMatrix::identity(4);
        let parts: Vec<CoarsePartGeometry> = (0..2)
            .map(|p| CoarsePartGeometry {
                dofs: vec![2 * p, 2 * p + 1],
                pos: vec![[p as f64, 0.0, 0.0], [p as f64, 1.0, 0.0]],
                comp: vec![0, 0],
                constrained: vec![false, false],
            })
            .collect();
        let mult = vec![1.0; 4];
        let d = vec![1.0; 4];
        for spec in examples().into_iter().filter(PrecondSpec::needs_coarse) {
            let PrecondSpec::TwoLevel { coarse, .. } = &spec else {
                unreachable!()
            };
            let basis = build_coarse_basis(coarse, &parts, &mult, &d, &a, 1e-12);
            let local = spec.needs_local_matrix().then_some(&a);
            let pc = spec.instantiate_full(Some(basis.solver()), local, || a.diagonal());
            let z = Preconditioner::<CsrMatrix>::apply(&pc, &a, &[1.0, 2.0, 3.0, 4.0]);
            assert_eq!(z.len(), 4);
            assert!(z.iter().all(|v| v.is_finite()));
            assert_eq!(Preconditioner::<CsrMatrix>::name(&pc), spec.name());
        }
    }

    #[test]
    #[should_panic(expected = "needs a coarse solver")]
    fn plain_instantiate_rejects_twolevel() {
        let spec = PrecondSpec::parse("twolevel:rbm:gls-3").unwrap();
        let _ = spec.instantiate(Vec::new);
    }

    #[test]
    #[should_panic(expected = "needs the rank-local matrix")]
    fn plain_instantiate_rejects_direct() {
        let _ = PrecondSpec::Direct.instantiate(Vec::new);
    }

    #[test]
    fn twolevel_direct_smoother_round_trips_and_instantiates() {
        use crate::twolevel::{build_coarse_basis, CoarsePartGeometry};
        let spec = PrecondSpec::parse("twolevel:rbm:direct").unwrap();
        assert!(spec.needs_coarse());
        assert!(spec.needs_local_matrix());
        assert_eq!(spec.spec_str(), "twolevel:rbm:direct");
        assert_eq!(PrecondSpec::parse(&spec.name()).unwrap(), spec);
        let a = CsrMatrix::identity(4);
        let parts = vec![CoarsePartGeometry {
            dofs: vec![0, 1, 2, 3],
            pos: (0..4).map(|g| [g as f64, 0.0, 0.0]).collect(),
            comp: vec![0; 4],
            constrained: vec![false; 4],
        }];
        let mult = vec![1.0; 4];
        let d = vec![1.0; 4];
        let PrecondSpec::TwoLevel { coarse, .. } = &spec else {
            unreachable!()
        };
        let basis = build_coarse_basis(coarse, &parts, &mult, &d, &a, 1e-12);
        let pc = spec.instantiate_full(Some(basis.solver()), Some(&a), || a.diagonal());
        let z = Preconditioner::<CsrMatrix>::apply(&pc, &a, &[1.0, 2.0, 3.0, 4.0]);
        assert!(z.iter().all(|v| v.is_finite()));
        assert_eq!(Preconditioner::<CsrMatrix>::name(&pc), spec.name());
    }
}
