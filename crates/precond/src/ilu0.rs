//! ILU(0) as a [`Preconditioner`] — the paper's sequential comparator.

use crate::Preconditioner;
use parfem_sparse::{CsrMatrix, Ilu0, LinearOperator, SparseError};

/// Wraps an [`Ilu0`] factorization as a preconditioner.
#[derive(Debug, Clone)]
pub struct Ilu0Precond {
    ilu: Ilu0,
}

impl Ilu0Precond {
    /// Factorizes `a`.
    ///
    /// # Errors
    /// Propagates [`SparseError::ZeroPivot`] — on element-based subdomain
    /// matrices this is the paper's floating-subdomain failure
    /// (Section 3.2.3), which is exactly why the paper prefers polynomial
    /// preconditioning there.
    pub fn factorize(a: &CsrMatrix) -> Result<Self, SparseError> {
        Ok(Ilu0Precond {
            ilu: Ilu0::factorize(a)?,
        })
    }
}

impl<Op: LinearOperator + ?Sized> Preconditioner<Op> for Ilu0Precond {
    fn apply_into(&self, _op: &Op, v: &[f64], z: &mut [f64]) {
        self.ilu.solve_into(v, z);
    }

    fn name(&self) -> String {
        "ilu(0)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_ilu_solve() {
        let a = CsrMatrix::from_dense(2, 2, &[4.0, 1.0, 1.0, 3.0]);
        let p = Ilu0Precond::factorize(&a).unwrap();
        let x = [1.0, 2.0];
        let b = a.spmv(&x);
        let z = p.apply(&a, &b);
        // Dense 2x2 has no fill: ILU(0) is exact.
        assert!((z[0] - 1.0).abs() < 1e-12);
        assert!((z[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn propagates_singularity() {
        let a = CsrMatrix::from_dense(2, 2, &[1.0, -1.0, -1.0, 1.0]);
        assert!(matches!(
            Ilu0Precond::factorize(&a),
            Err(SparseError::ZeroPivot { .. })
        ));
    }
}
