//! The Chebyshev polynomial preconditioner.
//!
//! The third classic polynomial preconditioner the paper's Section 2.1.3
//! name-drops ("Neumann series, least-squares, Chebyshev etc."). On a
//! single positive interval `(ℓ, h̄)` it is *min-max optimal*: its residual
//!
//! ```text
//! 1 − λP_m(λ) = T_m((θ−λ)/δ) / T_m(θ/δ),   θ = (h̄+ℓ)/2, δ = (h̄−ℓ)/2
//! ```
//!
//! has the smallest possible sup-norm over the interval among all residual
//! polynomials with `r(0) = 1`. The application runs the standard Chebyshev
//! semi-iteration recurrence (Saad, *Iterative Methods*, Alg. 12.1) — `m`
//! matrix–vector products, no inner products — and is therefore exactly as
//! parallel-friendly as Neumann/GLS. Unlike GLS it cannot handle interval
//! unions (indefinite spectra), which is why the paper prefers GLS.

use crate::Preconditioner;
use parfem_sparse::LinearOperator;

/// Chebyshev preconditioner of degree `m` on `(lo, hi)`, `0 < lo < hi`.
#[derive(Debug, Clone, Copy)]
pub struct ChebyshevPrecond {
    degree: usize,
    lo: f64,
    hi: f64,
}

impl ChebyshevPrecond {
    /// Creates the preconditioner.
    ///
    /// # Panics
    /// Panics unless `0 < lo < hi`.
    pub fn new(degree: usize, lo: f64, hi: f64) -> Self {
        assert!(
            0.0 < lo && lo < hi,
            "chebyshev requires 0 < lo < hi, got ({lo}, {hi})"
        );
        ChebyshevPrecond { degree, lo, hi }
    }

    /// A pragmatic default for a norm-1-scaled system: `(0.01, 1)`.
    ///
    /// Unlike GLS — whose *weighted L2* objective tolerates a lower bound
    /// of essentially 0 (the paper's `Θ = (ε, 1)`) — the min-max objective
    /// is meaningless on an interval reaching 0: no polynomial with
    /// `r(0) = 1` can have sup-norm `< 1` there, and the resulting
    /// preconditioned operator is near-singular. Chebyshev therefore needs
    /// a genuine positive spectrum floor; supply a measured `λ_min` via
    /// [`ChebyshevPrecond::new`] when available.
    pub fn for_scaled_system(degree: usize) -> Self {
        Self::new(degree, 0.01, 1.0)
    }

    /// Polynomial degree `m`.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Interval midpoint `θ`.
    fn theta(&self) -> f64 {
        0.5 * (self.hi + self.lo)
    }

    /// Interval half-width `δ`.
    fn delta(&self) -> f64 {
        0.5 * (self.hi - self.lo)
    }

    /// `T_m(x)` for `|x| ≥ 1` via `cosh(m·arccosh x)` (sign-safe).
    fn cheb_outside(m: usize, x: f64) -> f64 {
        let s = if x < 0.0 && m % 2 == 1 { -1.0 } else { 1.0 };
        let ax = x.abs();
        s * (m as f64 * ax.acosh()).cosh()
    }

    /// The residual polynomial `1 − λP_m(λ)` in closed form (min-max
    /// equioscillating on the interval). A degree-`m` preconditioner has a
    /// degree-`m+1` residual: `T_{m+1}((θ−λ)/δ) / T_{m+1}(θ/δ)` — the same
    /// convention as the Neumann residual `(1−ωλ)^{m+1}`.
    pub fn residual(&self, lambda: f64) -> f64 {
        let theta = self.theta();
        let delta = self.delta();
        let x = (theta - lambda) / delta;
        let k = self.degree + 1;
        let denom = Self::cheb_outside(k, theta / delta);
        if x.abs() <= 1.0 {
            (k as f64 * x.acos()).cos() / denom
        } else {
            Self::cheb_outside(k, x) / denom
        }
    }

    /// Scalar evaluation `P_m(λ)` through the same semi-iteration
    /// recurrence used on matrices (so it matches the matrix application
    /// bit for bit on diagonal operators).
    pub fn eval(&self, lambda: f64) -> f64 {
        if self.degree == 0 {
            return 1.0 / self.theta();
        }
        let theta = self.theta();
        let delta = self.delta();
        let sigma1 = theta / delta;
        let mut rho = 1.0 / sigma1;
        let mut d = 1.0 / theta; // d_0 applied to v = 1
        let mut z = d;
        for _ in 1..=self.degree {
            let rho_new = 1.0 / (2.0 * sigma1 - rho);
            d = rho_new * rho * d + 2.0 * rho_new / delta * (1.0 - lambda * z);
            z += d;
            rho = rho_new;
        }
        z
    }
}

impl<Op: LinearOperator + ?Sized> Preconditioner<Op> for ChebyshevPrecond {
    fn apply_into(&self, op: &Op, v: &[f64], z: &mut [f64]) {
        let n = op.dim();
        let mut scratch = vec![vec![0.0; n], vec![0.0; n]];
        self.apply_scratch(op, v, z, &mut scratch);
    }

    fn scratch_vectors(&self) -> usize {
        2
    }

    fn apply_scratch(&self, op: &Op, v: &[f64], z: &mut [f64], scratch: &mut [Vec<f64>]) {
        let n = op.dim();
        assert_eq!(v.len(), n, "chebyshev: v length mismatch");
        assert_eq!(z.len(), n, "chebyshev: z length mismatch");
        let (d_s, az_s) = scratch.split_at_mut(1);
        let (d, az) = (&mut d_s[0], &mut az_s[0]);
        assert_eq!(d.len(), n, "chebyshev: scratch length mismatch");
        assert_eq!(az.len(), n, "chebyshev: scratch length mismatch");
        let theta = self.theta();
        let delta = self.delta();
        let sigma1 = theta / delta;
        // z_0 = v / theta.
        for (zi, vi) in z.iter_mut().zip(v) {
            *zi = vi / theta;
        }
        if self.degree == 0 {
            return;
        }
        d.copy_from_slice(z);
        let mut rho = 1.0 / sigma1;
        for _ in 1..=self.degree {
            let rho_new = 1.0 / (2.0 * sigma1 - rho);
            op.apply_into(z, az);
            for i in 0..n {
                d[i] = rho_new * rho * d[i] + 2.0 * rho_new / delta * (v[i] - az[i]);
                z[i] += d[i];
            }
            rho = rho_new;
        }
    }

    fn operator_applications(&self) -> usize {
        self.degree
    }

    fn name(&self) -> String {
        format!("chebyshev({})", self.degree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gls::{GlsPrecond, IntervalUnion};
    use parfem_sparse::CsrMatrix;

    #[test]
    fn residual_is_one_at_zero() {
        for m in [1usize, 3, 7, 12] {
            let p = ChebyshevPrecond::new(m, 0.1, 2.0);
            assert!((p.residual(0.0) - 1.0).abs() < 1e-12, "degree {m}");
        }
    }

    #[test]
    fn residual_equioscillates_at_interval_ends() {
        let p = ChebyshevPrecond::new(6, 0.2, 1.8);
        let r_lo = p.residual(0.2).abs();
        let r_hi = p.residual(1.8).abs();
        assert!((r_lo - r_hi).abs() < 1e-12, "{r_lo} vs {r_hi}");
        // Interior extrema have the same magnitude (Chebyshev property).
        let mut max_interior = 0.0_f64;
        for k in 1..200 {
            let l = 0.2 + 1.6 * k as f64 / 200.0;
            max_interior = max_interior.max(p.residual(l).abs());
        }
        assert!(max_interior <= r_lo + 1e-10);
    }

    #[test]
    fn scalar_eval_consistent_with_residual() {
        let p = ChebyshevPrecond::new(5, 0.3, 1.5);
        for &l in &[0.3, 0.7, 1.2, 1.5] {
            let direct = 1.0 - l * p.eval(l);
            assert!(
                (direct - p.residual(l)).abs() < 1e-10,
                "at {l}: {direct} vs {}",
                p.residual(l)
            );
        }
    }

    #[test]
    fn matrix_application_matches_scalar_eval() {
        let d = [0.35, 0.8, 1.4];
        let a = CsrMatrix::from_diagonal(&d);
        let p = ChebyshevPrecond::new(6, 0.3, 1.5);
        let z = p.apply(&a, &[1.0, 1.0, 1.0]);
        for (zi, &di) in z.iter().zip(&d) {
            assert!((zi - p.eval(di)).abs() < 1e-12);
        }
    }

    #[test]
    fn chebyshev_beats_gls_in_sup_norm_on_one_interval() {
        // Min-max optimality: sup |residual| over the interval is smaller
        // than GLS's (which optimizes the weighted L2 norm instead).
        let (lo, hi) = (0.1, 1.0);
        let m = 7;
        let cheb = ChebyshevPrecond::new(m, lo, hi);
        let gls = GlsPrecond::new(m, IntervalUnion::single(lo, hi));
        let mut sup_cheb = 0.0_f64;
        let mut sup_gls = 0.0_f64;
        for k in 0..=400 {
            let l = lo + (hi - lo) * k as f64 / 400.0;
            sup_cheb = sup_cheb.max(cheb.residual(l).abs());
            sup_gls = sup_gls.max(gls.residual(l).abs());
        }
        assert!(
            sup_cheb <= sup_gls + 1e-12,
            "chebyshev sup {sup_cheb} vs gls sup {sup_gls}"
        );
    }

    #[test]
    fn degree_zero_is_constant_scaling() {
        let p = ChebyshevPrecond::new(0, 0.5, 1.5);
        let a = CsrMatrix::from_diagonal(&[0.7, 1.2]);
        let z = p.apply(&a, &[1.0, 2.0]);
        assert!((z[0] - 1.0).abs() < 1e-12);
        assert!((z[1] - 2.0).abs() < 1e-12);
        assert_eq!(
            Preconditioner::<CsrMatrix>::name(&p),
            "chebyshev(0)".to_string()
        );
    }

    #[test]
    fn residual_shrinks_with_degree() {
        let mut prev = f64::INFINITY;
        for m in [2usize, 4, 8, 16] {
            let p = ChebyshevPrecond::new(m, 0.1, 1.0);
            let sup = (0..=100)
                .map(|k| p.residual(0.1 + 0.9 * k as f64 / 100.0).abs())
                .fold(0.0_f64, f64::max);
            assert!(sup < prev, "degree {m}: {sup} !< {prev}");
            prev = sup;
        }
        assert!(prev < 1e-2);
    }

    #[test]
    #[should_panic(expected = "0 < lo < hi")]
    fn invalid_interval_rejected() {
        ChebyshevPrecond::new(3, 0.0, 1.0);
    }
}
