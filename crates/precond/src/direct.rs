//! Exact rank-local sparse direct preconditioning.
//!
//! [`DirectPrecond`] wraps the sparse direct solver of
//! [`parfem_sparse::direct`] (deterministic RCM fill-reducing ordering over
//! a pivot-tolerant profile LDLᵀ) as a [`Preconditioner`]: each application
//! solves the factored rank-local matrix exactly, `z = A_local⁻¹ v`.
//!
//! Two properties make this the right comparator and smoother where ILU(0)
//! is not:
//!
//! - **Floating subdomains.** A subdomain with no Dirichlet boundary has a
//!   singular local matrix and ILU(0) hits an exact zero pivot (the paper's
//!   Eq. 45 failure path). The profile LDLᵀ underneath this preconditioner
//!   pivot-shifts instead: rank-deficient directions are skipped and the
//!   solve acts as a pseudo-inverse on the complement, so the
//!   preconditioner stays well-defined.
//! - **Exactness.** On a constrained subdomain the application is the exact
//!   local solve, which makes `direct` the strongest possible rank-local
//!   smoother — the reference point the polynomial preconditioners are
//!   measured against, sequentially and inside `twolevel:<coarse>:direct`.
//!
//! The factorization is taken from the rank's local matrix at build time;
//! the operator argument of [`Preconditioner::apply_into`] supplies only
//! the [`InterfaceConsistency`] hook: on interface-replicated (EDD)
//! operators the local solves disagree at shared DOFs, so each application
//! finishes with the partition-of-unity average `z ← ⊕Σ z/mult` — the
//! multiplicity-weighted additive Schwarz step. Sequential matrices and
//! RDD block rows make that hook a no-op, leaving the apply purely local.

use crate::{InterfaceConsistency, Preconditioner};
use parfem_sparse::{CsrMatrix, LinearOperator, SparseDirect};
use std::sync::{Arc, Mutex};

/// An exact sparse-direct preconditioner over a rank-local matrix.
///
/// Application is allocation-free after construction: the permutation
/// scratch vector is preallocated behind an uncontended `Mutex` (the same
/// idiom as the two-level coarse solver), so host-built per-rank values can
/// be handed across rank threads.
#[derive(Debug)]
pub struct DirectPrecond {
    factor: Arc<SparseDirect>,
    scratch: Mutex<Vec<f64>>,
}

impl Clone for DirectPrecond {
    fn clone(&self) -> Self {
        DirectPrecond {
            factor: Arc::clone(&self.factor),
            scratch: Mutex::new(vec![0.0; self.factor.dim()]),
        }
    }
}

impl DirectPrecond {
    /// Factors `a` (the rank-local, post-scaling matrix) with the given
    /// pivot tolerance. Singular local matrices (floating subdomains) are
    /// handled by the pivot-shift fallback — near-null pivots are detected
    /// and replaced at the stiffness scale (see
    /// [`SparseDirect::set_null_shift`]), so the preconditioner is
    /// *nonsingular*: it solves exactly on the factorable complement and
    /// passes the rigid modes through instead of erasing them. A plain
    /// pseudo-inverse here is singular, and a singular preconditioner
    /// stalls FGMRES over floating elasticity subdomains whose 3/6 rigid
    /// modes per subdomain would otherwise never leave the residual.
    ///
    /// # Panics
    /// Panics when `a` is not square.
    pub fn from_matrix(a: &CsrMatrix, pivot_tol: f64) -> Self {
        let mut factor = SparseDirect::factorize(a, pivot_tol);
        let shift = factor.diag_scale().max(1.0);
        factor.set_null_shift(shift);
        let scratch = Mutex::new(vec![0.0; factor.dim()]);
        DirectPrecond {
            factor: Arc::new(factor),
            scratch,
        }
    }

    /// Factors `a` with the skyline solver's default pivot tolerance.
    pub fn new(a: &CsrMatrix) -> Self {
        Self::from_matrix(a, parfem_sparse::skyline::DEFAULT_PIVOT_TOL)
    }

    /// Pivots the factorization skipped (0 on a nonsingular local matrix;
    /// the local rigid-mode count on a floating subdomain).
    pub fn n_skipped(&self) -> usize {
        self.factor.n_skipped()
    }

    /// Dimension of the factored local matrix.
    pub fn dim(&self) -> usize {
        self.factor.dim()
    }

    /// Local flops of one application, for the virtual-time model.
    pub fn solve_flops(&self) -> u64 {
        self.factor.solve_flops()
    }
}

impl<Op: LinearOperator + InterfaceConsistency + ?Sized> Preconditioner<Op> for DirectPrecond {
    fn apply_into(&self, op: &Op, v: &[f64], z: &mut [f64]) {
        z.copy_from_slice(v);
        {
            let mut scratch = self.scratch.lock().expect("direct scratch lock");
            self.factor.solve_in_place_with(z, &mut scratch);
        }
        op.make_consistent(z);
    }

    fn name(&self) -> String {
        "direct".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfem_sparse::{CooMatrix, Ilu0, LinearOperator, SparseError};

    /// 2-D grid Laplacian with the first row Dirichlet-pinned.
    fn pinned_laplacian(nx: usize, ny: usize) -> CsrMatrix {
        let n = nx * ny;
        let mut coo = CooMatrix::new(n, n);
        for y in 0..ny {
            for x in 0..nx {
                let i = y * nx + x;
                if i == 0 {
                    coo.push(i, i, 1.0).unwrap();
                    continue;
                }
                let mut deg = 0.0;
                let mut nbrs = Vec::new();
                for (dx, dy) in [(-1i64, 0i64), (1, 0), (0, -1), (0, 1)] {
                    let (qx, qy) = (x as i64 + dx, y as i64 + dy);
                    if qx < 0 || qy < 0 || qx >= nx as i64 || qy >= ny as i64 {
                        continue;
                    }
                    deg += 1.0;
                    let j = (qy as usize) * nx + qx as usize;
                    if j != 0 {
                        nbrs.push(j);
                    }
                }
                coo.push(i, i, deg).unwrap();
                for j in nbrs {
                    coo.push(i, j, -1.0).unwrap();
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn application_is_the_exact_inverse() {
        let a = pinned_laplacian(5, 4);
        let pc = DirectPrecond::new(&a);
        assert_eq!(pc.n_skipped(), 0);
        let v: Vec<f64> = (0..20).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let z = pc.apply(&a, &v);
        let az = a.apply(&z);
        for (got, want) in az.iter().zip(&v) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn survives_the_floating_matrix_that_breaks_ilu0() {
        // Free-free chain Laplacian: singular, tridiagonal (so ILU(0) is
        // the exact LU) — the factorization hits the paper's Eq. 45 zero
        // pivot. The direct preconditioner pivot-skips and still produces
        // a finite, consistent pseudo-solve.
        let n = 8;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            let mut deg = 0.0;
            if i > 0 {
                deg += 1.0;
                coo.push(i, i - 1, -1.0).unwrap();
            }
            if i + 1 < n {
                deg += 1.0;
                coo.push(i, i + 1, -1.0).unwrap();
            }
            coo.push(i, i, deg).unwrap();
        }
        let a = coo.to_csr();
        match Ilu0::factorize(&a) {
            Err(SparseError::ZeroPivot { .. }) => {}
            other => panic!("expected ILU(0) zero pivot, got {other:?}"),
        }
        let pc = DirectPrecond::new(&a);
        assert_eq!(pc.n_skipped(), 1);
        // A right-hand side in the range of A (zero mean) is solved exactly.
        let v: Vec<f64> = (0..n).map(|i| if i == 0 { 1.0 } else { 0.0 }).collect();
        let mean = 1.0 / n as f64;
        let v0: Vec<f64> = v.iter().map(|x| x - mean).collect();
        let z = pc.apply(&a, &v0);
        let az = a.apply(&z);
        for (got, want) in az.iter().zip(&v0) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn clone_shares_the_factorization_and_matches_bitwise() {
        let a = pinned_laplacian(4, 4);
        let pc = DirectPrecond::new(&a);
        let pc2 = pc.clone();
        let v: Vec<f64> = (0..16).map(|i| (i as f64).cos()).collect();
        assert_eq!(pc.apply(&a, &v), pc2.apply(&a, &v));
    }
}
