//! The identity (no-op) preconditioner — the unpreconditioned baseline of
//! the paper's convergence figures.

use crate::Preconditioner;
use parfem_sparse::LinearOperator;

/// `C = I`.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityPrecond;

impl<Op: LinearOperator + ?Sized> Preconditioner<Op> for IdentityPrecond {
    fn apply_into(&self, _op: &Op, v: &[f64], z: &mut [f64]) {
        assert_eq!(v.len(), z.len(), "identity: length mismatch");
        z.copy_from_slice(v);
    }

    fn is_identity(&self) -> bool {
        true
    }

    fn name(&self) -> String {
        "none".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfem_sparse::CsrMatrix;

    #[test]
    fn identity_copies_input() {
        let a = CsrMatrix::identity(3);
        let p = IdentityPrecond;
        let v = [1.0, -2.0, 3.0];
        assert_eq!(p.apply(&a, &v), v.to_vec());
        assert_eq!(Preconditioner::<CsrMatrix>::name(&p), "none");
        assert_eq!(Preconditioner::<CsrMatrix>::operator_applications(&p), 0);
    }
}
