//! The Jacobi (diagonal) preconditioner.
//!
//! The paper notes diagonal preconditioners are cheap and communication-free
//! but "not effective enough to reduce the number of iterations for
//! large-scale complex problems" — they serve as the weak baseline.

use crate::Preconditioner;
use parfem_sparse::{CsrMatrix, LinearOperator};

/// `C = diag(A)^{-1}`.
#[derive(Debug, Clone)]
pub struct JacobiPrecond {
    inv_diag: Vec<f64>,
}

impl JacobiPrecond {
    /// Builds the preconditioner from a matrix diagonal.
    ///
    /// Zero diagonal entries get a unit inverse (leaving those components
    /// untouched) — the system is singular there anyway.
    pub fn from_matrix(a: &CsrMatrix) -> Self {
        Self::from_diagonal(&a.diagonal())
    }

    /// Builds the preconditioner from an explicit diagonal (the distributed
    /// solvers accumulate the assembled diagonal across subdomains first).
    pub fn from_diagonal(diag: &[f64]) -> Self {
        JacobiPrecond {
            inv_diag: diag
                .iter()
                .map(|&d| if d != 0.0 { 1.0 / d } else { 1.0 })
                .collect(),
        }
    }
}

impl<Op: LinearOperator + ?Sized> Preconditioner<Op> for JacobiPrecond {
    fn apply_into(&self, _op: &Op, v: &[f64], z: &mut [f64]) {
        assert_eq!(v.len(), self.inv_diag.len(), "jacobi: length mismatch");
        assert_eq!(v.len(), z.len(), "jacobi: output length mismatch");
        for ((zi, vi), di) in z.iter_mut().zip(v).zip(&self.inv_diag) {
            *zi = vi * di;
        }
    }

    fn name(&self) -> String {
        "jacobi".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_inverts_diagonal_matrices_exactly() {
        let a = CsrMatrix::from_diagonal(&[2.0, 4.0, 0.5]);
        let p = JacobiPrecond::from_matrix(&a);
        let z = p.apply(&a, &[2.0, 4.0, 0.5]);
        assert_eq!(z, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn zero_diagonal_is_left_untouched() {
        let p = JacobiPrecond::from_diagonal(&[1.0, 0.0]);
        let a = CsrMatrix::identity(2);
        let z = p.apply(&a, &[3.0, 5.0]);
        assert_eq!(z, vec![3.0, 5.0]);
    }

    #[test]
    fn from_matrix_matches_from_diagonal() {
        let a = CsrMatrix::from_dense(2, 2, &[4.0, 1.0, 1.0, 2.0]);
        let p1 = JacobiPrecond::from_matrix(&a);
        let p2 = JacobiPrecond::from_diagonal(&[4.0, 2.0]);
        let v = [1.0, 1.0];
        assert_eq!(p1.apply(&a, &v), p2.apply(&a, &v));
    }
}
