//! Mixed-precision polynomial preconditioning: `f32` mirrors of the GLS and
//! Neumann preconditioners for an outer `f64` FGMRES.
//!
//! Flexible GMRES only requires the preconditioner to be *some* bounded
//! operator per iteration — it never assumes `M⁻¹` is applied exactly, which
//! is what licenses running the whole polynomial recurrence in single
//! precision while the Krylov recurrence, the orthogonalization, and the
//! residual accounting stay in `f64`. The polynomial's own approximation
//! error (`‖1 − λP(λ)‖ ≫ f32 ε` at practical degrees) dominates the
//! rounding introduced by the downcast, so iteration counts are unchanged on
//! the paper's problem set — pinned by the accuracy harness in
//! `crates/krylov/tests/mixed_accuracy.rs`.
//!
//! Two application paths:
//!
//! - **Matrix path** ([`GlsPrecondF32::with_matrix`] /
//!   [`NeumannPrecondF32::with_matrix`]): the caller attaches a
//!   [`CsrMatrixF32`] downcast of the operator and the whole recurrence —
//!   SpMV included — runs in `f32`, halving value and index bandwidth.
//! - **Cast-through path** (no matrix attached): the recurrence state stays
//!   `f32`, but each operator application stages up to `f64`, calls the real
//!   operator, and stages back down. This is the path the *distributed*
//!   solvers use — halo exchanges and interface sums remain `f64` and
//!   bit-consistent across ranks, only the local polynomial state is single
//!   precision.
//!
//! Both paths are allocation-free per application after the first call: the
//! `f32` state lives in a [`RefCell`]-held buffer set sized on first use,
//! and the `f64` staging reuses the caller's scratch vectors.

use crate::gls::{GlsPrecond, IntervalUnion};
use crate::neumann::NeumannPrecond;
use crate::Preconditioner;
use parfem_sparse::{CsrMatrix, CsrMatrixF32, LinearOperator};
use std::cell::RefCell;

/// Reusable `f32` state shared by the mixed-precision recurrences.
#[derive(Debug, Clone, Default)]
struct F32Bufs {
    a: Vec<f32>,
    b: Vec<f32>,
    c: Vec<f32>,
}

impl F32Bufs {
    fn ensure(&mut self, n: usize) {
        if self.a.len() != n {
            self.a.resize(n, 0.0);
            self.b.resize(n, 0.0);
            self.c.resize(n, 0.0);
        }
    }
}

/// Applies the attached `f32` matrix, or casts through the `f64` operator
/// using two caller-provided staging vectors.
fn apply_op_f32<Op: LinearOperator + ?Sized>(
    matrix: Option<&CsrMatrixF32>,
    op: &Op,
    x32: &[f32],
    y32: &mut [f32],
    stage: &mut [Vec<f64>],
) {
    match matrix {
        Some(m) => m.spmv_into(x32, y32),
        None => {
            let (s_in, s_out) = stage.split_at_mut(1);
            let (s_in, s_out) = (&mut s_in[0], &mut s_out[0]);
            for (d, s) in s_in.iter_mut().zip(x32) {
                *d = *s as f64;
            }
            op.apply_into(s_in, s_out);
            for (d, s) in y32.iter_mut().zip(s_out.iter()) {
                *d = *s as f32;
            }
        }
    }
}

/// Single-precision mirror of [`GlsPrecond`]: identical Stieltjes
/// recurrence, coefficients and state downcast to `f32`.
#[derive(Debug, Clone)]
pub struct GlsPrecondF32 {
    inner: GlsPrecond,
    phi0: f32,
    alpha: Vec<f32>,
    beta_inv: Vec<f32>,
    beta: Vec<f32>,
    mu: Vec<f32>,
    matrix: Option<CsrMatrixF32>,
    bufs: RefCell<F32Bufs>,
}

impl GlsPrecondF32 {
    /// Builds the degree-`m` GLS preconditioner on `theta` (coefficients
    /// are computed in `f64` by [`GlsPrecond::new`], then downcast).
    pub fn new(degree: usize, theta: IntervalUnion) -> Self {
        Self::from_f64(GlsPrecond::new(degree, theta))
    }

    /// The paper's default: degree `m` on `Θ = (ε, 1)` after scaling.
    pub fn for_scaled_system(degree: usize) -> Self {
        Self::from_f64(GlsPrecond::for_scaled_system(degree))
    }

    /// Downcasts an existing `f64` preconditioner.
    pub fn from_f64(inner: GlsPrecond) -> Self {
        let (phi0, alpha, beta, mu) = inner.coefficients();
        GlsPrecondF32 {
            phi0: phi0 as f32,
            alpha: alpha.iter().map(|&v| v as f32).collect(),
            beta_inv: beta.iter().map(|&v| (1.0 / v) as f32).collect(),
            beta: beta.iter().map(|&v| v as f32).collect(),
            mu: mu.iter().map(|&v| v as f32).collect(),
            matrix: None,
            bufs: RefCell::new(F32Bufs::default()),
            inner,
        }
    }

    /// Attaches the `f32` downcast of the operator matrix, switching every
    /// internal SpMV to single precision (the fast path for sequential
    /// solves — distributed operators must *not* attach a matrix, their
    /// apply includes the halo exchange).
    pub fn with_matrix(mut self, a: &CsrMatrix) -> Self {
        self.matrix = Some(CsrMatrixF32::from_csr(a));
        self
    }

    /// Polynomial degree `m`.
    pub fn degree(&self) -> usize {
        self.inner.degree()
    }

    /// The `f64` preconditioner this mirror was downcast from.
    pub fn as_f64(&self) -> &GlsPrecond {
        &self.inner
    }
}

impl<Op: LinearOperator + ?Sized> Preconditioner<Op> for GlsPrecondF32 {
    fn apply_into(&self, op: &Op, v: &[f64], z: &mut [f64]) {
        let n = op.dim();
        let mut scratch = vec![vec![0.0; n], vec![0.0; n]];
        self.apply_scratch(op, v, z, &mut scratch);
    }

    fn scratch_vectors(&self) -> usize {
        2
    }

    fn apply_scratch(&self, op: &Op, v: &[f64], z: &mut [f64], scratch: &mut [Vec<f64>]) {
        let n = op.dim();
        assert_eq!(v.len(), n, "gls-f32: v length mismatch");
        assert_eq!(z.len(), n, "gls-f32: z length mismatch");
        if let Some(m) = &self.matrix {
            assert_eq!(m.n_rows(), n, "gls-f32: attached matrix dim mismatch");
        }
        let mut bufs = self.bufs.borrow_mut();
        bufs.ensure(n);
        let F32Bufs { a, b, c } = &mut *bufs;
        let (mut u_prev, mut u_cur, au) = (a, b, c);
        // Same recurrence as GlsPrecond::apply_scratch, in f32; z (f64)
        // accumulates the downcast mu_k u_k terms directly.
        for u in u_prev.iter_mut() {
            *u = 0.0;
        }
        for (u, vi) in u_cur.iter_mut().zip(v) {
            *u = self.phi0 * (*vi as f32);
        }
        for (zi, ui) in z.iter_mut().zip(u_cur.iter()) {
            *zi = (self.mu[0] * ui) as f64;
        }
        for k in 0..self.degree() {
            let b_prev = if k == 0 { 0.0f32 } else { self.beta[k - 1] };
            apply_op_f32(self.matrix.as_ref(), op, u_cur, au, scratch);
            let inv_b = self.beta_inv[k];
            for i in 0..n {
                u_prev[i] = (au[i] - self.alpha[k] * u_cur[i] - b_prev * u_prev[i]) * inv_b;
            }
            std::mem::swap(&mut u_prev, &mut u_cur);
            for (zi, ui) in z.iter_mut().zip(u_cur.iter()) {
                *zi += (self.mu[k + 1] * ui) as f64;
            }
        }
    }

    fn operator_applications(&self) -> usize {
        self.degree()
    }

    fn name(&self) -> String {
        format!("gls-f32({})", self.degree())
    }
}

/// Single-precision mirror of [`NeumannPrecond`]: the truncated Neumann
/// series applied in `f32`.
#[derive(Debug, Clone)]
pub struct NeumannPrecondF32 {
    inner: NeumannPrecond,
    omega: f32,
    matrix: Option<CsrMatrixF32>,
    bufs: RefCell<F32Bufs>,
}

impl NeumannPrecondF32 {
    /// Creates the preconditioner (see [`NeumannPrecond::new`]).
    ///
    /// # Panics
    /// Panics if `omega` is not positive.
    pub fn new(degree: usize, omega: f64) -> Self {
        Self::from_f64(NeumannPrecond::new(degree, omega))
    }

    /// The preconditioner for a system scaled to `σ(A) ⊂ (0, 1)` (`ω = 1`).
    pub fn for_scaled_system(degree: usize) -> Self {
        Self::from_f64(NeumannPrecond::for_scaled_system(degree))
    }

    /// Downcasts an existing `f64` preconditioner.
    pub fn from_f64(inner: NeumannPrecond) -> Self {
        NeumannPrecondF32 {
            omega: inner.omega() as f32,
            matrix: None,
            bufs: RefCell::new(F32Bufs::default()),
            inner,
        }
    }

    /// Attaches the `f32` downcast of the operator matrix (see
    /// [`GlsPrecondF32::with_matrix`]).
    pub fn with_matrix(mut self, a: &CsrMatrix) -> Self {
        self.matrix = Some(CsrMatrixF32::from_csr(a));
        self
    }

    /// Polynomial degree `m`.
    pub fn degree(&self) -> usize {
        self.inner.degree()
    }

    /// The `f64` preconditioner this mirror was downcast from.
    pub fn as_f64(&self) -> &NeumannPrecond {
        &self.inner
    }
}

impl<Op: LinearOperator + ?Sized> Preconditioner<Op> for NeumannPrecondF32 {
    fn apply_into(&self, op: &Op, v: &[f64], z: &mut [f64]) {
        let n = op.dim();
        let mut scratch = vec![vec![0.0; n], vec![0.0; n]];
        self.apply_scratch(op, v, z, &mut scratch);
    }

    fn scratch_vectors(&self) -> usize {
        2
    }

    fn apply_scratch(&self, op: &Op, v: &[f64], z: &mut [f64], scratch: &mut [Vec<f64>]) {
        let n = op.dim();
        assert_eq!(v.len(), n, "neumann-f32: v length mismatch");
        assert_eq!(z.len(), n, "neumann-f32: z length mismatch");
        if let Some(m) = &self.matrix {
            assert_eq!(m.n_rows(), n, "neumann-f32: attached matrix dim mismatch");
        }
        let mut bufs = self.bufs.borrow_mut();
        bufs.ensure(n);
        let F32Bufs { a, b, c } = &mut *bufs;
        let (v32, z32, az) = (a, b, c);
        for (d, s) in v32.iter_mut().zip(v) {
            *d = *s as f32;
        }
        // z_{k+1} = v + z_k - omega * A z_k, start z_0 = v; result omega*z.
        z32.copy_from_slice(v32);
        for _ in 0..self.degree() {
            apply_op_f32(self.matrix.as_ref(), op, z32, az, scratch);
            for i in 0..n {
                z32[i] = v32[i] + z32[i] - self.omega * az[i];
            }
        }
        for (zi, zf) in z.iter_mut().zip(z32.iter()) {
            *zi = (self.omega * zf) as f64;
        }
    }

    fn operator_applications(&self) -> usize {
        self.degree()
    }

    fn name(&self) -> String {
        format!("neumann-f32({})", self.degree())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfem_sparse::CooMatrix;

    fn scaled_laplacian(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 0.5).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -0.25).unwrap();
                coo.push(i + 1, i, -0.25).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn gls_f32_tracks_f64_within_single_precision() {
        let a = scaled_laplacian(24);
        let v: Vec<f64> = (0..24).map(|i| ((i * 5 % 7) as f64) - 3.0).collect();
        let f64p = GlsPrecond::for_scaled_system(7);
        let want = f64p.apply(&a, &v);
        let scale: f64 = want.iter().map(|w| w.abs()).fold(0.0, f64::max);
        for p in [
            GlsPrecondF32::for_scaled_system(7),
            GlsPrecondF32::for_scaled_system(7).with_matrix(&a),
        ] {
            let got = p.apply(&a, &v);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() <= 1e-4 * (1.0 + scale), "{g} vs {w}");
            }
        }
    }

    #[test]
    fn neumann_f32_tracks_f64_within_single_precision() {
        let a = scaled_laplacian(24);
        let v: Vec<f64> = (0..24).map(|i| ((i * 3 % 5) as f64) - 2.0).collect();
        let f64p = NeumannPrecond::for_scaled_system(4);
        let want = f64p.apply(&a, &v);
        for p in [
            NeumannPrecondF32::for_scaled_system(4),
            NeumannPrecondF32::for_scaled_system(4).with_matrix(&a),
        ] {
            let got = p.apply(&a, &v);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() <= 1e-5 * (1.0 + w.abs()), "{g} vs {w}");
            }
        }
    }

    #[test]
    fn cast_through_and_matrix_paths_agree_closely() {
        let a = scaled_laplacian(31);
        let v: Vec<f64> = (0..31).map(|i| (i as f64 * 0.7).cos()).collect();
        let cast = GlsPrecondF32::for_scaled_system(7).apply(&a, &v);
        let fast = GlsPrecondF32::for_scaled_system(7)
            .with_matrix(&a)
            .apply(&a, &v);
        for (c, f) in cast.iter().zip(&fast) {
            // Same f32 recurrence; only the operator rounding differs.
            assert!((c - f).abs() <= 1e-5 * (1.0 + f.abs()), "{c} vs {f}");
        }
    }

    #[test]
    fn names_and_op_counts() {
        let g = GlsPrecondF32::for_scaled_system(7);
        let n = NeumannPrecondF32::for_scaled_system(3);
        assert_eq!(Preconditioner::<CsrMatrix>::name(&g), "gls-f32(7)");
        assert_eq!(Preconditioner::<CsrMatrix>::name(&n), "neumann-f32(3)");
        assert_eq!(Preconditioner::<CsrMatrix>::operator_applications(&g), 7);
        assert_eq!(Preconditioner::<CsrMatrix>::operator_applications(&n), 3);
    }
}
