//! Degree-escalating GLS preconditioning — a *flexible* GMRES showcase.
//!
//! The paper chooses FGMRES precisely because it "permits the easy
//! construction of different preconditioners at required stages in the
//! iterative process" (Section 2.3). This module exercises that freedom: a
//! preconditioner whose polynomial degree grows along a schedule as the
//! iteration proceeds — cheap low-degree applications early (when GMRES
//! makes progress on the easy part of the spectrum anyway), expensive
//! high-degree ones only once the easy modes are exhausted.
//!
//! With plain GMRES this would be incorrect (the operator must stay fixed);
//! FGMRES stores `z_j = C_j v_j` and remains exact.

use crate::gls::{GlsPrecond, IntervalUnion};
use crate::Preconditioner;
use parfem_sparse::LinearOperator;
use std::cell::Cell;

/// A GLS preconditioner whose degree follows `schedule` across successive
/// applications: application `k` uses `schedule[min(k, len-1)]`.
///
/// Interior mutability tracks the application count, so the same value can
/// be passed by shared reference to the solver like any other
/// preconditioner. Not `Sync` — one instance per rank, exactly how the
/// distributed drivers construct preconditioners anyway.
#[derive(Debug)]
pub struct EscalatingGls {
    stages: Vec<GlsPrecond>,
    schedule: Vec<usize>,
    calls: Cell<usize>,
}

impl EscalatingGls {
    /// Builds one GLS stage per distinct schedule entry on `theta`.
    ///
    /// # Panics
    /// Panics on an empty schedule.
    pub fn new(schedule: Vec<usize>, theta: IntervalUnion) -> Self {
        assert!(!schedule.is_empty(), "schedule must not be empty");
        let stages = schedule
            .iter()
            .map(|&m| GlsPrecond::new(m, theta.clone()))
            .collect();
        EscalatingGls {
            stages,
            schedule,
            calls: Cell::new(0),
        }
    }

    /// The default escalation `[1, 3, 7, 10]` on `(ε, 1)`, switching degree
    /// every `period` applications.
    pub fn default_for_scaled_system(period: usize) -> Self {
        assert!(period > 0, "period must be positive");
        let schedule: Vec<usize> = [1usize, 3, 7, 10]
            .iter()
            .flat_map(|&m| std::iter::repeat_n(m, period))
            .collect();
        Self::new(schedule, IntervalUnion::unit())
    }

    /// Number of applications so far.
    pub fn applications(&self) -> usize {
        self.calls.get()
    }

    /// The degree the next application will use.
    pub fn current_degree(&self) -> usize {
        let k = self.calls.get().min(self.schedule.len() - 1);
        self.schedule[k]
    }
}

impl<Op: LinearOperator + ?Sized> Preconditioner<Op> for EscalatingGls {
    fn apply_into(&self, op: &Op, v: &[f64], z: &mut [f64]) {
        let k = self.calls.get();
        let idx = k.min(self.stages.len() - 1);
        self.calls.set(k + 1);
        self.stages[idx].apply_into(op, v, z);
    }

    fn scratch_vectors(&self) -> usize {
        self.stages
            .iter()
            .map(|s| Preconditioner::<Op>::scratch_vectors(s))
            .max()
            .unwrap_or(0)
    }

    fn apply_scratch(&self, op: &Op, v: &[f64], z: &mut [f64], scratch: &mut [Vec<f64>]) {
        let k = self.calls.get();
        let idx = k.min(self.stages.len() - 1);
        self.calls.set(k + 1);
        self.stages[idx].apply_scratch(op, v, z, scratch);
    }

    fn operator_applications(&self) -> usize {
        // Report the steady-state (final) degree.
        *self.schedule.last().expect("non-empty schedule")
    }

    fn current_operator_applications(&self) -> usize {
        self.current_degree()
    }

    fn name(&self) -> String {
        format!(
            "gls-escalating({}..{})",
            self.schedule.first().expect("non-empty"),
            self.schedule.last().expect("non-empty")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfem_sparse::{CooMatrix, CsrMatrix};

    fn scaled_laplacian(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 0.5).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -0.25).unwrap();
                coo.push(i + 1, i, -0.25).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn schedule_advances_per_application() {
        let p = EscalatingGls::new(vec![1, 3, 7], IntervalUnion::unit());
        let a = scaled_laplacian(6);
        let v = vec![1.0; 6];
        let active =
            |p: &EscalatingGls| Preconditioner::<CsrMatrix>::current_operator_applications(p);
        assert_eq!(p.current_degree(), 1);
        assert_eq!(active(&p), 1);
        let _ = p.apply(&a, &v);
        assert_eq!(p.current_degree(), 3);
        assert_eq!(active(&p), 3);
        let _ = p.apply(&a, &v);
        assert_eq!(p.current_degree(), 7);
        let _ = p.apply(&a, &v);
        // Saturates at the last stage.
        assert_eq!(p.current_degree(), 7);
        assert_eq!(p.applications(), 3);
    }

    #[test]
    fn each_stage_matches_the_fixed_degree_preconditioner() {
        let p = EscalatingGls::new(vec![2, 5], IntervalUnion::unit());
        let a = scaled_laplacian(8);
        let v: Vec<f64> = (0..8).map(|i| (i as f64) - 3.5).collect();
        let z1 = p.apply(&a, &v);
        let z2 = p.apply(&a, &v);
        let fixed2 = GlsPrecond::for_scaled_system(2).apply(&a, &v);
        let fixed5 = GlsPrecond::for_scaled_system(5).apply(&a, &v);
        assert_eq!(z1, fixed2);
        assert_eq!(z2, fixed5);
    }

    #[test]
    fn fgmres_with_escalation_converges_and_is_cheaper_early() {
        // Correctness through FGMRES: the escalating preconditioner solves
        // the system; a plain GMRES invariant (fixed operator) would not
        // hold, but flexible storage makes it exact.
        use parfem_krylov_shim::*;
        let a = scaled_laplacian(40);
        let xe: Vec<f64> = (0..40).map(|i| ((i % 5) as f64) - 2.0).collect();
        let b = a.spmv(&xe);
        let p = EscalatingGls::default_for_scaled_system(3);
        let (x, converged) = fgmres_like(&a, &p, &b);
        assert!(converged);
        for (xi, ei) in x.iter().zip(&xe) {
            assert!((xi - ei).abs() < 1e-5 * (1.0 + ei.abs()));
        }
        assert!(p.applications() > 0);
    }

    /// A minimal FGMRES stand-in to avoid a circular dev-dependency on
    /// parfem-krylov: right-preconditioned restarted GMRES with flexible
    /// storage, restart 20, tol 1e-8.
    mod parfem_krylov_shim {
        use crate::Preconditioner;
        use parfem_sparse::{dense, CsrMatrix, LinearOperator};

        pub fn fgmres_like<P: Preconditioner<CsrMatrix>>(
            a: &CsrMatrix,
            p: &P,
            b: &[f64],
        ) -> (Vec<f64>, bool) {
            let n = a.dim();
            let mut x = vec![0.0; n];
            let r0 = dense::norm2(b);
            for _ in 0..50 {
                // restart cycles
                let mut r = a.spmv(&x);
                dense::sub_into(b, &r.clone(), &mut r);
                let beta = dense::norm2(&r);
                if beta / r0 <= 1e-8 {
                    return (x, true);
                }
                let m = 20;
                let mut v = vec![{
                    let mut t = r.clone();
                    dense::scale(1.0 / beta, &mut t);
                    t
                }];
                let mut z: Vec<Vec<f64>> = Vec::new();
                let mut h = vec![vec![0.0f64; m]; m + 1];
                let mut j_done = 0;
                for j in 0..m {
                    let zj = p.apply(a, &v[j]);
                    let mut w = a.spmv(&zj);
                    z.push(zj);
                    for (i, vi) in v.iter().enumerate() {
                        h[i][j] = dense::dot(&w, vi);
                        dense::axpy(-h[i][j], vi, &mut w);
                    }
                    h[j + 1][j] = dense::norm2(&w);
                    j_done = j + 1;
                    if h[j + 1][j] < 1e-14 {
                        break;
                    }
                    dense::scale(1.0 / h[j + 1][j], &mut w);
                    v.push(w);
                }
                // Solve the small least squares by normal equations (dense).
                let jd = j_done;
                let mut ata = vec![0.0; jd * jd];
                let mut atb = vec![0.0; jd];
                for c1 in 0..jd {
                    for c2 in 0..jd {
                        let mut acc = 0.0;
                        for r2 in 0..=jd {
                            acc += h[r2][c1] * h[r2][c2];
                        }
                        ata[c1 * jd + c2] = acc;
                    }
                    atb[c1] = h[0][c1] * beta;
                }
                let y = dense::solve_dense(jd, &mut ata, &atb);
                for (k, yk) in y.iter().enumerate() {
                    dense::axpy(*yk, &z[k], &mut x);
                }
            }
            let mut r = a.spmv(&x);
            dense::sub_into(b, &r.clone(), &mut r);
            (x, dense::norm2(&r) / r0 <= 1e-8)
        }
    }
}
