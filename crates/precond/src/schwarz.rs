//! Block-Jacobi (non-overlapping additive Schwarz) preconditioning.
//!
//! The preconditioner family the paper's Section 4 associates with
//! row-based decompositions (pARMS/PSPARSLIB/Aztec): each block of
//! contiguous rows is preconditioned by an ILU(0) solve of its diagonal
//! sub-block, ignoring inter-block coupling:
//!
//! ```text
//! C = blkdiag( (L₁U₁)⁻¹, …, (L_PU_P)⁻¹ )
//! ```
//!
//! It inherits ILU's failure mode: a block without Dirichlet support is
//! singular and the factorization reports a zero pivot — the same
//! "floating subdomain" issue the paper raises for EDD-local ILU.

use crate::Preconditioner;
use parfem_sparse::{CooMatrix, CsrMatrix, Ilu0, LinearOperator, SparseError};

/// Block-diagonal ILU(0) preconditioner over contiguous row blocks.
#[derive(Debug, Clone)]
pub struct BlockJacobiPrecond {
    /// Per block: `(first row, factorized diagonal sub-block)`.
    blocks: Vec<(usize, Ilu0)>,
    n: usize,
}

impl BlockJacobiPrecond {
    /// Factorizes the diagonal sub-blocks of `a` delimited by
    /// `block_starts` (ascending, starting at 0; the final block ends at
    /// `a.n_rows()`).
    ///
    /// # Errors
    /// Returns [`SparseError::ZeroPivot`] for a singular block and shape
    /// errors for invalid block boundaries.
    pub fn from_matrix(a: &CsrMatrix, block_starts: &[usize]) -> Result<Self, SparseError> {
        let n = a.n_rows();
        if a.n_cols() != n {
            return Err(SparseError::NotSquare {
                n_rows: a.n_rows(),
                n_cols: a.n_cols(),
            });
        }
        if block_starts.first() != Some(&0) {
            return Err(SparseError::ShapeMismatch {
                context: "block starts must begin at 0".into(),
            });
        }
        for w in block_starts.windows(2) {
            if w[0] >= w[1] {
                return Err(SparseError::ShapeMismatch {
                    context: "block starts must be strictly ascending".into(),
                });
            }
        }
        if block_starts.last().copied().unwrap_or(0) >= n && n > 0 {
            return Err(SparseError::ShapeMismatch {
                context: "last block start must be < n".into(),
            });
        }

        let mut blocks = Vec::with_capacity(block_starts.len());
        for (bi, &start) in block_starts.iter().enumerate() {
            let end = block_starts.get(bi + 1).copied().unwrap_or(n);
            let bs = end - start;
            let mut coo = CooMatrix::new(bs, bs);
            for r in start..end {
                let (cols, vals) = a.row(r);
                for (&c, &v) in cols.iter().zip(vals) {
                    if c >= start && c < end {
                        coo.push(r - start, c - start, v).expect("in bounds");
                    }
                }
            }
            let ilu = Ilu0::factorize(&coo.to_csr())?;
            blocks.push((start, ilu));
        }
        Ok(BlockJacobiPrecond { blocks, n })
    }

    /// Splits the rows into `p` near-equal contiguous blocks and factorizes.
    ///
    /// # Errors
    /// Propagates factorization failures.
    pub fn with_uniform_blocks(a: &CsrMatrix, p: usize) -> Result<Self, SparseError> {
        assert!(p > 0 && p <= a.n_rows(), "block count must be in 1..=n");
        let n = a.n_rows();
        let starts: Vec<usize> = (0..p).map(|b| b * n / p).collect();
        Self::from_matrix(a, &starts)
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }
}

impl<Op: LinearOperator + ?Sized> Preconditioner<Op> for BlockJacobiPrecond {
    fn apply_into(&self, _op: &Op, v: &[f64], z: &mut [f64]) {
        assert_eq!(v.len(), self.n, "block jacobi: v length mismatch");
        assert_eq!(z.len(), self.n, "block jacobi: z length mismatch");
        for (bi, (start, ilu)) in self.blocks.iter().enumerate() {
            let end = self.blocks.get(bi + 1).map(|(s, _)| *s).unwrap_or(self.n);
            ilu.solve_into(&v[*start..end], &mut z[*start..end]);
        }
    }

    fn name(&self) -> String {
        format!("block-jacobi-ilu0({})", self.blocks.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfem_sparse::CooMatrix;

    fn laplacian(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
                coo.push(i + 1, i, -1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn single_block_equals_global_ilu() {
        let a = laplacian(12);
        let bj = BlockJacobiPrecond::with_uniform_blocks(&a, 1).unwrap();
        let global = Ilu0::factorize(&a).unwrap();
        let v: Vec<f64> = (0..12).map(|i| (i as f64) - 6.0).collect();
        let z1 = bj.apply(&a, &v);
        let z2 = global.solve(&v);
        for (a1, a2) in z1.iter().zip(&z2) {
            assert!((a1 - a2).abs() < 1e-14);
        }
    }

    #[test]
    fn block_solve_is_exact_per_block() {
        // Block-diagonal matrix: block Jacobi is the exact inverse.
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 0, 2.0).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        coo.push(2, 2, 4.0).unwrap();
        coo.push(3, 3, 5.0).unwrap();
        let a = coo.to_csr();
        let bj = BlockJacobiPrecond::from_matrix(&a, &[0, 2]).unwrap();
        assert_eq!(bj.n_blocks(), 2);
        let x = [1.0, -1.0, 2.0, 0.5];
        let v = a.spmv(&x);
        let z = bj.apply(&a, &v);
        for (zi, xi) in z.iter().zip(&x) {
            assert!((zi - xi).abs() < 1e-12);
        }
    }

    #[test]
    fn more_blocks_weaker_preconditioner() {
        // The off-block coupling that is dropped grows with block count, so
        // the preconditioned residual ||C A x - x|| grows too.
        let a = laplacian(32);
        let x: Vec<f64> = (0..32).map(|i| ((i % 7) as f64) - 3.0).collect();
        let ax = a.spmv(&x);
        let err_for = |p: usize| -> f64 {
            let bj = BlockJacobiPrecond::with_uniform_blocks(&a, p).unwrap();
            let z = bj.apply(&a, &ax);
            z.iter()
                .zip(&x)
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        let e1 = err_for(1);
        let e4 = err_for(4);
        let e8 = err_for(8);
        assert!(e1 < 1e-10, "single block is the exact tridiagonal solve");
        // Any splitting drops coupling and degrades the preconditioner
        // substantially (the exact ordering between 4 and 8 blocks depends
        // on where the cuts land relative to the test vector).
        assert!(e4 > 1.0 && e8 > 1.0, "{e1} {e4} {e8}");
    }

    #[test]
    fn singular_block_reports_zero_pivot() {
        // A matrix whose trailing 2x2 block is the floating truss block.
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 0, 2.0).unwrap();
        coo.push(1, 1, 2.0).unwrap();
        coo.push(2, 2, 1.0).unwrap();
        coo.push(2, 3, -1.0).unwrap();
        coo.push(3, 2, -1.0).unwrap();
        coo.push(3, 3, 1.0).unwrap();
        let a = coo.to_csr();
        assert!(matches!(
            BlockJacobiPrecond::from_matrix(&a, &[0, 2]),
            Err(SparseError::ZeroPivot { .. })
        ));
    }

    #[test]
    fn invalid_block_boundaries_rejected() {
        let a = laplacian(4);
        assert!(BlockJacobiPrecond::from_matrix(&a, &[1]).is_err());
        assert!(BlockJacobiPrecond::from_matrix(&a, &[0, 3, 2]).is_err());
        assert!(BlockJacobiPrecond::from_matrix(&a, &[0, 4]).is_err());
    }
}
