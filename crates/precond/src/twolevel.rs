//! Two-level preconditioning: a per-subdomain coarse space composed with
//! the polynomial smoothers.
//!
//! One-level polynomial preconditioners act locally — information moves one
//! subdomain per application, so FGMRES iteration counts grow with the part
//! count `P`. The classical fix (Nicolaides coarse spaces; the FETI-DP and
//! GenEO families; the low-rank Schur corrections of Li & Saad,
//! arXiv:1505.04341) is a **coarse space**: a few vectors per part spanning
//! the near-null space of the operator, with a direct solve on the Galerkin
//! coarse operator `A_c = Zᵀ A Z` propagating global information every
//! application. This module provides:
//!
//! - [`CoarseSpec`] — which per-part modes to use: partition-of-unity
//!   constants ([`CoarseSpec::Const`]), rigid-body modes
//!   ([`CoarseSpec::Rbm`]), or eigenvalue-selected low-rank local modes
//!   ([`CoarseSpec::LowRank`]),
//! - [`build_coarse_basis`] — deterministic construction of the global
//!   coarse basis `Ẑ` (in post-scaling space) and the factored Galerkin
//!   operator, from plain per-part geometry slices (no mesh dependency),
//! - [`CoarseSolver`] — the runtime object: sparse restriction
//!   `y = Ẑᵀ v`, a cross-rank [`CoarseReduce::coarse_reduce`] sum, a
//!   redundant skyline-LDLᵀ solve, and sparse prolongation `z += Ẑ y`,
//!   allocation-free after construction,
//! - [`TwoLevelPrecond`] — the composition `z = M_s v + Ẑ A_c⁻¹ Ẑᵀ v`
//!   (additive) or `z_c = Ẑ A_c⁻¹ Ẑᵀ v; z = z_c + M_s (v − A z_c)`
//!   (multiplicative) around any existing smoother,
//! - [`SpecPrecond`] — the registry's concrete built form covering both
//!   one-level and two-level specs.
//!
//! ## Scaled-space convention
//!
//! The solvers work on the norm-1 scaled operator `A = D K D` with
//! `D = diag(d)`. A geometric near-null vector `z` of `K` (e.g. a rigid
//! body mode) maps to `Ẑ = D⁻¹ z`, i.e. `Ẑ[g] = z[g] / d[g]`, and the
//! Galerkin operator `Ẑᵀ A Ẑ = zᵀ K z` is exactly the unscaled one — so
//! building in scaled space loses nothing.
//!
//! ## Determinism
//!
//! Mode numbering is `part · modes_per_part + k`, entry lists are sorted,
//! the coarse reduce is the deterministic tree sum every rank already uses
//! for dot products, and the redundant coarse solve runs bit-identically on
//! every rank — so interface values of the prolonged correction agree bit
//! for bit across ranks, preserving every existing bit-identity invariant.

use crate::registry::BuiltPrecond;
use crate::{InterfaceConsistency, Preconditioner};
use parfem_sparse::dense::{norm2, sym_eigen_jacobi};
use parfem_sparse::skyline::SkylineLdlt;
use parfem_sparse::{CooMatrix, CsrMatrix, LinearOperator};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Which coarse space a two-level preconditioner uses, per part.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoarseSpec {
    /// Partition-of-unity constants: one mode per displacement component
    /// per part (a scalar problem gets one, 2-D elasticity two).
    Const,
    /// Rigid-body modes: the translations of [`CoarseSpec::Const`] plus the
    /// part-centered rotations — the single in-plane rotation
    /// `(−(y − ȳ_p), x − x̄_p)` for 2-component problems, the three axis
    /// rotations for 3-component problems (`d(d+1)/2` modes per part in
    /// total). Falls back to [`CoarseSpec::Const`] on scalar (1-component)
    /// problems, where no rotation exists.
    Rbm,
    /// The `k` lowest eigenvectors of each part's principal submatrix of
    /// the scaled operator, partition-of-unity weighted — the
    /// eigenvalue-selected low-rank correction in the style of Li & Saad.
    LowRank(usize),
    /// A base coarse space whose modes get `k` damped-Jacobi smoothing
    /// passes `ẑ ← (I − ω D_A⁻¹ A) ẑ` before the Galerkin assembly — the
    /// smoothed-aggregation prolongator of Vaněk, Mandel & Brezina. The
    /// damping `ω = 4/(3 λ̂)` uses a deterministic power-iteration estimate
    /// `λ̂ ≈ λ_max(D_A⁻¹ A)`. Plain aggregation modes keep elasticity
    /// iteration counts growing slowly with the part count; smoothing the
    /// prolongator is what flattens them (token: `<base>.sK`, e.g.
    /// `rbm.s3`). The inner spec is never itself `Smoothed`.
    Smoothed(Box<CoarseSpec>, usize),
}

impl CoarseSpec {
    /// The CLI token: `const`, `rbm`, `lowrank-K`, each optionally
    /// suffixed `.sK` for `K` prolongator-smoothing passes.
    pub fn token(&self) -> String {
        match self {
            CoarseSpec::Const => "const".into(),
            CoarseSpec::Rbm => "rbm".into(),
            CoarseSpec::LowRank(k) => format!("lowrank-{k}"),
            CoarseSpec::Smoothed(base, k) => format!("{}.s{k}", base.token()),
        }
    }

    /// Parses a CLI token; `None` for anything outside the grammar
    /// (the registry wraps this in its typed error).
    pub fn parse(tok: &str) -> Option<CoarseSpec> {
        if let Some((base_tok, s)) = tok.split_once(".s") {
            let passes: usize = s.parse().ok()?;
            let base = CoarseSpec::parse(base_tok)?;
            return if passes == 0 || matches!(base, CoarseSpec::Smoothed(..)) {
                None
            } else {
                Some(CoarseSpec::Smoothed(Box::new(base), passes))
            };
        }
        match tok {
            "const" => Some(CoarseSpec::Const),
            "rbm" => Some(CoarseSpec::Rbm),
            _ => {
                let k: usize = tok.strip_prefix("lowrank-")?.parse().ok()?;
                if k == 0 {
                    None
                } else {
                    Some(CoarseSpec::LowRank(k))
                }
            }
        }
    }

    /// Modes per part for a problem with `n_comp` displacement components.
    pub fn modes_per_part(&self, n_comp: usize) -> usize {
        match self {
            CoarseSpec::Const => n_comp,
            // Translations plus rotations: d(d+1)/2 rigid modes in d
            // dimensions (1 scalar, 3 in 2-D, 6 in 3-D).
            CoarseSpec::Rbm => n_comp * (n_comp + 1) / 2,
            CoarseSpec::LowRank(k) => *k,
            CoarseSpec::Smoothed(base, _) => base.modes_per_part(n_comp),
        }
    }

    /// The underlying mode family, with any smoothing wrapper stripped.
    pub fn base(&self) -> &CoarseSpec {
        match self {
            CoarseSpec::Smoothed(base, _) => base,
            other => other,
        }
    }

    /// Number of prolongator-smoothing passes (0 for unsmoothed specs).
    pub fn smoothing_passes(&self) -> usize {
        match self {
            CoarseSpec::Smoothed(_, k) => *k,
            _ => 0,
        }
    }
}

impl fmt::Display for CoarseSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.token())
    }
}

/// How the coarse correction composes with the smoother.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Composition {
    /// `z = z_c + M_s (v − A z_c)`: coarse first, smoother on the coarse
    /// residual. One extra operator application per preconditioner apply;
    /// the default, and the stronger composition.
    Multiplicative,
    /// `z = M_s v + Ẑ A_c⁻¹ Ẑᵀ v`: both corrections from the same input.
    /// No extra operator application.
    Additive,
}

/// The cross-rank hook the coarse solve needs from an operator: summing the
/// per-rank partial restriction into the (replicated) global coarse
/// right-hand side.
///
/// Sequential operators are already coherent — [`CsrMatrix`]'s impl is a
/// no-op. Distributed operators implement this with the same deterministic
/// tree `allreduce` their dot products use, so the reduced vector is
/// bit-identical on every rank and the redundant coarse solves stay in
/// lock step.
pub trait CoarseReduce {
    /// Sums `buf` element-wise across all ranks, leaving the identical
    /// total on every rank. No-op for sequential operators.
    fn coarse_reduce(&self, buf: &mut [f64]);

    /// Accounts `flops` of purely local coarse-solve work to the
    /// operator's virtual-time model. No-op by default.
    fn coarse_work(&self, flops: u64) {
        let _ = flops;
    }
}

impl CoarseReduce for CsrMatrix {
    fn coarse_reduce(&self, _buf: &mut [f64]) {}
}

/// Geometry of one part, in plain slices so any consumer (mesh pipeline,
/// raw-systems pipeline, test fixture) can describe its partition without
/// this crate depending on the mesh layer. All four vectors run over the
/// same entries: the part's global dofs.
#[derive(Debug, Clone, Default)]
pub struct CoarsePartGeometry {
    /// Global dof ids of this part, ascending.
    pub dofs: Vec<usize>,
    /// Node position of each dof (`z = 0` for 2-D problems).
    pub pos: Vec<[f64; 3]>,
    /// Displacement component of each dof (`0` = x, `1` = y, `2` = z; all
    /// `0` for scalar problems).
    pub comp: Vec<usize>,
    /// Whether each dof carries a Dirichlet constraint (coarse modes are
    /// zeroed there so corrections never perturb constrained values).
    pub constrained: Vec<bool>,
}

/// A built global coarse basis: the scaled-space modes `Ẑ` and the factored
/// Galerkin operator `A_c = Ẑᵀ A Ẑ`.
#[derive(Debug, Clone)]
pub struct CoarseBasis {
    /// Mode `m`'s sparse column: sorted `(global dof, Ẑ[dof, m])` pairs.
    /// Mode numbering is `part · modes_per_part + k`, with empty columns
    /// kept (the skyline factorization pivots them out) so numbering never
    /// depends on which parts happen to be constrained away.
    pub modes: Vec<Vec<(usize, f64)>>,
    /// Owning part of each mode.
    pub part_of_mode: Vec<usize>,
    /// The factored Galerkin coarse operator, shared by every rank's
    /// [`CoarseSolver`].
    pub factor: Arc<SkylineLdlt>,
}

impl CoarseBasis {
    /// Number of coarse modes (including pivoted-out empty ones).
    pub fn n_modes(&self) -> usize {
        self.modes.len()
    }

    /// Builds the sequential [`CoarseSolver`] over the global dof space:
    /// restriction and prolongation are the exact transpose pair
    /// `R = Ẑᵀ`, entry list for entry list.
    pub fn solver(&self) -> CoarseSolver {
        let mut restrict = Vec::new();
        for (m, col) in self.modes.iter().enumerate() {
            for &(g, v) in col {
                restrict.push((g, m, v));
            }
        }
        let mut prolong = restrict.clone();
        prolong.sort_by_key(|&(g, m, _)| (g, m));
        CoarseSolver::new(self.n_modes(), restrict, prolong, Arc::clone(&self.factor))
    }
}

/// Builds the global coarse basis and its factored Galerkin operator.
///
/// Inputs: per-part geometry, the global dof multiplicity `mult` (how many
/// parts share each dof — the partition-of-unity denominator; `1.0`
/// everywhere for disjoint row partitions), the scaling diagonal `d` of
/// `A = D K D`, and the scaled assembled operator `a_scaled` itself.
///
/// Deterministic: fixed mode numbering, sorted entry lists, sequential
/// Galerkin assembly in ascending mode order. Rank-deficient mode blocks
/// (fully-constrained parts, 1-element parts, duplicated modes) survive —
/// the skyline factorization pivots them out rather than failing, which is
/// exactly where ILU(0) broke down on floating subdomains (the paper's
/// Eq. 45 path).
///
/// # Panics
/// Panics when a part's geometry vectors disagree in length or a dof index
/// is out of range of `mult`/`d`/`a_scaled`.
pub fn build_coarse_basis(
    spec: &CoarseSpec,
    parts: &[CoarsePartGeometry],
    mult: &[f64],
    d: &[f64],
    a_scaled: &CsrMatrix,
    pivot_tol: f64,
) -> CoarseBasis {
    let n_comp = parts
        .iter()
        .flat_map(|p| p.comp.iter().copied())
        .max()
        .map_or(1, |c| c + 1);
    let mpp = spec.modes_per_part(n_comp);
    let n_modes = mpp * parts.len();
    let mut modes: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_modes];
    let mut part_of_mode = vec![0usize; n_modes];
    for (p, geo) in parts.iter().enumerate() {
        assert_eq!(geo.dofs.len(), geo.pos.len(), "part {p}: pos length");
        assert_eq!(geo.dofs.len(), geo.comp.len(), "part {p}: comp length");
        assert_eq!(
            geo.dofs.len(),
            geo.constrained.len(),
            "part {p}: constrained length"
        );
        for k in 0..mpp {
            part_of_mode[p * mpp + k] = p;
        }
        match spec.base() {
            CoarseSpec::Const | CoarseSpec::Rbm => {
                geometric_modes(spec.base(), p, geo, mult, d, mpp, n_comp, &mut modes)
            }
            CoarseSpec::LowRank(k) => lowrank_modes(p, geo, mult, a_scaled, *k, &mut modes),
            CoarseSpec::Smoothed(..) => unreachable!("base() strips smoothing"),
        }
    }
    if spec.smoothing_passes() > 0 {
        smooth_prolongator(&mut modes, a_scaled, spec.smoothing_passes());
    }
    for col in &mut modes {
        col.sort_by_key(|&(g, _)| g);
    }
    let a_c = galerkin_matrix(a_scaled, &modes);
    let factor = Arc::new(SkylineLdlt::factor_csr(&a_c, pivot_tol));
    CoarseBasis {
        modes,
        part_of_mode,
        factor,
    }
}

/// Partition-of-unity translations (and, for [`CoarseSpec::Rbm`], the
/// centered rotations) of one part, transformed to scaled space:
/// `Ẑ[g] = geom(g) / (mult[g] · d[g])`.
#[allow(clippy::too_many_arguments)]
fn geometric_modes(
    spec: &CoarseSpec,
    p: usize,
    geo: &CoarsePartGeometry,
    mult: &[f64],
    d: &[f64],
    mpp: usize,
    n_comp: usize,
    modes: &mut [Vec<(usize, f64)>],
) {
    let n = geo.dofs.len();
    // Per-part centroid over all entries (constrained included — fixed,
    // purely geometric, deterministic).
    let (mut cx, mut cy, mut cz) = (0.0, 0.0, 0.0);
    for q in &geo.pos {
        cx += q[0];
        cy += q[1];
        cz += q[2];
    }
    if n > 0 {
        cx /= n as f64;
        cy /= n as f64;
        cz /= n as f64;
    }
    for e in 0..n {
        if geo.constrained[e] {
            continue;
        }
        let g = geo.dofs[e];
        let w = 1.0 / (mult[g] * d[g]);
        let c = geo.comp[e];
        // Translation mode of this dof's component.
        modes[p * mpp + c].push((g, w));
        if matches!(spec, CoarseSpec::Rbm) && n_comp >= 2 {
            // Rotation about e_z: (−(y − ȳ), x − x̄, 0) — the single 2-D
            // rotation, kept in the historical mode slot.
            let rot_z = match c {
                0 => -(geo.pos[e][1] - cy),
                1 => geo.pos[e][0] - cx,
                _ => 0.0,
            };
            if rot_z != 0.0 {
                modes[p * mpp + n_comp].push((g, rot_z * w));
            }
            if n_comp >= 3 {
                // Rotations about e_x: (0, −(z − z̄), y − ȳ) and
                // e_y: (z − z̄, 0, −(x − x̄)).
                let rot_x = match c {
                    1 => -(geo.pos[e][2] - cz),
                    2 => geo.pos[e][1] - cy,
                    _ => 0.0,
                };
                let rot_y = match c {
                    0 => geo.pos[e][2] - cz,
                    2 => -(geo.pos[e][0] - cx),
                    _ => 0.0,
                };
                if rot_x != 0.0 {
                    modes[p * mpp + n_comp + 1].push((g, rot_x * w));
                }
                if rot_y != 0.0 {
                    modes[p * mpp + n_comp + 2].push((g, rot_y * w));
                }
            }
        }
    }
}

/// The `k` lowest eigenvectors of the part's unconstrained principal block
/// of the scaled operator, partition-of-unity weighted (`Ẑ[g] = v[g] /
/// mult[g]`; no `d` division — the eigenproblem already lives in scaled
/// space). Parts smaller than `k` keep empty trailing modes, pivoted out
/// by the coarse factorization.
fn lowrank_modes(
    p: usize,
    geo: &CoarsePartGeometry,
    mult: &[f64],
    a_scaled: &CsrMatrix,
    k: usize,
    modes: &mut [Vec<(usize, f64)>],
) {
    let free: Vec<usize> = (0..geo.dofs.len())
        .filter(|&e| !geo.constrained[e])
        .collect();
    let n = free.len();
    if n == 0 {
        return;
    }
    let mut block = vec![0.0; n * n];
    for (i, &ei) in free.iter().enumerate() {
        for (j, &ej) in free.iter().enumerate() {
            block[i * n + j] = a_scaled.get(geo.dofs[ei], geo.dofs[ej]);
        }
    }
    let (_vals, vecs) = sym_eigen_jacobi(n, &block);
    for m in 0..k.min(n) {
        let col = &mut modes[p * k + m];
        for (i, &ei) in free.iter().enumerate() {
            let g = geo.dofs[ei];
            let v = vecs[m * n + i] / mult[g];
            if v != 0.0 {
                col.push((g, v));
            }
        }
    }
}

/// Applies `passes` damped-Jacobi smoothing steps `ẑ ← (I − ω D_A⁻¹ A) ẑ`
/// to every coarse mode (the smoothed-aggregation prolongator). Each pass
/// widens a mode's support by one stencil layer, which is exactly what
/// repairs the energy boundedness plain aggregation lacks on elasticity.
///
/// The damping is the standard `ω = 4/(3 λ̂)` with `λ̂` a power-iteration
/// estimate of `λ_max(D_A⁻¹ A)` from a fixed start vector — deterministic,
/// and accurate enough that overshoot (which would *amplify* the high end)
/// cannot happen for the mild spectra produced by norm-1 scaling.
fn smooth_prolongator(modes: &mut [Vec<(usize, f64)>], a_scaled: &CsrMatrix, passes: usize) {
    let n = a_scaled.n_rows();
    let diag = a_scaled.diagonal();
    let inv_diag: Vec<f64> = diag
        .iter()
        .map(|&q| if q != 0.0 { 1.0 / q } else { 0.0 })
        .collect();
    // λ̂ ≈ λ_max(D_A⁻¹ A) by power iteration on the diagonally
    // preconditioned operator, started from the all-ones vector.
    let mut v = vec![1.0; n];
    let mut lambda = 1.0;
    for _ in 0..12 {
        let mut w = a_scaled.spmv(&v);
        for (wi, &qi) in w.iter_mut().zip(&inv_diag) {
            *wi *= qi;
        }
        let norm = norm2(&w);
        if norm <= 0.0 {
            break;
        }
        lambda = norm / norm2(&v).max(f64::MIN_POSITIVE);
        let inv = 1.0 / norm;
        for (vi, wi) in v.iter_mut().zip(&w) {
            *vi = wi * inv;
        }
    }
    let omega = 4.0 / (3.0 * lambda.max(f64::MIN_POSITIVE));
    // Support-local sparse application: each pass only touches the mode's
    // current support plus one stencil layer (A is structurally symmetric,
    // so the neighbors of the support are found by walking its rows), so
    // the cost per mode is proportional to its footprint, not to `n`.
    let mut z = vec![0.0; n];
    for col in modes.iter_mut() {
        if col.is_empty() {
            continue;
        }
        let mut supp: std::collections::BTreeSet<usize> = col.iter().map(|&(g, _)| g).collect();
        for &(g, val) in col.iter() {
            z[g] = val;
        }
        for _ in 0..passes {
            let mut reach = supp.clone();
            for &i in &supp {
                let (cols, _) = a_scaled.row(i);
                reach.extend(cols.iter().copied());
            }
            let mut y = Vec::with_capacity(reach.len());
            for &r in &reach {
                let (cols, vals) = a_scaled.row(r);
                let mut acc = 0.0;
                for (&j, &a_rj) in cols.iter().zip(vals) {
                    acc += a_rj * z[j];
                }
                y.push((r, acc));
            }
            for (r, yr) in y {
                z[r] -= omega * yr * inv_diag[r];
            }
            supp = reach;
        }
        col.clear();
        for &g in &supp {
            if z[g] != 0.0 {
                col.push((g, z[g]));
            }
            z[g] = 0.0;
        }
    }
}

/// Assembles the Galerkin coarse operator `A_c = Ẑᵀ A Ẑ` as a sparse
/// symmetric matrix, without ever materializing a dense `n_modes²` block:
/// for each mode, `y = A ẑ_m` is scattered through the touched rows, and
/// only modes sharing support (found through a dof → modes incidence list)
/// receive entries. The lower triangle is computed and mirrored exactly,
/// so the result is symmetric bit for bit.
pub fn galerkin_matrix(a: &CsrMatrix, modes: &[Vec<(usize, f64)>]) -> CsrMatrix {
    let n = a.n_rows();
    let n_m = modes.len();
    let mut incidence: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (m, col) in modes.iter().enumerate() {
        for &(g, _) in col {
            incidence[g].push(m as u32);
        }
    }
    let mut y = vec![0.0; n];
    let mut touched: Vec<usize> = Vec::new();
    let mut seen = vec![false; n_m];
    let mut coo = CooMatrix::new(n_m, n_m);
    for m in 0..n_m {
        // y = A ẑ_m over the structurally reachable rows.
        for &(c, v) in &modes[m] {
            let (cols, vals) = a.row(c);
            for (j, &col) in cols.iter().enumerate() {
                if y[col] == 0.0 {
                    touched.push(col);
                }
                y[col] += vals[j] * v;
            }
        }
        // Candidate partners: modes incident to a touched row, m2 ≤ m.
        let mut partners: Vec<u32> = Vec::new();
        for &t in &touched {
            for &m2 in &incidence[t] {
                if (m2 as usize) <= m && !seen[m2 as usize] {
                    seen[m2 as usize] = true;
                    partners.push(m2);
                }
            }
        }
        partners.sort_unstable();
        for &m2 in &partners {
            seen[m2 as usize] = false;
            let mut acc = 0.0;
            for &(g, v) in &modes[m2 as usize] {
                acc += v * y[g];
            }
            coo.push(m, m2 as usize, acc)
                .expect("coarse entry in range");
            if (m2 as usize) != m {
                coo.push(m2 as usize, m, acc)
                    .expect("coarse entry in range");
            }
        }
        for &t in &touched {
            y[t] = 0.0;
        }
        touched.clear();
    }
    coo.to_csr()
}

/// The runtime coarse correction `z (+)= Ẑ A_c⁻¹ Ẑᵀ v` of one rank (or of
/// the whole problem, sequentially).
///
/// Restriction and prolongation are sparse triplet sweeps over
/// caller-chosen local entry lists; the factored coarse operator is shared
/// (`Arc`) and solved redundantly on every rank after the deterministic
/// [`CoarseReduce::coarse_reduce`], so no second communication round is
/// needed and interface values agree bit for bit. Application is
/// allocation-free: the coarse-vector buffer is preallocated (behind an
/// uncontended `Mutex`, so host-built per-rank solvers can be handed
/// across the rank threads).
#[derive(Debug)]
pub struct CoarseSolver {
    n_modes: usize,
    /// `(local row, mode, weight)`: `y[mode] += weight · v[row]`, sorted by
    /// `(mode, row)`. Weights fold in the consumer's partition-of-unity
    /// (e.g. `1/mult` on element partitions, `1` on owned-row partitions).
    restrict: Vec<(usize, usize, f64)>,
    /// `(local row, mode, value)`: `z[row] += value · y[mode]`, sorted by
    /// `(row, mode)` so shared dofs accumulate in identical order on every
    /// rank that holds them.
    prolong: Vec<(usize, usize, f64)>,
    factor: Arc<SkylineLdlt>,
    y: Mutex<Vec<f64>>,
}

impl Clone for CoarseSolver {
    fn clone(&self) -> Self {
        CoarseSolver {
            n_modes: self.n_modes,
            restrict: self.restrict.clone(),
            prolong: self.prolong.clone(),
            factor: Arc::clone(&self.factor),
            y: Mutex::new(vec![0.0; self.n_modes]),
        }
    }
}

impl CoarseSolver {
    /// Builds a solver from raw triplet lists (sorted internally) and the
    /// shared coarse factorization.
    pub fn new(
        n_modes: usize,
        mut restrict: Vec<(usize, usize, f64)>,
        mut prolong: Vec<(usize, usize, f64)>,
        factor: Arc<SkylineLdlt>,
    ) -> Self {
        assert_eq!(factor.dim(), n_modes, "coarse factor dimension");
        restrict.sort_by_key(|&(r, m, _)| (m, r));
        prolong.sort_by_key(|&(r, m, _)| (r, m));
        CoarseSolver {
            n_modes,
            restrict,
            prolong,
            factor,
            y: Mutex::new(vec![0.0; n_modes]),
        }
    }

    /// Number of global coarse modes.
    pub fn n_modes(&self) -> usize {
        self.n_modes
    }

    /// Modes the coarse factorization pivoted out (rank-deficient blocks).
    pub fn skipped_modes(&self) -> Vec<usize> {
        self.factor.skipped_modes()
    }

    /// The restriction triplets `(local row, mode, weight)`, sorted by
    /// `(mode, row)` — exposed so tests can verify transpose consistency
    /// against the prolongation.
    pub fn restrict_entries(&self) -> &[(usize, usize, f64)] {
        &self.restrict
    }

    /// The prolongation triplets `(local row, mode, value)`, sorted by
    /// `(row, mode)`.
    pub fn prolong_entries(&self) -> &[(usize, usize, f64)] {
        &self.prolong
    }

    /// Local flops of one application, for the virtual-time model.
    pub fn flops(&self) -> u64 {
        2 * (self.restrict.len() + self.prolong.len()) as u64 + self.factor.solve_flops()
    }

    /// `z = Ẑ A_c⁻¹ Ẑᵀ v` (overwriting `z`).
    pub fn apply_overwrite<Op: CoarseReduce + ?Sized>(&self, op: &Op, v: &[f64], z: &mut [f64]) {
        self.apply_impl(op, v, z, false)
    }

    /// `z += Ẑ A_c⁻¹ Ẑᵀ v`.
    pub fn apply_add<Op: CoarseReduce + ?Sized>(&self, op: &Op, v: &[f64], z: &mut [f64]) {
        self.apply_impl(op, v, z, true)
    }

    fn apply_impl<Op: CoarseReduce + ?Sized>(&self, op: &Op, v: &[f64], z: &mut [f64], add: bool) {
        let mut y = self.y.lock().expect("coarse scratch lock");
        for e in y.iter_mut() {
            *e = 0.0;
        }
        for &(r, m, w) in &self.restrict {
            y[m] += w * v[r];
        }
        op.coarse_reduce(&mut y);
        self.factor.solve_in_place(&mut y);
        if !add {
            for e in z.iter_mut() {
                *e = 0.0;
            }
        }
        for &(r, m, w) in &self.prolong {
            z[r] += w * y[m];
        }
        op.coarse_work(self.flops());
    }
}

/// A two-level preconditioner: a [`CoarseSolver`] composed with a smoother
/// `S` (any existing [`Preconditioner`]).
///
/// Works over any operator that is both a [`LinearOperator`] (the
/// multiplicative residual needs `A z_c`) and [`CoarseReduce`] (the coarse
/// right-hand side needs the cross-rank sum) — which covers the sequential
/// CSR operator and both distributed operators.
pub struct TwoLevelPrecond<S> {
    smoother: S,
    coarse: CoarseSolver,
    composition: Composition,
    label: String,
}

impl<S> TwoLevelPrecond<S> {
    /// Composes `smoother` with `coarse`. `label` becomes the
    /// [`Preconditioner::name`], conventionally the registry spec string.
    pub fn new(smoother: S, coarse: CoarseSolver, composition: Composition, label: String) -> Self {
        TwoLevelPrecond {
            smoother,
            coarse,
            composition,
            label,
        }
    }

    /// The coarse correction.
    pub fn coarse(&self) -> &CoarseSolver {
        &self.coarse
    }

    /// The smoother.
    pub fn smoother(&self) -> &S {
        &self.smoother
    }

    /// The composition mode.
    pub fn composition(&self) -> Composition {
        self.composition
    }
}

impl<Op, S> Preconditioner<Op> for TwoLevelPrecond<S>
where
    Op: LinearOperator + CoarseReduce + ?Sized,
    S: Preconditioner<Op>,
{
    fn apply_into(&self, op: &Op, v: &[f64], z: &mut [f64]) {
        // Route through the scratch path with freshly allocated scratch so
        // the two entry points are bit-identical by construction.
        let mut scratch = vec![vec![0.0; v.len()]; Preconditioner::<Op>::scratch_vectors(self)];
        self.apply_scratch(op, v, z, &mut scratch);
    }

    fn scratch_vectors(&self) -> usize {
        self.smoother.scratch_vectors()
            + match self.composition {
                Composition::Multiplicative => 2,
                Composition::Additive => 0,
            }
    }

    fn apply_scratch(&self, op: &Op, v: &[f64], z: &mut [f64], scratch: &mut [Vec<f64>]) {
        match self.composition {
            Composition::Additive => {
                self.smoother.apply_scratch(op, v, z, scratch);
                self.coarse.apply_add(op, v, z);
            }
            Composition::Multiplicative => {
                let (ours, sm_scratch) = scratch.split_at_mut(2);
                let (r_slot, s_slot) = ours.split_at_mut(1);
                let r = &mut r_slot[0];
                let s = &mut s_slot[0];
                // z_c = coarse(v); r = v − A z_c; z = z_c + M_s r.
                self.coarse.apply_overwrite(op, v, z);
                op.apply_into(z, r);
                for i in 0..r.len() {
                    r[i] = v[i] - r[i];
                }
                self.smoother.apply_scratch(op, r, s, sm_scratch);
                for i in 0..z.len() {
                    z[i] += s[i];
                }
            }
        }
    }

    fn operator_applications(&self) -> usize {
        self.smoother.operator_applications()
            + match self.composition {
                Composition::Multiplicative => 1,
                Composition::Additive => 0,
            }
    }

    fn current_operator_applications(&self) -> usize {
        self.smoother.current_operator_applications()
            + match self.composition {
                Composition::Multiplicative => 1,
                Composition::Additive => 0,
            }
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

/// A registry-built preconditioner covering both one-level and two-level
/// specs, as one concrete value.
///
/// Like [`BuiltPrecond`] it names no operator type, so one instance serves
/// a loop of solves whose operator borrows differ per iteration; unlike
/// [`BuiltPrecond`] its [`Preconditioner`] impl requires
/// [`CoarseReduce`] of the operator (trivially satisfied sequentially,
/// implemented by both distributed operators).
pub enum SpecPrecond {
    /// A one-level spec — delegates method-for-method to [`BuiltPrecond`],
    /// so results are bit-identical to the historical path.
    Plain(BuiltPrecond),
    /// A two-level spec with its coarse solver attached.
    TwoLevel(TwoLevelPrecond<BuiltPrecond>),
}

impl<Op: LinearOperator + CoarseReduce + InterfaceConsistency + ?Sized> Preconditioner<Op>
    for SpecPrecond
{
    fn apply_into(&self, op: &Op, v: &[f64], z: &mut [f64]) {
        match self {
            SpecPrecond::Plain(p) => p.apply_into(op, v, z),
            SpecPrecond::TwoLevel(p) => p.apply_into(op, v, z),
        }
    }

    fn scratch_vectors(&self) -> usize {
        match self {
            SpecPrecond::Plain(p) => Preconditioner::<Op>::scratch_vectors(p),
            SpecPrecond::TwoLevel(p) => Preconditioner::<Op>::scratch_vectors(p),
        }
    }

    fn apply_scratch(&self, op: &Op, v: &[f64], z: &mut [f64], scratch: &mut [Vec<f64>]) {
        match self {
            SpecPrecond::Plain(p) => p.apply_scratch(op, v, z, scratch),
            SpecPrecond::TwoLevel(p) => p.apply_scratch(op, v, z, scratch),
        }
    }

    fn operator_applications(&self) -> usize {
        match self {
            SpecPrecond::Plain(p) => Preconditioner::<Op>::operator_applications(p),
            SpecPrecond::TwoLevel(p) => Preconditioner::<Op>::operator_applications(p),
        }
    }

    fn current_operator_applications(&self) -> usize {
        match self {
            SpecPrecond::Plain(p) => Preconditioner::<Op>::current_operator_applications(p),
            SpecPrecond::TwoLevel(p) => Preconditioner::<Op>::current_operator_applications(p),
        }
    }

    fn name(&self) -> String {
        match self {
            SpecPrecond::Plain(p) => Preconditioner::<Op>::name(p),
            SpecPrecond::TwoLevel(p) => Preconditioner::<Op>::name(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JacobiPrecond;

    /// 1-D scaled Laplacian chain with the two end dofs constrained
    /// (identity rows), plus a strip partition into `n_parts`.
    fn chain_fixture(n: usize, n_parts: usize) -> (CsrMatrix, Vec<CoarsePartGeometry>, Vec<f64>) {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            if i == 0 || i == n - 1 {
                coo.push(i, i, 1.0).unwrap();
                continue;
            }
            coo.push(i, i, 2.0).unwrap();
            for j in [i - 1, i + 1] {
                if j != 0 && j != n - 1 {
                    coo.push(i, j, -1.0).unwrap();
                }
            }
        }
        let a = coo.to_csr();
        let per = n / n_parts;
        let parts: Vec<CoarsePartGeometry> = (0..n_parts)
            .map(|p| {
                let dofs: Vec<usize> =
                    (p * per..if p + 1 == n_parts { n } else { (p + 1) * per }).collect();
                CoarsePartGeometry {
                    pos: dofs.iter().map(|&g| [g as f64, 0.0, 0.0]).collect(),
                    comp: vec![0; dofs.len()],
                    constrained: dofs.iter().map(|&g| g == 0 || g == n - 1).collect(),
                    dofs,
                }
            })
            .collect();
        let mult = vec![1.0; n];
        (a, parts, mult)
    }

    #[test]
    fn galerkin_matrix_matches_dense_reference() {
        let (a, parts, mult) = chain_fixture(16, 4);
        let d = vec![1.0; 16];
        let basis = build_coarse_basis(&CoarseSpec::Const, &parts, &mult, &d, &a, 1e-12);
        let ac = galerkin_matrix(&a, &basis.modes);
        let m = basis.n_modes();
        for i in 0..m {
            for j in 0..m {
                let mut want = 0.0;
                for &(g1, v1) in &basis.modes[i] {
                    for &(g2, v2) in &basis.modes[j] {
                        want += v1 * a.get(g1, g2) * v2;
                    }
                }
                assert!(
                    (ac.get(i, j) - want).abs() < 1e-12,
                    "A_c[{i},{j}] = {} want {want}",
                    ac.get(i, j)
                );
                // Exact symmetry by construction.
                assert_eq!(ac.get(i, j), ac.get(j, i));
            }
        }
    }

    #[test]
    fn coarse_correction_is_exact_on_the_coarse_space() {
        // For v = A Ẑ y, the coarse correction must reproduce the coarse
        // component: Ẑ A_c⁻¹ Ẑᵀ A Ẑ y = Ẑ y.
        let (a, parts, mult) = chain_fixture(24, 4);
        let d = vec![1.0; 24];
        let basis = build_coarse_basis(&CoarseSpec::Const, &parts, &mult, &d, &a, 1e-12);
        let solver = basis.solver();
        let y = [1.0, -2.0, 0.5, 3.0];
        let mut zy = vec![0.0; 24];
        for (m, col) in basis.modes.iter().enumerate() {
            for &(g, v) in col {
                zy[g] += v * y[m];
            }
        }
        let v = a.apply(&zy);
        let mut z = vec![0.0; 24];
        solver.apply_overwrite(&a, &v, &mut z);
        for (got, want) in z.iter().zip(&zy) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn additive_and_multiplicative_both_apply_and_differ() {
        let (a, parts, mult) = chain_fixture(24, 4);
        let d = vec![1.0; 24];
        let basis = build_coarse_basis(&CoarseSpec::Const, &parts, &mult, &d, &a, 1e-12);
        let v: Vec<f64> = (0..24).map(|i| ((i * 7 % 11) as f64) - 5.0).collect();
        let mk = |comp| {
            TwoLevelPrecond::new(
                JacobiPrecond::from_diagonal(&a.diagonal()),
                basis.solver(),
                comp,
                "t".into(),
            )
        };
        let add = mk(Composition::Additive).apply(&a, &v);
        let mult_z = mk(Composition::Multiplicative).apply(&a, &v);
        assert!(add.iter().all(|x| x.is_finite()));
        assert!(mult_z.iter().all(|x| x.is_finite()));
        assert!(add.iter().zip(&mult_z).any(|(x, y)| x != y));
    }

    #[test]
    fn scratch_and_allocating_paths_are_bit_identical() {
        let (a, parts, mult) = chain_fixture(24, 4);
        let d = vec![1.0; 24];
        let basis = build_coarse_basis(&CoarseSpec::Rbm, &parts, &mult, &d, &a, 1e-12);
        for comp in [Composition::Additive, Composition::Multiplicative] {
            let pc = TwoLevelPrecond::new(
                JacobiPrecond::from_diagonal(&a.diagonal()),
                basis.solver(),
                comp,
                "t".into(),
            );
            let v: Vec<f64> = (0..24).map(|i| (i as f64).sin()).collect();
            let mut z1 = vec![0.0; 24];
            pc.apply_into(&a, &v, &mut z1);
            let mut z2 = vec![0.0; 24];
            let mut scratch =
                vec![vec![0.0; 24]; Preconditioner::<CsrMatrix>::scratch_vectors(&pc)];
            pc.apply_scratch(&a, &v, &mut z2, &mut scratch);
            assert_eq!(z1, z2);
        }
    }

    #[test]
    fn rbm_mode_counts_follow_the_physics() {
        // d(d+1)/2 rigid modes: 1 scalar, 3 in 2-D, 6 in 3-D.
        assert_eq!(CoarseSpec::Rbm.modes_per_part(1), 1);
        assert_eq!(CoarseSpec::Rbm.modes_per_part(2), 3);
        assert_eq!(CoarseSpec::Rbm.modes_per_part(3), 6);
        assert_eq!(CoarseSpec::Const.modes_per_part(3), 3);
    }

    #[test]
    fn three_d_rbm_modes_span_the_six_rigid_motions() {
        // One unconstrained part of 4 non-coplanar nodes with 3 components
        // per node; the geometric modes must be the 3 translations and the
        // 3 axis rotations about the centroid, in that order.
        let nodes = [
            [0.0, 0.0, 0.0],
            [2.0, 0.0, 0.0],
            [0.0, 3.0, 0.0],
            [0.0, 0.0, 4.0],
        ];
        let n_dofs = 12;
        let geo = CoarsePartGeometry {
            dofs: (0..n_dofs).collect(),
            pos: (0..n_dofs).map(|g| nodes[g / 3]).collect(),
            comp: (0..n_dofs).map(|g| g % 3).collect(),
            constrained: vec![false; n_dofs],
        };
        let mult = vec![1.0; n_dofs];
        let d = vec![1.0; n_dofs];
        let mut modes: Vec<Vec<(usize, f64)>> = vec![Vec::new(); 6];
        geometric_modes(&CoarseSpec::Rbm, 0, &geo, &mult, &d, 6, 3, &mut modes);
        // Dense expansion for checking.
        let dense: Vec<Vec<f64>> = modes
            .iter()
            .map(|col| {
                let mut v = vec![0.0; n_dofs];
                for &(g, val) in col {
                    v[g] = val;
                }
                v
            })
            .collect();
        let (cx, cy, cz) = (0.5, 0.75, 1.0);
        for (nd, q) in nodes.iter().enumerate() {
            let (x, y, z) = (q[0] - cx, q[1] - cy, q[2] - cz);
            // Translations.
            for c in 0..3 {
                for c2 in 0..3 {
                    let want = if c == c2 { 1.0 } else { 0.0 };
                    assert_eq!(dense[c][3 * nd + c2], want);
                }
            }
            // Rotations about e_z, e_x, e_y.
            for (m, want) in [(3, [-y, x, 0.0]), (4, [0.0, -z, y]), (5, [z, 0.0, -x])] {
                for c in 0..3 {
                    assert!(
                        (dense[m][3 * nd + c] - want[c]).abs() < 1e-14,
                        "mode {m} node {nd} comp {c}: {} vs {}",
                        dense[m][3 * nd + c],
                        want[c]
                    );
                }
            }
        }
    }

    #[test]
    fn coarse_spec_tokens_round_trip() {
        for spec in [CoarseSpec::Const, CoarseSpec::Rbm, CoarseSpec::LowRank(8)] {
            assert_eq!(CoarseSpec::parse(&spec.token()), Some(spec));
        }
        assert_eq!(CoarseSpec::parse("lowrank-0"), None);
        assert_eq!(CoarseSpec::parse("lowrank-x"), None);
        assert_eq!(CoarseSpec::parse("fine"), None);
    }
}
