//! Polynomial utilities: monomial-coefficient arithmetic and the
//! floating-point stability bound of the paper's Eq. 24.
//!
//! The *application* of a polynomial preconditioner never touches monomial
//! coefficients (it runs a three-term recurrence on vectors); the monomial
//! form exists for the diagnostics of Figs. 1–3 — residual-polynomial plots
//! and the accumulated-roundoff bound `‖z_fl − z‖ ≤ mε Σ|aᵢ|‖v‖`.

/// A real polynomial in monomial form: `p(λ) = Σ coeffs[i] λ^i`.
#[derive(Debug, Clone, PartialEq)]
pub struct Poly {
    /// Monomial coefficients, index = power. Highest entry may be zero.
    pub coeffs: Vec<f64>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: vec![] }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        Poly { coeffs: vec![c] }
    }

    /// Degree (0 for the zero polynomial; trailing zeros ignored).
    pub fn degree(&self) -> usize {
        self.coeffs.iter().rposition(|&c| c != 0.0).unwrap_or(0)
    }

    /// Evaluates `p(x)` by Horner's rule.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// `self + alpha * other`.
    pub fn add_scaled(&self, alpha: f64, other: &Poly) -> Poly {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut coeffs = vec![0.0; n];
        for (i, &c) in self.coeffs.iter().enumerate() {
            coeffs[i] += c;
        }
        for (i, &c) in other.coeffs.iter().enumerate() {
            coeffs[i] += alpha * c;
        }
        Poly { coeffs }
    }

    /// `(a x + b) * self` — the step used by three-term recurrences.
    pub fn mul_linear(&self, a: f64, b: f64) -> Poly {
        let mut coeffs = vec![0.0; self.coeffs.len() + 1];
        for (i, &c) in self.coeffs.iter().enumerate() {
            coeffs[i] += b * c;
            coeffs[i + 1] += a * c;
        }
        Poly { coeffs }
    }

    /// `alpha * self`.
    pub fn scale(&self, alpha: f64) -> Poly {
        Poly {
            coeffs: self.coeffs.iter().map(|&c| alpha * c).collect(),
        }
    }

    /// `x * self` (degree shift).
    pub fn shift_up(&self) -> Poly {
        self.mul_linear(1.0, 0.0)
    }

    /// Sum of absolute monomial coefficients `Σ|aᵢ|` — the growth factor in
    /// the stability bound of Eq. 24.
    pub fn abs_coeff_sum(&self) -> f64 {
        self.coeffs.iter().map(|c| c.abs()).sum()
    }
}

/// The paper's floating-point stability bound (Eq. 24):
/// `‖z_fl − z‖₂ ≤ m ε Σ|aᵢ|` for `‖v‖ = 1`, where `m` is the polynomial
/// degree, `ε` the machine roundoff and `aᵢ` the monomial coefficients.
pub fn stability_bound(p: &Poly, machine_eps: f64) -> f64 {
    p.degree() as f64 * machine_eps * p.abs_coeff_sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_by_horner_matches_direct() {
        let p = Poly {
            coeffs: vec![1.0, -2.0, 3.0],
        }; // 1 - 2x + 3x^2
        assert_eq!(p.eval(0.0), 1.0);
        assert_eq!(p.eval(1.0), 2.0);
        assert_eq!(p.eval(2.0), 9.0);
        assert_eq!(p.degree(), 2);
    }

    #[test]
    fn degree_ignores_trailing_zeros() {
        let p = Poly {
            coeffs: vec![1.0, 2.0, 0.0, 0.0],
        };
        assert_eq!(p.degree(), 1);
        assert_eq!(Poly::zero().degree(), 0);
        assert_eq!(Poly::constant(5.0).degree(), 0);
    }

    #[test]
    fn add_scaled_combines() {
        let p = Poly {
            coeffs: vec![1.0, 1.0],
        };
        let q = Poly {
            coeffs: vec![0.0, 0.0, 2.0],
        };
        let r = p.add_scaled(0.5, &q);
        assert_eq!(r.coeffs, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn mul_linear_is_polynomial_multiplication() {
        // (2x + 3)(1 + x) = 3 + 5x + 2x^2
        let p = Poly {
            coeffs: vec![1.0, 1.0],
        };
        let r = p.mul_linear(2.0, 3.0);
        assert_eq!(r.coeffs, vec![3.0, 5.0, 2.0]);
    }

    #[test]
    fn shift_up_multiplies_by_x() {
        let p = Poly {
            coeffs: vec![4.0, 5.0],
        };
        assert_eq!(p.shift_up().coeffs, vec![0.0, 4.0, 5.0]);
    }

    #[test]
    fn chebyshev_recurrence_via_mul_linear() {
        // T_{k+1} = 2x T_k - T_{k-1}; T_3 = 4x^3 - 3x.
        let t0 = Poly::constant(1.0);
        let t1 = Poly {
            coeffs: vec![0.0, 1.0],
        };
        let t2 = t1.mul_linear(2.0, 0.0).add_scaled(-1.0, &t0);
        let t3 = t2.mul_linear(2.0, 0.0).add_scaled(-1.0, &t1);
        assert_eq!(t2.coeffs, vec![-1.0, 0.0, 2.0]);
        assert_eq!(t3.coeffs, vec![0.0, -3.0, 0.0, 4.0]);
        // |T_k(x)| <= 1 on [-1, 1].
        for i in 0..=20 {
            let x = -1.0 + 0.1 * i as f64;
            assert!(t3.eval(x).abs() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn stability_bound_grows_with_coefficients() {
        let small = Poly {
            coeffs: vec![1.0, 1.0, 1.0],
        };
        let large = Poly {
            coeffs: vec![1e6, -1e6, 1.0],
        };
        let eps = f64::EPSILON;
        assert!(stability_bound(&large, eps) > stability_bound(&small, eps));
        assert_eq!(stability_bound(&Poly::constant(1.0), eps), 0.0);
    }
}
