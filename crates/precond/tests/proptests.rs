//! Property-based tests for the polynomial preconditioners.

use parfem_precond::gls::{GlsPrecond, IntervalUnion};
use parfem_precond::neumann::NeumannPrecond;
use parfem_precond::Preconditioner;
use parfem_sparse::CsrMatrix;
use proptest::prelude::*;

/// Strategy: a random single positive interval bounded away from 0.
fn interval() -> impl Strategy<Value = (f64, f64)> {
    (0.01..1.0f64, 0.05..3.0f64).prop_map(|(lo, width)| (lo, lo + width))
}

/// Strategy: a random two-sided (indefinite) interval union.
fn two_sided() -> impl Strategy<Value = IntervalUnion> {
    (0.1..2.0f64, 0.1..2.0f64, 0.05..1.0f64)
        .prop_map(|(l, r, gap)| IntervalUnion::new(vec![(-l - gap, -gap), (gap, r + gap)]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gls_residual_is_one_at_zero_for_any_theta((lo, hi) in interval(), m in 0usize..12) {
        let p = GlsPrecond::new(m, IntervalUnion::single(lo, hi));
        prop_assert!((p.residual(0.0) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn gls_weighted_norm_never_increases_with_degree((lo, hi) in interval(), m in 1usize..10) {
        let theta = IntervalUnion::single(lo, hi);
        let n_lo = GlsPrecond::new(m, theta.clone()).weighted_residual_norm();
        let n_hi = GlsPrecond::new(m + 1, theta).weighted_residual_norm();
        prop_assert!(n_hi <= n_lo + 1e-9, "degree {}: {} -> {}", m, n_lo, n_hi);
    }

    #[test]
    fn gls_matrix_apply_matches_scalar_eval((lo, hi) in interval(),
                                            m in 1usize..9,
                                            lambdas in prop::collection::vec(0.01..3.0f64, 3)) {
        let p = GlsPrecond::new(m, IntervalUnion::single(lo, hi));
        let a = CsrMatrix::from_diagonal(&lambdas);
        let z = p.apply(&a, &vec![1.0; lambdas.len()]);
        for (zi, &l) in z.iter().zip(&lambdas) {
            let want = p.eval(l);
            prop_assert!((zi - want).abs() < 1e-8 * (1.0 + want.abs()),
                "lambda {}: {} vs {}", l, zi, want);
        }
    }

    #[test]
    fn gls_handles_random_indefinite_unions(theta in two_sided(), m in 2usize..10) {
        // Construction must succeed and damp both sides of the spectrum at
        // the interval midpoints better than the trivial residual 1.
        let p = GlsPrecond::new(m, theta.clone());
        for &(a, b) in theta.intervals() {
            let mid = 0.5 * (a + b);
            prop_assert!(p.residual(mid).abs() < 1.0,
                "no damping at midpoint {} of {:?}", mid, (a, b));
        }
    }

    #[test]
    fn gls_monomial_matches_recurrence_eval((lo, hi) in interval(), m in 1usize..7) {
        let p = GlsPrecond::new(m, IntervalUnion::single(lo, hi));
        let poly = p.monomial();
        for k in 0..=10 {
            let l = lo + (hi - lo) * k as f64 / 10.0;
            let a = poly.eval(l);
            let b = p.eval(l);
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()), "{} vs {}", a, b);
        }
    }

    #[test]
    fn neumann_residual_matches_direct_evaluation(omega in 0.1..2.0f64,
                                                  m in 0usize..15,
                                                  lambda in 0.0..2.0f64) {
        let p = NeumannPrecond::new(m, omega);
        let direct = 1.0 - lambda * p.eval(lambda);
        prop_assert!((p.residual(lambda) - direct).abs() < 1e-9 * (1.0 + direct.abs()));
    }

    #[test]
    fn neumann_converges_geometrically_inside_the_disc(omega in 0.5..1.5f64,
                                                       lambda in 0.05..1.0f64) {
        // |1 - omega*lambda| < 1 ==> residual shrinks monotonically in m.
        prop_assume!((1.0 - omega * lambda).abs() < 0.95);
        let r5 = NeumannPrecond::new(5, omega).residual(lambda).abs();
        let r10 = NeumannPrecond::new(10, omega).residual(lambda).abs();
        prop_assert!(r10 <= r5 + 1e-12);
    }

    #[test]
    fn preconditioner_apply_is_linear((lo, hi) in interval(),
                                      m in 1usize..7,
                                      alpha in -3.0..3.0f64,
                                      d in prop::collection::vec(0.1..2.0f64, 4),
                                      v in prop::collection::vec(-2.0..2.0f64, 4),
                                      w in prop::collection::vec(-2.0..2.0f64, 4)) {
        // P(A)(alpha v + w) == alpha P(A)v + P(A)w.
        let p = GlsPrecond::new(m, IntervalUnion::single(lo, hi));
        let a = CsrMatrix::from_diagonal(&d);
        let combo: Vec<f64> = v.iter().zip(&w).map(|(x, y)| alpha * x + y).collect();
        let lhs = p.apply(&a, &combo);
        let pv = p.apply(&a, &v);
        let pw = p.apply(&a, &w);
        for ((l, x), y) in lhs.iter().zip(&pv).zip(&pw) {
            let rhs = alpha * x + y;
            prop_assert!((l - rhs).abs() < 1e-9 * (1.0 + rhs.abs()));
        }
    }
}
