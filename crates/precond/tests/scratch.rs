//! `apply_scratch` must be **bit-identical** to `apply_into` for every
//! preconditioner: the Krylov workspace swaps one for the other in the hot
//! loop, and the workspace-vs-allocating FGMRES equality tests (and the
//! distributed solvers' exact iteration-equality tests) only hold if the
//! preconditioned vectors match to the last bit.

use parfem_precond::{
    ChebyshevPrecond, EscalatingGls, GlsPrecond, IdentityPrecond, IntervalUnion, JacobiPrecond,
    NeumannPrecond, Preconditioner,
};
use parfem_sparse::{CooMatrix, CsrMatrix};

/// 1-D Laplacian scaled so the spectrum sits inside (0, 1).
fn scaled_laplacian(n: usize) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 0.5).unwrap();
        if i + 1 < n {
            coo.push(i, i + 1, -0.25).unwrap();
            coo.push(i + 1, i, -0.25).unwrap();
        }
    }
    coo.to_csr()
}

fn probe(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 13 % 17) as f64 - 8.0) / 8.0).collect()
}

/// Applies `p` both ways and checks exact equality; scratch buffers are
/// deliberately poisoned with garbage to prove implementations do not rely
/// on their incoming contents.
fn check_bit_identical<P: Preconditioner<CsrMatrix>>(p: &P, a: &CsrMatrix) {
    let n = a.n_rows();
    let v = probe(n);
    let mut z_alloc = vec![0.0; n];
    p.apply_into(a, &v, &mut z_alloc);

    let mut scratch: Vec<Vec<f64>> = (0..p.scratch_vectors())
        .map(|j| vec![f64::NAN + j as f64; n])
        .collect();
    let mut z_scratch = vec![f64::NAN; n];
    p.apply_scratch(a, &v, &mut z_scratch, &mut scratch);

    assert_eq!(z_alloc, z_scratch, "{}", p.name());
    // A second application through the same (now dirty) scratch must agree
    // too — this is exactly the reuse pattern of the Krylov workspace.
    p.apply_scratch(a, &v, &mut z_scratch, &mut scratch);
    assert_eq!(z_alloc, z_scratch, "{} (reused scratch)", p.name());
}

#[test]
fn neumann_scratch_matches_allocating_path() {
    let a = scaled_laplacian(37);
    for degree in [0usize, 1, 3, 8] {
        check_bit_identical(&NeumannPrecond::for_scaled_system(degree), &a);
    }
}

#[test]
fn gls_scratch_matches_allocating_path() {
    let a = scaled_laplacian(37);
    for degree in [0usize, 1, 4, 9] {
        check_bit_identical(&GlsPrecond::for_scaled_system(degree), &a);
    }
    let u = IntervalUnion::new(vec![(0.05, 0.4), (0.6, 0.95)]);
    check_bit_identical(&GlsPrecond::new(6, u), &a);
}

#[test]
fn chebyshev_scratch_matches_allocating_path() {
    let a = scaled_laplacian(37);
    for degree in [0usize, 1, 5, 10] {
        check_bit_identical(&ChebyshevPrecond::new(degree, 0.02, 0.98), &a);
    }
}

#[test]
fn escalating_gls_scratch_matches_allocating_path() {
    let a = scaled_laplacian(37);
    // Same schedule position on both paths: two fresh instances, applied
    // the same number of times each.
    let p_alloc = EscalatingGls::new(vec![1, 3, 7], IntervalUnion::unit());
    let p_scratch = EscalatingGls::new(vec![1, 3, 7], IntervalUnion::unit());
    assert_eq!(Preconditioner::<CsrMatrix>::scratch_vectors(&p_scratch), 3);
    let n = a.n_rows();
    let v = probe(n);
    let mut scratch: Vec<Vec<f64>> = (0..3).map(|_| vec![f64::NAN; n]).collect();
    for app in 0..5 {
        let mut z_alloc = vec![0.0; n];
        p_alloc.apply_into(&a, &v, &mut z_alloc);
        let mut z_scratch = vec![f64::NAN; n];
        p_scratch.apply_scratch(&a, &v, &mut z_scratch, &mut scratch);
        assert_eq!(z_alloc, z_scratch, "application {app}");
    }
}

#[test]
fn data_only_preconditioners_need_no_scratch() {
    let a = scaled_laplacian(12);
    let p = JacobiPrecond::from_matrix(&a);
    assert_eq!(Preconditioner::<CsrMatrix>::scratch_vectors(&p), 0);
    check_bit_identical(&p, &a);
    assert_eq!(
        Preconditioner::<CsrMatrix>::scratch_vectors(&IdentityPrecond),
        0
    );
    check_bit_identical(&IdentityPrecond, &a);
}
