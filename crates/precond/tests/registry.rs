//! Registry contract tests: the spec grammar round-trips through both
//! string forms, and every malformed arm produces the exact diagnostic the
//! CLI shows — pinning the messages so help text and errors cannot drift.

use parfem_precond::registry::{examples, grammar_help, GRAMMAR};
use parfem_precond::{ParseSpecError, PrecondSpec};
use proptest::prelude::*;

/// Strategy: an arbitrary spec from the registry's kinds, with a random
/// degree/period where the kind takes one.
fn any_spec() -> impl Strategy<Value = PrecondSpec> {
    (0usize..6, 0usize..40).prop_map(|(kind, n)| match kind {
        0 => PrecondSpec::None,
        1 => PrecondSpec::Jacobi,
        2 => PrecondSpec::Gls {
            degree: n,
            theta: None,
        },
        3 => PrecondSpec::Neumann { degree: n },
        4 => PrecondSpec::Chebyshev { degree: n },
        _ => PrecondSpec::GlsEscalating { period: n + 1 },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `parse(spec.name()) == spec`: the display form (paper curve labels,
    /// `gls(7)` / `gls-escalating(x5)`) is a faithful serialization.
    #[test]
    fn display_name_round_trips(spec in any_spec()) {
        prop_assert_eq!(PrecondSpec::parse(&spec.name()).unwrap(), spec);
    }

    /// `parse(spec.spec_str()) == spec`: the CLI grammar round-trips too.
    #[test]
    fn cli_spec_round_trips(spec in any_spec()) {
        prop_assert_eq!(PrecondSpec::parse(&spec.spec_str()).unwrap(), spec);
    }

    /// Whitespace padding never changes the parse.
    #[test]
    fn parse_ignores_surrounding_whitespace(spec in any_spec()) {
        let padded = format!("  {}\t", spec.spec_str());
        prop_assert_eq!(PrecondSpec::parse(&padded).unwrap(), spec);
    }
}

#[test]
fn examples_cover_every_kind_once() {
    let kinds: Vec<String> = examples()
        .iter()
        .map(|s| s.spec_str().split(':').next().unwrap().to_string())
        .collect();
    let mut unique = kinds.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), kinds.len(), "duplicate kind in examples()");
    for kind in GRAMMAR.split('|') {
        let kind = kind.split(':').next().unwrap();
        assert!(
            kinds.iter().any(|k| k == kind),
            "grammar kind {kind} missing from examples()"
        );
    }
}

#[test]
fn grammar_help_leads_with_the_grammar() {
    let help = grammar_help();
    assert!(
        help.starts_with(GRAMMAR),
        "help must open with the grammar line"
    );
    // Every registered kind is documented in the help body.
    for spec in examples() {
        let kind = spec.spec_str().split(':').next().unwrap().to_string();
        assert!(help.contains(&kind), "help text missing kind {kind}");
    }
}

// -- one test per malformed arm, pinning the exact error and its message --

#[test]
fn unknown_kind_is_rejected_with_the_grammar() {
    let err = PrecondSpec::parse("ssor:3").unwrap_err();
    assert_eq!(err, ParseSpecError::UnknownKind("ssor".into()));
    assert_eq!(
        err.to_string(),
        format!("unknown preconditioner ssor; expected {GRAMMAR}")
    );
}

#[test]
fn unclosed_display_form_is_rejected() {
    let err = PrecondSpec::parse("gls(7").unwrap_err();
    assert_eq!(err, ParseSpecError::UnknownKind("gls(7".into()));
}

#[test]
fn missing_degree_names_the_fix() {
    for kind in ["gls", "neumann", "chebyshev"] {
        let err = PrecondSpec::parse(kind).unwrap_err();
        assert_eq!(
            err,
            ParseSpecError::MissingDegree {
                kind: kind.to_string()
            }
        );
        assert_eq!(
            err.to_string(),
            format!("{kind} needs a degree, e.g. {kind}:7")
        );
    }
}

#[test]
fn bad_degree_names_kind_and_text() {
    let err = PrecondSpec::parse("gls:seven").unwrap_err();
    assert_eq!(
        err,
        ParseSpecError::BadDegree {
            kind: "gls".into(),
            given: "seven".into()
        }
    );
    assert_eq!(
        err.to_string(),
        "bad degree seven for gls: expected a non-negative integer"
    );
    assert!(PrecondSpec::parse("neumann:-1").is_err());
}

#[test]
fn missing_period_is_its_own_arm() {
    let err = PrecondSpec::parse("gls-escalating").unwrap_err();
    assert_eq!(err, ParseSpecError::MissingPeriod);
    assert_eq!(
        err.to_string(),
        "gls-escalating needs a period, e.g. gls-escalating:5"
    );
}

#[test]
fn bad_period_is_rejected() {
    let err = PrecondSpec::parse("gls-escalating:soon").unwrap_err();
    assert_eq!(err, ParseSpecError::BadPeriod("soon".into()));
    assert_eq!(
        err.to_string(),
        "bad period soon: expected a positive integer"
    );
}

#[test]
fn zero_period_is_rejected() {
    let err = PrecondSpec::parse("gls-escalating:0").unwrap_err();
    assert_eq!(err, ParseSpecError::ZeroPeriod);
    assert_eq!(err.to_string(), "period must be positive");
    // The display form `x0` hits the same arm.
    assert_eq!(
        PrecondSpec::parse("gls-escalating(x0)").unwrap_err(),
        ParseSpecError::ZeroPeriod
    );
}

#[test]
fn unexpected_argument_is_rejected() {
    let err = PrecondSpec::parse("jacobi:3").unwrap_err();
    assert_eq!(
        err,
        ParseSpecError::UnexpectedArgument {
            kind: "jacobi".into(),
            given: "3".into()
        }
    );
    assert_eq!(err.to_string(), "jacobi takes no argument (got jacobi:3)");
    assert!(PrecondSpec::parse("none:1").is_err());
}
