//! Registry contract tests: the spec grammar round-trips through both
//! string forms, and every malformed arm produces the exact diagnostic the
//! CLI shows — pinning the messages so help text and errors cannot drift.

use parfem_precond::registry::{examples, grammar_help, GRAMMAR};
use parfem_precond::{CoarseSpec, ParseSpecError, PrecondSpec};
use proptest::prelude::*;

/// Strategy: any spec the registry can print and re-parse — the one-level
/// kinds with a random degree/period, plus the two-level compositions
/// (any coarse space × any *smoother-grammar* one-level spec — everything
/// except `gls-escalating`, which has no smoother token — × either
/// composition).
fn any_spec() -> impl Strategy<Value = PrecondSpec> {
    (0usize..10, 1usize..9, 0usize..6, 0usize..40, 0usize..2).prop_map(|(kind, k, s, n, comp)| {
        match kind {
            0 => PrecondSpec::None,
            1 => PrecondSpec::Jacobi,
            2 => PrecondSpec::Gls {
                degree: n,
                theta: None,
            },
            3 => PrecondSpec::Neumann { degree: n },
            4 => PrecondSpec::Chebyshev { degree: n },
            5 => PrecondSpec::GlsEscalating { period: n + 1 },
            6 => PrecondSpec::Direct,
            _ => {
                let coarse = match kind {
                    7 => CoarseSpec::Const,
                    8 => CoarseSpec::Rbm,
                    _ => CoarseSpec::LowRank(k),
                };
                let smoother = match s {
                    0 => PrecondSpec::None,
                    1 => PrecondSpec::Jacobi,
                    2 => PrecondSpec::Gls {
                        degree: n,
                        theta: None,
                    },
                    3 => PrecondSpec::Neumann { degree: n },
                    4 => PrecondSpec::Direct,
                    _ => PrecondSpec::Chebyshev { degree: n },
                };
                PrecondSpec::TwoLevel {
                    coarse,
                    smoother: Box::new(smoother),
                    additive: comp == 1,
                }
            }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `parse(spec.name()) == spec`: the display form (paper curve labels,
    /// `gls(7)` / `gls-escalating(x5)`) is a faithful serialization.
    #[test]
    fn display_name_round_trips(spec in any_spec()) {
        prop_assert_eq!(PrecondSpec::parse(&spec.name()).unwrap(), spec);
    }

    /// `parse(spec.spec_str()) == spec`: the CLI grammar round-trips too.
    #[test]
    fn cli_spec_round_trips(spec in any_spec()) {
        prop_assert_eq!(PrecondSpec::parse(&spec.spec_str()).unwrap(), spec);
    }

    /// Whitespace padding never changes the parse.
    #[test]
    fn parse_ignores_surrounding_whitespace(spec in any_spec()) {
        let padded = format!("  {}\t", spec.spec_str());
        prop_assert_eq!(PrecondSpec::parse(&padded).unwrap(), spec);
    }
}

#[test]
fn examples_cover_every_kind_once() {
    let kinds: Vec<String> = examples()
        .iter()
        .map(|s| s.spec_str().split(':').next().unwrap().to_string())
        .collect();
    let mut unique = kinds.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), kinds.len(), "duplicate kind in examples()");
    for kind in GRAMMAR.split('|') {
        let kind = kind.split(':').next().unwrap();
        assert!(
            kinds.iter().any(|k| k == kind),
            "grammar kind {kind} missing from examples()"
        );
    }
}

#[test]
fn grammar_help_leads_with_the_grammar() {
    let help = grammar_help();
    assert!(
        help.starts_with(GRAMMAR),
        "help must open with the grammar line"
    );
    // Every registered kind is documented in the help body.
    for spec in examples() {
        let kind = spec.spec_str().split(':').next().unwrap().to_string();
        assert!(help.contains(&kind), "help text missing kind {kind}");
    }
}

// -- one test per malformed arm, pinning the exact error and its message --

#[test]
fn unknown_kind_is_rejected_with_the_grammar() {
    let err = PrecondSpec::parse("ssor:3").unwrap_err();
    assert_eq!(err, ParseSpecError::UnknownKind("ssor".into()));
    assert_eq!(
        err.to_string(),
        format!("unknown preconditioner ssor; expected {GRAMMAR}")
    );
}

#[test]
fn unclosed_display_form_is_rejected() {
    let err = PrecondSpec::parse("gls(7").unwrap_err();
    assert_eq!(err, ParseSpecError::UnknownKind("gls(7".into()));
}

#[test]
fn missing_degree_names_the_fix() {
    for kind in ["gls", "neumann", "chebyshev"] {
        let err = PrecondSpec::parse(kind).unwrap_err();
        assert_eq!(
            err,
            ParseSpecError::MissingDegree {
                kind: kind.to_string()
            }
        );
        assert_eq!(
            err.to_string(),
            format!("{kind} needs a degree, e.g. {kind}:7")
        );
    }
}

#[test]
fn bad_degree_names_kind_and_text() {
    let err = PrecondSpec::parse("gls:seven").unwrap_err();
    assert_eq!(
        err,
        ParseSpecError::BadDegree {
            kind: "gls".into(),
            given: "seven".into()
        }
    );
    assert_eq!(
        err.to_string(),
        "bad degree seven for gls: expected a non-negative integer"
    );
    assert!(PrecondSpec::parse("neumann:-1").is_err());
}

#[test]
fn missing_period_is_its_own_arm() {
    let err = PrecondSpec::parse("gls-escalating").unwrap_err();
    assert_eq!(err, ParseSpecError::MissingPeriod);
    assert_eq!(
        err.to_string(),
        "gls-escalating needs a period, e.g. gls-escalating:5"
    );
}

#[test]
fn bad_period_is_rejected() {
    let err = PrecondSpec::parse("gls-escalating:soon").unwrap_err();
    assert_eq!(err, ParseSpecError::BadPeriod("soon".into()));
    assert_eq!(
        err.to_string(),
        "bad period soon: expected a positive integer"
    );
}

#[test]
fn zero_period_is_rejected() {
    let err = PrecondSpec::parse("gls-escalating:0").unwrap_err();
    assert_eq!(err, ParseSpecError::ZeroPeriod);
    assert_eq!(err.to_string(), "period must be positive");
    // The display form `x0` hits the same arm.
    assert_eq!(
        PrecondSpec::parse("gls-escalating(x0)").unwrap_err(),
        ParseSpecError::ZeroPeriod
    );
}

#[test]
fn twolevel_missing_coarse_is_rejected() {
    for s in ["twolevel", "twolevel:"] {
        let err = PrecondSpec::parse(s).unwrap_err();
        assert_eq!(err, ParseSpecError::MissingCoarse);
        assert_eq!(
            err.to_string(),
            "twolevel needs a coarse space and a smoother, e.g. twolevel:rbm:gls-3"
        );
    }
}

#[test]
fn twolevel_bad_coarse_names_the_choices() {
    // `rbm.s0` (no-op smoothing) and `rbm.s2.s2` (nested smoothing) are
    // outside the grammar alongside the plainly malformed tokens.
    for bad in [
        "fine",
        "lowrank-0",
        "lowrank-x",
        "lowrank",
        "rbm.s0",
        "rbm.s2.s2",
        "rbm.sx",
    ] {
        let err = PrecondSpec::parse(&format!("twolevel:{bad}:gls-3")).unwrap_err();
        assert_eq!(err, ParseSpecError::BadCoarse(bad.into()));
        assert_eq!(
            err.to_string(),
            format!(
                "bad coarse space {bad}: expected const, rbm or lowrank-K \
                 (K >= 1), optionally .sK for K prolongator-smoothing passes"
            )
        );
    }
}

#[test]
fn twolevel_smoothed_coarse_round_trips() {
    for s in [
        "twolevel:rbm.s3:gls-3",
        "twolevel:const.s1:gls-7:add",
        "twolevel:lowrank-4.s2:neumann-2",
    ] {
        let spec = PrecondSpec::parse(s).unwrap();
        assert_eq!(spec.spec_str(), s);
        assert_eq!(PrecondSpec::parse(&spec.name()).unwrap(), spec);
    }
}

#[test]
fn twolevel_missing_smoother_is_rejected() {
    let err = PrecondSpec::parse("twolevel:rbm").unwrap_err();
    assert_eq!(err, ParseSpecError::MissingSmoother);
    assert_eq!(
        err.to_string(),
        "twolevel needs a smoother, e.g. twolevel:rbm:gls-3"
    );
}

#[test]
fn twolevel_bad_smoother_names_the_choices() {
    for bad in ["gls", "gls-x", "ssor-2", "gls-escalating-5"] {
        let err = PrecondSpec::parse(&format!("twolevel:rbm:{bad}")).unwrap_err();
        assert_eq!(err, ParseSpecError::BadSmoother(bad.into()));
        assert_eq!(
            err.to_string(),
            format!(
                "bad smoother {bad}: expected none, jacobi, direct, gls-M, \
                 neumann-M, gls-f32-M, neumann-f32-M or chebyshev-M"
            )
        );
    }
}

#[test]
fn twolevel_bad_composition_is_rejected() {
    for bad in ["both", "add:extra"] {
        let err = PrecondSpec::parse(&format!("twolevel:rbm:gls-3:{bad}")).unwrap_err();
        assert!(
            matches!(err, ParseSpecError::BadComposition(_)),
            "twolevel:rbm:gls-3:{bad} must hit the composition arm, got {err:?}"
        );
    }
    assert_eq!(
        PrecondSpec::parse("twolevel:rbm:gls-3:both")
            .unwrap_err()
            .to_string(),
        "bad composition both: expected add or mult"
    );
}

#[test]
fn twolevel_accepts_explicit_mult_and_defaults_to_it() {
    let explicit = PrecondSpec::parse("twolevel:rbm:gls-3:mult").unwrap();
    let default = PrecondSpec::parse("twolevel:rbm:gls-3").unwrap();
    assert_eq!(explicit, default);
    // The canonical printed form omits the default composition.
    assert_eq!(default.spec_str(), "twolevel:rbm:gls-3");
    assert_eq!(
        PrecondSpec::parse("twolevel:rbm:gls-3:add")
            .unwrap()
            .spec_str(),
        "twolevel:rbm:gls-3:add"
    );
}

#[test]
fn twolevel_mixed_precision_smoothers_round_trip() {
    for s in [
        "twolevel:const:gls-f32-4",
        "twolevel:lowrank-6:neumann-f32-2:add",
    ] {
        let spec = PrecondSpec::parse(s).unwrap();
        assert_eq!(spec.spec_str(), s);
        assert_eq!(PrecondSpec::parse(&spec.name()).unwrap(), spec);
    }
}

#[test]
fn unexpected_argument_is_rejected() {
    let err = PrecondSpec::parse("jacobi:3").unwrap_err();
    assert_eq!(
        err,
        ParseSpecError::UnexpectedArgument {
            kind: "jacobi".into(),
            given: "3".into()
        }
    );
    assert_eq!(err.to_string(), "jacobi takes no argument (got jacobi:3)");
    assert!(PrecondSpec::parse("none:1").is_err());
}
