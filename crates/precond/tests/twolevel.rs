//! Property tests for the two-level coarse machinery: the algebraic
//! invariants every coarse space must satisfy regardless of mesh, part
//! count, or mode family.
//!
//! - restriction and prolongation are an exact transpose pair (and satisfy
//!   the adjoint identity `⟨R v, w⟩ = ⟨v, Rᵀ w⟩` numerically),
//! - the Galerkin operator `Ẑᵀ A Ẑ` is symmetric **bit for bit** and
//!   positive semi-definite whenever `A` is SPD,
//! - construction is deterministic: identical inputs give bit-identical
//!   modes, factorizations, and corrections.
//!
//! The fixture is a random weighted 1-D diffusion chain — strictly
//! diagonally dominant, hence SPD — cut into random contiguous parts.

use parfem_precond::twolevel::galerkin_matrix;
use parfem_precond::{build_coarse_basis, CoarsePartGeometry, CoarseSpec};
use parfem_sparse::skyline::DEFAULT_PIVOT_TOL;
use parfem_sparse::{CooMatrix, CsrMatrix};
use proptest::prelude::*;

/// A random SPD chain matrix: off-diagonals `-w_i` on the super/sub
/// diagonal, diagonal = incident weight sum + `shift`.
fn chain_matrix(weights: &[f64], shift: f64) -> CsrMatrix {
    let n = weights.len() + 1;
    let mut coo = CooMatrix::new(n, n);
    let mut diag = vec![shift; n];
    for (i, &w) in weights.iter().enumerate() {
        coo.push(i, i + 1, -w).unwrap();
        coo.push(i + 1, i, -w).unwrap();
        diag[i] += w;
        diag[i + 1] += w;
    }
    for (i, &v) in diag.iter().enumerate() {
        coo.push(i, i, v).unwrap();
    }
    coo.to_csr()
}

/// Cuts `0..n` into `p` contiguous scalar parts (disjoint, multiplicity 1),
/// with the first `n_fixed` dofs marked constrained.
fn strip_parts(n: usize, p: usize, n_fixed: usize) -> Vec<CoarsePartGeometry> {
    (0..p)
        .map(|q| {
            let lo = q * n / p;
            let hi = (q + 1) * n / p;
            let dofs: Vec<usize> = (lo..hi).collect();
            CoarsePartGeometry {
                pos: dofs.iter().map(|&g| [g as f64, 0.0, 0.0]).collect(),
                comp: vec![0; dofs.len()],
                constrained: dofs.iter().map(|&g| g < n_fixed).collect(),
                dofs,
            }
        })
        .collect()
}

/// Random per-case inputs: chain weights, part count, coarse spec.
fn case() -> impl Strategy<Value = (Vec<f64>, usize, CoarseSpec)> {
    (
        prop::collection::vec(0.5f64..4.0, 7..40),
        2usize..6,
        0usize..5,
        1usize..4,
    )
        .prop_map(|(w, p, c, k)| {
            let spec = match c {
                0 => CoarseSpec::Const,
                1 => CoarseSpec::Rbm,
                2 => CoarseSpec::LowRank(k),
                3 => CoarseSpec::Smoothed(Box::new(CoarseSpec::Const), k),
                _ => CoarseSpec::Smoothed(Box::new(CoarseSpec::Rbm), k),
            };
            (w, p, spec)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On a disjoint (multiplicity-1) partition the sequential solver's
    /// restriction and prolongation are the identical triplet set — an
    /// exact transpose pair — and the adjoint identity holds numerically
    /// for random vectors.
    #[test]
    fn restriction_is_the_transpose_of_prolongation(
        (w, p, spec) in case(),
        v_bits in prop::collection::vec(-1.0f64..1.0, 64),
        w_bits in prop::collection::vec(-1.0f64..1.0, 64),
    ) {
        let a = chain_matrix(&w, 0.3);
        let n = a.n_rows();
        let parts = strip_parts(n, p, 1);
        let ones = vec![1.0; n];
        let basis = build_coarse_basis(&spec, &parts, &ones, &ones, &a, DEFAULT_PIVOT_TOL);
        let solver = basis.solver();

        let mut r: Vec<_> = solver.restrict_entries().to_vec();
        let mut pr: Vec<_> = solver.prolong_entries().to_vec();
        let key = |t: &(usize, usize, f64)| (t.0, t.1, t.2.to_bits());
        r.sort_by_key(key);
        pr.sort_by_key(key);
        prop_assert_eq!(r, pr, "restrict and prolong must be the same triplet set");

        // ⟨R v, w⟩ == ⟨v, Rᵀ w⟩ for random v ∈ ℝⁿ, w ∈ ℝ^modes.
        let vv = &v_bits[..n];
        let ww = &w_bits[..basis.n_modes().min(64)];
        let mut lhs = 0.0;
        let mut rhs = 0.0;
        for (m, col) in basis.modes.iter().enumerate() {
            if m >= ww.len() { break; }
            let rv: f64 = col.iter().map(|&(g, z)| z * vv[g]).sum();
            lhs += rv * ww[m];
        }
        for (m, col) in basis.modes.iter().enumerate() {
            if m >= ww.len() { break; }
            for &(g, z) in col {
                rhs += vv[g] * z * ww[m];
            }
        }
        prop_assert!(
            (lhs - rhs).abs() <= 1e-10 * (1.0 + lhs.abs().max(rhs.abs())),
            "adjoint identity violated: {} vs {}", lhs, rhs
        );
    }

    /// The Galerkin coarse operator is symmetric bit for bit and positive
    /// semi-definite on SPD input.
    #[test]
    fn galerkin_operator_is_bitwise_symmetric_and_psd(
        (w, p, spec) in case(),
        x_bits in prop::collection::vec(-1.0f64..1.0, 64),
    ) {
        let a = chain_matrix(&w, 0.3);
        let n = a.n_rows();
        let parts = strip_parts(n, p, 1);
        let ones = vec![1.0; n];
        let basis = build_coarse_basis(&spec, &parts, &ones, &ones, &a, DEFAULT_PIVOT_TOL);
        let a_c = galerkin_matrix(&a, &basis.modes);
        let m = a_c.n_rows();
        prop_assert_eq!(m, basis.n_modes());
        for i in 0..m {
            for j in 0..m {
                prop_assert_eq!(
                    a_c.get(i, j).to_bits(),
                    a_c.get(j, i).to_bits(),
                    "A_c[{},{}] != A_c[{},{}] bitwise", i, j, j, i
                );
            }
        }
        let x = &x_bits[..m.min(64)];
        let mut quad = 0.0;
        for i in 0..x.len() {
            for j in 0..x.len() {
                quad += x[i] * a_c.get(i, j) * x[j];
            }
        }
        prop_assert!(quad >= -1e-10, "xᵀ A_c x = {} < 0 on SPD input", quad);
    }

    /// Identical inputs produce bit-identical coarse corrections — the
    /// construction has no hidden iteration-order or pointer dependence.
    #[test]
    fn construction_is_deterministic((w, p, spec) in case()) {
        let a = chain_matrix(&w, 0.3);
        let n = a.n_rows();
        let parts = strip_parts(n, p, 1);
        let ones = vec![1.0; n];
        let b1 = build_coarse_basis(&spec, &parts, &ones, &ones, &a, DEFAULT_PIVOT_TOL);
        let b2 = build_coarse_basis(&spec, &parts, &ones, &ones, &a, DEFAULT_PIVOT_TOL);
        let bits = |m: &Vec<Vec<(usize, f64)>>| -> Vec<Vec<(usize, u64)>> {
            m.iter()
                .map(|col| col.iter().map(|&(g, v)| (g, v.to_bits())).collect())
                .collect()
        };
        prop_assert_eq!(bits(&b1.modes), bits(&b2.modes));
        let (s1, s2) = (b1.solver(), b2.solver());
        let v: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut z1 = vec![0.0; n];
        let mut z2 = vec![0.0; n];
        s1.apply_overwrite(&a, &v, &mut z1);
        s2.apply_overwrite(&a, &v, &mut z2);
        let u1: Vec<u64> = z1.iter().map(|x| x.to_bits()).collect();
        let u2: Vec<u64> = z2.iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(u1, u2, "corrections must agree bit for bit");
    }
}

/// A fully-constrained part and an empty part both yield empty (pivoted)
/// mode blocks without failing — the numbering stays stable.
#[test]
fn degenerate_parts_are_pivoted_not_fatal() {
    let a = chain_matrix(&[1.0; 9], 0.2);
    let mut parts = strip_parts(10, 3, 0);
    for c in parts[1].constrained.iter_mut() {
        *c = true; // middle part fully constrained
    }
    parts.push(CoarsePartGeometry::default()); // empty trailing part
    let ones = vec![1.0; 10];
    let basis = build_coarse_basis(
        &CoarseSpec::Const,
        &parts,
        &ones,
        &ones,
        &a,
        DEFAULT_PIVOT_TOL,
    );
    assert_eq!(
        basis.n_modes(),
        4,
        "one mode per part, kept even when empty"
    );
    assert!(basis.modes[1].is_empty(), "constrained part has no entries");
    assert!(basis.modes[3].is_empty(), "empty part has no entries");
    let solver = basis.solver();
    let skipped = solver.skipped_modes();
    assert!(
        skipped.contains(&1) && skipped.contains(&3),
        "degenerate modes must be pivoted out, got {skipped:?}"
    );
    // The solve still works on the surviving modes.
    let v = vec![1.0; 10];
    let mut z = vec![0.0; 10];
    solver.apply_overwrite(&a, &v, &mut z);
    assert!(z.iter().all(|x| x.is_finite()));
    assert!(z.iter().any(|&x| x != 0.0), "live modes must contribute");
}

/// Prolongator smoothing widens each live mode's support by one stencil
/// layer per pass (here: one chain neighbour each side), never shrinks it,
/// and the construction stays bit-for-bit deterministic.
#[test]
fn smoothing_widens_support_deterministically() {
    let a = chain_matrix(&[1.0; 19], 0.3);
    let parts = strip_parts(20, 4, 0);
    let ones = vec![1.0; 20];
    let plain = build_coarse_basis(
        &CoarseSpec::Const,
        &parts,
        &ones,
        &ones,
        &a,
        DEFAULT_PIVOT_TOL,
    );
    for passes in 1..=2usize {
        let spec = CoarseSpec::Smoothed(Box::new(CoarseSpec::Const), passes);
        let smoothed = build_coarse_basis(&spec, &parts, &ones, &ones, &a, DEFAULT_PIVOT_TOL);
        let again = build_coarse_basis(&spec, &parts, &ones, &ones, &a, DEFAULT_PIVOT_TOL);
        assert_eq!(
            smoothed.modes, again.modes,
            "construction must be deterministic"
        );
        for (m, (sm, pl)) in smoothed.modes.iter().zip(&plain.modes).enumerate() {
            let sm_dofs: Vec<usize> = sm.iter().map(|&(g, _)| g).collect();
            for &(g, _) in pl {
                assert!(sm_dofs.contains(&g), "mode {m}: support must not shrink");
            }
            let lo = pl.first().unwrap().0;
            let hi = pl.last().unwrap().0;
            let expect_lo = lo.saturating_sub(passes);
            let expect_hi = (hi + passes).min(19);
            assert_eq!(
                (sm_dofs[0], *sm_dofs.last().unwrap()),
                (expect_lo, expect_hi),
                "mode {m}: support must widen by exactly {passes} chain layers"
            );
        }
    }
}
