//! Parallel behaviour across the full stack: rank-count invariance,
//! variant equivalence, communication accounting, machine models.

use parfem::prelude::*;

fn problem() -> CantileverProblem {
    CantileverProblem::new(24, 6, Material::unit(), LoadCase::PullX(1.0))
}

fn edd(
    p: &CantileverProblem,
    part: ElementPartition,
    model: MachineModel,
    cfg: &SolverConfig,
) -> DdSolveOutput {
    SolveSession::new(p.as_problem())
        .strategy(Strategy::Edd(part))
        .config(cfg.clone())
        .machine(model)
        .run()
        .expect("fault-free solve")
}

fn rdd(
    p: &CantileverProblem,
    part: NodePartition,
    model: MachineModel,
    cfg: &SolverConfig,
) -> DdSolveOutput {
    SolveSession::new(p.as_problem())
        .strategy(Strategy::Rdd(part))
        .config(cfg.clone())
        .machine(model)
        .run()
        .expect("fault-free solve")
}

#[test]
fn iteration_count_is_independent_of_rank_count() {
    // EDD-FGMRES runs the *same* Krylov iteration regardless of P (only the
    // data distribution changes), so iteration counts must agree across P —
    // which is what makes the paper's speedup comparisons meaningful
    // (Table 3 shows near-identical iteration columns across P).
    let p = problem();
    let cfg = SolverConfig::default();
    let mut iters = Vec::new();
    for ranks in [1usize, 2, 3, 4, 6, 8] {
        let out = edd(
            &p,
            ElementPartition::strips_x(&p.mesh, ranks),
            MachineModel::ideal(),
            &cfg,
        );
        assert!(out.history.converged(), "P={ranks}");
        iters.push(out.history.iterations());
    }
    let min = *iters.iter().min().unwrap();
    let max = *iters.iter().max().unwrap();
    assert!(
        max - min <= 1,
        "iteration counts vary too much across P: {iters:?}"
    );
}

#[test]
fn solutions_agree_across_rank_counts_to_solver_tolerance() {
    let p = problem();
    let cfg = SolverConfig {
        gmres: GmresConfig {
            tol: 1e-10,
            ..Default::default()
        },
        ..Default::default()
    };
    let reference = edd(
        &p,
        ElementPartition::strips_x(&p.mesh, 1),
        MachineModel::ideal(),
        &cfg,
    );
    let scale = reference.u.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    for ranks in [2usize, 4, 8] {
        let out = edd(
            &p,
            ElementPartition::strips_x(&p.mesh, ranks),
            MachineModel::ideal(),
            &cfg,
        );
        for (a, b) in out.u.iter().zip(&reference.u) {
            assert!((a - b).abs() < 1e-6 * scale, "P={ranks}: {a} vs {b}");
        }
    }
}

#[test]
fn runs_are_deterministic() {
    // Two identical parallel runs must produce bit-identical solutions
    // (rank-ordered reductions, fixed exchange order).
    let p = problem();
    let cfg = SolverConfig::default();
    let part = ElementPartition::strips_x(&p.mesh, 4);
    let a = edd(&p, part.clone(), MachineModel::ideal(), &cfg);
    let b = edd(&p, part, MachineModel::ideal(), &cfg);
    assert_eq!(a.u, b.u, "parallel runs must be deterministic");
    assert_eq!(a.history.iterations(), b.history.iterations());
    assert_eq!(a.modeled_time, b.modeled_time);
}

#[test]
fn table1_exchange_counts_basic_vs_enhanced_vs_rdd() {
    // The paper's Table 1: per Arnoldi iteration the basic EDD solver
    // (Alg. 5) does 3 interface exchanges, the enhanced one (Alg. 6) and
    // RDD (Alg. 8) 1 each (plus the preconditioner's internal products,
    // identical across all three).
    let p = problem();
    let degree = 3;
    let mk_cfg = |variant| SolverConfig {
        gmres: GmresConfig::default(),
        precond: PrecondSpec::Gls {
            degree,
            theta: None,
        },
        variant,
        overlap: false,
        ..Default::default()
    };
    let part = ElementPartition::strips_x(&p.mesh, 4);
    let basic = edd(
        &p,
        part.clone(),
        MachineModel::ideal(),
        &mk_cfg(EddVariant::Basic),
    );
    let enhanced = edd(
        &p,
        part,
        MachineModel::ideal(),
        &mk_cfg(EddVariant::Enhanced),
    );
    assert_eq!(basic.history.iterations(), enhanced.history.iterations());
    let iters = basic.history.iterations() as u64;
    let xb = basic.reports[0].stats.neighbor_exchanges;
    let xe = enhanced.reports[0].stats.neighbor_exchanges;
    assert_eq!(xb - xe, 2 * iters, "basic must pay 2 extra exchanges/iter");

    // Per-iteration exchange rate: enhanced = 1 + degree (matvec + precond).
    let per_iter = (xe as f64 - 2.0) / iters as f64; // subtract setup+initial
    assert!(
        (per_iter - (1.0 + degree as f64)).abs() < 0.5,
        "enhanced per-iteration exchanges {per_iter}"
    );
}

#[test]
fn sp2_models_slower_than_origin_and_speedup_orders_match_fig17e() {
    let p = problem();
    let cfg = SolverConfig::default();
    let mut speedups = Vec::new();
    for model in [MachineModel::ibm_sp2(), MachineModel::sgi_origin()] {
        let t1 = edd(
            &p,
            ElementPartition::strips_x(&p.mesh, 1),
            model.clone(),
            &cfg,
        )
        .modeled_time;
        let t8 = edd(
            &p,
            ElementPartition::strips_x(&p.mesh, 8),
            model.clone(),
            &cfg,
        )
        .modeled_time;
        speedups.push(t1 / t8);
    }
    // Fig. 17(e): the Origin achieves better speedup than the SP2.
    assert!(
        speedups[1] > speedups[0],
        "Origin {:.2} should beat SP2 {:.2}",
        speedups[1],
        speedups[0]
    );
    // Both sublinear but real.
    for s in speedups {
        assert!(s > 2.0 && s < 8.0, "speedup {s} implausible");
    }
}

#[test]
fn larger_problems_scale_better() {
    // Fig. 17(c,d): parallel efficiency at fixed P grows with problem size.
    let cfg = SolverConfig::default();
    let mut effs = Vec::new();
    for (nx, ny) in [(16usize, 8usize), (48, 24)] {
        let p = CantileverProblem::new(nx, ny, Material::unit(), LoadCase::PullX(1.0));
        let t1 = edd(
            &p,
            ElementPartition::strips_x(&p.mesh, 1),
            MachineModel::ibm_sp2(),
            &cfg,
        )
        .modeled_time;
        let t8 = edd(
            &p,
            ElementPartition::strips_x(&p.mesh, 8),
            MachineModel::ibm_sp2(),
            &cfg,
        )
        .modeled_time;
        effs.push(t1 / t8 / 8.0);
    }
    assert!(
        effs[1] > effs[0],
        "efficiency must grow with size: {effs:?}"
    );
}

#[test]
fn extreme_partition_one_element_per_rank_still_works() {
    // Stress the interface machinery: every element its own subdomain, so
    // every node is an interface node with multiplicity up to 4.
    let p = CantileverProblem::new(4, 3, Material::unit(), LoadCase::PullX(1.0));
    let n_elems = p.mesh.n_elems();
    let owner: Vec<usize> = (0..n_elems).collect();
    let part = ElementPartition::from_owner(n_elems, owner);
    let out = edd(
        &p,
        part,
        MachineModel::ideal(),
        &SolverConfig {
            gmres: GmresConfig {
                tol: 1e-9,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    assert!(out.history.converged());
    let sys = p.static_system();
    let r = sys.stiffness.spmv(&out.u);
    let err: f64 = r
        .iter()
        .zip(&sys.rhs)
        .map(|(a, b)| (a - b).powi(2))
        .sum::<f64>()
        .sqrt();
    let scale: f64 = sys.rhs.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(err < 1e-6 * scale, "residual {err}");
}

#[test]
fn rdd_and_edd_exchange_comparable_bytes_per_iteration() {
    // Both strategies exchange one halo per matvec; the paper's Table 1
    // says their leading-order communication volume matches.
    let p = problem();
    let cfg = SolverConfig::default();
    let e = edd(
        &p,
        ElementPartition::strips_x(&p.mesh, 4),
        MachineModel::ideal(),
        &cfg,
    );
    let r = rdd(
        &p,
        // Same interface orientation as the element strips for fairness.
        NodePartition::strips_x(&p.mesh, 4),
        MachineModel::ideal(),
        &cfg,
    );
    let be = e.reports[0].stats.bytes_sent as f64 / e.history.iterations() as f64;
    let br = r.reports[0].stats.bytes_sent as f64 / r.history.iterations() as f64;
    let ratio = be / br;
    assert!(
        (0.3..3.0).contains(&ratio),
        "per-iteration byte volumes diverge: EDD {be:.0} vs RDD {br:.0}"
    );
}
