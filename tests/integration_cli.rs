//! End-to-end tests of the `parfem` command-line binary.

use std::process::Command;

fn parfem() -> Command {
    Command::new(env!("CARGO_BIN_EXE_parfem"))
}

#[test]
fn meshes_lists_table2() {
    let out = parfem().arg("meshes").output().expect("run parfem");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Mesh1"));
    assert!(text.contains("Mesh10"));
    assert!(text.contains("20301"));
}

#[test]
fn solve_paper_mesh_converges_and_reports() {
    let out = parfem()
        .args([
            "solve",
            "--paper-mesh",
            "2",
            "--parts",
            "2",
            "--precond",
            "gls:5",
            "--machine",
            "ideal",
        ])
        .output()
        .expect("run parfem");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("converged = true"), "{text}");
    assert!(text.contains("true relative residual"));
}

#[test]
fn solve_rdd_strategy_works() {
    let out = parfem()
        .args([
            "solve",
            "--mesh",
            "12x4",
            "--parts",
            "3",
            "--strategy",
            "rdd",
        ])
        .output()
        .expect("run parfem");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("converged = true"));
}

#[test]
fn spectrum_reports_bounds() {
    let out = parfem()
        .args(["spectrum", "--mesh", "10x4"])
        .output()
        .expect("run parfem");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("power iteration"));
    assert!(text.contains("condition estimate"));
}

#[test]
fn mtx_export_writes_files() {
    let dir = std::env::temp_dir().join("parfem_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let prefix = dir.join("sys");
    let out = parfem()
        .args([
            "solve",
            "--mesh",
            "6x2",
            "--parts",
            "2",
            "--mtx-out",
            prefix.to_str().unwrap(),
        ])
        .output()
        .expect("run parfem");
    assert!(out.status.success());
    for suffix in ["k", "f", "u"] {
        let path = dir.join(format!("sys_{suffix}.mtx"));
        let content = std::fs::read_to_string(&path).expect("mtx file written");
        assert!(content.starts_with("%%MatrixMarket"));
        std::fs::remove_file(path).ok();
    }
}

#[test]
fn traced_solve_writes_parseable_jsonl_and_report_reads_it() {
    let dir = std::env::temp_dir().join("parfem_cli_trace_test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("run.jsonl");
    let out = parfem()
        .args([
            "solve",
            "--mesh",
            "16x4",
            "--parts",
            "4",
            "--machine",
            "ideal",
            "--trace",
            trace.to_str().unwrap(),
            "--profile",
        ])
        .output()
        .expect("run parfem");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // --profile prints the per-rank phase table and comm table inline.
    assert!(text.contains("per-rank phase breakdown"), "{text}");
    assert!(text.contains("per iteration (Table 1)"), "{text}");

    // Every line of the trace file is a standalone JSON object.
    let content = std::fs::read_to_string(&trace).expect("trace written");
    assert!(content.lines().count() > 100);
    for line in content.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"kind\""), "{line}");
    }

    // `parfem report` regenerates the tables from the file alone.
    let rep = parfem()
        .args(["report", "--trace", trace.to_str().unwrap()])
        .output()
        .expect("run parfem report");
    assert!(
        rep.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&rep.stderr)
    );
    let rtext = String::from_utf8_lossy(&rep.stdout);
    assert!(rtext.contains("per-rank phase breakdown"), "{rtext}");
    assert!(rtext.contains("per iteration (Table 1)"), "{rtext}");
    assert!(rtext.contains("converged in"), "{rtext}");
    assert!(rtext.contains("per-rank timeline"), "{rtext}");
    std::fs::remove_file(trace).ok();
}

#[test]
fn escalating_precond_is_parsed_and_converges() {
    let out = parfem()
        .args([
            "solve",
            "--mesh",
            "12x4",
            "--parts",
            "2",
            "--precond",
            "gls-escalating:4",
            "--machine",
            "ideal",
        ])
        .output()
        .expect("run parfem");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("gls-escalating(x4)"), "{text}");
    assert!(text.contains("converged = true"), "{text}");

    // A missing period is a usage error, not a panic.
    let bad = parfem()
        .args(["solve", "--mesh", "4x2", "--precond", "gls-escalating"])
        .output()
        .expect("run parfem");
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("needs a period"));
}

#[test]
fn report_on_missing_file_fails_cleanly() {
    let out = parfem()
        .args(["report", "--trace", "/nonexistent/trace.jsonl"])
        .output()
        .expect("run parfem");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn bad_arguments_fail_with_usage() {
    let out = parfem().arg("frobnicate").output().expect("run parfem");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = parfem()
        .args(["solve", "--mesh", "nonsense"])
        .output()
        .expect("run parfem");
    assert!(!out.status.success());
}
