//! Cross-crate integration for the extended element family (T3, Q8,
//! distorted Q4) and the Section-5 planarity analysis.

use parfem::fem::{assembly, quad8s, tri3};
use parfem::mesh::graph::Adjacency;
use parfem::mesh::{Quad8Mesh, TriMesh};
use parfem::prelude::*;
use parfem::sequential::SeqPrecond;

#[test]
fn all_three_element_families_solve_the_same_physics() {
    // Axial pull on the same geometry: tip u_x must agree across T3/Q4/Q8
    // (bar solution F L / (E A), element-independent for uniform tension).
    let (nx, ny) = (16usize, 4usize);
    let mat = Material::unit();
    let cfg = GmresConfig {
        tol: 1e-10,
        max_iters: 100_000,
        ..Default::default()
    };
    let expect = (nx as f64) / (ny as f64); // F=1, E=1, A=ny, L=nx

    // Q4.
    let q4 = {
        let p = CantileverProblem::new(nx, ny, mat, LoadCase::PullX(1.0));
        let (u, h) = parfem::sequential::solve_static(&p, &SeqPrecond::Gls(7), &cfg).unwrap();
        assert!(h.converged());
        u[p.dof_map.dof(p.mesh.node_at(nx, ny / 2), 0)]
    };
    // T3.
    let t3 = {
        let mesh = TriMesh::cantilever(nx, ny);
        let mut dm = DofMap::new(mesh.n_nodes());
        for n in mesh.edge_nodes(Edge::Left) {
            dm.clamp_node(n);
        }
        let k = tri3::assemble_stiffness(&mesh, &dm, &mat);
        let mut loads = vec![0.0; dm.n_dofs()];
        // Same consistent edge load as the quad (shared node numbering).
        let qmesh = QuadMesh::cantilever(nx, ny);
        assembly::edge_load(&qmesh, &dm, Edge::Right, 1.0, 0.0, &mut loads);
        let kbc = assembly::apply_dirichlet(&k, &dm, &mut loads);
        let (u, h) =
            parfem::sequential::solve_system(&kbc, &loads, &SeqPrecond::Gls(7), &cfg).unwrap();
        assert!(h.converged());
        u[dm.dof(mesh.node_at(nx, ny / 2), 0)]
    };
    // Q8.
    let q8 = {
        let mesh = Quad8Mesh::cantilever(nx, ny);
        let mut dm = DofMap::new(mesh.n_nodes());
        for n in mesh.edge_nodes(Edge::Left) {
            dm.clamp_node(n);
        }
        let k = quad8s::assemble_stiffness(&mesh, &dm, &mat);
        let mut loads = vec![0.0; dm.n_dofs()];
        // Equal split over right-edge nodes (uniform tension is insensitive
        // to the consistent-vs-equal distribution at this tolerance level).
        let right = mesh.edge_nodes(Edge::Right);
        for &n in &right {
            loads[dm.dof(n, 0)] = 1.0 / right.len() as f64;
        }
        let kbc = assembly::apply_dirichlet(&k, &dm, &mut loads);
        let (u, h) =
            parfem::sequential::solve_system(&kbc, &loads, &SeqPrecond::Gls(7), &cfg).unwrap();
        assert!(h.converged());
        // Middle of the right edge.
        let mid = *right
            .iter()
            .min_by(|&&a, &&b| {
                let da = (mesh.node_coords(a)[1] - ny as f64 / 2.0).abs();
                let db = (mesh.node_coords(b)[1] - ny as f64 / 2.0).abs();
                da.partial_cmp(&db).unwrap()
            })
            .unwrap();
        u[dm.dof(mid, 0)]
    };
    for (name, got) in [("Q4", q4), ("T3", t3), ("Q8", q8)] {
        assert!(
            (got - expect).abs() < 0.08 * expect,
            "{name}: tip {got} vs bar theory {expect}"
        );
    }
}

#[test]
fn planarity_ordering_holds_on_cantilever_meshes() {
    let q = QuadMesh::cantilever(10, 10);
    let t = TriMesh::from_quad_mesh(&q);
    let e8 = Quad8Mesh::cantilever(10, 10);
    let gt = Adjacency::node_graph_from_cells(
        t.n_nodes(),
        (0..t.n_elems()).map(|e| t.elem_nodes(e).to_vec()),
    );
    let gq = Adjacency::node_graph(&q);
    let g8 = Adjacency::node_graph_from_cells(
        e8.n_nodes(),
        (0..e8.n_elems()).map(|e| e8.elem_nodes(e).to_vec()),
    );
    assert!(gt.satisfies_planar_edge_bound());
    assert!(!gq.satisfies_planar_edge_bound());
    assert!(!g8.satisfies_planar_edge_bound());
    assert!(gt.average_degree() < gq.average_degree());
    assert!(gq.average_degree() < g8.average_degree());
}

#[test]
fn distorted_mesh_runs_through_the_full_parallel_pipeline() {
    let mesh = QuadMesh::distorted(16, 6, 16.0, 6.0, 0.35, 99);
    let mut dm = DofMap::new(mesh.n_nodes());
    dm.clamp_edge(&mesh, Edge::Left);
    let mat = Material::unit();
    let mut loads = vec![0.0; dm.n_dofs()];
    assembly::edge_load(&mesh, &dm, Edge::Right, 0.0, -1e-3, &mut loads);

    let out = SolveSession::new(Problem::new(&mesh, &dm, &mat, &loads))
        .strategy(Strategy::Edd(ElementPartition::strips_x(&mesh, 4)))
        .run()
        .expect("fault-free solve");
    assert!(out.history.converged());
    // Physical residual on the distorted geometry.
    let sys = assembly::build_static(&mesh, &dm, &mat, &loads);
    let r = sys.stiffness.spmv(&out.u);
    let err: f64 = r
        .iter()
        .zip(&sys.rhs)
        .map(|(a, b)| (a - b).powi(2))
        .sum::<f64>()
        .sqrt();
    let scale: f64 = sys.rhs.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(err < 1e-5 * scale, "residual {err}");
    // The tip still deflects downward.
    let tip = dm.dof(mesh.node_at(16, 6), 1);
    assert!(out.u[tip] < 0.0);
}

#[test]
fn distortion_preserves_scaling_guarantee() {
    // lambda_max(DKD) <= 1 regardless of element geometry.
    let mesh = QuadMesh::distorted(12, 6, 12.0, 6.0, 0.45, 3);
    let mut dm = DofMap::new(mesh.n_nodes());
    dm.clamp_edge(&mesh, Edge::Left);
    let sys = assembly::build_static(&mesh, &dm, &Material::unit(), &vec![0.0; dm.n_dofs()]);
    let (a, _, _) = parfem::sparse::scaling::scale_system(&sys.stiffness, &sys.rhs).unwrap();
    let lmax = parfem::sparse::gershgorin::power_iteration_lambda_max(&a, 50_000, 1e-12);
    assert!(lmax <= 1.0 + 1e-9, "lambda_max {lmax}");
}

#[test]
fn dynamic_parallel_driver_is_reachable_from_the_facade() {
    let p = CantileverProblem::new(10, 2, Material::unit(), LoadCase::ShearY(-1e-3));
    let tip = p.dof_map.dof(p.mesh.node_at(10, 2), 1);
    let out = SolveSession::new(p.as_problem())
        .strategy(Strategy::Edd(ElementPartition::strips_x(&p.mesh, 2)))
        .machine(MachineModel::sgi_origin())
        .run_dynamic(NewmarkParams::average_acceleration(1.0), 4, &[tip]);
    assert!(out.all_converged);
    assert_eq!(out.watch_histories[0].len(), 4);
    // Displacement moves in the load direction from step one.
    assert!(out.watch_histories[0][0] < 0.0);
}
