//! End-to-end elastodynamics: Newmark time integration with iterative
//! solves in the loop, across all crates.

use parfem::dynamic::{first_step_solve, first_step_system, simulate};
use parfem::prelude::*;
use parfem::sequential::SeqPrecond;

fn problem() -> CantileverProblem {
    CantileverProblem::new(16, 4, Material::unit(), LoadCase::ShearY(-1e-3))
}

#[test]
fn effective_system_is_symmetric_positive_definite() {
    let p = problem();
    let (keff, _) = first_step_system(&p, 0.1);
    assert!(keff.is_symmetric(1e-10));
    // Positive diagonal everywhere (mass shift only adds).
    for (i, d) in keff.diagonal().iter().enumerate() {
        assert!(*d > 0.0, "non-positive diagonal at {i}");
    }
}

#[test]
fn smaller_time_steps_make_the_effective_system_easier() {
    // alpha = 1/(beta dt^2) grows as dt shrinks: the mass term dominates
    // and the preconditioned iteration count drops — the reason the paper's
    // dynamic convergence plots look better than the static ones.
    let p = problem();
    let cfg = GmresConfig {
        tol: 1e-8,
        max_iters: 50_000,
        ..Default::default()
    };
    let mut prev = usize::MAX;
    for dt in [10.0, 1.0, 0.1] {
        let (_, h) = first_step_solve(&p, dt, &SeqPrecond::Gls(3), &cfg).unwrap();
        assert!(h.converged(), "dt={dt}");
        assert!(
            h.iterations() <= prev,
            "dt={dt}: {} iterations (prev {prev})",
            h.iterations()
        );
        prev = h.iterations();
    }
}

#[test]
fn transient_converges_to_static_under_heavy_averaging() {
    // The long-time mean of the undamped response equals the static
    // solution (energy conservation swings symmetrically about it).
    let p = problem();
    let cfg = GmresConfig {
        tol: 1e-10,
        max_iters: 100_000,
        ..Default::default()
    };
    let (u_static, _) = parfem::sequential::solve_static(&p, &SeqPrecond::Gls(7), &cfg).unwrap();
    let tip = p.dof_map.dof(p.mesh.node_at(p.mesh.nx(), p.mesh.ny()), 1);

    // Fundamental period ~ 260 s for this 16x4 unit-material beam; average
    // over ~4 periods.
    let out = simulate(&p, 2.0, 520, &SeqPrecond::Gls(7), &cfg).unwrap();
    assert!(out.all_converged);
    let mean: f64 = out.tip_history.iter().sum::<f64>() / out.tip_history.len() as f64;
    assert!(
        (mean - u_static[tip]).abs() < 0.15 * u_static[tip].abs(),
        "mean {mean} vs static {}",
        u_static[tip]
    );
    // Overshoot factor near 2.
    let peak = out
        .tip_history
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let factor = peak / u_static[tip];
    assert!(
        (1.6..=2.3).contains(&factor),
        "overshoot factor {factor} out of range"
    );
}

#[test]
fn dynamic_effective_matrix_matches_paper_form() {
    // K_eff == alpha*M + K entry for entry (Eq. 52 with beta = 1).
    let p = problem();
    let dt = 0.25;
    let (keff, _) = first_step_system(&p, dt);
    let k_raw = parfem::fem::assembly::assemble_stiffness(&p.mesh, &p.dof_map, &p.material);
    let m_raw = parfem::fem::assembly::assemble_mass(&p.mesh, &p.dof_map, &p.material, true);
    let mut f = p.loads.clone();
    let k = parfem::fem::assembly::apply_dirichlet(&k_raw, &p.dof_map, &mut f);
    let m = parfem::fem::assembly::apply_dirichlet_mass(&m_raw, &p.dof_map);
    let alpha = 1.0 / (0.25 * dt * dt);
    for r in 0..keff.n_rows() {
        let (cols, vals) = keff.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            let want = k.get(r, c) + alpha * m.get(r, c);
            assert!(
                (v - want).abs() < 1e-9 * (1.0 + want.abs()),
                "({r},{c}): {v} vs {want}"
            );
        }
    }
}

#[test]
fn every_preconditioner_handles_the_dynamic_system() {
    let p = problem();
    let cfg = GmresConfig {
        tol: 1e-8,
        max_iters: 50_000,
        ..Default::default()
    };
    for pc in [
        SeqPrecond::None,
        SeqPrecond::Jacobi,
        SeqPrecond::Ilu0,
        SeqPrecond::Neumann(10),
        SeqPrecond::Gls(7),
    ] {
        let (_, h) = first_step_solve(&p, 0.1, &pc, &cfg).expect("solve");
        assert!(h.converged(), "{} failed", pc.name());
    }
}
