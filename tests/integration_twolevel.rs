//! Paper-mesh contract for the two-level preconditioner: on the
//! cantilever family of Table 2, adding the coarse level to a polynomial
//! smoother never increases the FGMRES iteration count, under both
//! distributed strategies.
//!
//! The small meshes run unconditionally; set `PARFEM_FULL=1` to sweep the
//! whole Table 2 family (minutes, release build recommended).

use parfem::prelude::*;

/// Paper meshes to sweep: the first three by default, all ten under
/// `PARFEM_FULL=1`.
fn mesh_indices() -> Vec<usize> {
    if std::env::var_os("PARFEM_FULL").is_some() {
        (1..=PAPER_MESHES.len()).collect()
    } else {
        vec![1, 2, 3]
    }
}

fn iterations(p: &CantileverProblem, strategy: Strategy, spec: &str) -> usize {
    let out = SolveSession::new(p.as_problem())
        .strategy(strategy)
        .precond(PrecondSpec::parse(spec).expect("spec parses"))
        .gmres(GmresConfig {
            tol: 1e-8,
            max_iters: 20_000,
            ..Default::default()
        })
        .run()
        .expect("fault-free solve");
    assert!(out.history.converged(), "{spec} did not converge");
    out.history.iterations()
}

/// EDD: `twolevel:rbm:gls-3` takes no more iterations than `gls:3` on
/// every swept paper mesh.
#[test]
fn twolevel_counts_non_increasing_on_paper_meshes_edd() {
    for k in mesh_indices() {
        let p = CantileverProblem::paper_mesh(k);
        let parts = 4.min(p.mesh.nx());
        let strategy = || Strategy::Edd(ElementPartition::strips_x(&p.mesh, parts));
        let one = iterations(&p, strategy(), "gls:3");
        let two = iterations(&p, strategy(), "twolevel:rbm:gls-3");
        assert!(
            two <= one,
            "mesh {k} ({}x{}): two-level {two} > one-level {one}",
            p.mesh.nx(),
            p.mesh.ny()
        );
    }
}

/// RDD: same contract on the block-row strategy.
#[test]
fn twolevel_counts_non_increasing_on_paper_meshes_rdd() {
    for k in mesh_indices() {
        let p = CantileverProblem::paper_mesh(k);
        let parts = 4.min(p.mesh.nx());
        let strategy = || Strategy::Rdd(NodePartition::strips_x(&p.mesh, parts));
        let one = iterations(&p, strategy(), "gls:3");
        let two = iterations(&p, strategy(), "twolevel:rbm:gls-3");
        assert!(
            two <= one,
            "mesh {k} ({}x{}): RDD two-level {two} > one-level {one}",
            p.mesh.nx(),
            p.mesh.ny()
        );
    }
}
