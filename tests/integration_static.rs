//! End-to-end static elasticity: mesh → assembly → scaling → polynomial
//! preconditioning → (parallel) FGMRES → physics, across all crates.

use parfem::prelude::*;
use parfem::sequential::SeqPrecond;

fn residual_norm(problem: &CantileverProblem, u: &[f64]) -> f64 {
    let sys = problem.static_system();
    let r = sys.stiffness.spmv(u);
    let num: f64 = r
        .iter()
        .zip(&sys.rhs)
        .map(|(a, b)| (a - b).powi(2))
        .sum::<f64>()
        .sqrt();
    let den: f64 = sys.rhs.iter().map(|v| v * v).sum::<f64>().sqrt();
    num / den.max(1e-30)
}

#[test]
fn sequential_edd_and_rdd_agree_on_mesh2() {
    let p = CantileverProblem::paper_mesh(2);
    let cfg = GmresConfig {
        tol: 1e-8,
        ..Default::default()
    };
    let (u_seq, h_seq) = parfem::sequential::solve_static(&p, &SeqPrecond::Gls(7), &cfg).unwrap();
    assert!(h_seq.converged());

    let solver_cfg = SolverConfig {
        gmres: cfg,
        ..Default::default()
    };
    let edd = SolveSession::new(p.as_problem())
        .strategy(Strategy::Edd(ElementPartition::strips_x(&p.mesh, 4)))
        .config(solver_cfg.clone())
        .run()
        .expect("fault-free solve");
    let rdd = SolveSession::new(p.as_problem())
        .strategy(Strategy::Rdd(NodePartition::contiguous(
            p.mesh.n_nodes(),
            4,
        )))
        .config(solver_cfg)
        .run()
        .expect("fault-free solve");
    assert!(edd.history.converged() && rdd.history.converged());
    let scale = u_seq.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    for ((a, b), c) in edd.u.iter().zip(&rdd.u).zip(&u_seq) {
        assert!(
            (a - c).abs() < 1e-5 * scale,
            "EDD vs sequential: {a} vs {c}"
        );
        assert!(
            (b - c).abs() < 1e-5 * scale,
            "RDD vs sequential: {b} vs {c}"
        );
    }
    assert!(residual_norm(&p, &edd.u) < 1e-6);
    assert!(residual_norm(&p, &rdd.u) < 1e-6);
}

#[test]
fn pulling_load_stretches_the_beam_uniformly() {
    // Under pure axial tension the stress state is nearly uniform:
    // u_x grows linearly along the beam, u_x(tip) ~ F*L/(E*A).
    let p = CantileverProblem::new(32, 4, Material::unit(), LoadCase::PullX(1.0));
    let cfg = GmresConfig {
        tol: 1e-10,
        max_iters: 100_000,
        ..Default::default()
    };
    let (u, h) = parfem::sequential::solve_static(&p, &SeqPrecond::Gls(7), &cfg).unwrap();
    assert!(h.converged());
    let l = p.mesh.lx();
    let area = p.mesh.ly(); // unit thickness
    let expect_tip = 1.0 * l / (1.0 * area);
    let mid_node = p.mesh.node_at(p.mesh.nx(), p.mesh.ny() / 2);
    let tip_ux = u[p.dof_map.dof(mid_node, 0)];
    assert!(
        (tip_ux - expect_tip).abs() < 0.05 * expect_tip,
        "tip {tip_ux} vs bar theory {expect_tip}"
    );
    // Half-way along the beam, half the displacement.
    let half_node = p.mesh.node_at(p.mesh.nx() / 2, p.mesh.ny() / 2);
    let half_ux = u[p.dof_map.dof(half_node, 0)];
    assert!(
        (half_ux - 0.5 * expect_tip).abs() < 0.05 * expect_tip,
        "half-span {half_ux}"
    );
}

#[test]
fn solution_is_partition_invariant() {
    // The physical answer must not depend on how the mesh is cut.
    let p = CantileverProblem::new(12, 6, Material::unit(), LoadCase::ShearY(-1.0));
    let cfg = SolverConfig {
        gmres: GmresConfig {
            tol: 1e-10,
            ..Default::default()
        },
        ..Default::default()
    };
    let run = |part: ElementPartition| {
        SolveSession::new(p.as_problem())
            .strategy(Strategy::Edd(part))
            .config(cfg.clone())
            .run()
            .expect("fault-free solve")
    };
    let strips = run(ElementPartition::strips_x(&p.mesh, 4));
    let blocks = run(ElementPartition::blocks(&p.mesh, 2, 2));
    let bfs = run(parfem::mesh::graph::greedy_bfs_partition(&p.mesh, 4));
    let scale = strips.u.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    for ((a, b), c) in strips.u.iter().zip(&blocks.u).zip(&bfs.u) {
        assert!((a - b).abs() < 1e-5 * scale);
        assert!((a - c).abs() < 1e-5 * scale);
    }
}

#[test]
fn all_small_paper_meshes_solve() {
    // Mesh1..Mesh4 of Table 2 end to end with the default configuration.
    for k in 1..=4 {
        let p = CantileverProblem::paper_mesh(k);
        let parts = if k == 1 { 2 } else { 4 };
        let out = SolveSession::new(p.as_problem())
            .strategy(Strategy::Edd(ElementPartition::strips_x(&p.mesh, parts)))
            .machine(MachineModel::sgi_origin())
            .run()
            .expect("fault-free solve");
        assert!(out.history.converged(), "Mesh{k} did not converge");
        assert!(
            residual_norm(&p, &out.u) < 1e-5,
            "Mesh{k} residual too large"
        );
    }
}

#[test]
fn stiffer_material_reduces_displacement_proportionally() {
    // Linearity across the full pipeline: u(E) = u(1)/E.
    let cfg = GmresConfig {
        tol: 1e-10,
        ..Default::default()
    };
    let mut soft = Material::unit();
    soft.youngs_modulus = 1.0;
    let mut stiff = Material::unit();
    stiff.youngs_modulus = 10.0;
    let p1 = CantileverProblem::new(10, 3, soft, LoadCase::PullX(1.0));
    let p2 = CantileverProblem::new(10, 3, stiff, LoadCase::PullX(1.0));
    let (u1, _) = parfem::sequential::solve_static(&p1, &SeqPrecond::Gls(7), &cfg).unwrap();
    let (u2, _) = parfem::sequential::solve_static(&p2, &SeqPrecond::Gls(7), &cfg).unwrap();
    let scale = u1.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    for (a, b) in u1.iter().zip(&u2) {
        assert!((a - 10.0 * b).abs() < 1e-6 * scale, "{a} vs 10*{b}");
    }
}
