//! Cross-cutting preconditioner behaviour: the polynomial theory of
//! Section 2 must predict the solver behaviour of Section 6.

use parfem::precond::gls::GlsPrecond;
use parfem::precond::neumann::NeumannPrecond;
use parfem::precond::poly::stability_bound;
use parfem::prelude::*;
use parfem::sequential::SeqPrecond;

#[test]
fn gls_residual_norm_predicts_iteration_ordering() {
    // Smaller weighted residual norm ||1 - lambda P||_w (theory) must mean
    // fewer FGMRES iterations (practice) on the same scaled system.
    let p = CantileverProblem::paper_mesh(2);
    let cfg = GmresConfig {
        tol: 1e-6,
        max_iters: 20_000,
        ..Default::default()
    };
    let mut rows = Vec::new();
    for m in [1usize, 3, 7, 10] {
        let norm = GlsPrecond::for_scaled_system(m).weighted_residual_norm();
        let (_, h) = parfem::sequential::solve_static(&p, &SeqPrecond::Gls(m), &cfg).unwrap();
        rows.push((m, norm, h.iterations()));
    }
    for w in rows.windows(2) {
        let (m0, n0, i0) = w[0];
        let (m1, n1, i1) = w[1];
        assert!(
            n1 < n0,
            "norm must fall with degree: gls({m0})={n0}, gls({m1})={n1}"
        );
        assert!(
            i1 <= i0,
            "iterations must not grow with degree here: gls({m0})={i0}, gls({m1})={i1}"
        );
    }
}

#[test]
fn neumann_residual_closed_form_bounds_convergence() {
    // With sigma(A) in (0,1) after scaling, the Neumann residual at the
    // smallest eigenvalue bounds how much one preconditioner application
    // can gain — degree 20 must beat degree 5 in iterations.
    let p = CantileverProblem::paper_mesh(2);
    let cfg = GmresConfig {
        tol: 1e-6,
        max_iters: 20_000,
        ..Default::default()
    };
    let (_, h5) = parfem::sequential::solve_static(&p, &SeqPrecond::Neumann(5), &cfg).unwrap();
    let (_, h20) = parfem::sequential::solve_static(&p, &SeqPrecond::Neumann(20), &cfg).unwrap();
    assert!(h5.converged() && h20.converged());
    assert!(
        h20.iterations() < h5.iterations(),
        "neumann(20) {} vs neumann(5) {}",
        h20.iterations(),
        h5.iterations()
    );
    // And the scalar residual ordering agrees.
    let r5 = NeumannPrecond::for_scaled_system(5).residual(0.05).abs();
    let r20 = NeumannPrecond::for_scaled_system(20).residual(0.05).abs();
    assert!(r20 < r5);
}

#[test]
fn paper_fig11_ordering_gls_beats_others_on_mesh2() {
    // Fig. 11's headline ordering: gls(7) converges faster than ilu(0)
    // and neumann(20) converges comparably — we assert the invariant the
    // paper stresses: polynomial preconditioning is at least competitive
    // with ILU(0) while using only matvecs.
    let p = CantileverProblem::paper_mesh(2);
    let cfg = GmresConfig {
        tol: 1e-6,
        max_iters: 20_000,
        ..Default::default()
    };
    let (_, h_gls) = parfem::sequential::solve_static(&p, &SeqPrecond::Gls(7), &cfg).unwrap();
    let (_, h_ilu) = parfem::sequential::solve_static(&p, &SeqPrecond::Ilu0, &cfg).unwrap();
    let (_, h_neu) = parfem::sequential::solve_static(&p, &SeqPrecond::Neumann(20), &cfg).unwrap();
    assert!(h_gls.converged() && h_ilu.converged() && h_neu.converged());
    assert!(
        h_gls.iterations() < h_ilu.iterations(),
        "gls(7) {} must beat ilu(0) {}",
        h_gls.iterations(),
        h_ilu.iterations()
    );
    assert!(
        h_neu.iterations() < h_ilu.iterations(),
        "neumann(20) {} vs ilu(0) {}",
        h_neu.iterations(),
        h_ilu.iterations()
    );
}

#[test]
fn fig3_stability_bound_explodes_past_degree_ten() {
    // The paper restricts practical degrees to <= 10 because the
    // accumulated roundoff bound m*eps*sum|a_i| grows explosively.
    let eps = f64::EPSILON;
    let b5 = stability_bound(&GlsPrecond::for_scaled_system(5).monomial(), eps);
    let b10 = stability_bound(&GlsPrecond::for_scaled_system(10).monomial(), eps);
    let b20 = stability_bound(&GlsPrecond::for_scaled_system(20).monomial(), eps);
    assert!(b10 > 10.0 * b5);
    assert!(b20 > 1000.0 * b10);
    // Degree 10 still leaves plenty of double-precision headroom...
    assert!(b10 < 1e-6);
    // ...while degree 20's bound is already within a few orders of the
    // solver tolerance (1e-6), i.e. practically risky.
    assert!(b20 > 1e-4);
}

#[test]
fn high_degree_stops_paying_off_on_larger_meshes() {
    // Table 3's observation: gls(10) converges in fewer iterations than
    // gls(7) but costs more matvecs per iteration; total matvec count
    // (iterations x degree) must NOT improve proportionally. We assert the
    // cost metric: total operator applications for gls(10) exceed gls(7)'s
    // on a larger mesh.
    let p = CantileverProblem::paper_mesh(3);
    let cfg = GmresConfig {
        tol: 1e-6,
        max_iters: 20_000,
        ..Default::default()
    };
    let (_, h7) = parfem::sequential::solve_static(&p, &SeqPrecond::Gls(7), &cfg).unwrap();
    let (_, h10) = parfem::sequential::solve_static(&p, &SeqPrecond::Gls(10), &cfg).unwrap();
    let cost7 = h7.iterations() * (7 + 1);
    let cost10 = h10.iterations() * (10 + 1);
    assert!(
        cost10 as f64 > 0.8 * cost7 as f64,
        "gls(10) total cost {cost10} vs gls(7) {cost7}: the paper's trade-off vanished"
    );
}

#[test]
fn escalating_gls_runs_distributed_and_converges() {
    // Flexible GMRES with a per-rank degree schedule: every rank applies
    // the same sequence of polynomial degrees, so the distributed iterates
    // remain consistent — and the answer matches a fixed-degree run.
    let p = CantileverProblem::new(16, 4, Material::unit(), LoadCase::PullX(1.0));
    let part = ElementPartition::strips_x(&p.mesh, 4);
    let cfg_esc = SolverConfig {
        gmres: GmresConfig {
            tol: 1e-9,
            ..Default::default()
        },
        precond: PrecondSpec::GlsEscalating { period: 3 },
        variant: EddVariant::Enhanced,
        overlap: false,
        ..Default::default()
    };
    let cfg_fixed = SolverConfig {
        gmres: GmresConfig {
            tol: 1e-9,
            ..Default::default()
        },
        precond: PrecondSpec::Gls {
            degree: 7,
            theta: None,
        },
        variant: EddVariant::Enhanced,
        overlap: false,
        ..Default::default()
    };
    let esc = SolveSession::new(p.as_problem())
        .strategy(Strategy::Edd(part.clone()))
        .config(cfg_esc)
        .run()
        .expect("fault-free solve");
    let fixed = SolveSession::new(p.as_problem())
        .strategy(Strategy::Edd(part))
        .config(cfg_fixed)
        .run()
        .expect("fault-free solve");
    assert!(esc.history.converged() && fixed.history.converged());
    let scale = fixed.u.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    for (a, b) in esc.u.iter().zip(&fixed.u) {
        assert!((a - b).abs() < 1e-5 * scale, "{a} vs {b}");
    }
}

#[test]
fn edd_gls_equals_rdd_gls_in_iterations() {
    // The preconditioned operator is identical under both decompositions,
    // so iteration counts must match (±1 for floating-point noise).
    let p = CantileverProblem::new(20, 5, Material::unit(), LoadCase::PullX(1.0));
    let cfg = SolverConfig {
        gmres: GmresConfig::default(),
        precond: PrecondSpec::Gls {
            degree: 7,
            theta: None,
        },
        variant: EddVariant::Enhanced,
        overlap: false,
        ..Default::default()
    };
    let edd = SolveSession::new(p.as_problem())
        .strategy(Strategy::Edd(ElementPartition::strips_x(&p.mesh, 4)))
        .config(cfg.clone())
        .run()
        .expect("fault-free solve");
    let rdd = SolveSession::new(p.as_problem())
        .strategy(Strategy::Rdd(NodePartition::contiguous(
            p.mesh.n_nodes(),
            4,
        )))
        .config(cfg)
        .run()
        .expect("fault-free solve");
    let (ie, ir) = (edd.history.iterations(), rdd.history.iterations());
    // EDD scales with the distributed (Algorithm 3) row sums, RDD with the
    // assembled sums, so tiny differences are expected.
    assert!(
        ie.abs_diff(ir) <= 2,
        "EDD {ie} vs RDD {ir} iterations diverge"
    );
}
