#!/usr/bin/env bash
# Regenerates every table/figure of the paper plus all ablation studies.
# CSV artifacts land in results/; each binary asserts its qualitative shape
# and exits non-zero on violation. Set PARFEM_QUICK=1 for a fast smoke run.
set -euo pipefail
cd "$(dirname "$0")/.."

BINARIES=(
  fig01_neumann_residual fig02_gls_residual fig03_stability
  fig10_theta_sensitivity fig11_static_precond fig12_dynamic_precond
  fig13_static_degree fig14_dynamic_degree fig16_dynamic_speedup
  fig17_speedup table1_comm_counts table2_meshes table3_performance
  ablation_orthogonalization ablation_elements ablation_elements_parallel
  ablation_partition ablation_machine ablation_polynomials
  ablation_distortion ablation_restart
)

cargo build --release -p parfem-bench
for b in "${BINARIES[@]}"; do
  echo "==================== $b ===================="
  "./target/release/$b"
done
echo "all experiments regenerated; CSVs in results/"
